package prlc

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestFacadeRoundTrip exercises the coding layer through the public API
// only: encode three levels of payloads, lose the stream early, and
// recover the most important level first.
func TestFacadeRoundTrip(t *testing.T) {
	levels, err := NewLevels(2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 16)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(PLC, levels, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := PriorityDistribution{0.5, 0.3, 0.2}
	for !dec.Complete() {
		blocks, err := enc.EncodeBatch(rng, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("source %d corrupted", i)
		}
	}
}

func TestFacadeAnalysis(t *testing.T) {
	levels, err := UniformLevels(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ExpectedDecodedLevels(PLC, levels, UniformDistribution(3), 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.EX < 2.5 {
		t.Errorf("E(X) at 2N blocks = %g, want near 3", r.EX)
	}
	curve, err := DecodingCurve(SLC, levels, UniformDistribution(3), []int{0, 30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 || curve[0].EX != 0 {
		t.Errorf("curve = %+v", curve)
	}
}

func TestFacadeDesign(t *testing.T) {
	levels, err := NewLevels(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DesignDistribution(DesignProblem{
		Scheme:   PLC,
		Levels:   levels,
		Decoding: []DecodingConstraint{{M: 6, MinLevels: 1}},
	}, DesignOptions{Seed: 1, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Errorf("simple design problem infeasible: %+v", sol)
	}
}

func TestFacadeParseScheme(t *testing.T) {
	s, err := ParseScheme("PLC")
	if err != nil || s != PLC {
		t.Errorf("ParseScheme = %v, %v", s, err)
	}
}

func TestFacadeSensorProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	router, _, err := NewSensorNetwork(rng, 80, 0.18)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewGeoTransport(router, 80)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := NewLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(DeployConfig{
		Scheme: PLC, Levels: levels, Dist: UniformDistribution(2),
		M: 24, Seed: 3, PayloadLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < levels.Total(); i++ {
		payload := make([]byte, 4)
		rng.Read(payload)
		if err := dep.Disseminate(rng, tr, rng.Intn(80), i, payload); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := Collect(rng, PLC, levels, dep.CodedBlocks(nil), CollectOptions{PayloadLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("facade protocol round trip incomplete: %+v", res)
	}
}

func TestFacadeChordOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ring, err := NewChordOverlay(rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDHTTransport(ring); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSparsityHelpers(t *testing.T) {
	if LogSparsity(1000) < 2 {
		t.Error("LogSparsity(1000) suspiciously small")
	}
	levels, err := UniformLevels(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(PLC, levels, nil, WithSparsity(LogSparsity(100)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b, err := enc.Encode(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsSparse() {
		t.Fatal("sparse encoder emitted a dense block")
	}
	nnz := 0
	for _, c := range b.DenseCoeff() {
		if c != 0 {
			nnz++
		}
	}
	if nnz != LogSparsity(100) {
		t.Errorf("sparse block has %d nonzeros, want %d", nnz, LogSparsity(100))
	}
}
