package prlc

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestFacadePlacementRoundTrip exercises the placement surface through
// the facade: named objects, a placed fleet, a gossip monitor driving
// membership, keyed collect, and an object-scoped repair daemon.
func TestFacadePlacementRoundTrip(t *testing.T) {
	ctx := context.Background()
	levels, err := NewLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 16)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, UniformDistribution(2), 24)
	if err != nil {
		t.Fatal(err)
	}

	obj := NamedObject("facade-object")
	if obj == ZeroObject || obj == AllObjects {
		t.Fatalf("NamedObject landed on a reserved value: %s", obj)
	}
	parsed, err := ParseObjectID(obj.String())
	if err != nil || parsed != obj {
		t.Fatalf("canonical form did not round-trip: %v, %v", parsed, err)
	}
	for _, b := range blocks {
		b.Object = obj
	}

	const n = 3
	servers := make([]*StoreServer, n)
	clients := make([]*StoreClient, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewStoreServer(StoreServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
		if clients[i], err = NewStoreClient(StoreClientConfig{Addr: srv.Addr()}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Shutdown(sctx)
		}
	})
	placed, err := NewPlacedStore(clients, levels.Count(), PlacedStoreConfig{Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { placed.Close() })
	if id := StoreNodeID(addrs[0]); placed.Members()[0].ID != id && placed.Members()[len(addrs)-1].ID != id &&
		placed.Members()[1].ID != id {
		t.Fatalf("StoreNodeID(%s) = %x not on the ring", addrs[0], id)
	}

	mon, err := NewGossipMonitor(addrs, placed, GossipMonitorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon.Tick(ctx)

	if _, err := placed.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := placed.Collect(ctx, obj, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("collected %d blocks, want %d", len(got), len(blocks))
	}
	for _, b := range got {
		if b.Object != obj {
			t.Fatalf("collect leaked object %s", b.Object)
		}
	}

	d, err := NewObjectRepairDaemon(placed, obj, RepairConfig{
		Scheme: PLC, Levels: levels, TotalBlocks: 24, Dist: UniformDistribution(2), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit == nil || rep.Audit.Reachable != n {
		t.Fatalf("object audit did not reach the fleet: %+v", rep.Audit)
	}
}
