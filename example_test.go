package prlc_test

import (
	"fmt"
	"math/rand"

	prlc "repro"
)

// Example encodes three priority levels with PLC and shows partial
// recovery: the critical level decodes long before the stream completes.
func Example() {
	levels, err := prlc.NewLevels(2, 4, 6) // 12 source blocks
	if err != nil {
		panic(err)
	}
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = []byte{byte(i), byte(i * 2)}
	}
	enc, err := prlc.NewEncoder(prlc.PLC, levels, sources)
	if err != nil {
		panic(err)
	}
	dec, err := prlc.NewDecoder(prlc.PLC, levels, 2)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))
	dist := prlc.PriorityDistribution{0.5, 0.25, 0.25}
	firstLevelAt := 0
	for !dec.Complete() {
		blocks, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			panic(err)
		}
		if _, err := dec.Add(blocks[0]); err != nil {
			panic(err)
		}
		if firstLevelAt == 0 && dec.DecodedLevels() >= 1 {
			firstLevelAt = dec.Received()
		}
	}
	fmt.Printf("critical level decoded after %d blocks, everything after %d\n",
		firstLevelAt, dec.Received())
	payload, err := dec.Source(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("source 0 = %v\n", payload)
	// Output:
	// critical level decoded after 4 blocks, everything after 22
	// source 0 = [0 0]
}

// ExampleExpectedDecodedLevels evaluates the analytical model at the
// all-or-nothing boundary: RLC decodes nothing below N blocks while PLC
// already delivers a level and a half in expectation.
func ExampleExpectedDecodedLevels() {
	levels, err := prlc.UniformLevels(4, 5) // N = 20
	if err != nil {
		panic(err)
	}
	dist := prlc.UniformDistribution(4)
	rlc, err := prlc.ExpectedDecodedLevels(prlc.RLC, levels, dist, 19)
	if err != nil {
		panic(err)
	}
	plc, err := prlc.ExpectedDecodedLevels(prlc.PLC, levels, dist, 19)
	if err != nil {
		panic(err)
	}
	fmt.Printf("at M = N-1: RLC E(X) = %.2f, PLC E(X) = %.2f\n", rlc.EX, plc.EX)
	// Output:
	// at M = N-1: RLC E(X) = 0.00, PLC E(X) = 1.50
}

// ExampleDesignDistribution turns an operational requirement into a
// priority distribution.
func ExampleDesignDistribution() {
	levels, err := prlc.NewLevels(5, 20)
	if err != nil {
		panic(err)
	}
	sol, err := prlc.DesignDistribution(prlc.DesignProblem{
		Scheme: prlc.PLC,
		Levels: levels,
		// The critical 5 blocks must be expected to decode from 8 caches.
		Decoding: []prlc.DecodingConstraint{{M: 8, MinLevels: 1}},
	}, prlc.DesignOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible: %v, critical share p1 > 0.5: %v\n",
		sol.Feasible, sol.P[0] > 0.5)
	// Output:
	// feasible: true, critical share p1 > 0.5: true
}

// ExampleMinBlocks answers the provisioning question: how many caches must
// survive for the critical level to decode with 99% probability?
func ExampleMinBlocks() {
	levels, err := prlc.NewLevels(5, 20)
	if err != nil {
		panic(err)
	}
	dist := prlc.PriorityDistribution{0.6, 0.4}
	m, err := prlc.MinBlocks(prlc.PLC, levels, dist, 1, 0.99, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("the critical level needs %d surviving coded blocks\n", m)
	// Output:
	// the critical level needs 15 surviving coded blocks
}
