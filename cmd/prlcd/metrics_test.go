package main

import (
	"bytes"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// startMetricsEndpoint serves a metrics.Handler for reg on an ephemeral
// loopback port — exactly what `prlcd serve -metrics` binds — and
// returns its address.
func startMetricsEndpoint(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: metrics.Handler(reg)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestMetricsCmdRendersSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("store_server_puts_stored_total").Add(7)
	reg.Gauge("store_server_blocks").Set(7)
	h := reg.Histogram("store_server_request_ns")
	for _, v := range []int64{1000, 2000, 4000} {
		h.Observe(v)
	}
	addr := startMetricsEndpoint(t, reg)

	var out bytes.Buffer
	if err := run([]string{"metrics", addr}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`counters:`, `store_server_puts_stored_total\s+7`,
		`gauges:`, `store_server_blocks\s+7`,
		`histograms:`, `p95`, `store_server_request_ns\s+3\s`,
	} {
		if !regexp.MustCompile(want).MatchString(got) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// The text endpoint the same listener serves must be valid Prometheus
	// exposition format end to end.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := metrics.ValidatePromText(resp.Body); err != nil {
		t.Fatalf("live /metrics endpoint invalid: %v", err)
	}
}

func TestMetricsCmdEmptyRegistry(t *testing.T) {
	addr := startMetricsEndpoint(t, metrics.NewRegistry())
	var out bytes.Buffer
	if err := run([]string{"metrics", addr}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no metrics recorded yet") {
		t.Fatalf("empty snapshot output: %q", out.String())
	}
}

func TestMetricsCmdErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"metrics"}, &out); err == nil {
		t.Error("metrics with no addr accepted")
	}
	if err := run([]string{"metrics", "-timeout", "50ms", "127.0.0.1:1"}, &out); err == nil {
		t.Error("metrics against a dead addr succeeded")
	}
}
