// Command prlcd runs the networked priority block store: a daemon
// (`prlcd serve`) plus client subcommands (`prlcd store ...`) that ship
// a file into a replicated daemon fleet with priority-differentiated
// replication and pull it back out, tolerating dead replicas.
//
// Usage:
//
//	prlcd serve -addr 127.0.0.1:7071
//	prlcd store ping -addr 127.0.0.1:7071
//	prlcd store put -addrs 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	      -in report.pdf -blocks 100 -levels 0.1,0.2,0.7 -scheme plc
//	prlcd store get -addrs ... -out recovered.pdf -scheme plc -sizes ... -size ...
//	prlcd store stat -addr 127.0.0.1:7071
//	prlcd store shutdown -addr 127.0.0.1:7071
//
// `store put` prints the exact `store get` invocation that recovers the
// file, so the decode side needs no side-channel metadata.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prlcd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd serve|store [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:], out)
	case "store":
		return storeCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve or store)", args[0])
	}
}

func serve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd serve", flag.ContinueOnError)
	var (
		addr      string
		maxConns  int
		maxBlocks int
		maxFrame  int
	)
	fs.StringVar(&addr, "addr", "127.0.0.1:7071", "listen address")
	fs.IntVar(&maxConns, "max-conns", 64, "maximum concurrent connections")
	fs.IntVar(&maxBlocks, "max-blocks", 0, "maximum stored blocks (0 = unlimited)")
	fs.IntVar(&maxFrame, "max-frame", store.DefaultMaxFrame, "maximum frame size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := store.NewServer(store.ServerConfig{
		Addr:      addr,
		MaxConns:  maxConns,
		MaxBlocks: maxBlocks,
		MaxFrame:  maxFrame,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "prlcd: serving on %s\n", srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		fmt.Fprintln(out, "prlcd: drained")
		return err
	case <-srv.Done():
		// A client sent a shutdown frame; the server already drained.
		fmt.Fprintln(out, "prlcd: shut down by client")
		return nil
	}
}

func storeCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd store ping|stat|put|get|shutdown [flags]")
	}
	switch args[0] {
	case "ping":
		return pingCmd(args[1:], out)
	case "stat":
		return statCmd(args[1:], out)
	case "put":
		return putCmd(args[1:], out)
	case "get":
		return getCmd(args[1:], out)
	case "shutdown":
		return shutdownCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown store subcommand %q", args[0])
	}
}

func newClient(addr string, timeout time.Duration) (*store.Client, error) {
	return store.NewClient(store.ClientConfig{Addr: addr, OpTimeout: timeout})
}

func singleAddrCmd(name string, args []string, f func(ctx context.Context, cl *store.Client) error) error {
	fs := flag.NewFlagSet("prlcd store "+name, flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s: -addr is required", name)
	}
	cl, err := newClient(*addr, *timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	return f(ctx, cl)
}

func pingCmd(args []string, out io.Writer) error {
	return singleAddrCmd("ping", args, func(ctx context.Context, cl *store.Client) error {
		start := time.Now()
		if err := cl.Ping(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: alive (%v)\n", cl.Addr(), time.Since(start).Round(time.Microsecond))
		return nil
	})
}

func statCmd(args []string, out io.Writer) error {
	return singleAddrCmd("stat", args, func(ctx context.Context, cl *store.Client) error {
		st, err := cl.Stat(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d blocks\n", cl.Addr(), st.Blocks)
		for _, lc := range st.PerLevel {
			fmt.Fprintf(out, "  level %d: %d blocks\n", lc.Level, lc.Count)
		}
		return nil
	})
}

func shutdownCmd(args []string, out io.Writer) error {
	return singleAddrCmd("shutdown", args, func(ctx context.Context, cl *store.Client) error {
		if err := cl.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: draining\n", cl.Addr())
		return nil
	})
}

// openReplicated builds per-replica clients and the replicated store.
func openReplicated(addrs []string, levels, tolerance, minWrites int, timeout time.Duration) (*store.Replicated, error) {
	clients := make([]*store.Client, 0, len(addrs))
	for _, a := range addrs {
		cl, err := newClient(a, timeout)
		if err != nil {
			return nil, err
		}
		clients = append(clients, cl)
	}
	return store.NewReplicated(clients, levels, store.ReplicatedConfig{
		Tolerance: tolerance,
		MinWrites: minWrites,
	})
}

func putCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store put", flag.ContinueOnError)
	var (
		addrsStr  string
		in        string
		blocks    int
		coded     int
		levelsStr string
		distStr   string
		schemeStr string
		seed      int64
		tolerance int
		minWrites int
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&in, "in", "", "input file")
	fs.IntVar(&blocks, "blocks", 100, "number of source blocks")
	fs.IntVar(&coded, "coded", 0, "number of coded blocks (0 = 1.6x blocks)")
	fs.StringVar(&levelsStr, "levels", "0.1,0.2,0.7", "level fractions, most important first")
	fs.StringVar(&distStr, "dist", "", "priority distribution (default uniform)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.Int64Var(&seed, "seed", 1, "random seed")
	fs.IntVar(&tolerance, "f", 1, "replica losses the last level must survive")
	fs.IntVar(&minWrites, "min-writes", 1, "copies that must land per block")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || in == "" {
		return fmt.Errorf("put: -addrs and -in are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("put: %s is empty", in)
	}
	if blocks <= 0 {
		return fmt.Errorf("put: -blocks %d, want > 0", blocks)
	}
	if blocks > len(data) {
		blocks = len(data)
	}
	if coded == 0 {
		coded = blocks + (blocks*3+4)/5
	}
	fracs, err := cliutil.ParseFloats(levelsStr)
	if err != nil {
		return fmt.Errorf("put: -levels: %w", err)
	}
	sizes, err := cliutil.FractionsToSizes(fracs, blocks)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}
	var dist core.PriorityDistribution
	if distStr == "" {
		dist = core.NewUniformDistribution(levels.Count())
	} else {
		vals, err := cliutil.ParseFloats(distStr)
		if err != nil {
			return fmt.Errorf("put: -dist: %w", err)
		}
		dist = core.PriorityDistribution(vals)
	}
	if err := dist.Validate(levels); err != nil {
		return err
	}
	sources := cliutil.SplitPayloads(data, blocks)
	enc, err := core.NewEncoder(scheme, levels, sources)
	if err != nil {
		return err
	}
	cb, err := enc.EncodeBatch(rand.New(rand.NewSource(seed)), dist, coded)
	if err != nil {
		return err
	}

	repl, err := openReplicated(addrs, levels.Count(), tolerance, minWrites, timeout)
	if err != nil {
		return err
	}
	defer repl.Close()
	ctx := context.Background()
	if _, err := repl.PutAll(ctx, cb); err != nil {
		return err
	}
	copies := 0
	for _, b := range cb {
		copies += repl.ReplicasFor(b.Level)
	}
	fmt.Fprintf(out, "stored %d coded blocks (%d replica copies) across %d daemons\n",
		len(cb), copies, len(addrs))
	fmt.Fprintf(out, "recover with:\n  prlcd store get -addrs %s -out FILE -scheme %s -sizes %s -size %d\n",
		addrsStr, schemeStr, intsCSV(sizes), len(data))
	return nil
}

func getCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store get", flag.ContinueOnError)
	var (
		addrsStr  string
		outPath   string
		schemeStr string
		sizesStr  string
		fileSize  int64
		seed      int64
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&outPath, "out", "", "output file for the recovered prefix")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme used at put time")
	fs.StringVar(&sizesStr, "sizes", "", "per-level block counts from put time")
	fs.Int64Var(&fileSize, "size", 0, "original file size (0 = keep padding)")
	fs.Int64Var(&seed, "seed", 1, "random seed for the processing order")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || outPath == "" || sizesStr == "" {
		return fmt.Errorf("get: -addrs, -out and -sizes are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	sizes, err := cliutil.ParseInts(sizesStr)
	if err != nil {
		return fmt.Errorf("get: -sizes: %w", err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}

	repl, err := openReplicated(addrs, levels.Count(), 1, 1, timeout)
	if err != nil {
		return err
	}
	defer repl.Close()
	ctx := context.Background()
	blocks, err := repl.Collect(ctx, -1)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		return fmt.Errorf("get: daemons hold no blocks")
	}
	res, dec, err := collect.Run(rand.New(rand.NewSource(seed)), scheme, levels, blocks,
		collect.Options{Context: ctx, PayloadLen: len(blocks[0].Payload)})
	if err != nil {
		return err
	}

	var buf []byte
	for _, p := range dec.Sources() {
		if p == nil {
			break
		}
		buf = append(buf, p...)
	}
	if fileSize > 0 && int64(len(buf)) > fileSize {
		buf = buf[:fileSize]
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "collected %d blocks from %d daemons; decoded %d/%d source blocks (%d levels)\n",
		len(blocks), len(addrs), res.DecodedBlocks, levels.Total(), res.DecodedLevels)
	fmt.Fprintf(out, "wrote %d bytes to %s", len(buf), outPath)
	if res.Complete {
		fmt.Fprint(out, " (complete file)")
	} else if fileSize > 0 {
		fmt.Fprintf(out, " (partial recovery: %.1f%% of the file)", 100*float64(len(buf))/float64(fileSize))
	}
	fmt.Fprintln(out)
	return nil
}

func intsCSV(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s
}
