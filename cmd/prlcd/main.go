// Command prlcd runs the networked priority block store: a daemon
// (`prlcd serve`) plus client subcommands (`prlcd store ...`) that ship
// a file into a replicated daemon fleet with priority-differentiated
// replication and pull it back out, tolerating dead replicas, and a
// maintenance subcommand (`prlcd repair`) that regenerates redundancy
// lost to churn by decode-free recombination of surviving blocks.
//
// Usage:
//
//	prlcd serve -addr 127.0.0.1:7071
//	prlcd store ping -addr 127.0.0.1:7071
//	prlcd store put -addrs 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	      -in report.pdf -blocks 100 -levels 0.1,0.2,0.7 -scheme plc
//	prlcd store get -addrs ... -out recovered.pdf -scheme plc -sizes ... -size ...
//	prlcd store stat -addr 127.0.0.1:7071
//	prlcd store segments -addr 127.0.0.1:7071     # disk segment inventory
//	prlcd store shutdown -addr 127.0.0.1:7071
//	prlcd repair -addrs ... -scheme plc -sizes ... -total 160        # one round
//	prlcd repair -addrs ... -sizes ... -total 160 -watch             # loop
//	prlcd serve -addr ... -repair -peers ... -sizes ... -total 160   # serve + repair
//	prlcd migrate -addrs ... -sizes ... -total 160                   # one migration round
//	prlcd migrate -addrs ... -sizes ... -total 160 -watch            # migration loop
//	prlcd serve -addr ... -migrate -peers ... -sizes ... -total 160  # serve + migrate
//	prlcd serve -addr ... -metrics 127.0.0.1:7091                    # + observability
//	prlcd serve -addr ... -data-dir /var/lib/prlcd -retention 24h    # + persistence
//	prlcd metrics 127.0.0.1:7091                                     # metrics table
//	prlcd ring -addrs ... -object report.pdf                         # placement view
//
// `store put` prints the exact `store get` invocation that recovers the
// file, so the decode side needs no side-channel metadata.
//
// With `-object NAME`, put/get address one object namespace and route
// through the placement ring: the object's blocks land on its
// `-replicas` ring successors instead of the whole fleet, so many
// objects share one fleet without mixing. `prlcd ring` shows the ring —
// node IDs, ownership ranges, and (with -object) an object's replica
// set. Without -object everything stays in the legacy key-less
// namespace over the static replica list.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/metrics"
	"repro/internal/mover"
	"repro/internal/repair"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prlcd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd serve|store|repair|migrate|ring|metrics [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:], out)
	case "store":
		return storeCmd(args[1:], out)
	case "repair":
		return repairCmd(args[1:], out)
	case "migrate":
		return migrateCmd(args[1:], out)
	case "ring":
		return ringCmd(args[1:], out)
	case "metrics":
		return metricsCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, store, repair, migrate, ring or metrics)", args[0])
	}
}

func serve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd serve", flag.ContinueOnError)
	var (
		addr         string
		maxConns     int
		maxBlocks    int
		maxFrame     int
		metricsAddr  string
		withRepair   bool
		dataDir      string
		fsyncStr     string
		retention    time.Duration
		segmentBytes int64
		pidFile      string
		rOpts        repairOpts
		mOpts        migrateOpts
		withMigrate  bool
	)
	fs.StringVar(&addr, "addr", "127.0.0.1:7071", "listen address")
	fs.IntVar(&maxConns, "max-conns", 64, "maximum concurrent connections")
	fs.IntVar(&maxBlocks, "max-blocks", 0, "maximum stored blocks (0 = unlimited)")
	fs.IntVar(&maxFrame, "max-frame", store.DefaultMaxFrame, "maximum frame size in bytes")
	fs.StringVar(&metricsAddr, "metrics", "", "observability listen address (Prometheus /metrics, /metrics.json, /debug/pprof)")
	fs.BoolVar(&withRepair, "repair", false, "run a repair daemon client loop over -peers alongside serving")
	fs.BoolVar(&withMigrate, "migrate", false, "run a migration mover loop over -peers alongside serving (shares the repair flags)")
	fs.StringVar(&dataDir, "data-dir", "", "persist blocks to segment files under this directory (empty = in-memory)")
	fs.StringVar(&fsyncStr, "fsync", "batch", "disk durability: batch (group commit), always (per put) or none")
	fs.DurationVar(&retention, "retention", 0, "delete disk segments older than this rolling window (0 = keep forever)")
	fs.Int64Var(&segmentBytes, "segment-bytes", 0, "disk segment rotation threshold in bytes (0 = 64 MiB default)")
	fs.StringVar(&pidFile, "pid-file", "", "write the daemon PID here once serving (for process supervisors and chaos controllers)")
	rOpts.register(fs, "peers", 10*time.Second)
	mOpts.registerMoverFlags(fs) // code/fleet flags are shared with -repair
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pidFile != "" {
		// Written before the listen so a supervisor that saw the file can
		// immediately signal the process; removed on every exit path.
		if err := os.WriteFile(pidFile, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
			return fmt.Errorf("serve: -pid-file: %w", err)
		}
		defer os.Remove(pidFile)
	}
	var reg *metrics.Registry
	if metricsAddr != "" {
		reg = metrics.NewRegistry()
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("serve: metrics listen %s: %w", metricsAddr, err)
		}
		defer mln.Close()
		msrv := &http.Server{Handler: metrics.Handler(reg)}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "prlcd: metrics on http://%s/metrics\n", mln.Addr())
	}
	rOpts.metrics = reg
	var engine store.BlockStore
	if dataDir != "" {
		fsyncMode, err := diskstore.ParseFsyncMode(fsyncStr)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		t0 := time.Now()
		eng, err := diskstore.Open(dataDir, diskstore.Options{
			SegmentBytes:   segmentBytes,
			Fsync:          fsyncMode,
			Retention:      retention,
			MaxBlocks:      maxBlocks,
			MaxRecordBytes: maxFrame,
			Metrics:        reg,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		// The daemon owns the engine's lifecycle: the server drains its
		// connections on Shutdown, then this close flushes the tail.
		defer eng.Close()
		fmt.Fprintf(out, "prlcd: disk store %s: recovered %d blocks in %d segments (%v, fsync=%s)\n",
			dataDir, eng.Len(), eng.Segments(), time.Since(t0).Round(time.Millisecond), fsyncMode)
		engine = eng
	}
	srv, err := store.NewServer(store.ServerConfig{
		Addr:      addr,
		MaxConns:  maxConns,
		MaxBlocks: maxBlocks,
		MaxFrame:  maxFrame,
		Blocks:    engine,
		Metrics:   reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "prlcd: serving on %s\n", srv.Addr())
	if withRepair {
		// The serve-side client loop: this daemon audits and repairs the
		// whole fleet (-peers should list every replica, itself included)
		// in the background while serving its own blocks. Per-daemon
		// jitter in the loop desynchronizes a fleet that all do this.
		repl, d, err := rOpts.build("serve -repair")
		if err != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
			return err
		}
		defer repl.Close()
		d.Start()
		fmt.Fprintf(out, "prlcd: repairing %d peers every %v\n",
			len(cliutil.SplitAddrs(rOpts.addrsStr)), rOpts.interval)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := d.Stop(sctx); err != nil {
				fmt.Fprintf(out, "prlcd: repair daemon stop: %v\n", err)
				return
			}
			fmt.Fprintf(out, "prlcd: repair daemon stopped after %d rounds\n", d.Rounds())
		}()
	}
	if withMigrate {
		// The serve-side migration loop: this daemon re-homes displaced
		// objects across -peers (itself included) whenever ring ownership
		// and data placement disagree. Safe to run on every daemon — the
		// mover verifies before reclaiming and deletes are idempotent.
		mOpts.repairOpts = rOpts
		placed, m, err := mOpts.build("serve -migrate")
		if err != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
			return err
		}
		defer placed.Close()
		m.Start()
		fmt.Fprintf(out, "prlcd: migrating across %d peers every %v\n",
			len(cliutil.SplitAddrs(rOpts.addrsStr)), rOpts.interval)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := m.Stop(sctx); err != nil {
				fmt.Fprintf(out, "prlcd: mover stop: %v\n", err)
				return
			}
			fmt.Fprintf(out, "prlcd: mover stopped after %d rounds\n", m.Rounds())
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		fmt.Fprintln(out, "prlcd: drained")
		return err
	case <-srv.Done():
		// A client sent a shutdown frame; the server already drained.
		fmt.Fprintln(out, "prlcd: shut down by client")
		return nil
	}
}

func storeCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd store ping|stat|segments|put|get|shutdown [flags]")
	}
	switch args[0] {
	case "ping":
		return pingCmd(args[1:], out)
	case "stat":
		return statCmd(args[1:], out)
	case "put":
		return putCmd(args[1:], out)
	case "get":
		return getCmd(args[1:], out)
	case "segments":
		return segmentsCmd(args[1:], out)
	case "shutdown":
		return shutdownCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown store subcommand %q", args[0])
	}
}

// segmentsCmd renders a disk-backed daemon's segment inventory: one line
// per on-disk segment with its id, record count, byte size, age, and
// whether it is still the active (write) segment.
func segmentsCmd(args []string, out io.Writer) error {
	return singleAddrCmd("segments", args, func(ctx context.Context, cl *store.Client) error {
		segs, err := cl.Segments(ctx)
		if err != nil {
			return err
		}
		var blocks int
		var bytes int64
		for _, sg := range segs {
			blocks += sg.Records
			bytes += sg.Bytes
		}
		fmt.Fprintf(out, "%s: %d segments, %d records, %d bytes\n", cl.Addr(), len(segs), blocks, bytes)
		fmt.Fprintf(out, "  %-10s %8s %12s %12s  %s\n", "segment", "records", "bytes", "age", "state")
		now := time.Now()
		for _, sg := range segs {
			state := "sealed"
			if sg.Active {
				state = "active"
			}
			fmt.Fprintf(out, "  %-10s %8d %12d %12s  %s\n",
				fmt.Sprintf("%08d", sg.ID), sg.Records, sg.Bytes,
				now.Sub(sg.Created).Round(time.Second), state)
		}
		return nil
	})
}

func newClient(addr string, timeout time.Duration) (*store.Client, error) {
	return store.NewClient(store.ClientConfig{Addr: addr, OpTimeout: timeout})
}

func singleAddrCmd(name string, args []string, f func(ctx context.Context, cl *store.Client) error) error {
	fs := flag.NewFlagSet("prlcd store "+name, flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s: -addr is required", name)
	}
	cl, err := newClient(*addr, *timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	return f(ctx, cl)
}

func pingCmd(args []string, out io.Writer) error {
	return singleAddrCmd("ping", args, func(ctx context.Context, cl *store.Client) error {
		start := time.Now()
		if err := cl.Ping(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: alive (%v)\n", cl.Addr(), time.Since(start).Round(time.Microsecond))
		return nil
	})
}

func statCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store stat", flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address")
	objectStr := fs.String("object", "", "only show this object's section: a name to hash or canonical obj-<16 hex>")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("stat: -addr is required")
	}
	only, err := core.ParseObjectID(*objectStr)
	if err != nil {
		return fmt.Errorf("stat: -object: %w", err)
	}
	cl, err := newClient(*addr, *timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	st, err := cl.Stat(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d blocks, %d bytes\n", cl.Addr(), st.Blocks, st.Bytes)
	for _, lc := range st.PerLevel {
		fmt.Fprintf(out, "  level %d: %d blocks, %d bytes\n", lc.Level, lc.Count, lc.Bytes)
	}
	if *objectStr != "" && len(st.PerObject) == 0 {
		fmt.Fprintln(out, "  (daemon reports no per-object inventory — predates the object namespace)")
	}
	for _, os := range st.PerObject {
		if *objectStr != "" && os.Object != only {
			continue
		}
		fmt.Fprintf(out, "  object %s: %d blocks, %d bytes\n", os.Object, os.Blocks, os.Bytes)
		for _, lc := range os.PerLevel {
			fmt.Fprintf(out, "    level %d: %d blocks, %d bytes\n", lc.Level, lc.Count, lc.Bytes)
		}
	}
	return nil
}

func shutdownCmd(args []string, out io.Writer) error {
	return singleAddrCmd("shutdown", args, func(ctx context.Context, cl *store.Client) error {
		if err := cl.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: draining\n", cl.Addr())
		return nil
	})
}

// openReplicated builds per-replica clients and the replicated store,
// all attached to reg (which may be nil for uninstrumented commands).
func openReplicated(addrs []string, levels, tolerance, minWrites int, timeout time.Duration, reg *metrics.Registry) (*store.Replicated, error) {
	clients := make([]*store.Client, 0, len(addrs))
	for _, a := range addrs {
		cl, err := store.NewClient(store.ClientConfig{Addr: a, OpTimeout: timeout, Metrics: reg})
		if err != nil {
			return nil, err
		}
		clients = append(clients, cl)
	}
	return store.NewReplicated(clients, levels, store.ReplicatedConfig{
		Tolerance: tolerance,
		MinWrites: minWrites,
		Metrics:   reg,
	})
}

// openPlaced builds per-node clients and the consistent-hashing front
// end that routes keyed objects to their ring successors.
func openPlaced(addrs []string, levels, replicas, tolerance, minWrites int, timeout time.Duration, reg *metrics.Registry) (*store.Placed, error) {
	clients := make([]*store.Client, 0, len(addrs))
	for _, a := range addrs {
		cl, err := store.NewClient(store.ClientConfig{Addr: a, OpTimeout: timeout, Metrics: reg})
		if err != nil {
			for _, c := range clients {
				c.Close()
			}
			return nil, err
		}
		clients = append(clients, cl)
	}
	p, err := store.NewPlaced(clients, levels, store.PlacedConfig{
		Replication: replicas,
		Tolerance:   tolerance,
		MinWrites:   minWrites,
		Metrics:     reg,
	})
	if err != nil {
		for _, c := range clients {
			c.Close()
		}
	}
	return p, err
}

// ringCmd renders the placement ring for a fleet: each node's ring ID,
// liveness (probed over the store wire path), and the hash range it
// owns, plus — with -object — one object's replica set. Placement is a
// pure function of the address list and liveness, so any machine can
// compute the same view without asking the daemons where data lives.
func ringCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd ring", flag.ContinueOnError)
	var (
		addrsStr  string
		objectStr string
		replicas  int
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses of the fleet")
	fs.StringVar(&objectStr, "object", "", "also resolve this object's replica set: a name to hash or canonical obj-<16 hex>")
	fs.IntVar(&replicas, "replicas", 3, "ring successors each object is placed on")
	fs.DurationVar(&timeout, "timeout", 2*time.Second, "per-node probe timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 {
		return fmt.Errorf("ring: -addrs is required")
	}
	if replicas > len(addrs) {
		replicas = len(addrs)
	}
	placed, err := openPlaced(addrs, 1, replicas, 0, 1, timeout, nil)
	if err != nil {
		return err
	}
	defer placed.Close()

	for _, a := range addrs {
		pctx, cancel := context.WithTimeout(context.Background(), timeout)
		if err := placed.Probe(pctx, a); err != nil {
			placed.SetAlive(a, false)
		}
		cancel()
	}

	members := placed.Members()
	alive := 0
	for _, m := range members {
		if m.Alive {
			alive++
		}
	}
	fmt.Fprintf(out, "ring: %d nodes (%d alive), replication %d\n", len(members), alive, replicas)
	// Ownership wraps among the alive nodes: each owns the ID range since
	// the previous alive node, half-open on the left.
	prevAlive := make([]uint64, len(members))
	for i, m := range members {
		prev := m.ID
		for j := 1; j <= len(members); j++ {
			c := members[(i-j+len(members))%len(members)]
			if c.Alive {
				prev = c.ID
				break
			}
		}
		prevAlive[i] = prev
	}
	for i, m := range members {
		if !m.Alive {
			fmt.Fprintf(out, "  %016x  %s  down\n", m.ID, m.Addr)
			continue
		}
		fmt.Fprintf(out, "  %016x  %s  alive  owns (%016x, %016x]\n", m.ID, m.Addr, prevAlive[i], m.ID)
	}
	if objectStr != "" {
		obj, err := core.ParseObjectID(objectStr)
		if err != nil {
			return fmt.Errorf("ring: -object: %w", err)
		}
		owners, err := placed.ReplicasForObject(obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "object %s (%016x): replicas %s\n", obj, uint64(obj), strings.Join(owners, ", "))
	}
	return nil
}

func putCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store put", flag.ContinueOnError)
	var (
		addrsStr  string
		in        string
		blocks    int
		coded     int
		levelsStr string
		distStr   string
		schemeStr string
		codingStr string
		objectStr string
		replicas  int
		seed      int64
		tolerance int
		minWrites int
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&in, "in", "", "input file")
	fs.StringVar(&objectStr, "object", "", "object namespace: a name to hash or canonical obj-<16 hex> (empty = legacy key-less)")
	fs.IntVar(&replicas, "replicas", 3, "ring successors the object is placed on when -object is set")
	fs.IntVar(&blocks, "blocks", 100, "number of source blocks")
	fs.IntVar(&coded, "coded", 0, "number of coded blocks (0 = 1.6x blocks)")
	fs.StringVar(&levelsStr, "levels", "0.1,0.2,0.7", "level fractions, most important first")
	fs.StringVar(&distStr, "dist", "", "priority distribution (default uniform)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.StringVar(&codingStr, "coding", "auto", "coefficient generator: auto, dense, sparse, band or chunked (auto picks by generation size)")
	fs.Int64Var(&seed, "seed", 1, "random seed")
	fs.IntVar(&tolerance, "f", 1, "replica losses the last level must survive")
	fs.IntVar(&minWrites, "min-writes", 1, "copies that must land per block")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || in == "" {
		return fmt.Errorf("put: -addrs and -in are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("put: %s is empty", in)
	}
	if blocks <= 0 {
		return fmt.Errorf("put: -blocks %d, want > 0", blocks)
	}
	if blocks > len(data) {
		blocks = len(data)
	}
	if coded == 0 {
		coded = blocks + (blocks*3+4)/5
	}
	fracs, err := cliutil.ParseFloats(levelsStr)
	if err != nil {
		return fmt.Errorf("put: -levels: %w", err)
	}
	sizes, err := cliutil.FractionsToSizes(fracs, blocks)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}
	var dist core.PriorityDistribution
	if distStr == "" {
		dist = core.NewUniformDistribution(levels.Count())
	} else {
		vals, err := cliutil.ParseFloats(distStr)
		if err != nil {
			return fmt.Errorf("put: -dist: %w", err)
		}
		dist = core.PriorityDistribution(vals)
	}
	if err := dist.Validate(levels); err != nil {
		return err
	}
	coding, err := core.ParseCoding(codingStr)
	if err != nil {
		return err
	}
	if coding == core.CodingAuto {
		coding = core.AutoCoding(blocks)
	}

	sources := cliutil.SplitPayloads(data, blocks)
	var (
		cb         []*core.CodedBlock
		replLevels = levels.Count()
		layout     *core.ChunkLayout
	)
	if coding == core.CodingChunked {
		// Chunked blocks carry their chunk index in the Level field. Chunks
		// cover the file front to back, so the store's level-decaying
		// replication naturally keeps more copies of the file prefix —
		// replLevels becomes the chunk count.
		layout, err = core.DefaultChunkLayout(blocks)
		if err != nil {
			return err
		}
		replLevels = layout.Count
		cenc, err := core.NewChunkedEncoder(layout, sources)
		if err != nil {
			return err
		}
		cb, err = cenc.EncodeBatch(rand.New(rand.NewSource(seed)), coded)
		if err != nil {
			return err
		}
	} else {
		var opts []core.EncoderOption
		switch coding {
		case core.CodingSparse:
			opts = append(opts, core.WithSparsity(core.LogSparsity(blocks)))
		case core.CodingBand:
			opts = append(opts, core.WithBand(core.DefaultBandWidth))
		}
		enc, err := core.NewEncoder(scheme, levels, sources, opts...)
		if err != nil {
			return err
		}
		cb, err = enc.EncodeBatch(rand.New(rand.NewSource(seed)), dist, coded)
		if err != nil {
			return err
		}
	}

	obj, err := core.ParseObjectID(objectStr)
	if err != nil {
		return fmt.Errorf("put: -object: %w", err)
	}
	ctx := context.Background()
	objArgs := ""
	if obj != core.ZeroObject {
		// Keyed put: stamp every block with the object and route through
		// the placement ring — the blocks land on the object's -replicas
		// ring successors instead of the whole fleet.
		for _, b := range cb {
			b.Object = obj
		}
		if replicas > len(addrs) {
			replicas = len(addrs)
		}
		objArgs = fmt.Sprintf(" -object %s -replicas %d", objectStr, replicas)
		placed, err := openPlaced(addrs, replLevels, replicas, tolerance, minWrites, timeout, nil)
		if err != nil {
			return err
		}
		defer placed.Close()
		if _, err := placed.PutAll(ctx, cb); err != nil {
			if errors.Is(err, store.ErrStoreFull) {
				return fmt.Errorf("put: a daemon is at capacity (raise its -max-blocks, widen its -retention window, or add replicas): %w", err)
			}
			return err
		}
		shard, err := placed.Shard(obj)
		if err != nil {
			return err
		}
		copies := 0
		for _, b := range cb {
			copies += shard.ReplicasFor(b.Level)
		}
		owners, err := placed.ReplicasForObject(obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stored %d coded blocks (%d replica copies) of %s on %d/%d daemons: %s\n",
			len(cb), copies, obj, len(owners), len(addrs), strings.Join(owners, ", "))
	} else {
		repl, err := openReplicated(addrs, replLevels, tolerance, minWrites, timeout, nil)
		if err != nil {
			return err
		}
		defer repl.Close()
		if _, err := repl.PutAll(ctx, cb); err != nil {
			if errors.Is(err, store.ErrStoreFull) {
				return fmt.Errorf("put: a daemon is at capacity (raise its -max-blocks, widen its -retention window, or add replicas): %w", err)
			}
			return err
		}
		copies := 0
		for _, b := range cb {
			copies += repl.ReplicasFor(b.Level)
		}
		fmt.Fprintf(out, "stored %d coded blocks (%d replica copies) across %d daemons\n",
			len(cb), copies, len(addrs))
	}
	if coding == core.CodingChunked {
		fmt.Fprintf(out, "recover with:\n  prlcd store get -addrs %s -out FILE -sizes %s -size %d -chunks %d,%d%s\n",
			addrsStr, intsCSV(sizes), len(data), layout.Size, layout.Overlap, objArgs)
	} else {
		fmt.Fprintf(out, "recover with:\n  prlcd store get -addrs %s -out FILE -scheme %s -sizes %s -size %d%s\n",
			addrsStr, schemeStr, intsCSV(sizes), len(data), objArgs)
	}
	return nil
}

func getCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store get", flag.ContinueOnError)
	var (
		addrsStr  string
		outPath   string
		schemeStr string
		sizesStr  string
		chunksStr string
		objectStr string
		replicas  int
		fileSize  int64
		seed      int64
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&outPath, "out", "", "output file for the recovered prefix")
	fs.StringVar(&objectStr, "object", "", "object namespace from put time: a name to hash or canonical obj-<16 hex>")
	fs.IntVar(&replicas, "replicas", 3, "ring successors used at put time when -object is set")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme used at put time")
	fs.StringVar(&sizesStr, "sizes", "", "per-level block counts from put time")
	fs.StringVar(&chunksStr, "chunks", "", "size,overlap of the chunk layout when put used -coding chunked")
	fs.Int64Var(&fileSize, "size", 0, "original file size (0 = keep padding)")
	fs.Int64Var(&seed, "seed", 1, "random seed for the processing order")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || outPath == "" || sizesStr == "" {
		return fmt.Errorf("get: -addrs, -out and -sizes are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	sizes, err := cliutil.ParseInts(sizesStr)
	if err != nil {
		return fmt.Errorf("get: -sizes: %w", err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}

	obj, err := core.ParseObjectID(objectStr)
	if err != nil {
		return fmt.Errorf("get: -object: %w", err)
	}
	ctx := context.Background()
	var blocks []*core.CodedBlock
	if obj != core.ZeroObject {
		// Keyed get: resolve the object's shard on the same ring geometry
		// the put used and collect only that namespace's blocks.
		if replicas > len(addrs) {
			replicas = len(addrs)
		}
		placed, err := openPlaced(addrs, levels.Count(), replicas, 1, 1, timeout, nil)
		if err != nil {
			return err
		}
		defer placed.Close()
		blocks, err = placed.Collect(ctx, obj, -1)
		if err != nil {
			return err
		}
	} else {
		repl, err := openReplicated(addrs, levels.Count(), 1, 1, timeout, nil)
		if err != nil {
			return err
		}
		defer repl.Close()
		blocks, err = repl.Collect(ctx, -1)
		if err != nil {
			return err
		}
	}
	if len(blocks) == 0 {
		return fmt.Errorf("get: daemons hold no blocks")
	}
	var (
		sourcesOut [][]byte
		decoded    int
		complete   bool
		levelsNote string
	)
	if chunksStr != "" {
		chunkDims, err := cliutil.ParseInts(chunksStr)
		if err != nil || len(chunkDims) != 2 {
			return fmt.Errorf("get: -chunks wants size,overlap, got %q", chunksStr)
		}
		layout, err := core.NewChunkLayout(levels.Total(), chunkDims[0], chunkDims[1])
		if err != nil {
			return err
		}
		cdec, err := core.NewChunkedDecoder(layout, len(blocks[0].Payload))
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if _, err := cdec.Add(b); err != nil {
				fmt.Fprintf(out, "get: skipping block: %v\n", err)
			}
			if cdec.Complete() {
				break
			}
		}
		sourcesOut = cdec.Sources()
		decoded = cdec.DecodedCount()
		complete = cdec.Complete()
		levelsNote = "chunked"
	} else {
		res, dec, err := collect.Run(rand.New(rand.NewSource(seed)), scheme, levels, blocks,
			collect.Options{Context: ctx, PayloadLen: len(blocks[0].Payload)})
		if err != nil {
			return err
		}
		sourcesOut = dec.Sources()
		decoded = res.DecodedBlocks
		complete = res.Complete
		levelsNote = fmt.Sprintf("%d levels", res.DecodedLevels)
	}

	var buf []byte
	for _, p := range sourcesOut {
		if p == nil {
			break
		}
		buf = append(buf, p...)
	}
	if fileSize > 0 && int64(len(buf)) > fileSize {
		buf = buf[:fileSize]
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "collected %d blocks from %d daemons; decoded %d/%d source blocks (%s)\n",
		len(blocks), len(addrs), decoded, levels.Total(), levelsNote)
	fmt.Fprintf(out, "wrote %d bytes to %s", len(buf), outPath)
	if complete {
		fmt.Fprint(out, " (complete file)")
	} else if fileSize > 0 {
		fmt.Fprintf(out, " (partial recovery: %.1f%% of the file)", 100*float64(len(buf))/float64(fileSize))
	}
	fmt.Fprintln(out)
	return nil
}

// repairOpts collects the fleet/code/daemon flags shared by
// `prlcd repair` and `prlcd serve -repair`.
type repairOpts struct {
	addrsStr   string
	schemeStr  string
	sizesStr   string
	distStr    string
	total      int
	targetsStr string
	tolerance  int
	minWrites  int
	budget     int
	sample     int
	seed       int64
	timeout    time.Duration
	interval   time.Duration
	metrics    *metrics.Registry // set programmatically, not a flag
}

func (o *repairOpts) register(fs *flag.FlagSet, addrsFlag string, interval time.Duration) {
	fs.StringVar(&o.addrsStr, addrsFlag, "", "comma-separated daemon addresses of the fleet")
	fs.StringVar(&o.schemeStr, "scheme", "plc", "coding scheme used at put time")
	fs.StringVar(&o.sizesStr, "sizes", "", "per-level source block counts from put time")
	fs.StringVar(&o.distStr, "dist", "", "priority distribution from put time (default uniform)")
	fs.IntVar(&o.total, "total", 0, "coded blocks at full provisioning (M)")
	fs.StringVar(&o.targetsStr, "targets", "", "exact per-level distinct-block targets (overrides -dist/-total)")
	fs.IntVar(&o.tolerance, "f", 1, "replica losses the last level must survive")
	fs.IntVar(&o.minWrites, "min-writes", 1, "copies that must land per regenerated block")
	fs.IntVar(&o.budget, "budget", 0, "max blocks regenerated per round (0 = default)")
	fs.IntVar(&o.sample, "sample", 0, "survivors sampled per recombination (0 = default)")
	fs.Int64Var(&o.seed, "seed", 1, "random seed for recombination")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-attempt timeout")
	fs.DurationVar(&o.interval, "interval", interval, "pause between repair rounds")
}

// code parses the shared code-description flags: scheme, levels, and
// the provisioning targets (explicit, or a distribution over -total).
func (o *repairOpts) code(name string) (core.Scheme, *core.Levels, core.PriorityDistribution, []int, error) {
	scheme, err := core.ParseScheme(o.schemeStr)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	sizes, err := cliutil.ParseInts(o.sizesStr)
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("%s: -sizes: %w", name, err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	var dist core.PriorityDistribution
	var targets []int
	if o.targetsStr != "" {
		if targets, err = cliutil.ParseInts(o.targetsStr); err != nil {
			return 0, nil, nil, nil, fmt.Errorf("%s: -targets: %w", name, err)
		}
	} else {
		if o.total <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%s: -total (or -targets) is required", name)
		}
		if o.distStr == "" {
			dist = core.NewUniformDistribution(levels.Count())
		} else {
			vals, err := cliutil.ParseFloats(o.distStr)
			if err != nil {
				return 0, nil, nil, nil, fmt.Errorf("%s: -dist: %w", name, err)
			}
			dist = core.PriorityDistribution(vals)
		}
	}
	return scheme, levels, dist, targets, nil
}

// build opens the replicated client fleet and constructs the daemon.
func (o *repairOpts) build(name string) (*store.Replicated, *repair.Daemon, error) {
	addrs := cliutil.SplitAddrs(o.addrsStr)
	if len(addrs) == 0 || o.sizesStr == "" {
		return nil, nil, fmt.Errorf("%s: fleet addresses and -sizes are required", name)
	}
	scheme, levels, dist, targets, err := o.code(name)
	if err != nil {
		return nil, nil, err
	}
	cfg := repair.Config{
		Scheme:      scheme,
		Levels:      levels,
		Dist:        dist,
		TotalBlocks: o.total,
		Targets:     targets,
		Interval:    o.interval,
		BlockBudget: o.budget,
		SampleSize:  o.sample,
		Seed:        o.seed,
		Metrics:     o.metrics,
	}
	repl, err := openReplicated(addrs, levels.Count(), o.tolerance, o.minWrites, o.timeout, o.metrics)
	if err != nil {
		return nil, nil, err
	}
	d, err := repair.New(repl, cfg)
	if err != nil {
		repl.Close()
		return nil, nil, err
	}
	return repl, d, nil
}

// migrateOpts extends the repair flag set with the migration-specific
// knobs shared by `prlcd migrate` and `prlcd serve -migrate`.
type migrateOpts struct {
	repairOpts
	replicas int
	rate     int64
	workers  int
}

func (o *migrateOpts) register(fs *flag.FlagSet, addrsFlag string, interval time.Duration) {
	o.repairOpts.register(fs, addrsFlag, interval)
	o.registerMoverFlags(fs)
}

// registerMoverFlags adds only the mover-specific flags — `serve` has
// already registered the shared repairOpts set and reuses its values.
func (o *migrateOpts) registerMoverFlags(fs *flag.FlagSet) {
	fs.IntVar(&o.replicas, "replicas", 3, "ring successors each object is placed on")
	fs.Int64Var(&o.rate, "rate", 8<<20, "migration byte-rate cap in bytes/second (0 = unlimited)")
	fs.IntVar(&o.workers, "workers", 2, "objects migrated concurrently")
}

// build opens the placement fleet and constructs the mover, wired to
// the membership hook so ring changes kick immediate rounds.
func (o *migrateOpts) build(name string) (*store.Placed, *mover.Mover, error) {
	addrs := cliutil.SplitAddrs(o.addrsStr)
	if len(addrs) == 0 || o.sizesStr == "" {
		return nil, nil, fmt.Errorf("%s: fleet addresses and -sizes are required", name)
	}
	scheme, levels, dist, targets, err := o.code(name)
	if err != nil {
		return nil, nil, err
	}
	replicas := o.replicas
	if replicas > len(addrs) {
		replicas = len(addrs)
	}
	placed, err := openPlaced(addrs, levels.Count(), replicas, o.tolerance, o.minWrites, o.timeout, o.metrics)
	if err != nil {
		return nil, nil, err
	}
	m, err := mover.New(placed, mover.Config{
		Scheme:      scheme,
		Levels:      levels,
		Dist:        dist,
		TotalBlocks: o.total,
		Targets:     targets,
		Interval:    o.interval,
		Workers:     o.workers,
		RateLimit:   o.rate,
		SampleSize:  o.sample,
		Seed:        o.seed,
		Metrics:     o.metrics,
	})
	if err != nil {
		placed.Close()
		return nil, nil, err
	}
	placed.SetMembershipHook(func(store.MembershipChange) { m.Kick() })
	return placed, m, nil
}

// migrateCmd diffs data placement against ring ownership and re-homes
// displaced objects — one round by default, a background loop with
// -watch. Old copies are reclaimed only after the new owners verify
// against the provisioning targets.
func migrateCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd migrate", flag.ContinueOnError)
	var opts migrateOpts
	opts.register(fs, "addrs", 5*time.Second)
	watch := fs.Bool("watch", false, "keep migrating until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	placed, m, err := opts.build("migrate")
	if err != nil {
		return err
	}
	defer placed.Close()
	addrs := cliutil.SplitAddrs(opts.addrsStr)

	if *watch {
		m.Start()
		fmt.Fprintf(out, "migrate: watching %d daemons every %v (interrupt to stop)\n", len(addrs), opts.interval)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Stop(sctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "migrate: stopped after %d rounds\n", m.Rounds())
		printMigrateReport(out, m.LastReport())
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 8*opts.timeout)
	defer cancel()
	rep, err := m.RunOnce(ctx)
	if err != nil {
		return err
	}
	printMigrateReport(out, rep)
	return nil
}

func printMigrateReport(out io.Writer, rep mover.Report) {
	if rep.Plan == nil {
		fmt.Fprintln(out, "migrate: no round completed yet")
		return
	}
	fmt.Fprintf(out, "migrate: %d objects displaced, %d migrated, %d failed\n",
		len(rep.Plan.Objects), rep.Migrated, rep.Failed)
	for _, op := range rep.Plan.Objects {
		fmt.Fprintf(out, "  %s: %d stale holders (%s), critical level %d\n",
			op.Object, len(op.Stale), strings.Join(op.Stale, ", "), op.Critical)
	}
	fmt.Fprintf(out, "migrate: regenerated %d + copied %d blocks (%d copies), collected %d bytes, placed %d bytes\n",
		rep.Regenerated, rep.Copied, rep.Copies, rep.BytesCollected, rep.BytesPlaced)
	fmt.Fprintf(out, "migrate: %d reclaim deletes removed %d stale blocks\n",
		rep.DeletesIssued, rep.BlocksReclaimed)
	if rep.SkippedLevels > 0 {
		fmt.Fprintf(out, "migrate: %d level transfers skipped — no surviving blocks\n", rep.SkippedLevels)
	}
	if len(rep.Plan.Unreachable) > 0 {
		fmt.Fprintf(out, "migrate: unreachable during planning: %s\n", strings.Join(rep.Plan.Unreachable, ", "))
	}
}

// repairCmd audits a replica fleet against its provisioning targets and
// regenerates missing redundancy by decode-free recombination — one
// round by default, a background loop with -watch.
func repairCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd repair", flag.ContinueOnError)
	var opts repairOpts
	opts.register(fs, "addrs", 10*time.Second)
	watch := fs.Bool("watch", false, "keep repairing until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repl, d, err := opts.build("repair")
	if err != nil {
		return err
	}
	defer repl.Close()
	addrs := cliutil.SplitAddrs(opts.addrsStr)
	interval := opts.interval

	if *watch {
		d.Start()
		fmt.Fprintf(out, "repair: watching %d daemons every %v (interrupt to stop)\n", len(addrs), interval)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Stop(sctx); err != nil {
			return err
		}
		rep := d.LastReport()
		fmt.Fprintf(out, "repair: stopped after %d rounds\n", d.Rounds())
		if rep.Audit != nil {
			printRepairReport(out, rep)
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*opts.timeout)
	defer cancel()
	rep, err := d.RunOnce(ctx)
	if err != nil {
		return err
	}
	printRepairReport(out, rep)
	return nil
}

func printRepairReport(out io.Writer, rep repair.Report) {
	a := rep.Audit
	fmt.Fprintf(out, "audit: %d/%d replicas reachable, total deficit %d copies\n",
		a.Reachable, a.Reachable+a.Unreachable, a.TotalDeficit())
	for _, lr := range a.Levels {
		fmt.Fprintf(out, "  level %d: %d/%d copies (x%d replication), deficit %d\n",
			lr.Level, lr.HaveCopies, lr.WantCopies, lr.Replicas, lr.Deficit)
	}
	fmt.Fprintf(out, "repair: regenerated %d blocks (%d copies), collected %d bytes, placed %d bytes\n",
		rep.Regenerated, rep.Copies, rep.BytesCollected, rep.BytesPlaced)
	if len(rep.SkippedLevels) > 0 {
		fmt.Fprintf(out, "repair: skipped levels %v — no usable survivors\n", rep.SkippedLevels)
	}
	if rep.Truncated {
		fmt.Fprintln(out, "repair: block budget exhausted; run again to continue")
	}
}

// metricsCmd fetches a daemon's /metrics.json snapshot and renders it as
// a human-readable table: counters, gauges, then histograms with their
// count/mean/p50/p95/p99/max columns.
func metricsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd metrics", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: prlcd metrics <observability-addr> (the serve -metrics address)")
	}
	addr := fs.Arg(0)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics.json", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("metrics: fetch %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s returned %s", addr, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics: decode snapshot from %s: %w", addr, err)
	}
	printSnapshot(out, addr, snap)
	return nil
}

func printSnapshot(out io.Writer, addr string, snap metrics.Snapshot) {
	if snap.Empty() {
		fmt.Fprintf(out, "%s: no metrics recorded yet\n", addr)
		return
	}
	nameWidth := 0
	for _, c := range snap.Counters {
		nameWidth = max(nameWidth, len(c.Name))
	}
	for _, g := range snap.Gauges {
		nameWidth = max(nameWidth, len(g.Name))
	}
	for _, h := range snap.Histograms {
		nameWidth = max(nameWidth, len(h.Name))
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintf(out, "counters:\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(out, "  %-*s %d\n", nameWidth, c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(out, "gauges:\n")
		for _, g := range snap.Gauges {
			fmt.Fprintf(out, "  %-*s %d\n", nameWidth, g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(out, "histograms:\n")
		fmt.Fprintf(out, "  %-*s %5s %10s %10s %10s %10s %10s\n",
			nameWidth, "", "count", "mean", "p50", "p95", "p99", "max")
		for _, h := range snap.Histograms {
			fmt.Fprintf(out, "  %-*s %5d %10.0f %10d %10d %10d %10d\n",
				nameWidth, h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
}

func intsCSV(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s
}
