// Command prlcd runs the networked priority block store: a daemon
// (`prlcd serve`) plus client subcommands (`prlcd store ...`) that ship
// a file into a replicated daemon fleet with priority-differentiated
// replication and pull it back out, tolerating dead replicas, and a
// maintenance subcommand (`prlcd repair`) that regenerates redundancy
// lost to churn by decode-free recombination of surviving blocks.
//
// Usage:
//
//	prlcd serve -addr 127.0.0.1:7071
//	prlcd store ping -addr 127.0.0.1:7071
//	prlcd store put -addrs 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	      -in report.pdf -blocks 100 -levels 0.1,0.2,0.7 -scheme plc
//	prlcd store get -addrs ... -out recovered.pdf -scheme plc -sizes ... -size ...
//	prlcd store stat -addr 127.0.0.1:7071
//	prlcd store shutdown -addr 127.0.0.1:7071
//	prlcd repair -addrs ... -scheme plc -sizes ... -total 160        # one round
//	prlcd repair -addrs ... -sizes ... -total 160 -watch             # loop
//	prlcd serve -addr ... -repair -peers ... -sizes ... -total 160   # serve + repair
//	prlcd serve -addr ... -metrics 127.0.0.1:7091                    # + observability
//	prlcd serve -addr ... -data-dir /var/lib/prlcd -retention 24h    # + persistence
//	prlcd metrics 127.0.0.1:7091                                     # metrics table
//
// `store put` prints the exact `store get` invocation that recovers the
// file, so the decode side needs no side-channel metadata.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/metrics"
	"repro/internal/repair"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prlcd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd serve|store [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:], out)
	case "store":
		return storeCmd(args[1:], out)
	case "repair":
		return repairCmd(args[1:], out)
	case "metrics":
		return metricsCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, store, repair or metrics)", args[0])
	}
}

func serve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd serve", flag.ContinueOnError)
	var (
		addr         string
		maxConns     int
		maxBlocks    int
		maxFrame     int
		metricsAddr  string
		withRepair   bool
		dataDir      string
		fsyncStr     string
		retention    time.Duration
		segmentBytes int64
		rOpts        repairOpts
	)
	fs.StringVar(&addr, "addr", "127.0.0.1:7071", "listen address")
	fs.IntVar(&maxConns, "max-conns", 64, "maximum concurrent connections")
	fs.IntVar(&maxBlocks, "max-blocks", 0, "maximum stored blocks (0 = unlimited)")
	fs.IntVar(&maxFrame, "max-frame", store.DefaultMaxFrame, "maximum frame size in bytes")
	fs.StringVar(&metricsAddr, "metrics", "", "observability listen address (Prometheus /metrics, /metrics.json, /debug/pprof)")
	fs.BoolVar(&withRepair, "repair", false, "run a repair daemon client loop over -peers alongside serving")
	fs.StringVar(&dataDir, "data-dir", "", "persist blocks to segment files under this directory (empty = in-memory)")
	fs.StringVar(&fsyncStr, "fsync", "batch", "disk durability: batch (group commit), always (per put) or none")
	fs.DurationVar(&retention, "retention", 0, "delete disk segments older than this rolling window (0 = keep forever)")
	fs.Int64Var(&segmentBytes, "segment-bytes", 0, "disk segment rotation threshold in bytes (0 = 64 MiB default)")
	rOpts.register(fs, "peers", 10*time.Second)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *metrics.Registry
	if metricsAddr != "" {
		reg = metrics.NewRegistry()
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("serve: metrics listen %s: %w", metricsAddr, err)
		}
		defer mln.Close()
		msrv := &http.Server{Handler: metrics.Handler(reg)}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "prlcd: metrics on http://%s/metrics\n", mln.Addr())
	}
	rOpts.metrics = reg
	var engine store.BlockStore
	if dataDir != "" {
		fsyncMode, err := diskstore.ParseFsyncMode(fsyncStr)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		t0 := time.Now()
		eng, err := diskstore.Open(dataDir, diskstore.Options{
			SegmentBytes:   segmentBytes,
			Fsync:          fsyncMode,
			Retention:      retention,
			MaxBlocks:      maxBlocks,
			MaxRecordBytes: maxFrame,
			Metrics:        reg,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		// The daemon owns the engine's lifecycle: the server drains its
		// connections on Shutdown, then this close flushes the tail.
		defer eng.Close()
		fmt.Fprintf(out, "prlcd: disk store %s: recovered %d blocks in %d segments (%v, fsync=%s)\n",
			dataDir, eng.Len(), eng.Segments(), time.Since(t0).Round(time.Millisecond), fsyncMode)
		engine = eng
	}
	srv, err := store.NewServer(store.ServerConfig{
		Addr:      addr,
		MaxConns:  maxConns,
		MaxBlocks: maxBlocks,
		MaxFrame:  maxFrame,
		Blocks:    engine,
		Metrics:   reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "prlcd: serving on %s\n", srv.Addr())
	if withRepair {
		// The serve-side client loop: this daemon audits and repairs the
		// whole fleet (-peers should list every replica, itself included)
		// in the background while serving its own blocks. Per-daemon
		// jitter in the loop desynchronizes a fleet that all do this.
		repl, d, err := rOpts.build("serve -repair")
		if err != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
			return err
		}
		defer repl.Close()
		d.Start()
		fmt.Fprintf(out, "prlcd: repairing %d peers every %v\n",
			len(cliutil.SplitAddrs(rOpts.addrsStr)), rOpts.interval)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := d.Stop(sctx); err != nil {
				fmt.Fprintf(out, "prlcd: repair daemon stop: %v\n", err)
				return
			}
			fmt.Fprintf(out, "prlcd: repair daemon stopped after %d rounds\n", d.Rounds())
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		fmt.Fprintln(out, "prlcd: drained")
		return err
	case <-srv.Done():
		// A client sent a shutdown frame; the server already drained.
		fmt.Fprintln(out, "prlcd: shut down by client")
		return nil
	}
}

func storeCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcd store ping|stat|put|get|shutdown [flags]")
	}
	switch args[0] {
	case "ping":
		return pingCmd(args[1:], out)
	case "stat":
		return statCmd(args[1:], out)
	case "put":
		return putCmd(args[1:], out)
	case "get":
		return getCmd(args[1:], out)
	case "shutdown":
		return shutdownCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown store subcommand %q", args[0])
	}
}

func newClient(addr string, timeout time.Duration) (*store.Client, error) {
	return store.NewClient(store.ClientConfig{Addr: addr, OpTimeout: timeout})
}

func singleAddrCmd(name string, args []string, f func(ctx context.Context, cl *store.Client) error) error {
	fs := flag.NewFlagSet("prlcd store "+name, flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s: -addr is required", name)
	}
	cl, err := newClient(*addr, *timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	return f(ctx, cl)
}

func pingCmd(args []string, out io.Writer) error {
	return singleAddrCmd("ping", args, func(ctx context.Context, cl *store.Client) error {
		start := time.Now()
		if err := cl.Ping(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: alive (%v)\n", cl.Addr(), time.Since(start).Round(time.Microsecond))
		return nil
	})
}

func statCmd(args []string, out io.Writer) error {
	return singleAddrCmd("stat", args, func(ctx context.Context, cl *store.Client) error {
		st, err := cl.Stat(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d blocks, %d bytes\n", cl.Addr(), st.Blocks, st.Bytes)
		for _, lc := range st.PerLevel {
			fmt.Fprintf(out, "  level %d: %d blocks, %d bytes\n", lc.Level, lc.Count, lc.Bytes)
		}
		return nil
	})
}

func shutdownCmd(args []string, out io.Writer) error {
	return singleAddrCmd("shutdown", args, func(ctx context.Context, cl *store.Client) error {
		if err := cl.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: draining\n", cl.Addr())
		return nil
	})
}

// openReplicated builds per-replica clients and the replicated store,
// all attached to reg (which may be nil for uninstrumented commands).
func openReplicated(addrs []string, levels, tolerance, minWrites int, timeout time.Duration, reg *metrics.Registry) (*store.Replicated, error) {
	clients := make([]*store.Client, 0, len(addrs))
	for _, a := range addrs {
		cl, err := store.NewClient(store.ClientConfig{Addr: a, OpTimeout: timeout, Metrics: reg})
		if err != nil {
			return nil, err
		}
		clients = append(clients, cl)
	}
	return store.NewReplicated(clients, levels, store.ReplicatedConfig{
		Tolerance: tolerance,
		MinWrites: minWrites,
		Metrics:   reg,
	})
}

func putCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store put", flag.ContinueOnError)
	var (
		addrsStr  string
		in        string
		blocks    int
		coded     int
		levelsStr string
		distStr   string
		schemeStr string
		codingStr string
		seed      int64
		tolerance int
		minWrites int
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&in, "in", "", "input file")
	fs.IntVar(&blocks, "blocks", 100, "number of source blocks")
	fs.IntVar(&coded, "coded", 0, "number of coded blocks (0 = 1.6x blocks)")
	fs.StringVar(&levelsStr, "levels", "0.1,0.2,0.7", "level fractions, most important first")
	fs.StringVar(&distStr, "dist", "", "priority distribution (default uniform)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.StringVar(&codingStr, "coding", "auto", "coefficient generator: auto, dense, sparse, band or chunked (auto picks by generation size)")
	fs.Int64Var(&seed, "seed", 1, "random seed")
	fs.IntVar(&tolerance, "f", 1, "replica losses the last level must survive")
	fs.IntVar(&minWrites, "min-writes", 1, "copies that must land per block")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || in == "" {
		return fmt.Errorf("put: -addrs and -in are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("put: %s is empty", in)
	}
	if blocks <= 0 {
		return fmt.Errorf("put: -blocks %d, want > 0", blocks)
	}
	if blocks > len(data) {
		blocks = len(data)
	}
	if coded == 0 {
		coded = blocks + (blocks*3+4)/5
	}
	fracs, err := cliutil.ParseFloats(levelsStr)
	if err != nil {
		return fmt.Errorf("put: -levels: %w", err)
	}
	sizes, err := cliutil.FractionsToSizes(fracs, blocks)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}
	var dist core.PriorityDistribution
	if distStr == "" {
		dist = core.NewUniformDistribution(levels.Count())
	} else {
		vals, err := cliutil.ParseFloats(distStr)
		if err != nil {
			return fmt.Errorf("put: -dist: %w", err)
		}
		dist = core.PriorityDistribution(vals)
	}
	if err := dist.Validate(levels); err != nil {
		return err
	}
	coding, err := core.ParseCoding(codingStr)
	if err != nil {
		return err
	}
	if coding == core.CodingAuto {
		coding = core.AutoCoding(blocks)
	}

	sources := cliutil.SplitPayloads(data, blocks)
	var (
		cb         []*core.CodedBlock
		replLevels = levels.Count()
		layout     *core.ChunkLayout
	)
	if coding == core.CodingChunked {
		// Chunked blocks carry their chunk index in the Level field. Chunks
		// cover the file front to back, so the store's level-decaying
		// replication naturally keeps more copies of the file prefix —
		// replLevels becomes the chunk count.
		layout, err = core.DefaultChunkLayout(blocks)
		if err != nil {
			return err
		}
		replLevels = layout.Count
		cenc, err := core.NewChunkedEncoder(layout, sources)
		if err != nil {
			return err
		}
		cb, err = cenc.EncodeBatch(rand.New(rand.NewSource(seed)), coded)
		if err != nil {
			return err
		}
	} else {
		var opts []core.EncoderOption
		switch coding {
		case core.CodingSparse:
			opts = append(opts, core.WithSparsity(core.LogSparsity(blocks)))
		case core.CodingBand:
			opts = append(opts, core.WithBand(core.DefaultBandWidth))
		}
		enc, err := core.NewEncoder(scheme, levels, sources, opts...)
		if err != nil {
			return err
		}
		cb, err = enc.EncodeBatch(rand.New(rand.NewSource(seed)), dist, coded)
		if err != nil {
			return err
		}
	}

	repl, err := openReplicated(addrs, replLevels, tolerance, minWrites, timeout, nil)
	if err != nil {
		return err
	}
	defer repl.Close()
	ctx := context.Background()
	if _, err := repl.PutAll(ctx, cb); err != nil {
		if errors.Is(err, store.ErrStoreFull) {
			return fmt.Errorf("put: a daemon is at capacity (raise its -max-blocks, widen its -retention window, or add replicas): %w", err)
		}
		return err
	}
	copies := 0
	for _, b := range cb {
		copies += repl.ReplicasFor(b.Level)
	}
	fmt.Fprintf(out, "stored %d coded blocks (%d replica copies) across %d daemons\n",
		len(cb), copies, len(addrs))
	if coding == core.CodingChunked {
		fmt.Fprintf(out, "recover with:\n  prlcd store get -addrs %s -out FILE -sizes %s -size %d -chunks %d,%d\n",
			addrsStr, intsCSV(sizes), len(data), layout.Size, layout.Overlap)
	} else {
		fmt.Fprintf(out, "recover with:\n  prlcd store get -addrs %s -out FILE -scheme %s -sizes %s -size %d\n",
			addrsStr, schemeStr, intsCSV(sizes), len(data))
	}
	return nil
}

func getCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd store get", flag.ContinueOnError)
	var (
		addrsStr  string
		outPath   string
		schemeStr string
		sizesStr  string
		chunksStr string
		fileSize  int64
		seed      int64
		timeout   time.Duration
	)
	fs.StringVar(&addrsStr, "addrs", "", "comma-separated daemon addresses")
	fs.StringVar(&outPath, "out", "", "output file for the recovered prefix")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme used at put time")
	fs.StringVar(&sizesStr, "sizes", "", "per-level block counts from put time")
	fs.StringVar(&chunksStr, "chunks", "", "size,overlap of the chunk layout when put used -coding chunked")
	fs.Int64Var(&fileSize, "size", 0, "original file size (0 = keep padding)")
	fs.Int64Var(&seed, "seed", 1, "random seed for the processing order")
	fs.DurationVar(&timeout, "timeout", 5*time.Second, "per-attempt timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := cliutil.SplitAddrs(addrsStr)
	if len(addrs) == 0 || outPath == "" || sizesStr == "" {
		return fmt.Errorf("get: -addrs, -out and -sizes are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	sizes, err := cliutil.ParseInts(sizesStr)
	if err != nil {
		return fmt.Errorf("get: -sizes: %w", err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}

	repl, err := openReplicated(addrs, levels.Count(), 1, 1, timeout, nil)
	if err != nil {
		return err
	}
	defer repl.Close()
	ctx := context.Background()
	blocks, err := repl.Collect(ctx, -1)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		return fmt.Errorf("get: daemons hold no blocks")
	}
	var (
		sourcesOut [][]byte
		decoded    int
		complete   bool
		levelsNote string
	)
	if chunksStr != "" {
		chunkDims, err := cliutil.ParseInts(chunksStr)
		if err != nil || len(chunkDims) != 2 {
			return fmt.Errorf("get: -chunks wants size,overlap, got %q", chunksStr)
		}
		layout, err := core.NewChunkLayout(levels.Total(), chunkDims[0], chunkDims[1])
		if err != nil {
			return err
		}
		cdec, err := core.NewChunkedDecoder(layout, len(blocks[0].Payload))
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if _, err := cdec.Add(b); err != nil {
				fmt.Fprintf(out, "get: skipping block: %v\n", err)
			}
			if cdec.Complete() {
				break
			}
		}
		sourcesOut = cdec.Sources()
		decoded = cdec.DecodedCount()
		complete = cdec.Complete()
		levelsNote = "chunked"
	} else {
		res, dec, err := collect.Run(rand.New(rand.NewSource(seed)), scheme, levels, blocks,
			collect.Options{Context: ctx, PayloadLen: len(blocks[0].Payload)})
		if err != nil {
			return err
		}
		sourcesOut = dec.Sources()
		decoded = res.DecodedBlocks
		complete = res.Complete
		levelsNote = fmt.Sprintf("%d levels", res.DecodedLevels)
	}

	var buf []byte
	for _, p := range sourcesOut {
		if p == nil {
			break
		}
		buf = append(buf, p...)
	}
	if fileSize > 0 && int64(len(buf)) > fileSize {
		buf = buf[:fileSize]
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "collected %d blocks from %d daemons; decoded %d/%d source blocks (%s)\n",
		len(blocks), len(addrs), decoded, levels.Total(), levelsNote)
	fmt.Fprintf(out, "wrote %d bytes to %s", len(buf), outPath)
	if complete {
		fmt.Fprint(out, " (complete file)")
	} else if fileSize > 0 {
		fmt.Fprintf(out, " (partial recovery: %.1f%% of the file)", 100*float64(len(buf))/float64(fileSize))
	}
	fmt.Fprintln(out)
	return nil
}

// repairOpts collects the fleet/code/daemon flags shared by
// `prlcd repair` and `prlcd serve -repair`.
type repairOpts struct {
	addrsStr   string
	schemeStr  string
	sizesStr   string
	distStr    string
	total      int
	targetsStr string
	tolerance  int
	minWrites  int
	budget     int
	sample     int
	seed       int64
	timeout    time.Duration
	interval   time.Duration
	metrics    *metrics.Registry // set programmatically, not a flag
}

func (o *repairOpts) register(fs *flag.FlagSet, addrsFlag string, interval time.Duration) {
	fs.StringVar(&o.addrsStr, addrsFlag, "", "comma-separated daemon addresses of the fleet")
	fs.StringVar(&o.schemeStr, "scheme", "plc", "coding scheme used at put time")
	fs.StringVar(&o.sizesStr, "sizes", "", "per-level source block counts from put time")
	fs.StringVar(&o.distStr, "dist", "", "priority distribution from put time (default uniform)")
	fs.IntVar(&o.total, "total", 0, "coded blocks at full provisioning (M)")
	fs.StringVar(&o.targetsStr, "targets", "", "exact per-level distinct-block targets (overrides -dist/-total)")
	fs.IntVar(&o.tolerance, "f", 1, "replica losses the last level must survive")
	fs.IntVar(&o.minWrites, "min-writes", 1, "copies that must land per regenerated block")
	fs.IntVar(&o.budget, "budget", 0, "max blocks regenerated per round (0 = default)")
	fs.IntVar(&o.sample, "sample", 0, "survivors sampled per recombination (0 = default)")
	fs.Int64Var(&o.seed, "seed", 1, "random seed for recombination")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-attempt timeout")
	fs.DurationVar(&o.interval, "interval", interval, "pause between repair rounds")
}

// build opens the replicated client fleet and constructs the daemon.
func (o *repairOpts) build(name string) (*store.Replicated, *repair.Daemon, error) {
	addrs := cliutil.SplitAddrs(o.addrsStr)
	if len(addrs) == 0 || o.sizesStr == "" {
		return nil, nil, fmt.Errorf("%s: fleet addresses and -sizes are required", name)
	}
	scheme, err := core.ParseScheme(o.schemeStr)
	if err != nil {
		return nil, nil, err
	}
	sizes, err := cliutil.ParseInts(o.sizesStr)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: -sizes: %w", name, err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return nil, nil, err
	}
	cfg := repair.Config{
		Scheme:      scheme,
		Levels:      levels,
		TotalBlocks: o.total,
		Interval:    o.interval,
		BlockBudget: o.budget,
		SampleSize:  o.sample,
		Seed:        o.seed,
		Metrics:     o.metrics,
	}
	if o.targetsStr != "" {
		if cfg.Targets, err = cliutil.ParseInts(o.targetsStr); err != nil {
			return nil, nil, fmt.Errorf("%s: -targets: %w", name, err)
		}
	} else {
		if o.total <= 0 {
			return nil, nil, fmt.Errorf("%s: -total (or -targets) is required", name)
		}
		if o.distStr == "" {
			cfg.Dist = core.NewUniformDistribution(levels.Count())
		} else {
			vals, err := cliutil.ParseFloats(o.distStr)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: -dist: %w", name, err)
			}
			cfg.Dist = core.PriorityDistribution(vals)
		}
	}
	repl, err := openReplicated(addrs, levels.Count(), o.tolerance, o.minWrites, o.timeout, o.metrics)
	if err != nil {
		return nil, nil, err
	}
	d, err := repair.New(repl, cfg)
	if err != nil {
		repl.Close()
		return nil, nil, err
	}
	return repl, d, nil
}

// repairCmd audits a replica fleet against its provisioning targets and
// regenerates missing redundancy by decode-free recombination — one
// round by default, a background loop with -watch.
func repairCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd repair", flag.ContinueOnError)
	var opts repairOpts
	opts.register(fs, "addrs", 10*time.Second)
	watch := fs.Bool("watch", false, "keep repairing until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repl, d, err := opts.build("repair")
	if err != nil {
		return err
	}
	defer repl.Close()
	addrs := cliutil.SplitAddrs(opts.addrsStr)
	interval := opts.interval

	if *watch {
		d.Start()
		fmt.Fprintf(out, "repair: watching %d daemons every %v (interrupt to stop)\n", len(addrs), interval)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Stop(sctx); err != nil {
			return err
		}
		rep := d.LastReport()
		fmt.Fprintf(out, "repair: stopped after %d rounds\n", d.Rounds())
		if rep.Audit != nil {
			printRepairReport(out, rep)
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*opts.timeout)
	defer cancel()
	rep, err := d.RunOnce(ctx)
	if err != nil {
		return err
	}
	printRepairReport(out, rep)
	return nil
}

func printRepairReport(out io.Writer, rep repair.Report) {
	a := rep.Audit
	fmt.Fprintf(out, "audit: %d/%d replicas reachable, total deficit %d copies\n",
		a.Reachable, a.Reachable+a.Unreachable, a.TotalDeficit())
	for _, lr := range a.Levels {
		fmt.Fprintf(out, "  level %d: %d/%d copies (x%d replication), deficit %d\n",
			lr.Level, lr.HaveCopies, lr.WantCopies, lr.Replicas, lr.Deficit)
	}
	fmt.Fprintf(out, "repair: regenerated %d blocks (%d copies), collected %d bytes, placed %d bytes\n",
		rep.Regenerated, rep.Copies, rep.BytesCollected, rep.BytesPlaced)
	if len(rep.SkippedLevels) > 0 {
		fmt.Fprintf(out, "repair: skipped levels %v — no usable survivors\n", rep.SkippedLevels)
	}
	if rep.Truncated {
		fmt.Fprintln(out, "repair: block budget exhausted; run again to continue")
	}
}

// metricsCmd fetches a daemon's /metrics.json snapshot and renders it as
// a human-readable table: counters, gauges, then histograms with their
// count/mean/p50/p95/p99/max columns.
func metricsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prlcd metrics", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: prlcd metrics <observability-addr> (the serve -metrics address)")
	}
	addr := fs.Arg(0)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics.json", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("metrics: fetch %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s returned %s", addr, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics: decode snapshot from %s: %w", addr, err)
	}
	printSnapshot(out, addr, snap)
	return nil
}

func printSnapshot(out io.Writer, addr string, snap metrics.Snapshot) {
	if snap.Empty() {
		fmt.Fprintf(out, "%s: no metrics recorded yet\n", addr)
		return
	}
	nameWidth := 0
	for _, c := range snap.Counters {
		nameWidth = max(nameWidth, len(c.Name))
	}
	for _, g := range snap.Gauges {
		nameWidth = max(nameWidth, len(g.Name))
	}
	for _, h := range snap.Histograms {
		nameWidth = max(nameWidth, len(h.Name))
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintf(out, "counters:\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(out, "  %-*s %d\n", nameWidth, c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(out, "gauges:\n")
		for _, g := range snap.Gauges {
			fmt.Fprintf(out, "  %-*s %d\n", nameWidth, g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(out, "histograms:\n")
		fmt.Fprintf(out, "  %-*s %5s %10s %10s %10s %10s %10s\n",
			nameWidth, "", "count", "mean", "p50", "p95", "p99", "max")
		for _, h := range snap.Histograms {
			fmt.Fprintf(out, "  %-*s %5d %10.0f %10d %10d %10d %10d\n",
				nameWidth, h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
}

func intsCSV(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s
}
