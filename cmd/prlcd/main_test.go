package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

func startDaemons(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := store.NewServer(store.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		addrs[i] = srv.Addr()
	}
	return addrs
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"store"},
		{"store", "bogus"},
		{"store", "ping"},             // missing -addr
		{"store", "put", "-in", "x"},  // missing -addrs
		{"store", "get", "-out", "x"}, // missing -addrs/-sizes
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted bad usage", args)
		}
	}
}

func TestPingAndStat(t *testing.T) {
	addrs := startDaemons(t, 1)
	var out bytes.Buffer
	if err := run([]string{"store", "ping", "-addr", addrs[0]}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alive") {
		t.Fatalf("ping output: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"store", "stat", "-addr", addrs[0]}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 blocks") {
		t.Fatalf("stat output: %q", out.String())
	}
}

// TestPutGetRoundTripWithDeadReplica ships a file into 3 daemons, kills
// one, and recovers the complete file from the survivors via the printed
// get command's parameters.
func TestPutGetRoundTripWithDeadReplica(t *testing.T) {
	addrs := startDaemons(t, 3)
	addrList := strings.Join(addrs, ",")

	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	data := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{
		"store", "put", "-addrs", addrList, "-in", in,
		"-blocks", "20", "-coded", "40", "-levels", "0.3,0.7", "-scheme", "plc",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-sizes 6,14") {
		t.Fatalf("put did not print the recovery command: %q", out.String())
	}

	// Kill daemon 0; the critical data is replicated on the survivors.
	var shut bytes.Buffer
	if err := run([]string{"store", "shutdown", "-addr", addrs[0]}, &shut); err != nil {
		t.Fatal(err)
	}

	rec := filepath.Join(dir, "rec.bin")
	out.Reset()
	err = run([]string{
		"store", "get", "-addrs", addrList, "-out", rec,
		"-scheme", "plc", "-sizes", "6,14", "-size", "4096",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("recovered %d bytes differ from input (output: %q)", len(got), out.String())
	}
	if !strings.Contains(out.String(), "complete file") {
		t.Fatalf("get output: %q", out.String())
	}
}

// syncBuffer is a bytes.Buffer safe to share between the serve
// goroutine and the test polling its output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serveDisk starts `prlcd serve -data-dir` in a goroutine and returns
// the bound address, the output buffer, and a channel with serve's exit
// error (it returns once a client sends shutdown).
func serveDisk(t *testing.T, dataDir string) (string, *syncBuffer, <-chan error) {
	t.Helper()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", "127.0.0.1:0", "-data-dir", dataDir}, out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "serving on ") {
			addr := strings.TrimSpace(strings.SplitN(s, "serving on ", 2)[1])
			addr = strings.SplitN(addr, "\n", 2)[0]
			return addr, out, done
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve did not come up: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeDataDirSurvivesRestart is the quickstart from the README: a
// daemon with -data-dir is filled, shut down, restarted on the same
// directory, and the file is recovered from the recovered blocks alone.
func TestServeDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	in := filepath.Join(dir, "in.bin")
	data := make([]byte, 4096)
	rand.New(rand.NewSource(9)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	addr, _, done := serveDisk(t, dataDir)
	var out bytes.Buffer
	err := run([]string{
		"store", "put", "-addrs", addr, "-in", in,
		"-blocks", "20", "-coded", "40", "-levels", "0.3,0.7", "-scheme", "plc", "-f", "0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "shutdown", "-addr", addr}, &out); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve exit: %v", err)
	}

	// Restart on the same directory: the log replays into the index.
	addr2, sout, done2 := serveDisk(t, dataDir)
	if s := sout.String(); !strings.Contains(s, "recovered 40 blocks") {
		t.Fatalf("restart banner missing recovery summary: %q", s)
	}
	rec := filepath.Join(dir, "rec.bin")
	out.Reset()
	err = run([]string{
		"store", "get", "-addrs", addr2, "-out", rec,
		"-scheme", "plc", "-sizes", "6,14", "-size", "4096",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("recovered %d bytes differ from input after restart (output: %q)", len(got), out.String())
	}
	if err := run([]string{"store", "shutdown", "-addr", addr2}, &out); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("serve exit: %v", err)
	}
}

// TestKeyedPutGetAndRing is the multi-object quickstart: two objects
// shipped into one 3-daemon fleet through the placement ring, recovered
// independently via -object, with `prlcd ring` and per-object stat
// output agreeing on where the blocks went.
func TestKeyedPutGetAndRing(t *testing.T) {
	addrs := startDaemons(t, 3)
	addrList := strings.Join(addrs, ",")

	dir := t.TempDir()
	files := map[string][]byte{}
	for i, name := range []string{"alpha", "beta"} {
		data := make([]byte, 2048)
		rand.New(rand.NewSource(int64(20 + i))).Read(data)
		files[name] = data
		in := filepath.Join(dir, name+".bin")
		if err := os.WriteFile(in, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run([]string{
			"store", "put", "-addrs", addrList, "-in", in, "-object", name,
			"-blocks", "20", "-coded", "40", "-levels", "0.3,0.7", "-scheme", "plc",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "-object "+name) {
			t.Fatalf("keyed put did not print a keyed recovery command: %q", out.String())
		}
	}

	for name, data := range files {
		rec := filepath.Join(dir, name+".rec")
		var out bytes.Buffer
		err := run([]string{
			"store", "get", "-addrs", addrList, "-out", rec, "-object", name,
			"-scheme", "plc", "-sizes", "6,14", "-size", "2048",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("object %s: recovered bytes differ (output: %q)", name, out.String())
		}
	}

	// The ring view names every node alive and resolves alpha's replicas.
	var out bytes.Buffer
	if err := run([]string{"ring", "-addrs", addrList, "-object", "alpha"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ring: 3 nodes (3 alive), replication 3") {
		t.Fatalf("ring header: %q", s)
	}
	for _, a := range addrs {
		if !strings.Contains(s, a+"  alive  owns (") {
			t.Fatalf("ring missing ownership line for %s: %q", a, s)
		}
	}
	if !strings.Contains(s, "replicas "+addrs[0]) && !strings.Contains(s, "replicas "+addrs[1]) &&
		!strings.Contains(s, "replicas "+addrs[2]) {
		t.Fatalf("ring did not resolve the object's replica set: %q", s)
	}

	// Stat shows both namespaces, and -object narrows to one.
	out.Reset()
	if err := run([]string{"store", "stat", "-addr", addrs[0]}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	if !strings.Contains(s, "object obj-") {
		t.Fatalf("stat missing per-object sections: %q", s)
	}
	out.Reset()
	if err := run([]string{"store", "stat", "-addr", addrs[0], "-object", "alpha"}, &out); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(out.String(), "object obj-"); c != 1 {
		t.Fatalf("stat -object printed %d sections, want 1: %q", c, out.String())
	}
}

// TestMigrateCLI grows a fleet under keyed data: objects are stored
// while only two daemons exist, two more join the ring, and `prlcd
// migrate` re-homes whatever the wider ring placed elsewhere. Old
// holders are wiped, a follow-up round finds nothing displaced, and
// every file still recovers bit-exactly through the full fleet.
// growNames returns n object names of which at least one changes
// owners when the ring grows from the first narrow daemons to all of
// them. Placement is pure ring math over the fleet's random ports, so
// two scratch rings predict it without storing anything.
func growNames(t *testing.T, addrs []string, narrow, n int) []string {
	t.Helper()
	ring := func(addrs []string) *store.Placed {
		clients := make([]*store.Client, len(addrs))
		for i, addr := range addrs {
			cl, err := store.NewClient(store.ClientConfig{Addr: addr})
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = cl
		}
		p, err := store.NewPlaced(clients, 2, store.PlacedConfig{Replication: 2, Tolerance: 1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	before, after := ring(addrs[:narrow]), ring(addrs)
	defer before.Close()
	defer after.Close()

	var movers, stayers []string
	for i := 0; len(movers)+len(stayers) < 4*n && len(movers) < n; i++ {
		name := "grow-" + string(rune('a'+i%26)) + strings.Repeat("z", i/26)
		obj := core.NamedObject(name)
		pre, err := before.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		post, err := after.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		postSet := map[string]bool{}
		for _, a := range post {
			postSet[a] = true
		}
		moves := false
		for _, a := range pre {
			if !postSet[a] {
				moves = true
				break
			}
		}
		if moves {
			movers = append(movers, name)
		} else {
			stayers = append(stayers, name)
		}
	}
	if len(movers) == 0 {
		t.Fatal("no candidate name changes owners across the grown ring")
	}
	names := append(movers, stayers...)
	return names[:n]
}

func TestMigrateCLI(t *testing.T) {
	addrs := startDaemons(t, 4)
	oldList := strings.Join(addrs[:2], ",")
	fullList := strings.Join(addrs, ",")

	dir := t.TempDir()
	files := map[string][]byte{}
	for i, name := range growNames(t, addrs, 2, 5) {
		data := make([]byte, 2048)
		rand.New(rand.NewSource(int64(40 + i))).Read(data)
		files[name] = data
		in := filepath.Join(dir, name+".bin")
		if err := os.WriteFile(in, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run([]string{
			"store", "put", "-addrs", oldList, "-in", in, "-object", name,
			"-blocks", "20", "-coded", "40", "-levels", "0.3,0.7", "-scheme", "plc",
			"-replicas", "2",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
	}

	var out bytes.Buffer
	err := run([]string{
		"migrate", "-addrs", fullList, "-replicas", "2",
		"-scheme", "plc", "-sizes", "6,14", "-total", "40",
	}, &out)
	if err != nil {
		t.Fatalf("migrate: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "objects displaced") || strings.Contains(s, "failed\n") && !strings.Contains(s, "0 failed") {
		t.Fatalf("migrate report: %q", s)
	}
	// At least one name was picked to change owners, so a report of
	// zero displacement means the ring diff is broken.
	if strings.Contains(s, "0 objects displaced") {
		t.Fatalf("no object displaced across the grown ring: %q", s)
	}

	// A second round finds placement and data in agreement.
	out.Reset()
	err = run([]string{
		"migrate", "-addrs", fullList, "-replicas", "2",
		"-scheme", "plc", "-sizes", "6,14", "-total", "40",
	}, &out)
	if err != nil {
		t.Fatalf("idempotent migrate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 objects displaced") {
		t.Fatalf("second migrate round still found work: %q", out.String())
	}

	// Every file recovers bit-exactly through the full fleet.
	for name, data := range files {
		rec := filepath.Join(dir, name+".rec")
		out.Reset()
		err := run([]string{
			"store", "get", "-addrs", fullList, "-out", rec, "-object", name,
			"-scheme", "plc", "-sizes", "6,14", "-size", "2048", "-replicas", "2",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("object %s: recovered bytes differ after migration", name)
		}
	}
}

// TestStoreSegmentsCLI drives `prlcd store segments` against a
// disk-backed daemon (table with records and an active segment) and a
// memory daemon (a clear "no disk engine" rejection).
func TestStoreSegmentsCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	data := make([]byte, 2048)
	rand.New(rand.NewSource(11)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	addr, _, done := serveDisk(t, filepath.Join(dir, "data"))
	var out bytes.Buffer
	err := run([]string{
		"store", "put", "-addrs", addr, "-in", in,
		"-blocks", "10", "-coded", "20", "-levels", "0.3,0.7", "-scheme", "plc", "-f", "0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"store", "segments", "-addr", addr}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "20 records") || !strings.Contains(s, "active") {
		t.Fatalf("segments output missing inventory or active marker: %q", s)
	}
	if err := run([]string{"store", "shutdown", "-addr", addr}, &out); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve exit: %v", err)
	}

	// A memory-engine daemon rejects the op with a pointer to -data-dir.
	memAddr := startDaemons(t, 1)[0]
	out.Reset()
	err = run([]string{"store", "segments", "-addr", memAddr}, &out)
	if err == nil || !strings.Contains(err.Error(), "data-dir") {
		t.Fatalf("segments on memory engine: err %v, want a -data-dir hint", err)
	}
}
