package main

import "testing"

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.network != "sensor" || cfg.nodes != 250 || cfg.m != 300 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.levels) != 3 || cfg.levels[0] != 10 {
		t.Errorf("default levels = %v", cfg.levels)
	}
	if len(cfg.dist) != 3 {
		t.Errorf("default dist = %v", cfg.dist)
	}
	if len(cfg.fails) != 5 {
		t.Errorf("default fail sweep = %v", cfg.fails)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := [][]string{
		{"-levels", "abc"},
		{"-dist", "xyz"},
		{"-scheme", "bogus"},
		{"-fail", "0.1,oops"},
	}
	for i, args := range cases {
		if _, err := parseConfig(args); err == nil {
			t.Errorf("bad args %d accepted: %v", i, args)
		}
	}
}

func TestRunValidationErrors(t *testing.T) {
	cases := [][]string{
		{"-levels", "0"},                       // zero-size level
		{"-dist", "0.5,0.5,0.5"},               // wrong-length distribution
		{"-network", "carrier-pigeon"},         // unknown substrate
		{"-fail", "1.5", "-trials", "1"},       // failure fraction > 1
		{"-levels", "2,2", "-dist", "0.9,0.2"}, // not a distribution
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("bad run args %d accepted: %v", i, args)
		}
	}
}

// TestRunSmokeSensor exercises the whole pipeline at small scale.
func TestRunSmokeSensor(t *testing.T) {
	err := run([]string{
		"-nodes", "80", "-radius", "0.25", "-levels", "2,4", "-m", "20",
		"-fail", "0,0.5", "-trials", "2", "-payload", "4", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeChord(t *testing.T) {
	err := run([]string{
		"-network", "chord", "-nodes", "60", "-levels", "2,4", "-m", "20",
		"-fail", "0", "-trials", "2", "-payload", "4", "-seed", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeChurnTimeline(t *testing.T) {
	err := run([]string{
		"-lifetime", "10", "-nodes", "70", "-radius", "0.22",
		"-levels", "2,4", "-m", "20", "-trials", "3", "-times", "0,15",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnRequiresSensor(t *testing.T) {
	err := run([]string{
		"-network", "chord", "-lifetime", "10", "-levels", "2,4", "-m", "20",
	})
	if err == nil {
		t.Error("churn timeline on chord accepted")
	}
}

func TestParseConfigBadTimes(t *testing.T) {
	if _, err := parseConfig([]string{"-times", "1,zebra"}); err == nil {
		t.Error("bad -times accepted")
	}
}
