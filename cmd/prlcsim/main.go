// Command prlcsim runs an end-to-end differentiated-persistence simulation:
// it builds a network substrate (a GPSR sensor field or a Chord overlay),
// pre-distributes priority-coded measurement data with the Sec. 4 protocol,
// kills a sweep of node fractions, and reports how many priority levels a
// collector recovers from the survivors, along with the dissemination cost.
//
// Usage:
//
//	prlcsim -network sensor -nodes 200 -levels 10,20,70 -m 300 \
//	        -dist 0.5,0.25,0.25 -scheme plc -fail 0,0.2,0.4,0.6,0.8
//	prlcsim -network chord -nodes 500 -fanout 21 -twochoices
//	prlcsim -lifetime 20 -times 0,10,20,40    # churn timeline instead of sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/chord"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/geom"
	"repro/internal/gpsr"
	"repro/internal/netsim"
	"repro/internal/predist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prlcsim:", err)
		os.Exit(1)
	}
}

type config struct {
	network    string
	nodes      int
	radius     float64
	levels     []int
	dist       []float64
	scheme     core.Scheme
	m          int
	fanout     int
	twoChoices bool
	fails      []float64
	trials     int
	payload    int
	seed       int64
	lifetime   float64
	times      []float64
}

func parseConfig(args []string) (config, error) {
	fs := flag.NewFlagSet("prlcsim", flag.ContinueOnError)
	var (
		cfg       config
		levelsStr string
		distStr   string
		schemeStr string
		failStr   string
	)
	fs.StringVar(&cfg.network, "network", "sensor", "substrate: sensor (GPSR) or chord (DHT)")
	fs.IntVar(&cfg.nodes, "nodes", 250, "number of nodes")
	fs.Float64Var(&cfg.radius, "radius", 0.15, "sensor radio range (sensor network only; sparse fields inflate GHT home-perimeter tours)")
	fs.StringVar(&levelsStr, "levels", "10,20,70", "comma-separated source blocks per priority level")
	fs.StringVar(&distStr, "dist", "", "comma-separated priority distribution (default uniform)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.IntVar(&cfg.m, "m", 300, "number of cache locations (coded blocks)")
	fs.IntVar(&cfg.fanout, "fanout", 0, "per-source-block dissemination fanout (0 = dense)")
	fs.BoolVar(&cfg.twoChoices, "twochoices", false, "power-of-two-choices cache placement")
	fs.StringVar(&failStr, "fail", "0,0.2,0.4,0.6,0.8", "comma-separated node failure fractions to sweep")
	fs.IntVar(&cfg.trials, "trials", 20, "collection trials per failure fraction")
	fs.IntVar(&cfg.payload, "payload", 16, "payload bytes per source block")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed")
	var timesStr string
	fs.Float64Var(&cfg.lifetime, "lifetime", 0, "mean exponential node lifetime; > 0 switches to the churn-timeline mode (sensor network only)")
	fs.StringVar(&timesStr, "times", "0,10,20,40", "comma-separated snapshot times for the churn timeline")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if timesStr != "" {
		var err error
		if cfg.times, err = parseFloats(timesStr); err != nil {
			return config{}, fmt.Errorf("-times: %w", err)
		}
	}
	var err error
	if cfg.levels, err = parseInts(levelsStr); err != nil {
		return config{}, fmt.Errorf("-levels: %w", err)
	}
	if distStr == "" {
		cfg.dist = core.NewUniformDistribution(len(cfg.levels))
	} else if cfg.dist, err = parseFloats(distStr); err != nil {
		return config{}, fmt.Errorf("-dist: %w", err)
	}
	if cfg.scheme, err = core.ParseScheme(schemeStr); err != nil {
		return config{}, err
	}
	if cfg.fails, err = parseFloats(failStr); err != nil {
		return config{}, fmt.Errorf("-fail: %w", err)
	}
	return cfg, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	cfg, err := parseConfig(args)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(cfg.levels...)
	if err != nil {
		return err
	}
	dist := core.PriorityDistribution(cfg.dist)
	if err := dist.Validate(levels); err != nil {
		return err
	}
	if cfg.lifetime > 0 {
		return runChurn(cfg, levels, dist)
	}
	rng := rand.New(rand.NewSource(cfg.seed))

	// Build the substrate.
	var tr predist.Transport
	switch cfg.network {
	case "sensor":
		var g *geom.Graph
		for attempt := 0; ; attempt++ {
			pos := geom.RandomPoints(rng, cfg.nodes)
			g, err = geom.NewUnitDiskGraph(pos, cfg.radius)
			if err != nil {
				return err
			}
			if g.Connected() {
				break
			}
			if attempt > 200 {
				return fmt.Errorf("could not sample a connected sensor field; raise -radius")
			}
		}
		router, err := gpsr.New(g)
		if err != nil {
			return err
		}
		if tr, err = predist.NewGeoTransport(router, cfg.nodes); err != nil {
			return err
		}
	case "chord":
		ring, err := chord.NewRandom(rng, cfg.nodes)
		if err != nil {
			return err
		}
		if tr, err = predist.NewDHTTransport(ring); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown network %q (want sensor or chord)", cfg.network)
	}

	// Pre-distribute.
	dep, err := predist.NewDeployment(predist.Config{
		Scheme: cfg.scheme, Levels: levels, Dist: dist,
		M: cfg.m, Seed: cfg.seed, Fanout: cfg.fanout,
		TwoChoices: cfg.twoChoices, PayloadLen: cfg.payload,
	})
	if err != nil {
		return err
	}
	if err := dep.ResolveOwners(tr); err != nil {
		return err
	}
	payload := make([]byte, cfg.payload)
	for blk := 0; blk < levels.Total(); blk++ {
		rng.Read(payload)
		if err := dep.Disseminate(rng, tr, rng.Intn(cfg.nodes), blk, payload); err != nil {
			return err
		}
	}
	st := dep.Stats()
	fmt.Printf("network: %s, %d nodes; scheme: %s; N = %d source blocks in %d levels; M = %d caches\n",
		cfg.network, cfg.nodes, cfg.scheme, levels.Total(), levels.Count(), cfg.m)
	fmt.Printf("dissemination: %d messages, %d hops (%.1f msgs/block, %.1f hops/msg), max cache load %d\n",
		st.Messages, st.Hops,
		float64(st.Messages)/float64(levels.Total()),
		float64(st.Hops)/float64(maxInt(st.Messages, 1)),
		dep.MaxLoad())

	// Failure sweep.
	fmt.Printf("\n%-8s %-10s %-14s %-14s %-12s\n", "fail", "caches", "levels(mean)", "blocks(mean)", "full-recovery")
	for _, f := range cfg.fails {
		if f < 0 || f > 1 {
			return fmt.Errorf("failure fraction %g outside [0, 1]", f)
		}
		var sumLevels, sumBlocks, full float64
		caches := 0
		for trial := 0; trial < cfg.trials; trial++ {
			victims, err := netsim.FailFraction(rng, cfg.nodes, f)
			if err != nil {
				return err
			}
			dead := make(map[int]bool, len(victims))
			for _, v := range victims {
				dead[v] = true
			}
			blocks := dep.CodedBlocks(func(n int) bool { return !dead[n] })
			caches = len(blocks)
			res, _, err := collect.Run(rng, cfg.scheme, levels, blocks,
				collect.Options{PayloadLen: cfg.payload})
			if err != nil {
				return err
			}
			sumLevels += float64(res.DecodedLevels)
			sumBlocks += float64(res.DecodedBlocks)
			if res.Complete {
				full++
			}
		}
		t := float64(cfg.trials)
		fmt.Printf("%-8.2f %-10d %-14.2f %-14.1f %-12.2f\n",
			f, caches, sumLevels/t, sumBlocks/t, full/t)
	}
	return nil
}

// runChurn runs the timeline mode: exponential lifetimes, snapshot
// collections at the configured times.
func runChurn(cfg config, levels *core.Levels, dist core.PriorityDistribution) error {
	if cfg.network != "sensor" {
		return fmt.Errorf("churn timeline supports only -network sensor")
	}
	pts, err := exper.PersistenceUnderChurn(exper.ChurnConfig{
		Scheme:       cfg.scheme,
		Levels:       levels,
		Dist:         dist,
		Nodes:        cfg.nodes,
		Radius:       cfg.radius,
		M:            cfg.m,
		Fanout:       cfg.fanout,
		MeanLifetime: cfg.lifetime,
		SampleTimes:  cfg.times,
		Trials:       cfg.trials,
		Seed:         cfg.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("churn timeline: %d nodes, mean lifetime %.1f, scheme %s, N = %d, M = %d\n\n",
		cfg.nodes, cfg.lifetime, cfg.scheme, levels.Total(), cfg.m)
	fmt.Printf("%-10s %-8s %-14s\n", "time", "alive%", "levels(mean)")
	for _, p := range pts {
		fmt.Printf("%-10.1f %-8.0f %.2f±%.2f\n", p.T, p.AliveFrac*100, p.Mean, p.CI95)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
