// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark snapshot. It exists so `make bench-kernels` can commit a
// machine-readable perf baseline (BENCH_kernels.json) that later
// performance PRs diff against.
//
// Fast-kernel benchmarks are paired with their scalar baselines — a
// benchmark named X is compared against XRef (the pre-kernel reference
// implementation) and BenchmarkEncodeN256WorkersK against BenchmarkEncodeN256
// (the single-worker pipeline) — and the resulting before/after speedups are
// embedded in the snapshot.
//
// Usage:
//
//	go test -run=NONE -bench ... ./... | benchjson -out BENCH_kernels.json
//
// -by names the producing make target in the snapshot's generated_by field
// (default "make bench-kernels").
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	out := "BENCH_kernels.json"
	note := ""
	by := "make bench-kernels"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out", "--out":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -out needs a path")
				os.Exit(2)
			}
			i++
			out = args[i]
		case "-note", "--note":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -note needs a string")
				os.Exit(2)
			}
			i++
			note = args[i]
		case "-by", "--by":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -by needs a string")
				os.Exit(2)
			}
			i++
			by = args[i]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %q\n", args[i])
			os.Exit(2)
		}
	}
	if err := run(os.Stdin, out, note, by); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name     string  `json:"name"`
	Package  string  `json:"package,omitempty"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerSec float64 `json:"mb_per_s,omitempty"`
	// Metrics holds any extra per-op values the benchmark emitted via
	// b.ReportMetric (e.g. "wire-B/block"), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup records one before/after pairing.
type Speedup struct {
	Name     string  `json:"name"`
	Baseline string  `json:"baseline"`
	Speedup  float64 `json:"speedup"`
}

// Snapshot is the committed JSON document.
type Snapshot struct {
	GeneratedBy string      `json:"generated_by"`
	GOOS        string      `json:"goos,omitempty"`
	GOARCH      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	NumCPU      int         `json:"num_cpu"`
	Note        string      `json:"note,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	Speedups    []Speedup   `json:"speedups,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkAddMulSlice_1KiB-8   5727258   41.12 ns/op   24905.23 MB/s
//
// The -N GOMAXPROCS suffix is stripped from the name; MB/s is optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) MB/s)?(.*)$`)

// metricPair matches the remaining `<value> <unit>` pairs a benchmark
// reports via b.ReportMetric, e.g. `123.0 wire-B/block`.
var metricPair = regexp.MustCompile(`([0-9.]+) (\S+)`)

func run(r io.Reader, out, note, by string) error {
	snap, err := parse(r)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	snap.GeneratedBy = by
	snap.NumCPU = runtime.NumCPU()
	snap.Note = note
	snap.Speedups = pairSpeedups(snap.Benchmarks)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{GeneratedBy: "make bench-kernels"}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
			}
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
			b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark"), Package: pkg, Iters: iters, NsPerOp: ns}
			if m[4] != "" {
				b.MBPerSec, err = strconv.ParseFloat(m[4], 64)
				if err != nil {
					return nil, fmt.Errorf("bad MB/s in %q: %w", line, err)
				}
			}
			for _, pm := range metricPair.FindAllStringSubmatch(m[5], -1) {
				v, err := strconv.ParseFloat(pm[1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad metric in %q: %w", line, err)
				}
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[pm[2]] = v
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// workersName matches EncodeN256Workers4-style names so parallel pipeline
// benches pair against their single-worker variant.
var workersName = regexp.MustCompile(`^(.+?)Workers\d+$`)

// pairSpeedups derives before/after ratios: kernel benchmark X pairs with
// scalar baseline XRef (name-wise: Foo_1KiB vs FooRef_1KiB), and a
// -workers pipeline bench pairs with its 1-worker variant.
func pairSpeedups(benches []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, b := range benches {
		base, ok := baselineName(b.Name)
		if !ok {
			continue
		}
		ref, ok := byName[base]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		out = append(out, Speedup{
			Name:     b.Name,
			Baseline: base,
			Speedup:  round2(ref.NsPerOp / b.NsPerOp),
		})
	}
	return out
}

func baselineName(name string) (string, bool) {
	if strings.Contains(name, "Ref") {
		return "", false
	}
	if m := workersName.FindStringSubmatch(name); m != nil {
		return m[1], true
	}
	// Foo_1KiB -> FooRef_1KiB; Foo -> FooRef.
	if i := strings.IndexByte(name, '_'); i >= 0 {
		return name[:i] + "Ref" + name[i:], true
	}
	return name + "Ref", true
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
