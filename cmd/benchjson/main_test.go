package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/gf256
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAddMulSlice_1KiB-8      5727258        41.12 ns/op    24905.23 MB/s
BenchmarkAddMulSliceRef_1KiB-8    250032       932.40 ns/op     1098.29 MB/s
PASS
ok   repro/internal/gf256   2.119s
pkg: repro/internal/core
BenchmarkEncodeN256-8                100      10000000 ns/op      32.76 MB/s
BenchmarkEncodeN256Workers4-8        400       2600000 ns/op     126.00 MB/s
PASS
ok   repro/internal/core    1.002s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Errorf("goos/goarch = %q/%q", snap.GOOS, snap.GOARCH)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "AddMulSlice_1KiB" || b.Iters != 5727258 || b.NsPerOp != 41.12 || b.MBPerSec != 24905.23 {
		t.Errorf("first benchmark parsed as %+v", b)
	}
	if b.Package != "repro/internal/gf256" {
		t.Errorf("first benchmark package = %q", b.Package)
	}
	if p := snap.Benchmarks[2].Package; p != "repro/internal/core" {
		t.Errorf("third benchmark package = %q", p)
	}
}

func TestPairSpeedups(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	got := pairSpeedups(snap.Benchmarks)
	want := map[string]struct {
		baseline string
		speedup  float64
	}{
		"AddMulSlice_1KiB":   {"AddMulSliceRef_1KiB", 22.68},
		"EncodeN256Workers4": {"EncodeN256", 3.85},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d speedups %+v, want %d", len(got), got, len(want))
	}
	for _, s := range got {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected speedup entry %+v", s)
			continue
		}
		if s.Baseline != w.baseline || s.Speedup != w.speedup {
			t.Errorf("%s: got baseline=%s speedup=%v, want baseline=%s speedup=%v",
				s.Name, s.Baseline, s.Speedup, w.baseline, w.speedup)
		}
	}
}

func TestBaselineName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"AddMulSlice_64KiB", "AddMulSliceRef_64KiB", true},
		{"MulSlice_1KiB", "MulSliceRef_1KiB", true},
		{"AddMulSliceSparse_1KiB", "AddMulSliceSparseRef_1KiB", true},
		{"EncodeN256Workers2", "EncodeN256", true},
		{"AddMulSliceRef_1KiB", "", false},
		{"DecodeN64", "DecodeN64Ref", true},
	}
	for _, tc := range cases {
		got, ok := baselineName(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("baselineName(%q) = %q, %v; want %q, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestParseExtraMetrics pins the ReportMetric pairs: a `<value> <unit>`
// tail after ns/op (with or without MB/s) lands in the Metrics map.
func TestParseExtraMetrics(t *testing.T) {
	const out = `pkg: repro/internal/core
BenchmarkWireSparseN1024-8       2     114928 ns/op        123.0 wire-B/block
BenchmarkDecodeSparseN512-8      2   14298040 ns/op   2.29 MB/s   7.5 extra/unit
`
	snap, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	if got := snap.Benchmarks[0].Metrics["wire-B/block"]; got != 123.0 {
		t.Errorf("wire-B/block = %v, want 123.0", got)
	}
	if snap.Benchmarks[0].MBPerSec != 0 {
		t.Errorf("MB/s = %v, want 0 (absent)", snap.Benchmarks[0].MBPerSec)
	}
	b := snap.Benchmarks[1]
	if b.MBPerSec != 2.29 || b.Metrics["extra/unit"] != 7.5 {
		t.Errorf("second benchmark parsed as %+v", b)
	}
}
