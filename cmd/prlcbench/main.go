// Command prlcbench regenerates every table and figure of the paper's
// evaluation (Sec. 5) and prints them as aligned ASCII tables, optionally
// writing machine-readable CSV next to them.
//
// Usage:
//
//	prlcbench -all                     # everything, full scale (slow)
//	prlcbench -fig 4b                  # one figure
//	prlcbench -table 1                 # Table 1
//	prlcbench -all -scale 5 -trials 20 # quick reduced-scale pass
//	prlcbench -fig 7 -csv out/         # also write out/fig7.csv
//
// At full scale (N = 1000, 100 trials) the complete run takes several
// minutes on one core; -scale 5 finishes in seconds with the same shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/exper"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prlcbench:", err)
		os.Exit(1)
	}
}

type config struct {
	fig     string
	table   int
	all     bool
	perf    bool
	trials  int
	scale   int
	stride  int
	seed    int64
	csvDir  string
	workers int
	payload int
	perfDur time.Duration
	sparse  bool
	band    int
	chunks  string
}

func run(args []string) error {
	fs := flag.NewFlagSet("prlcbench", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.fig, "fig", "", "figure to regenerate: 4a, 4b, 5a, 5b, 6a, 6b, 7, 7ours (Fig. 7 under our solver's Table-1 distributions)")
	fs.IntVar(&cfg.table, "table", 0, "table to regenerate: 1")
	fs.BoolVar(&cfg.all, "all", false, "regenerate every figure and table")
	fs.IntVar(&cfg.trials, "trials", 100, "Monte-Carlo trials per curve point")
	fs.IntVar(&cfg.scale, "scale", 1, "divide the paper's problem size by this factor")
	fs.IntVar(&cfg.stride, "stride", 100, "checkpoint stride in coded blocks")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed")
	fs.StringVar(&cfg.csvDir, "csv", "", "directory to write CSV copies into")
	fs.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "simulation worker count (results are seed-deterministic for any value)")
	fs.BoolVar(&cfg.perf, "perf", false, "measure encode/decode throughput (MB/s) and rank-only trial rate per scheme")
	fs.IntVar(&cfg.payload, "payload", 1024, "payload bytes per block for -perf throughput measurements")
	fs.DurationVar(&cfg.perfDur, "perfdur", 500*time.Millisecond, "minimum measuring time per -perf metric")
	fs.BoolVar(&cfg.sparse, "sparse", false, "draw O(ln N) sparse coefficients in -perf measurements")
	fs.IntVar(&cfg.band, "band", 0, "draw contiguous coefficient bands of this width in -perf measurements (0 = off)")
	fs.StringVar(&cfg.chunks, "chunks", "", "size,overlap: measure expander-chunked coding in -perf")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !cfg.all && cfg.fig == "" && cfg.table == 0 && !cfg.perf {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig, -table or -perf")
	}
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			return err
		}
	}

	figs := []string{cfg.fig}
	if cfg.all {
		figs = []string{"4a", "4b", "5a", "5b", "6a", "6b", "7"}
	}
	for _, f := range figs {
		if f == "" {
			continue
		}
		if err := runFigure(cfg, f); err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
	}
	if cfg.table == 1 || cfg.all {
		if err := runTable1(cfg); err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
	}
	if cfg.perf {
		if err := runPerf(cfg); err != nil {
			return fmt.Errorf("perf: %w", err)
		}
	}
	return nil
}

// runPerf measures the hot paths at the Fig. 4b/5b problem shape (N = 1000,
// 50 levels, shrunk by -scale) for every scheme — the one-command A/B that
// performance PRs quote decode numbers from.
func runPerf(cfg config) error {
	n := 1000 / cfg.scale
	nLevels := 50
	if per := n / nLevels; per < 1 {
		nLevels = n
	}
	levels, err := core.UniformLevels(nLevels, n/nLevels)
	if err != nil {
		return err
	}
	generator := "dense"
	var sparsity, band, chunkSize, chunkOverlap int
	switch {
	case cfg.sparse:
		sparsity = core.LogSparsity(levels.Total())
		generator = fmt.Sprintf("sparse (%d nonzeros)", sparsity)
	case cfg.band > 0:
		band = cfg.band
		generator = fmt.Sprintf("band (width %d)", band)
	case cfg.chunks != "":
		dims, err := cliutil.ParseInts(cfg.chunks)
		if err != nil || len(dims) != 2 {
			return fmt.Errorf("-chunks wants size,overlap, got %q", cfg.chunks)
		}
		chunkSize, chunkOverlap = dims[0], dims[1]
		generator = fmt.Sprintf("chunked (%d/%d)", chunkSize, chunkOverlap)
	}
	fmt.Printf("Hot-path throughput: N=%d, %d levels, payload %d B, workers %d, coding %s\n",
		levels.Total(), levels.Count(), cfg.payload, cfg.workers, generator)
	fmt.Printf("%-8s %14s %14s %10s %20s\n", "scheme", "encode MB/s", "decode MB/s", "decoded", "rank-only trials/s")
	for _, scheme := range []core.Scheme{core.RLC, core.SLC, core.PLC} {
		res, err := exper.MeasurePerf(exper.PerfConfig{
			Scheme:       scheme,
			Levels:       levels,
			PayloadLen:   cfg.payload,
			Workers:      cfg.workers,
			Seed:         cfg.seed,
			MinDuration:  cfg.perfDur,
			Sparsity:     sparsity,
			BandWidth:    band,
			ChunkSize:    chunkSize,
			ChunkOverlap: chunkOverlap,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", scheme, err)
		}
		fmt.Printf("%-8s %14.1f %14.1f %6d/%-4d %20.2f\n",
			res.Scheme, res.EncodeMBps, res.DecodeMBps, res.DecodedBlocks, res.TotalBlocks, res.RankTrialsPerSec)
	}
	return nil
}

func figOpts(cfg config) exper.FigureOptions {
	return exper.FigureOptions{
		Trials:  cfg.trials,
		Seed:    cfg.seed,
		Scale:   cfg.scale,
		Stride:  cfg.stride,
		Workers: cfg.workers,
	}
}

func runFigure(cfg config, fig string) error {
	opts := figOpts(cfg)
	var (
		curves []*exper.Curve
		title  string
	)
	switch fig {
	case "4a", "4b", "5a", "5b":
		scheme := core.PLC
		figName := "4"
		if strings.HasPrefix(fig, "5") {
			scheme = core.SLC
			figName = "5"
		}
		nLevels := 5
		if strings.HasSuffix(fig, "b") {
			nLevels = 50
		}
		c, err := exper.AnalysisVsSimulation(scheme, nLevels, opts)
		if err != nil {
			return err
		}
		curves = []*exper.Curve{c}
		title = fmt.Sprintf("Figure %s(%s): analysis vs simulation for %s, %d priority levels",
			figName, fig[1:], scheme, nLevels)
	case "6a", "6b":
		nLevels := 10
		if fig == "6b" {
			nLevels = 50
		}
		slc, plc, err := exper.SLCvsPLC(nLevels, opts)
		if err != nil {
			return err
		}
		curves = []*exper.Curve{slc, plc}
		title = fmt.Sprintf("Figure 6(%s): SLC vs PLC, %d priority levels", fig[1:], nLevels)
	case "7":
		paper := []core.PriorityDistribution{
			{0.5138, 0.0768, 0.4094},
			{0, 0.6149, 0.3851},
			{0.2894, 0.3246, 0.3860},
		}
		cs, err := exper.Fig7(paper, []string{"Case 1", "Case 2", "Case 3"}, opts)
		if err != nil {
			return err
		}
		curves = cs
		title = "Figure 7: PLC decoding curves under the paper's Table 1 distributions"
	case "7ours":
		// Close the Table 1 → Fig. 7 loop with our own solver output, as
		// the paper does with its MATLAB solutions.
		cases, err := exper.Table1(cfg.seed)
		if err != nil {
			return err
		}
		dists := make([]core.PriorityDistribution, 0, len(cases))
		names := make([]string, 0, len(cases))
		for _, c := range cases {
			if !c.Feasible {
				return fmt.Errorf("%s: solver found no feasible distribution", c.Name)
			}
			dists = append(dists, c.SolvedP)
			names = append(names, c.Name+" (ours)")
		}
		cs, err := exper.Fig7(dists, names, opts)
		if err != nil {
			return err
		}
		curves = cs
		title = "Figure 7 (ours): PLC decoding curves under our solver's Table 1 distributions"
	default:
		return fmt.Errorf("unknown figure %q (want 4a, 4b, 5a, 5b, 6a, 6b, 7, 7ours)", fig)
	}

	if err := exper.RenderCurves(os.Stdout, title, curves...); err != nil {
		return err
	}
	fmt.Println()
	if cfg.csvDir != "" {
		f, err := os.Create(filepath.Join(cfg.csvDir, "fig"+fig+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := exper.WriteCurvesCSV(f, curves...); err != nil {
			return err
		}
	}
	return nil
}

func runTable1(cfg config) error {
	cases, err := exper.Table1(cfg.seed)
	if err != nil {
		return err
	}
	if err := exper.RenderTable1(os.Stdout, cases); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
