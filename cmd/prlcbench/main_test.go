package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRequiresWork(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "9z", "-scale", "20", "-trials", "5"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunEachFigureSmall regenerates every figure at 1/20 scale with few
// trials — a smoke test of all code paths including CSV output.
func TestRunEachFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is expensive; run without -short")
	}
	csvDir := t.TempDir()
	for _, fig := range []string{"4a", "5a", "6a", "7"} {
		if err := run([]string{
			"-fig", fig, "-scale", "20", "-trials", "5", "-stride", "100",
			"-csv", csvDir, "-seed", "2",
		}); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		csv := filepath.Join(csvDir, "fig"+fig+".csv")
		info, err := os.Stat(csv)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if info.Size() == 0 {
			t.Fatalf("figure %s: empty CSV", fig)
		}
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("feasibility solving is expensive; run without -short")
	}
	if err := run([]string{"-table", "1", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7Ours(t *testing.T) {
	if testing.Short() {
		t.Skip("solver + simulation; run without -short")
	}
	if err := run([]string{"-fig", "7ours", "-scale", "20", "-trials", "5", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunPerf smoke-tests the -perf hot-path measurement with a tiny
// measuring window so the three metrics per scheme stay fast.
func TestRunPerf(t *testing.T) {
	if err := run([]string{"-perf", "-scale", "50", "-payload", "64", "-perfdur", "5ms"}); err != nil {
		t.Fatalf("run -perf: %v", err)
	}
}
