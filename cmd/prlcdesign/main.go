// Command prlcdesign runs the Sec. 3.4 design workflow from the command
// line: it turns decoding constraints (and optionally a per-level utility
// function) into a priority distribution, then prints the analytical
// decoding curve of the design.
//
// Usage:
//
//	prlcdesign -levels 50,100,350 -constraints 130:1,950:2 -alpha 2 -eps 0.01
//	prlcdesign -levels 10,40,150 -utility 1,0.3,0.1 -budget 120
//	prlcdesign -levels 10,40,150 -utility prop -budget 300 -constraints 60:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/feasibility"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prlcdesign:", err)
		os.Exit(1)
	}
}

type options struct {
	levels      []int
	scheme      core.Scheme
	constraints []feasibility.Constraint
	alpha       float64
	epsilon     float64
	utilitySpec string
	budget      int
	seed        int64
	maxEvals    int
	curvePoints int
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("prlcdesign", flag.ContinueOnError)
	var (
		o              options
		levelsStr      string
		schemeStr      string
		constraintsStr string
	)
	fs.StringVar(&levelsStr, "levels", "", "comma-separated source blocks per priority level (required)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.StringVar(&constraintsStr, "constraints", "", "decoding constraints M:k,M:k,... (eq. 9)")
	fs.Float64Var(&o.alpha, "alpha", 0, "full-recovery constraint factor (eq. 10; 0 disables)")
	fs.Float64Var(&o.epsilon, "eps", 0.01, "full-recovery failure probability (eq. 10)")
	fs.StringVar(&o.utilitySpec, "utility", "", "per-level utilities u0,u1,... or 'prop' (level sizes) or 'geo:BASE'")
	fs.IntVar(&o.budget, "budget", 0, "collection budget M for utility optimization")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.IntVar(&o.maxEvals, "maxevals", 0, "evaluation budget for the search (0 = default)")
	fs.IntVar(&o.curvePoints, "curvepoints", 11, "points on the printed decoding curve")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if levelsStr == "" {
		return options{}, fmt.Errorf("-levels is required")
	}
	for _, part := range strings.Split(levelsStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return options{}, fmt.Errorf("-levels: %w", err)
		}
		o.levels = append(o.levels, v)
	}
	var err error
	if o.scheme, err = core.ParseScheme(schemeStr); err != nil {
		return options{}, err
	}
	if constraintsStr != "" {
		for _, part := range strings.Split(constraintsStr, ",") {
			mk := strings.SplitN(strings.TrimSpace(part), ":", 2)
			if len(mk) != 2 {
				return options{}, fmt.Errorf("-constraints: %q is not M:k", part)
			}
			m, err := strconv.Atoi(mk[0])
			if err != nil {
				return options{}, fmt.Errorf("-constraints: %w", err)
			}
			k, err := strconv.ParseFloat(mk[1], 64)
			if err != nil {
				return options{}, fmt.Errorf("-constraints: %w", err)
			}
			o.constraints = append(o.constraints, feasibility.Constraint{M: m, MinLevels: k})
		}
	}
	if o.utilitySpec != "" && o.budget <= 0 {
		return options{}, fmt.Errorf("-utility requires a positive -budget")
	}
	if o.utilitySpec == "" && len(o.constraints) == 0 && o.alpha <= 0 {
		return options{}, fmt.Errorf("nothing to design: pass -constraints, -alpha and/or -utility")
	}
	return o, nil
}

func parseUtility(spec string, levels *core.Levels) (feasibility.Utility, error) {
	switch {
	case spec == "prop":
		return feasibility.ProportionalUtility(levels), nil
	case strings.HasPrefix(spec, "geo:"):
		base, err := strconv.ParseFloat(spec[len("geo:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("-utility geo: %w", err)
		}
		return feasibility.GeometricUtility(levels.Count(), base)
	default:
		var u feasibility.Utility
		for _, part := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("-utility: %w", err)
			}
			u = append(u, v)
		}
		return u, nil
	}
}

func run(args []string, w *os.File) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(o.levels...)
	if err != nil {
		return err
	}

	var p core.PriorityDistribution
	if o.utilitySpec != "" {
		u, err := parseUtility(o.utilitySpec, levels)
		if err != nil {
			return err
		}
		sol, err := feasibility.Optimize(feasibility.OptimizeProblem{
			Scheme: o.scheme, Levels: levels, Utility: u, M: o.budget,
			Decoding: o.constraints, Alpha: o.alpha, Epsilon: o.epsilon,
		}, feasibility.Options{Seed: o.seed, MaxEvals: o.maxEvals})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "utility-optimal distribution: %s\n", fmtDist(sol.P))
		fmt.Fprintf(w, "expected utility at M=%d: %.4f (%d evaluations)\n",
			o.budget, sol.ExpectedUtility, sol.Evals)
		if len(o.constraints) > 0 || o.alpha > 0 {
			fmt.Fprintf(w, "constraints satisfied: %v (violation %.3g)\n", sol.Feasible, sol.Violation)
			if !sol.Feasible {
				return fmt.Errorf("constraints could not be satisfied")
			}
		}
		p = sol.P
	} else {
		sol, err := feasibility.Solve(feasibility.Problem{
			Scheme: o.scheme, Levels: levels,
			Decoding: o.constraints, Alpha: o.alpha, Epsilon: o.epsilon,
		}, feasibility.Options{Seed: o.seed, MaxEvals: o.maxEvals})
		if err != nil {
			return err
		}
		if !sol.Feasible {
			fmt.Fprintf(w, "infeasible: best point %s with violation %.4g after %d evaluations\n",
				fmtDist(sol.P), sol.Violation, sol.Evals)
			return fmt.Errorf("the decoding constraints cannot be fulfilled")
		}
		fmt.Fprintf(w, "feasible distribution: %s (%d evaluations)\n", fmtDist(sol.P), sol.Evals)
		p = sol.P
	}

	// Print the analytical decoding curve of the design.
	n := levels.Total()
	maxM := 2 * n
	step := maxM / (o.curvePoints - 1)
	if step < 1 {
		step = 1
	}
	ms := exper.Steps(0, maxM, step)
	fmt.Fprintf(w, "\nanalytical decoding curve (%s, N=%d):\n  M       E(X)    Pr(all)\n",
		o.scheme, n)
	for _, m := range ms {
		r, err := analysis.Eval(o.scheme, levels, p, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-7d %-7.3f %.4f\n", m, r.EX, r.PrAll())
	}
	return nil
}

func fmtDist(p core.PriorityDistribution) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.FormatFloat(v, 'f', 4, 64)
	}
	return strings.Join(parts, " / ")
}
