package main

import (
	"os"
	"testing"
)

func TestParseOptionsErrors(t *testing.T) {
	cases := [][]string{
		nil, // no -levels
		{"-levels", "abc"},
		{"-levels", "5,5", "-scheme", "nope"},
		{"-levels", "5,5", "-constraints", "garbled"},
		{"-levels", "5,5", "-constraints", "x:1"},
		{"-levels", "5,5", "-constraints", "10:y"},
		{"-levels", "5,5", "-utility", "1,1"}, // utility without budget
		{"-levels", "5,5"},                    // nothing to design
		{"-levels", "5,5", "-not-a-flag"},     // flag error
	}
	for i, args := range cases {
		if _, err := parseOptions(args); err == nil {
			t.Errorf("bad args %d accepted: %v", i, args)
		}
	}
}

func TestParseUtilitySpecs(t *testing.T) {
	opts, err := parseOptions([]string{"-levels", "2,4", "-utility", "prop", "-budget", "10"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.utilitySpec != "prop" || opts.budget != 10 {
		t.Errorf("parsed %+v", opts)
	}
}

func TestRunFeasibleDesign(t *testing.T) {
	err := run([]string{
		"-levels", "4,8", "-constraints", "6:1", "-seed", "1", "-curvepoints", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunInfeasibleDesign(t *testing.T) {
	err := run([]string{
		"-levels", "4,8", "-constraints", "3:2", "-seed", "1", "-maxevals", "80",
	}, os.Stdout)
	if err == nil {
		t.Error("impossible design reported success")
	}
}

func TestRunUtilityDesign(t *testing.T) {
	err := run([]string{
		"-levels", "3,9", "-utility", "1,0.1", "-budget", "6",
		"-seed", "2", "-maxevals", "300", "-curvepoints", "4",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUtilityGeo(t *testing.T) {
	err := run([]string{
		"-levels", "3,3", "-utility", "geo:0.5", "-budget", "8",
		"-seed", "3", "-maxevals", "200", "-curvepoints", "3",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUtilityBadSpec(t *testing.T) {
	if err := run([]string{
		"-levels", "3,3", "-utility", "geo:xyz", "-budget", "8",
	}, os.Stdout); err == nil {
		t.Error("bad geo base accepted")
	}
	if err := run([]string{
		"-levels", "3,3", "-utility", "1,bogus", "-budget", "8",
	}, os.Stdout); err == nil {
		t.Error("bad utility values accepted")
	}
}

func TestRunUtilityWithConstraints(t *testing.T) {
	err := run([]string{
		"-levels", "3,9", "-utility", "0.1,1", "-budget", "20",
		"-constraints", "5:0.7", "-seed", "4", "-maxevals", "500", "-curvepoints", "3",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}
