package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzReadBlock hardens the block-file parser: arbitrary bytes must never
// panic, and any input that parses must re-serialize to an equivalent
// block.
func FuzzReadBlock(f *testing.F) {
	// Seed with a valid block file and a few mutations.
	dir := f.TempDir()
	h := header{scheme: core.PLC, levelSizes: []int{2, 3}, fileSize: 123, payloadLen: 4}
	b := &core.CodedBlock{Level: 1, Coeff: []byte{0, 0, 1, 2, 3}, Payload: []byte{9, 8, 7, 6}}
	seed := filepath.Join(dir, "seed.prlc")
	if err := writeBlock(seed, h, b); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("PRLC"))
	f.Add([]byte("PRLC\x02\x03\x00\x02"))
	f.Add([]byte("PRLC\x01\x03\x00\x02")) // old v1 header: must be rejected, not parsed
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.prlc")
		if err := os.WriteFile(path, in, 0o644); err != nil {
			t.Skip()
		}
		hdr, blk, err := readBlock(path)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted inputs must survive a write/read round trip.
		out := filepath.Join(t.TempDir(), "rt.prlc")
		if err := writeBlock(out, hdr, blk); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		hdr2, blk2, err := readBlock(out)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if !headersCompatible(hdr, hdr2) {
			t.Fatalf("headers drifted: %+v vs %+v", hdr, hdr2)
		}
		if blk2.Level != blk.Level || !bytes.Equal(blk2.Coeff, blk.Coeff) ||
			!bytes.Equal(blk2.Payload, blk.Payload) {
			t.Fatal("block drifted through round trip")
		}
	})
}
