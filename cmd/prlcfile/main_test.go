package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func writeTempFile(t *testing.T, size int) string {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	path := filepath.Join(t.TempDir(), "input.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"encode"}); err == nil {
		t.Error("encode without -in/-out accepted")
	}
	if err := run([]string{"decode"}); err == nil {
		t.Error("decode without -in/-out accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	in := writeTempFile(t, 1000)
	out := t.TempDir()
	cases := [][]string{
		{"encode", "-in", filepath.Join(t.TempDir(), "missing"), "-out", out},
		{"encode", "-in", in, "-out", out, "-scheme", "xyz"},
		{"encode", "-in", in, "-out", out, "-blocks", "-5"},
		{"encode", "-in", in, "-out", out, "-blocks", "50", "-coded", "10"},
		{"encode", "-in", in, "-out", out, "-levels", "0.5,-0.1"},
		{"encode", "-in", in, "-out", out, "-levels", "abc"},
		{"encode", "-in", in, "-out", out, "-dist", "0.9,0.9,0.9"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("bad encode args %d accepted: %v", i, args)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := writeTempFile(t, 7777) // deliberately not a multiple of the block count
	blocksDir := filepath.Join(t.TempDir(), "blocks")
	if err := run([]string{
		"encode", "-in", in, "-out", blocksDir,
		"-blocks", "40", "-coded", "70", "-levels", "0.2,0.8", "-scheme", "plc",
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(blocksDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 70 {
		t.Fatalf("wrote %d block files, want 70", len(entries))
	}

	outFile := filepath.Join(t.TempDir(), "out.bin")
	if err := run([]string{"decode", "-in", blocksDir, "-out", outFile}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("full decode mismatch: %d bytes vs %d", len(got), len(want))
	}
}

func TestDecodePartialPrefix(t *testing.T) {
	in := writeTempFile(t, 5000)
	blocksDir := filepath.Join(t.TempDir(), "blocks")
	if err := run([]string{
		"encode", "-in", in, "-out", blocksDir,
		"-blocks", "50", "-coded", "80", "-levels", "0.2,0.8",
		"-dist", "0.6,0.4", "-scheme", "plc",
	}); err != nil {
		t.Fatal(err)
	}
	// Destroy 60% of the block files.
	entries, err := os.ReadDir(blocksDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		if i%5 != 0 && i%5 != 1 {
			if err := os.Remove(filepath.Join(blocksDir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	outFile := filepath.Join(t.TempDir(), "out.bin")
	if err := run([]string{"decode", "-in", blocksDir, "-out", outFile}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever prefix was recovered must match the original byte for byte.
	if len(got) > len(want) {
		t.Fatalf("recovered %d bytes from a %d-byte file", len(got), len(want))
	}
	if !bytes.Equal(got, want[:len(got)]) {
		t.Fatal("recovered prefix differs from the original")
	}
}

func TestDecodeEmptyDir(t *testing.T) {
	if err := run([]string{"decode", "-in", t.TempDir(), "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("decode of empty directory succeeded")
	}
}

func TestDecodeSkipsCorruptFiles(t *testing.T) {
	in := writeTempFile(t, 2000)
	blocksDir := filepath.Join(t.TempDir(), "blocks")
	if err := run([]string{
		"encode", "-in", in, "-out", blocksDir, "-blocks", "20", "-coded", "80",
	}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one file, truncate another, add junk.
	if err := os.WriteFile(filepath.Join(blocksDir, "block_00000.prlc"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(blocksDir, "block_00001.prlc"), []byte("PRLC\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(blocksDir, "junk.prlc"), []byte("PRLC\x09"), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(t.TempDir(), "out.bin")
	if err := run([]string{"decode", "-in", blocksDir, "-out", outFile}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("decode with corrupt files present lost data")
	}
}

func TestFractionsToSizes(t *testing.T) {
	sizes, err := fractionsToSizes([]float64{0.1, 0.2, 0.7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 100 {
		t.Errorf("sizes %v sum to %d", sizes, total)
	}
	if sizes[0] != 10 || sizes[1] != 20 || sizes[2] != 70 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := fractionsToSizes(nil, 10); err == nil {
		t.Error("empty fractions accepted")
	}
	if _, err := fractionsToSizes([]float64{0}, 10); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := fractionsToSizes([]float64{1, 1, 1, 1}, 3); err == nil {
		t.Error("more levels than blocks accepted")
	}
	// Tiny fractions round up to 1 block.
	sizes, err = fractionsToSizes([]float64{0.001, 0.999}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] != 1 {
		t.Errorf("tiny level size %d, want 1", sizes[0])
	}
}

func TestBlockFileRoundTrip(t *testing.T) {
	h := header{
		scheme:     3, // PLC
		levelSizes: []int{2, 3},
		fileSize:   999,
		payloadLen: 4,
	}
	b := &core.CodedBlock{Level: 1, Coeff: []byte{0, 0, 1, 2, 3}, Payload: []byte{9, 8, 7, 6}}
	path := filepath.Join(t.TempDir(), "b.prlc")
	if err := writeBlock(path, h, b); err != nil {
		t.Fatal(err)
	}
	h2, b2, err := readBlock(path)
	if err != nil {
		t.Fatal(err)
	}
	if !headersCompatible(h, h2) {
		t.Errorf("headers incompatible after round trip: %+v vs %+v", h, h2)
	}
	if b2.Level != b.Level || !bytes.Equal(b2.Coeff, b.Coeff) || !bytes.Equal(b2.Payload, b.Payload) {
		t.Errorf("block mismatch: %+v vs %+v", b2, b)
	}
}

// TestDecodeWorkersRoundTrip runs the decode CLI at several -workers
// settings and requires the recovered file to be byte-identical in all of
// them — the payload-striping pipeline must not change results.
func TestDecodeWorkersRoundTrip(t *testing.T) {
	in := writeTempFile(t, 9000)
	blocksDir := filepath.Join(t.TempDir(), "blocks")
	if err := run([]string{
		"encode", "-in", in, "-out", blocksDir,
		"-blocks", "30", "-coded", "55", "-levels", "0.3,0.7", "-scheme", "plc",
	}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"1", "2", "4", "0"} {
		outFile := filepath.Join(t.TempDir(), "out_"+workers+".bin")
		if err := run([]string{"decode", "-in", blocksDir, "-out", outFile, "-workers", workers}); err != nil {
			t.Fatalf("decode -workers %s: %v", workers, err)
		}
		got, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("decode -workers %s: output differs from input", workers)
		}
	}
}

// readBlockFiles loads every block file of a directory, returning the
// headers and blocks in name order.
func readBlockFiles(t *testing.T, dir string) ([]header, []*core.CodedBlock) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hs []header
	var bs []*core.CodedBlock
	for _, e := range entries {
		h, b, err := readBlock(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		hs = append(hs, h)
		bs = append(bs, b)
	}
	return hs, bs
}

// TestCodingAutoDefault pins the -coding default: auto resolves by
// generation size exactly as core.AutoCoding — dense v1 frames at 40
// source blocks, sparse v3 frames once the generation passes 256.
func TestCodingAutoDefault(t *testing.T) {
	in := writeTempFile(t, 4000)

	denseDir := filepath.Join(t.TempDir(), "dense")
	if err := run([]string{
		"encode", "-in", in, "-out", denseDir,
		"-blocks", "40", "-coded", "45", "-levels", "0.2,0.8",
	}); err != nil {
		t.Fatal(err)
	}
	if got := core.AutoCoding(40); got != core.CodingDense {
		t.Fatalf("AutoCoding(40) = %v, want dense", got)
	}
	_, bs := readBlockFiles(t, denseDir)
	for i, b := range bs {
		if b.IsSparse() {
			t.Fatalf("auto at 40 blocks emitted sparse block %d, want dense", i)
		}
	}

	sparseDir := filepath.Join(t.TempDir(), "sparse")
	if err := run([]string{
		"encode", "-in", in, "-out", sparseDir,
		"-blocks", "300", "-coded", "310", "-levels", "0.2,0.8",
	}); err != nil {
		t.Fatal(err)
	}
	if got := core.AutoCoding(300); got != core.CodingSparse {
		t.Fatalf("AutoCoding(300) = %v, want sparse", got)
	}
	_, bs = readBlockFiles(t, sparseDir)
	for i, b := range bs {
		if !b.IsSparse() {
			t.Fatalf("auto at 300 blocks emitted dense block %d, want sparse", i)
		}
		if nnz := b.SpCoeff.NNZ(); nnz > 2*core.LogSparsity(300) {
			t.Fatalf("sparse block %d has %d nonzeros, want O(ln N)", i, nnz)
		}
	}

	if err := run([]string{
		"encode", "-in", in, "-out", t.TempDir(),
		"-blocks", "40", "-coded", "45", "-coding", "bogus",
	}); err == nil {
		t.Fatal("bogus -coding accepted")
	}
}

// TestChunkedEncodeDecodeRoundTrip drives -coding chunked end to end:
// v3 block files carry the chunk layout, every block is a span-sparse
// vector inside its chunk, and decode recovers the exact file through
// the chunked decoder.
func TestChunkedEncodeDecodeRoundTrip(t *testing.T) {
	in := writeTempFile(t, 9000)
	blocksDir := filepath.Join(t.TempDir(), "blocks")
	if err := run([]string{
		"encode", "-in", in, "-out", blocksDir,
		"-blocks", "600", "-coded", "700", "-coding", "chunked",
	}); err != nil {
		t.Fatal(err)
	}
	hs, bs := readBlockFiles(t, blocksDir)
	layout, err := core.NewChunkLayout(600, hs[0].chunkSize, hs[0].chunkOverlap)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bs {
		if !hs[i].chunked() {
			t.Fatalf("block file %d not marked chunked", i)
		}
		if !b.IsSparse() {
			t.Fatalf("chunked block %d not sparse", i)
		}
		lo, hi := layout.Span(b.Level)
		if slo, shi := b.SpCoeff.Support(); slo < lo || shi > hi {
			t.Fatalf("block %d support [%d,%d) escapes chunk span [%d,%d)", i, slo, shi, lo, hi)
		}
	}

	outFile := filepath.Join(t.TempDir(), "out.bin")
	if err := run([]string{"decode", "-in", blocksDir, "-out", outFile}); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(in)
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chunked decode mismatch: %d bytes vs %d", len(got), len(want))
	}
}
