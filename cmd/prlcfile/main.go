// Command prlcfile encodes a file into priority-coded block files and
// decodes them back — a tangible demonstration of differentiated
// persistence: delete a fraction of the block files and decoding still
// recovers the highest-priority prefix of the file.
//
// Usage:
//
//	prlcfile encode -in report.pdf -out blocks/ -blocks 100 -coded 160 \
//	         -levels 0.1,0.2,0.7 -dist 0.4,0.3,0.3 -scheme plc
//	rm blocks/block_00*.prlc        # lose some of them
//	prlcfile decode -in blocks/ -out recovered.pdf
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
)

// Block-file format: a self-describing header followed by the block in
// the standard CodedBlock wire encoding (MarshalBinary), so the file
// format and the store's network format share one serialization. Version
// 2 covers the level-structured codings (dense, sparse, band — the block
// wire encoding tells them apart); version 3 appends the chunk layout
// (size and overlap, uint32 each) that chunk-coded blocks need to route
// their Level-as-chunk-index on decode.
const (
	magic            = "PRLC"
	formatVer        = 2
	formatVerChunked = 3
	blockSuffix      = ".prlc"
)

// Shared CLI helpers, aliased for the tests.
var (
	parseFloats      = cliutil.ParseFloats
	fractionsToSizes = cliutil.FractionsToSizes
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prlcfile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcfile encode|decode [flags]")
	}
	switch args[0] {
	case "encode":
		return encode(args[1:])
	case "decode":
		return decode(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want encode or decode)", args[0])
	}
}

// header is the self-describing metadata each block file carries, so the
// decoder needs nothing but a directory of surviving blocks.
type header struct {
	scheme     core.Scheme
	levelSizes []int
	fileSize   uint64
	payloadLen int
	// chunkSize/chunkOverlap are nonzero-size only in v3 (chunked) files.
	chunkSize    int
	chunkOverlap int
}

func (h header) chunked() bool { return h.chunkSize > 0 }

func encode(args []string) error {
	fs := flag.NewFlagSet("prlcfile encode", flag.ContinueOnError)
	var (
		in, out   string
		blocks    int
		coded     int
		levelsStr string
		distStr   string
		schemeStr string
		codingStr string
		seed      int64
		workers   int
	)
	fs.StringVar(&in, "in", "", "input file")
	fs.StringVar(&out, "out", "", "output directory for block files")
	fs.IntVar(&blocks, "blocks", 100, "number of source blocks to split the file into")
	fs.IntVar(&coded, "coded", 0, "number of coded blocks to produce (0 = 1.6x blocks)")
	fs.StringVar(&levelsStr, "levels", "0.1,0.2,0.7", "comma-separated level fractions of the file, most important first")
	fs.StringVar(&distStr, "dist", "", "priority distribution over levels (default uniform)")
	fs.StringVar(&schemeStr, "scheme", "plc", "coding scheme: rlc, slc or plc")
	fs.StringVar(&codingStr, "coding", "auto", "coefficient generator: auto, dense, sparse, band or chunked (auto picks by generation size)")
	fs.Int64Var(&seed, "seed", 1, "random seed")
	fs.IntVar(&workers, "workers", runtime.GOMAXPROCS(0), "encoder worker count (output is seed-deterministic for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if in == "" || out == "" {
		return fmt.Errorf("encode: -in and -out are required")
	}
	scheme, err := core.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("encode: %s is empty", in)
	}
	if blocks <= 0 {
		return fmt.Errorf("encode: -blocks %d, want > 0", blocks)
	}
	if blocks > len(data) {
		blocks = len(data)
	}
	if coded == 0 {
		coded = blocks + (blocks*3+4)/5
	}
	if coded < blocks {
		return fmt.Errorf("encode: -coded %d < -blocks %d cannot ever fully recover", coded, blocks)
	}

	// Split the file into equal payloads (zero-padded tail).
	sources := cliutil.SplitPayloads(data, blocks)
	payloadLen := len(sources[0])

	// Level sizes from fractions.
	fracs, err := parseFloats(levelsStr)
	if err != nil {
		return fmt.Errorf("encode: -levels: %w", err)
	}
	sizes, err := fractionsToSizes(fracs, blocks)
	if err != nil {
		return err
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return err
	}
	var dist core.PriorityDistribution
	if distStr == "" {
		dist = core.NewUniformDistribution(levels.Count())
	} else {
		vals, err := parseFloats(distStr)
		if err != nil {
			return fmt.Errorf("encode: -dist: %w", err)
		}
		dist = core.PriorityDistribution(vals)
	}
	if err := dist.Validate(levels); err != nil {
		return err
	}
	coding, err := core.ParseCoding(codingStr)
	if err != nil {
		return err
	}
	if coding == core.CodingAuto {
		coding = core.AutoCoding(blocks)
	}

	h := header{
		scheme:     scheme,
		levelSizes: sizes,
		fileSize:   uint64(len(data)),
		payloadLen: payloadLen,
	}
	var cb []*core.CodedBlock
	if coding == core.CodingChunked {
		// Chunked coding trades the level structure for flat per-chunk
		// generations: the block's Level field carries the chunk index, so
		// the scheme and distribution do not apply.
		layout, err := core.DefaultChunkLayout(blocks)
		if err != nil {
			return err
		}
		h.chunkSize = layout.Size
		h.chunkOverlap = layout.Overlap
		cenc, err := core.NewChunkedEncoder(layout, sources)
		if err != nil {
			return err
		}
		cb, err = cenc.EncodeBatch(rand.New(rand.NewSource(seed)), coded)
		if err != nil {
			return err
		}
	} else {
		var opts []core.EncoderOption
		switch coding {
		case core.CodingSparse:
			opts = append(opts, core.WithSparsity(core.LogSparsity(blocks)))
		case core.CodingBand:
			opts = append(opts, core.WithBand(core.DefaultBandWidth))
		}
		enc, err := core.NewEncoder(scheme, levels, sources, opts...)
		if err != nil {
			return err
		}
		penc, err := core.NewParallelEncoder(enc, workers)
		if err != nil {
			return err
		}
		cb, err = penc.EncodeBatch(seed, dist, coded)
		if err != nil {
			return err
		}
	}
	out = filepath.Clean(out)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i, b := range cb {
		path := filepath.Join(out, fmt.Sprintf("block_%05d%s", i, blockSuffix))
		if err := writeBlock(path, h, b); err != nil {
			return err
		}
	}
	fmt.Printf("encoded %s (%d bytes) into %d coded blocks in %s\n", in, len(data), coded, out)
	if coding == core.CodingChunked {
		fmt.Printf("coding chunked (%d-block chunks, %d overlap), %d source blocks, payload %d bytes/block\n",
			h.chunkSize, h.chunkOverlap, blocks, payloadLen)
	} else {
		fmt.Printf("scheme %s, coding %s, %d source blocks, levels %v, payload %d bytes/block\n",
			scheme, coding, blocks, sizes, payloadLen)
	}
	return nil
}

func decode(args []string) error {
	fs := flag.NewFlagSet("prlcfile decode", flag.ContinueOnError)
	var in, out string
	var seed int64
	var workers int
	fs.StringVar(&in, "in", "", "directory of block files")
	fs.StringVar(&out, "out", "", "output file for the recovered prefix")
	fs.Int64Var(&seed, "seed", 1, "random seed for the processing order")
	fs.IntVar(&workers, "workers", runtime.GOMAXPROCS(0), "decoder payload worker count (output is identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if in == "" || out == "" {
		return fmt.Errorf("decode: -in and -out are required")
	}
	entries, err := os.ReadDir(in)
	if err != nil {
		return err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), blockSuffix) {
			paths = append(paths, filepath.Join(in, e.Name()))
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("decode: no %s block files in %s", blockSuffix, in)
	}
	sort.Strings(paths)

	var (
		dec     blockSink
		levels  *core.Levels
		h0      header
		haveHdr bool
	)
	rng := rand.New(rand.NewSource(seed))
	for _, idx := range rng.Perm(len(paths)) {
		h, b, err := readBlock(paths[idx])
		if err != nil {
			fmt.Fprintf(os.Stderr, "prlcfile: skipping %s: %v\n", paths[idx], err)
			continue
		}
		if !haveHdr {
			h0, haveHdr = h, true
			levels, err = core.NewLevels(h.levelSizes...)
			if err != nil {
				return err
			}
			if h.chunked() {
				layout, err := core.NewChunkLayout(levels.Total(), h.chunkSize, h.chunkOverlap)
				if err != nil {
					return err
				}
				dec, err = core.NewChunkedDecoder(layout, h.payloadLen)
				if err != nil {
					return err
				}
			} else {
				ld, err := core.NewDecoder(h.scheme, levels, h.payloadLen)
				if err != nil {
					return err
				}
				ld.SetWorkers(workers)
				dec = ld
			}
		} else if !headersCompatible(h0, h) {
			fmt.Fprintf(os.Stderr, "prlcfile: skipping %s: incompatible header\n", paths[idx])
			continue
		}
		if _, err := dec.Add(b); err != nil {
			fmt.Fprintf(os.Stderr, "prlcfile: skipping %s: %v\n", paths[idx], err)
		}
		if dec.Complete() {
			break
		}
	}
	if dec == nil {
		return fmt.Errorf("decode: no readable block files")
	}

	// Write the recovered prefix: consecutive decoded source blocks from
	// the front (the strict priority model's usable output).
	recovered := dec.Sources()
	var buf []byte
	prefixBlocks := 0
	for _, p := range recovered {
		if p == nil {
			break
		}
		buf = append(buf, p...)
		prefixBlocks++
	}
	if uint64(len(buf)) > h0.fileSize {
		buf = buf[:h0.fileSize]
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	total := levels.Total()
	switch d := dec.(type) {
	case *core.Decoder:
		fmt.Printf("read %d block files; decoded %d/%d source blocks (%d levels), prefix %d blocks\n",
			len(paths), d.DecodedBlocks(), total, d.DecodedLevels(), prefixBlocks)
	case *core.ChunkedDecoder:
		fmt.Printf("read %d block files; decoded %d/%d source blocks (chunked), prefix %d blocks\n",
			len(paths), d.DecodedCount(), total, prefixBlocks)
	}
	fmt.Printf("wrote %d bytes to %s", len(buf), out)
	if dec.Complete() {
		fmt.Printf(" (complete file)")
	} else {
		fmt.Printf(" (partial recovery: %.1f%% of the file)", 100*float64(len(buf))/float64(h0.fileSize))
	}
	fmt.Println()
	return nil
}

// blockSink is the decode-side surface the level-structured and chunked
// decoders share.
type blockSink interface {
	Add(*core.CodedBlock) (bool, error)
	Complete() bool
	Sources() [][]byte
}

func headersCompatible(a, b header) bool {
	if a.scheme != b.scheme || a.fileSize != b.fileSize || a.payloadLen != b.payloadLen {
		return false
	}
	if a.chunkSize != b.chunkSize || a.chunkOverlap != b.chunkOverlap {
		return false
	}
	if len(a.levelSizes) != len(b.levelSizes) {
		return false
	}
	for i := range a.levelSizes {
		if a.levelSizes[i] != b.levelSizes[i] {
			return false
		}
	}
	return true
}

// writeBlock writes header then the block's standard wire encoding.
// Chunked headers get the v3 format with the chunk layout appended;
// everything else keeps the v2 bytes unchanged.
func writeBlock(path string, h header, b *core.CodedBlock) error {
	var buf []byte
	buf = append(buf, magic...)
	if h.chunked() {
		buf = append(buf, formatVerChunked)
	} else {
		buf = append(buf, formatVer)
	}
	buf = append(buf, byte(h.scheme))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.levelSizes)))
	for _, s := range h.levelSizes {
		buf = binary.BigEndian.AppendUint32(buf, uint32(s))
	}
	buf = binary.BigEndian.AppendUint64(buf, h.fileSize)
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.payloadLen))
	if h.chunked() {
		buf = binary.BigEndian.AppendUint32(buf, uint32(h.chunkSize))
		buf = binary.BigEndian.AppendUint32(buf, uint32(h.chunkOverlap))
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	buf = append(buf, wire...)
	return os.WriteFile(path, buf, 0o644)
}

func readBlock(path string) (header, *core.CodedBlock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return header{}, nil, err
	}
	if len(data) < len(magic)+2 || string(data[:4]) != magic {
		return header{}, nil, fmt.Errorf("not a PRLC block file")
	}
	ver := data[4]
	if ver != formatVer && ver != formatVerChunked {
		return header{}, nil, fmt.Errorf("unsupported format version %d", ver)
	}
	off := 5
	need := func(n int) error {
		if len(data)-off < n {
			return fmt.Errorf("truncated block file")
		}
		return nil
	}
	var h header
	h.scheme = core.Scheme(data[off])
	off++
	if err := need(2); err != nil {
		return header{}, nil, err
	}
	nLevels := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if err := need(4 * nLevels); err != nil {
		return header{}, nil, err
	}
	h.levelSizes = make([]int, nLevels)
	for i := range h.levelSizes {
		h.levelSizes[i] = int(binary.BigEndian.Uint32(data[off:]))
		off += 4
	}
	if err := need(8 + 4); err != nil {
		return header{}, nil, err
	}
	h.fileSize = binary.BigEndian.Uint64(data[off:])
	off += 8
	h.payloadLen = int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if ver == formatVerChunked {
		if err := need(8); err != nil {
			return header{}, nil, err
		}
		h.chunkSize = int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		h.chunkOverlap = int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if h.chunkSize <= 0 {
			return header{}, nil, fmt.Errorf("chunked block file with chunk size %d", h.chunkSize)
		}
	}
	// The remainder is the block's standard wire encoding.
	b := &core.CodedBlock{}
	if err := b.UnmarshalBinary(data[off:]); err != nil {
		return header{}, nil, err
	}
	if len(b.Payload) != h.payloadLen {
		return header{}, nil, fmt.Errorf("block payload %d bytes, header says %d", len(b.Payload), h.payloadLen)
	}
	return h, b, nil
}
