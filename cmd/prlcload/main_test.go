package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/loadgen"
)

func TestScenariosCmd(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"scenarios"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steady-state", "flash-crowd", "churn-storm", "repair-under-load"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("scenarios output missing %s:\n%s", want, b.String())
		}
	}
}

func TestShowCmd(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"show", "churn-storm"}, &b); err != nil {
		t.Fatal(err)
	}
	var sc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &sc); err != nil {
		t.Fatalf("show output is not JSON: %v\n%s", err, b.String())
	}
	if sc["name"] != "churn-storm" || sc["expect_zero_errors"] != true {
		t.Errorf("show output = %v", sc)
	}
	if err := run([]string{"show", "nope"}, &b); err == nil {
		t.Error("show nope succeeded")
	}
}

func TestBadUsage(t *testing.T) {
	var b strings.Builder
	for _, args := range [][]string{
		{},
		{"explode"},
		{"run"},                                 // missing -scenario
		{"run", "-scenario", "nope"},            // unknown builtin
		{"matrix", "-scenario", "steady-state"}, // matrix takes no scenario
		{"run", "-scenario", "steady-state", "extra"}, // stray arg
	} {
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// One short churn scenario against the in-process fleet, end to end
// through the CLI: BENCH JSON lands on disk, -check passes, zero
// client-visible errors, bit-exact decode.
func TestRunInprocWritesBench(t *testing.T) {
	dir := t.TempDir()
	scPath := filepath.Join(dir, "sc.json")
	outPath := filepath.Join(dir, "BENCH_load.json")
	os.WriteFile(scPath, []byte(`{
		"name": "cli-churn", "seed": 5, "duration": "700ms", "clients": 16,
		"rate": 120, "put_fraction": 0.4, "objects": 2, "blocks": 8,
		"payload_bytes": 256, "level_fractions": [0.25, 0.75], "tolerance": 1,
		"expect_zero_errors": true,
		"faults": [
			{"at": "100ms", "kind": "kill", "node": -1, "for": "200ms"},
			{"at": "250ms", "kind": "partition", "node": -1, "for": "150ms"}
		]
	}`), 0o644)

	var b strings.Builder
	err := run([]string{"run", "-scenario", scPath, "-nodes", "3", "-out", outPath, "-check"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "all SLOs held") {
		t.Errorf("output:\n%s", b.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchFile
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_load.json invalid: %v", err)
	}
	if bench.Bench != "load" || bench.Fleet != "inproc" || len(bench.Reports) != 1 {
		t.Fatalf("bench = %+v", bench)
	}
	rep := bench.Reports[0]
	if rep.OpsRun == 0 || rep.ClientErrors != 0 || !rep.Decode.BitExact {
		t.Errorf("report = ops %d, errors %d, bit-exact %v (%s)",
			rep.OpsRun, rep.ClientErrors, rep.Decode.BitExact, rep.Decode.Err)
	}
	if len(rep.Faults) != 2 || rep.ScheduleHash == "" {
		t.Errorf("faults = %+v hash=%q", rep.Faults, rep.ScheduleHash)
	}
	if len(bench.Violations) != 0 {
		t.Errorf("violations = %v", bench.Violations)
	}
}

// buildPrlcd compiles the real daemon once per test binary.
func buildPrlcd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prlcd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/prlcd")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building prlcd: %v\n%s", err, out)
	}
	return bin
}

// The acceptance shape: a chaos scenario against real prlcd processes —
// kill -9 and re-exec with the same data directory mid-load — ending in
// a valid report with a bit-exact decode and consistent scrapes.
func TestRunAgainstRealDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and execs real daemons")
	}
	bin := buildPrlcd(t)
	dir := t.TempDir()
	scPath := filepath.Join(dir, "sc.json")
	outPath := filepath.Join(dir, "BENCH_load.json")
	os.WriteFile(scPath, []byte(`{
		"name": "real-churn", "seed": 6, "duration": "1s", "clients": 16,
		"rate": 100, "put_fraction": 0.4, "objects": 2, "blocks": 8,
		"payload_bytes": 256, "level_fractions": [0.25, 0.75], "tolerance": 1,
		"expect_zero_errors": true,
		"faults": [{"at": "200ms", "kind": "kill", "node": -1, "for": "300ms"}]
	}`), 0o644)

	var b strings.Builder
	err := run([]string{"run", "-scenario", scPath, "-nodes", "3",
		"-prlcd", bin, "-data-dir", filepath.Join(dir, "data"),
		"-out", outPath, "-check"}, &b)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	var bench benchFile
	raw, _ := os.ReadFile(outPath)
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	rep := bench.Reports[0]
	if bench.Fleet != "prlcd" || rep.OpsRun == 0 || !rep.Decode.BitExact {
		t.Errorf("bench=%s ops=%d decode=%v (%s)\n%s",
			bench.Fleet, rep.OpsRun, rep.Decode.BitExact, rep.Decode.Err, b.String())
	}
	if rep.ClientErrors != 0 {
		t.Errorf("%d client-visible errors against real daemons\n%s", rep.ClientErrors, b.String())
	}
	if rep.Scrape.Nodes != 3 || rep.Scrape.ScrapeErrors != 0 {
		t.Errorf("scrape = %+v", rep.Scrape)
	}
	// The killed node's data dir has segments on disk: a real durable
	// restart, not a fresh daemon.
	matches, _ := filepath.Glob(filepath.Join(dir, "data", "node*", "seg-*.plcseg"))
	if len(matches) == 0 {
		t.Error("no segment files under the fleet data dirs")
	}
}

func TestApplyOverridesScalesSchedule(t *testing.T) {
	sc, err := loadgen.Builtin("churn-storm")
	if err != nil {
		t.Fatal(err)
	}
	applyOverrides(&sc, sc.Duration.D()/10, sc.Rate*2, 8, 99)
	if sc.Clients != 8 || sc.Seed != 99 {
		t.Errorf("overrides = %+v", sc)
	}
	// churn-storm's first fault is at 1s of a 10s run; a 10x shorter run
	// puts it at 100ms.
	if sc.Faults[0].At.D() != 100*time.Millisecond {
		t.Errorf("fault at %v, want 100ms", sc.Faults[0].At.D())
	}
	if sc.Rate != 600 {
		t.Errorf("rate = %v", sc.Rate)
	}
}
