package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ProcFleet runs real prlcd daemon processes — the production-shaped
// target for the load harness. Each node gets its own data directory,
// block-store port, and metrics port; Kill sends SIGKILL and Restart
// re-execs the daemon against the same directory and addresses, so a
// restarted node recovers its segments exactly like a crashed daemon in
// the field.
type ProcFleet struct {
	bin  string
	base string
	logw io.Writer // daemon stdout/stderr when non-nil

	mu    sync.Mutex
	nodes []*procNode
}

type procNode struct {
	addr    string
	maddr   string
	dataDir string
	cmd     *exec.Cmd // nil while down
}

// StartProcFleet boots n daemons from the prlcd binary at bin, with
// data directories under base.
func StartProcFleet(bin string, n int, base string, logw io.Writer) (*ProcFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("prlcload: fleet needs at least one node")
	}
	abs, err := exec.LookPath(bin)
	if err != nil {
		return nil, fmt.Errorf("prlcload: prlcd binary: %w", err)
	}
	f := &ProcFleet{bin: abs, base: base, logw: logw, nodes: make([]*procNode, n)}
	for i := 0; i < n; i++ {
		dir := filepath.Join(base, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			f.Close()
			return nil, err
		}
		f.nodes[i] = &procNode{dataDir: dir}
		if err := f.startNode(i); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// startNode execs the daemon. First boot uses :0 and learns the bound
// addresses from the startup banners; restarts pin the learned ones.
func (f *ProcFleet) startNode(i int) error {
	n := f.nodes[i]
	addr, maddr := n.addr, n.maddr
	if addr == "" {
		addr, maddr = "127.0.0.1:0", "127.0.0.1:0"
	}
	cmd := exec.Command(f.bin, "serve",
		"-addr", addr,
		"-metrics", maddr,
		"-data-dir", n.dataDir,
		"-pid-file", filepath.Join(n.dataDir, "prlcd.pid"),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("prlcload: start node %d: %w", i, err)
	}

	// The daemon announces "metrics on http://ADDR/metrics" then
	// "serving on ADDR"; wait for both, then keep draining the pipe so
	// the daemon never blocks on a full stdout buffer.
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(10 * time.Second)
	gotAddr, gotMetrics := n.addr, n.maddr
	for (gotAddr == "" || gotMetrics == "") && time.Now().Before(deadline) && sc.Scan() {
		line := sc.Text()
		if f.logw != nil {
			fmt.Fprintf(f.logw, "node%d: %s\n", i, line)
		}
		if _, rest, ok := strings.Cut(line, "serving on "); ok {
			gotAddr = strings.TrimSpace(rest)
		}
		if _, rest, ok := strings.Cut(line, "metrics on http://"); ok {
			gotMetrics = strings.TrimSuffix(strings.TrimSpace(rest), "/metrics")
		}
	}
	if gotAddr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("prlcload: node %d never announced its address", i)
	}
	go func() {
		for sc.Scan() {
			if f.logw != nil {
				fmt.Fprintf(f.logw, "node%d: %s\n", i, sc.Text())
			}
		}
	}()
	n.addr, n.maddr, n.cmd = gotAddr, gotMetrics, cmd
	return nil
}

func (f *ProcFleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.addr
	}
	return out
}

func (f *ProcFleet) MetricsAddrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.maddr
	}
	return out
}

// Kill hard-kills the daemon (SIGKILL — a crash, not a drain) and reaps
// it.
func (f *ProcFleet) Kill(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= len(f.nodes) {
		return fmt.Errorf("prlcload: kill node %d of %d", node, len(f.nodes))
	}
	n := f.nodes[node]
	if n.cmd == nil {
		return fmt.Errorf("prlcload: node %d already down", node)
	}
	n.cmd.Process.Kill()
	n.cmd.Wait()
	n.cmd = nil
	return nil
}

// Restart re-execs a killed daemon on its original addresses and data
// directory.
func (f *ProcFleet) Restart(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= len(f.nodes) {
		return fmt.Errorf("prlcload: restart node %d of %d", node, len(f.nodes))
	}
	if f.nodes[node].cmd != nil {
		return fmt.Errorf("prlcload: node %d already up", node)
	}
	return f.startNode(node)
}

// Revive restarts every down node (between matrix scenarios).
func (f *ProcFleet) Revive() error {
	f.mu.Lock()
	down := []int{}
	for i, n := range f.nodes {
		if n.cmd == nil {
			down = append(down, i)
		}
	}
	f.mu.Unlock()
	for _, i := range down {
		if err := f.Restart(i); err != nil {
			return err
		}
	}
	return nil
}

// Close kills and reaps every live daemon.
func (f *ProcFleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if n != nil && n.cmd != nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
			n.cmd = nil
		}
	}
}
