// Command prlcload pushes a prlc fleet through named load-and-chaos
// scenarios and reports whether it held its SLOs.
//
//	prlcload scenarios                               # list the builtin matrix
//	prlcload show churn-storm                        # print a scenario as JSON
//	prlcload run -scenario steady-state              # one scenario, in-process fleet
//	prlcload run -scenario my.json -prlcd ./prlcd    # scenario file, real daemons
//	prlcload matrix -prlcd ./prlcd -out BENCH_load.json -check
//
// run and matrix drive either real prlcd processes (-prlcd, each with
// its own data directory, killed and restarted live by the chaos
// controller) or an in-process fleet (the default, for smoke tests).
// Every run emits per-level put/get p50/p99 latencies, error rates,
// goodput, the executed fault schedule with its determinism hash, a
// bit-exact level-0 decode spot-check, and a cross-check of the
// generator's own counters against the fleet's scraped metrics. -check
// turns SLO violations into a nonzero exit for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prlcload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: prlcload scenarios|show|run|matrix [flags]")
	}
	switch args[0] {
	case "scenarios":
		return scenariosCmd(out)
	case "show":
		return showCmd(args[1:], out)
	case "run":
		return runCmd(args[1:], out, false)
	case "matrix":
		return runCmd(args[1:], out, true)
	default:
		return fmt.Errorf("unknown subcommand %q (want scenarios, show, run or matrix)", args[0])
	}
}

func scenariosCmd(out io.Writer) error {
	fmt.Fprintf(out, "%-18s %-8s %s\n", "scenario", "seed", "description")
	for _, sc := range loadgen.Builtins() {
		fmt.Fprintf(out, "%-18s %-8d %s\n", sc.Name, sc.Seed, sc.Description)
	}
	return nil
}

func showCmd(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: prlcload show <scenario>")
	}
	sc, err := loadgen.Builtin(args[0])
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(raw))
	return nil
}

// benchFile is the BENCH_load.json shape: one report per scenario plus
// the fleet description and any SLO violations.
type benchFile struct {
	Bench      string            `json:"bench"`
	Generated  string            `json:"generated"`
	Fleet      string            `json:"fleet"`
	Nodes      int               `json:"nodes"`
	Reports    []*loadgen.Report `json:"reports"`
	Violations []string          `json:"violations,omitempty"`
}

func runCmd(args []string, out io.Writer, matrix bool) error {
	name := "run"
	if matrix {
		name = "matrix"
	}
	fs := flag.NewFlagSet("prlcload "+name, flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "", "builtin scenario names (comma-separated) or a scenario file (run only)")
		nodes    = fs.Int("nodes", 3, "fleet size")
		prlcd    = fs.String("prlcd", "", "prlcd binary: run real daemon processes (empty = in-process fleet)")
		dataDir  = fs.String("data-dir", "", "base directory for daemon data dirs (default: temp)")
		outPath  = fs.String("out", "", "write BENCH_load.json-style report here")
		check    = fs.Bool("check", false, "exit nonzero on SLO violations")
		duration = fs.Duration("duration", 0, "override scenario duration")
		rate     = fs.Float64("rate", 0, "override base arrival rate (ops/sec; phases scale proportionally)")
		clients  = fs.Int("clients", 0, "override worker-pool size")
		seed     = fs.Int64("seed", 0, "override scenario seed")
		verbose  = fs.Bool("v", false, "progress and daemon logs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var scs []loadgen.Scenario
	switch {
	case matrix:
		if *scenario != "" {
			return fmt.Errorf("matrix runs all builtin scenarios; use run -scenario for one")
		}
		scs = loadgen.Builtins()
	case *scenario == "":
		return fmt.Errorf("run needs -scenario <name|file> (see prlcload scenarios)")
	case strings.ContainsAny(*scenario, "./") || strings.HasSuffix(*scenario, ".json"):
		var err error
		scs, err = loadgen.LoadScenarios(*scenario)
		if err != nil {
			return err
		}
	default:
		for _, name := range strings.Split(*scenario, ",") {
			sc, err := loadgen.Builtin(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			scs = append(scs, sc)
		}
	}
	for i := range scs {
		applyOverrides(&scs[i], *duration, *rate, *clients, *seed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Boot the fleet.
	var (
		fleet     loadgen.Fleet
		closer    func()
		fleetKind = "inproc"
	)
	if *prlcd != "" {
		base := *dataDir
		if base == "" {
			var err error
			base, err = os.MkdirTemp("", "prlcload-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(base)
		}
		var logw io.Writer
		if *verbose {
			logw = out
		}
		pf, err := StartProcFleet(*prlcd, *nodes, base, logw)
		if err != nil {
			return err
		}
		fleet, closer, fleetKind = pf, pf.Close, "prlcd"
	} else {
		sf, err := loadgen.NewServerFleet(*nodes, true)
		if err != nil {
			return err
		}
		fleet, closer = sf, sf.Close
	}
	defer closer()
	fmt.Fprintf(out, "prlcload: %s fleet of %d nodes: %s\n", fleetKind, *nodes, strings.Join(fleet.Addrs(), " "))

	rc := loadgen.RunConfig{}
	if *verbose {
		rc.Logf = func(format string, a ...any) { fmt.Fprintf(out, "prlcload: "+format+"\n", a...) }
	}

	bench := benchFile{
		Bench:     "load",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Fleet:     fleetKind,
		Nodes:     *nodes,
	}
	reviver, _ := fleet.(interface{ Revive() error })
	for i, sc := range scs {
		if i > 0 && reviver != nil {
			// A permanent kill in the previous scenario must not degrade
			// this one.
			if err := reviver.Revive(); err != nil {
				return fmt.Errorf("reviving fleet before %s: %w", sc.Name, err)
			}
		}
		rep, err := loadgen.Run(ctx, fleet, sc, rc)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		bench.Reports = append(bench.Reports, rep)
		fmt.Fprint(out, rep.Text())
		for _, v := range rep.SLOViolations(sc.ExpectZeroErrors) {
			bench.Violations = append(bench.Violations, sc.Name+": "+v)
		}
	}

	if *outPath != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "prlcload: wrote %s (%d scenarios)\n", *outPath, len(bench.Reports))
	}
	if len(bench.Violations) > 0 {
		fmt.Fprintf(out, "prlcload: %d SLO violations:\n", len(bench.Violations))
		for _, v := range bench.Violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
		if *check {
			return fmt.Errorf("%d SLO violations", len(bench.Violations))
		}
	} else {
		fmt.Fprintln(out, "prlcload: all SLOs held")
	}
	return nil
}

// applyOverrides rescales a scenario from the command line; rate phases
// scale by the same factor so a flash crowd stays a flash crowd.
func applyOverrides(sc *loadgen.Scenario, duration time.Duration, rate float64, clients int, seed int64) {
	if duration > 0 {
		scale := float64(duration) / float64(sc.Duration.D())
		sc.Duration = loadgen.Duration(duration)
		for i := range sc.Phases {
			sc.Phases[i].At = loadgen.Duration(float64(sc.Phases[i].At.D()) * scale)
		}
		for i := range sc.Faults {
			sc.Faults[i].At = loadgen.Duration(float64(sc.Faults[i].At.D()) * scale)
			if sc.Faults[i].For > 0 {
				sc.Faults[i].For = loadgen.Duration(float64(sc.Faults[i].For.D()) * scale)
			}
		}
		if sc.RepairInterval > 0 {
			sc.RepairInterval = loadgen.Duration(float64(sc.RepairInterval.D()) * scale)
		}
		if sc.MigrateInterval > 0 {
			sc.MigrateInterval = loadgen.Duration(float64(sc.MigrateInterval.D()) * scale)
		}
	}
	if rate > 0 {
		scale := rate / sc.Rate
		sc.Rate = rate
		for i := range sc.Phases {
			sc.Phases[i].Rate *= scale
		}
	}
	if clients > 0 {
		sc.Clients = clients
	}
	if seed != 0 {
		sc.Seed = seed
	}
}
