# Priority Random Linear Codes — build and reproduction targets.

GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the message-passing cluster and the
# parallel experiment harness are the interesting targets).
race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus the extension benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure and table of the paper at full scale
# (N = 1000, 100 trials; several minutes on one core). CSVs land in
# results/.
figures:
	$(GO) run ./cmd/prlcbench -all -csv results

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sensornet
	$(GO) run ./examples/p2pmonitor
	$(GO) run ./examples/feasibility
	$(GO) run ./examples/churntimeline
	$(GO) run ./examples/multires
	$(GO) run ./examples/tcpstore

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
