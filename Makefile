# Priority Random Linear Codes — build and reproduction targets.

GO ?= go

.PHONY: all build vet test race bench bench-kernels bench-decode bench-repair bench-metrics bench-sparse bench-disk bench-migrate check fuzz-smoke loadtest loadtest-smoke daemon-demo repair-demo migrate-demo figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the message-passing cluster and the
# parallel experiment harness are the interesting targets).
race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus the extension benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Kernel-layer perf baseline: GF(2^8) vector kernels (fast vs scalar
# reference) and the encode/decode pipeline at N=64/256/1024, captured as
# BENCH_kernels.json so later perf PRs have numbers to diff against.
bench-kernels:
	{ $(GO) test -run='^$$' -bench 'Benchmark(Add)?MulSlice' -benchtime=500ms ./internal/gf256 && \
	  $(GO) test -run='^$$' -bench 'Benchmark(Encode|Decode)N' -benchtime=5x ./internal/core ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_kernels.json \
	    -note "Ref benchmarks are the pre-kernel scalar baseline; WorkersK pair against the 1-worker pipeline and are bounded by num_cpu"

# Decode-path perf baseline: structure-aware progressive decoding (level
# truncation + per-level SLC sub-decoders) against the dense structure-blind
# elimination (Ref), plus the payload-striping pipeline, captured as
# BENCH_decode.json.
bench-decode:
	$(GO) test -run='^$$' -bench 'BenchmarkDecode(PLC|SLC|Striped)N' -benchtime=10x ./internal/core \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_decode.json -by "make bench-decode" \
	    -note "DecodeXXXNk vs DecodeXXXNkRef is structured (level-truncated, per-level) vs dense decode of the same block stream; 64 B payloads keep elimination dominant; StripedNk WorkersK pair against the 1-worker pipeline and are bounded by num_cpu"

# Repair-layer economics: regenerating one block by recombining an
# 8-survivor sample vs the decode-then-re-encode baseline (the whole
# code), captured as BENCH_repair.json. MB/s numbers are bytes *moved*
# per regenerated block, so the Ref line's denominator is every block.
bench-repair:
	$(GO) test -run='^$$' -bench 'Benchmark(Regenerate|AuditRank)' -benchtime=100x ./internal/repair \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_repair.json -by "make bench-repair" \
	    -note "Regenerate recombines one fresh block from an 8-survivor sample; RegenerateRef decodes all 96 blocks and re-encodes; B/op-style MB/s are bytes moved per regenerated block"

# Observability overhead: each Metered benchmark runs the hot path with a
# live registry attached, its Ref twin with metrics detached, so the paired
# "speedup" in BENCH_metrics.json is the inverse of the instrumentation
# overhead (0.95 = metrics cost 5%; the budget is ≤5% on every pair).
bench-metrics:
	{ $(GO) test -run='^$$' -bench 'BenchmarkMetered(Encode|Decode)' -benchtime=500ms ./internal/core && \
	  $(GO) test -run='^$$' -bench 'BenchmarkMeteredRoundtrip' -benchtime=500ms ./internal/store ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_metrics.json -by "make bench-metrics" \
	    -note "MeteredX runs with a live metrics registry, MeteredXRef with metrics detached; speedup = ref/metered is the inverse instrumentation overhead, budget >= 0.95 (5%) per pair"

# Sparse-coding perf baseline: sparse (O(ln N) nonzeros), band
# (perpetual-style contiguous runs) and expander-chunked decode against
# the structure-blind dense elimination (Ref) of the identical block
# stream, plus coefficient wire bytes per block (v3 sparse frames vs the
# dense v1 encoding), captured as BENCH_sparse.json.
bench-sparse:
	$(GO) test -run='^$$' -bench 'BenchmarkDecode(Sparse|Band|Chunked)N|BenchmarkWire(Sparse|Chunked)N' -benchtime=5x ./internal/core \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_sparse.json -by "make bench-sparse" \
	    -note "DecodeXN vs DecodeXNRef is the sparse-aware elimination vs dense AddRef over the same densified stream; 64 B payloads keep elimination dominant; wire-B/block metrics are coefficient wire bytes per block, WireSparseN1024Ref being the dense v1 frames of the same vectors; ChunkedN4096 has no Ref (dense baseline impractical at that N)"

# Disk-engine perf baseline: group-commit puts against the fsync-per-put
# durability baseline (Ref) under the identical 32-connection load, the
# beyond-RAM capacity run (10x an in-memory cap per iteration, heap
# growth reported), and the frame buffer-reuse pairs (-benchmem so the
# B/op delta of the pool and read-scratch paths lands in the snapshot),
# captured as BENCH_disk.json.
bench-disk:
	{ $(GO) test -run='^$$' -bench 'BenchmarkDiskPutGroupCommit' -benchtime=2000x ./internal/diskstore && \
	  $(GO) test -run='^$$' -bench 'BenchmarkDiskPutBeyondRAM' -benchtime=1x ./internal/diskstore && \
	  $(GO) test -run='^$$' -bench 'BenchmarkFrame(Write|Read)' -benchtime=1000x -benchmem ./internal/store ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_disk.json -by "make bench-disk" \
	    -note "DiskPutGroupCommit vs Ref is one fsync per coalesced batch vs one per put, same 32 concurrent putters; DiskPutBeyondRAM ingests 10x a 1024-block RAM cap per iteration (capacity-x = stored blocks / cap, heap-MB = heap growth vs stored-MB on disk); FrameWrite/Read vs Ref are the pooled build buffer and caller-owned read scratch vs fresh allocations per frame"

# Migration economics under live traffic: the grow-fleet scenario (a
# node joins mid-run, the mover re-homes blocks most-critical-first)
# next to the steady-state baseline on the same fleet, captured as
# BENCH_migrate.json. Compare per-level put/get p99 across the two
# reports — the acceptance budget is 2x the no-migration baseline —
# and the migration section for re-homing throughput; -check fails the
# target on any client-visible error or a non-bit-exact level-0 decode.
bench-migrate: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	$(GO) run ./cmd/prlcload run -scenario steady-state,grow-fleet -duration 10s \
	    -nodes 4 -prlcd /tmp/prlcd -out BENCH_migrate.json -check

# Fast correctness gate: vet everything, race-test the packages with
# concurrent hot paths (the word-parallel kernels, the row arenas, the
# parallel encoder, the networked store, the placement ring and its
# failure detector, the disk engine's group-commit writer, the repair
# daemon, the ring rebalancer, the shared metrics registry they all
# write to, and the load-and-chaos harness that exercises all of them
# at once).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/gf256 ./internal/gfmat ./internal/core ./internal/chord ./internal/gossip ./internal/store ./internal/diskstore ./internal/repair ./internal/mover ./internal/metrics ./internal/loadgen

# The full SLO scenario matrix against real prlcd daemons: steady-state,
# flash-crowd, churn-storm and repair-under-load, each an open-loop run
# with live chaos (kill -9 + re-exec, partitions, corruption) and an SLO
# report (per-level put/get p50/p99, error rates, goodput, bit-exact
# level-0 decode, metrics cross-check), captured as BENCH_load.json.
# -check makes SLO violations fail the target.
loadtest: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	$(GO) run ./cmd/prlcload matrix -nodes 3 -prlcd /tmp/prlcd -out BENCH_load.json -check

# CI-sized slice of the matrix: steady-state, churn-storm and
# grow-fleet at 5s each against 4 real daemons. Churn-storm and
# grow-fleet both promise zero client-visible errors and a bit-exact
# level-0 decode, so this smoke run proves the fleet survives
# kill/restart, partition/heal and a mid-run ring join with live
# migration under load.
loadtest-smoke: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	$(GO) run ./cmd/prlcload run -scenario steady-state,churn-storm,grow-fleet -duration 5s \
	    -nodes 4 -prlcd /tmp/prlcd -out BENCH_load.json -check

# Short fuzz pass over every fuzz target: the block-file parser, the wire
# format, the decoder equivalence oracle and the GF(2^8) kernels. ~20s per
# target; CI runs this on every push.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz FuzzReadBlock -fuzztime $(FUZZTIME) ./cmd/prlcfile
	$(GO) test -run='^$$' -fuzz FuzzUnmarshalBinary -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz FuzzDecoderEquivBatch -fuzztime $(FUZZTIME) ./internal/gfmat
	$(GO) test -run='^$$' -fuzz FuzzAddMulSliceEquiv -fuzztime $(FUZZTIME) ./internal/gf256
	$(GO) test -run='^$$' -fuzz FuzzRecombineEquiv -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz FuzzSparseDenseEquiv -fuzztime $(FUZZTIME) ./internal/gfmat
	$(GO) test -run='^$$' -fuzz FuzzChunkedDecodeEquiv -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz FuzzParseObjectID -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz FuzzObjectFrame -fuzztime $(FUZZTIME) ./internal/core

# Three prlcd daemons on loopback ports, the tcpstore demo against them
# (it shuts daemon 1 down over the wire), then kill the rest.
daemon-demo: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	@/tmp/prlcd serve -addr 127.0.0.1:7071 & echo $$! > /tmp/prlcd1.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7072 & echo $$! > /tmp/prlcd2.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7073 & echo $$! > /tmp/prlcd3.pid
	@sleep 1
	$(GO) run ./examples/tcpstore -addrs 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
	@for f in /tmp/prlcd1.pid /tmp/prlcd2.pid /tmp/prlcd3.pid; do \
		kill `cat $$f` 2>/dev/null || true; rm -f $$f; done

# The repair story end to end: provision a file across three daemons
# (bulk level weighted so it has decoding headroom), kill one and
# replace it with a blank node (churn), regenerate its redundancy by
# decode-free recombination, then prove the regenerated blocks carry
# real information by killing an *original* replica and recovering the
# full file from the repaired node plus the last survivor — a loss
# pattern the fleet does NOT survive without the repair step.
repair-demo: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	@head -c 16384 /dev/urandom > /tmp/repair_demo.bin
	@/tmp/prlcd serve -addr 127.0.0.1:7181 & echo $$! > /tmp/prlcd_r1.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7182 & echo $$! > /tmp/prlcd_r2.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7183 & echo $$! > /tmp/prlcd_r3.pid
	@sleep 1
	/tmp/prlcd store put -addrs 127.0.0.1:7181,127.0.0.1:7182,127.0.0.1:7183 \
	    -in /tmp/repair_demo.bin -blocks 100 -coded 160 -levels 0.1,0.9 \
	    -dist 0.2,0.8 -scheme plc
	/tmp/prlcd store shutdown -addr 127.0.0.1:7182
	@sleep 1
	@/tmp/prlcd serve -addr 127.0.0.1:7182 & echo $$! > /tmp/prlcd_r2.pid
	@sleep 1
	/tmp/prlcd repair -addrs 127.0.0.1:7181,127.0.0.1:7182,127.0.0.1:7183 \
	    -scheme plc -sizes 10,90 -dist 0.2,0.8 -total 160 -budget 128
	/tmp/prlcd store shutdown -addr 127.0.0.1:7181
	/tmp/prlcd store get -addrs 127.0.0.1:7182,127.0.0.1:7183 \
	    -scheme plc -sizes 10,90 -size 16384 -out /tmp/repair_demo_out.bin
	cmp /tmp/repair_demo.bin /tmp/repair_demo_out.bin && echo "repair-demo: file survived churn bit-exact"
	@for f in /tmp/prlcd_r1.pid /tmp/prlcd_r2.pid /tmp/prlcd_r3.pid; do \
		kill `cat $$f` 2>/dev/null || true; rm -f $$f; done
	@rm -f /tmp/repair_demo.bin /tmp/repair_demo_out.bin

# The fleet-growth story end to end: a file is provisioned across a
# two-daemon ring, two fresh daemons widen the ring, and `prlcd
# migrate` re-homes every displaced object (regenerating blocks on the
# new owners, wiping the stale holders). A second round proves the
# placement is settled, then an *original* daemon goes away and the
# file still recovers bit-exactly from the grown fleet — the migrated
# copies carry the data now, not the wiped originals.
migrate-demo: build
	@$(GO) build -o /tmp/prlcd ./cmd/prlcd
	@head -c 16384 /dev/urandom > /tmp/migrate_demo.bin
	@/tmp/prlcd serve -addr 127.0.0.1:7191 & echo $$! > /tmp/prlcd_m1.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7192 & echo $$! > /tmp/prlcd_m2.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7193 & echo $$! > /tmp/prlcd_m3.pid
	@/tmp/prlcd serve -addr 127.0.0.1:7194 & echo $$! > /tmp/prlcd_m4.pid
	@sleep 1
	/tmp/prlcd store put -addrs 127.0.0.1:7191,127.0.0.1:7192 \
	    -in /tmp/migrate_demo.bin -object demo-grow -blocks 100 -coded 160 \
	    -levels 0.1,0.9 -dist 0.2,0.8 -scheme plc -replicas 2
	/tmp/prlcd migrate -addrs 127.0.0.1:7191,127.0.0.1:7192,127.0.0.1:7193,127.0.0.1:7194 \
	    -replicas 2 -scheme plc -sizes 10,90 -dist 0.2,0.8 -total 160
	/tmp/prlcd migrate -addrs 127.0.0.1:7191,127.0.0.1:7192,127.0.0.1:7193,127.0.0.1:7194 \
	    -replicas 2 -scheme plc -sizes 10,90 -dist 0.2,0.8 -total 160
	/tmp/prlcd store shutdown -addr 127.0.0.1:7191
	/tmp/prlcd store get -addrs 127.0.0.1:7191,127.0.0.1:7192,127.0.0.1:7193,127.0.0.1:7194 \
	    -object demo-grow -replicas 2 -scheme plc -sizes 10,90 -size 16384 \
	    -out /tmp/migrate_demo_out.bin
	cmp /tmp/migrate_demo.bin /tmp/migrate_demo_out.bin && echo "migrate-demo: file survived fleet growth bit-exact"
	@for f in /tmp/prlcd_m1.pid /tmp/prlcd_m2.pid /tmp/prlcd_m3.pid /tmp/prlcd_m4.pid; do \
		kill `cat $$f` 2>/dev/null || true; rm -f $$f; done
	@rm -f /tmp/migrate_demo.bin /tmp/migrate_demo_out.bin

# Regenerate every figure and table of the paper at full scale
# (N = 1000, 100 trials; several minutes on one core). CSVs land in
# results/.
figures:
	$(GO) run ./cmd/prlcbench -all -csv results

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sensornet
	$(GO) run ./examples/p2pmonitor
	$(GO) run ./examples/feasibility
	$(GO) run ./examples/churntimeline
	$(GO) run ./examples/multires
	$(GO) run ./examples/tcpstore

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
