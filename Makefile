# Priority Random Linear Codes — build and reproduction targets.

GO ?= go

.PHONY: all build vet test race bench bench-kernels bench-decode check figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the message-passing cluster and the
# parallel experiment harness are the interesting targets).
race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus the extension benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Kernel-layer perf baseline: GF(2^8) vector kernels (fast vs scalar
# reference) and the encode/decode pipeline at N=64/256/1024, captured as
# BENCH_kernels.json so later perf PRs have numbers to diff against.
bench-kernels:
	{ $(GO) test -run='^$$' -bench 'Benchmark(Add)?MulSlice' -benchtime=500ms ./internal/gf256 && \
	  $(GO) test -run='^$$' -bench 'Benchmark(Encode|Decode)N' -benchtime=5x ./internal/core ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_kernels.json \
	    -note "Ref benchmarks are the pre-kernel scalar baseline; WorkersK pair against the 1-worker pipeline and are bounded by num_cpu"

# Decode-path perf baseline: structure-aware progressive decoding (level
# truncation + per-level SLC sub-decoders) against the dense structure-blind
# elimination (Ref), plus the payload-striping pipeline, captured as
# BENCH_decode.json.
bench-decode:
	$(GO) test -run='^$$' -bench 'BenchmarkDecode(PLC|SLC|Striped)N' -benchtime=10x ./internal/core \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_decode.json -by "make bench-decode" \
	    -note "DecodeXXXNk vs DecodeXXXNkRef is structured (level-truncated, per-level) vs dense decode of the same block stream; 64 B payloads keep elimination dominant; StripedNk WorkersK pair against the 1-worker pipeline and are bounded by num_cpu"

# Fast correctness gate: vet everything, race-test the packages with
# concurrent hot paths (the word-parallel kernels, the row arenas and the
# parallel encoder).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/gf256 ./internal/gfmat ./internal/core

# Regenerate every figure and table of the paper at full scale
# (N = 1000, 100 trials; several minutes on one core). CSVs land in
# results/.
figures:
	$(GO) run ./cmd/prlcbench -all -csv results

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sensornet
	$(GO) run ./examples/p2pmonitor
	$(GO) run ./examples/feasibility
	$(GO) run ./examples/churntimeline
	$(GO) run ./examples/multires
	$(GO) run ./examples/tcpstore

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
