package prlc

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Sec. 5), plus extension benches for the Sec. 4
// protocol claims and the ablations DESIGN.md calls out.
//
// Each figure bench regenerates its experiment end to end — workload
// generation, Monte-Carlo simulation, analytical model — at 1/5 of the
// paper's problem size with 20 trials per point so the full suite stays
// laptop-friendly; `go run ./cmd/prlcbench` reproduces the full-scale
// (N = 1000, 100-trial) numbers the EXPERIMENTS.md tables quote. Shape
// checks (who wins, where curves saturate) run inside the benches so a
// regression fails loudly rather than silently producing a wrong figure.

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/gossip"
	"repro/internal/growthcodes"
	"repro/internal/netsim"
	"repro/internal/predist"
)

// netsimFailRegion forwards to netsim.FailRegion (aliased for readability
// at the call site).
func netsimFailRegion(rng *rand.Rand, pos []Point, radius float64) ([]int, error) {
	return netsim.FailRegion(rng, pos, radius)
}

// eventProb is the Lemma-2 single-event probability Pr(E_k), the
// paper-style approximation the ablation bench compares against.
func eventProb(l *core.Levels, p core.PriorityDistribution, m, k int) (float64, error) {
	return analysis.EventProb(l, p, m, k)
}

// benchFigOpts is the reduced-scale configuration for figure benches.
func benchFigOpts(seed int64) exper.FigureOptions {
	return exper.FigureOptions{Trials: 20, Seed: seed, Scale: 5, Stride: 100}
}

// assertAnalysisTracksSim fails when the analytical series leaves the
// simulation's confidence band by more than the model-slack tolerance
// (threshold-model rank deficiency, PLC survival exactness).
func assertAnalysisTracksSim(b *testing.B, c *exper.Curve, tol float64) {
	b.Helper()
	for _, p := range c.Points {
		if !p.HasAnalysis {
			b.Fatalf("missing analysis at M=%g", p.M)
		}
		slack := tol + 2*p.CI95
		if d := p.Analysis - p.Mean; d > slack || d < -slack {
			b.Fatalf("analysis diverges from simulation at M=%g: %.3f vs %.3f±%.3f",
				p.M, p.Analysis, p.Mean, p.CI95)
		}
	}
}

// BenchmarkFig4aPLCAnalysisVsSim regenerates Fig. 4(a): PLC decoding curve,
// analysis vs simulation, 5 priority levels.
func BenchmarkFig4aPLCAnalysisVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exper.AnalysisVsSimulation(core.PLC, 5, benchFigOpts(40+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertAnalysisTracksSim(b, c, 0.35)
	}
}

// BenchmarkFig4bPLCAnalysisVsSim regenerates Fig. 4(b): PLC, 50 levels.
// The paper reports a slight analysis/simulation deviation here; our
// exact-DP analysis stays within threshold-model slack.
func BenchmarkFig4bPLCAnalysisVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exper.AnalysisVsSimulation(core.PLC, 50, benchFigOpts(41+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertAnalysisTracksSim(b, c, 2.0)
	}
}

// BenchmarkFig5aSLCAnalysisVsSim regenerates Fig. 5(a): SLC, 5 levels.
func BenchmarkFig5aSLCAnalysisVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exper.AnalysisVsSimulation(core.SLC, 5, benchFigOpts(42+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertAnalysisTracksSim(b, c, 0.35)
	}
}

// BenchmarkFig5bSLCAnalysisVsSim regenerates Fig. 5(b): SLC, 50 levels.
func BenchmarkFig5bSLCAnalysisVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := exper.AnalysisVsSimulation(core.SLC, 50, benchFigOpts(43+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertAnalysisTracksSim(b, c, 1.0)
	}
}

// assertPLCDominates fails when SLC beats PLC beyond the combined
// confidence bands plus the model-slack tolerance (in the transition
// region both curves are near zero and 20-trial noise can flip them).
func assertPLCDominates(b *testing.B, slc, plc *exper.Curve, slack float64) {
	b.Helper()
	for i := range slc.Points {
		band := slack + 2*(slc.Points[i].CI95+plc.Points[i].CI95)
		if plc.Points[i].Mean < slc.Points[i].Mean-band {
			b.Fatalf("PLC below SLC at M=%g: %.3f±%.3f vs %.3f±%.3f",
				slc.Points[i].M, plc.Points[i].Mean, plc.Points[i].CI95,
				slc.Points[i].Mean, slc.Points[i].CI95)
		}
	}
}

// BenchmarkFig6aSLCvsPLC regenerates Fig. 6(a): SLC vs PLC, 10 levels —
// the gap is modest.
func BenchmarkFig6aSLCvsPLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slc, plc, err := exper.SLCvsPLC(10, benchFigOpts(44+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertPLCDominates(b, slc, plc, 0.3)
	}
}

// BenchmarkFig6bSLCvsPLC regenerates Fig. 6(b): SLC vs PLC, 50 levels —
// the gap is significant (SLC approaches the coupon-collector regime).
func BenchmarkFig6bSLCvsPLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slc, plc, err := exper.SLCvsPLC(50, benchFigOpts(45+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		assertPLCDominates(b, slc, plc, 0.3)
		// At M = N the gap must be clearly visible at 50 levels.
		mid := len(slc.Points) / 2
		if plc.Points[mid].Mean-slc.Points[mid].Mean < 1 {
			b.Fatalf("50-level SLC/PLC gap at M=%g only %.3f levels",
				slc.Points[mid].M, plc.Points[mid].Mean-slc.Points[mid].Mean)
		}
	}
}

// BenchmarkTable1Feasibility regenerates Table 1: solve the three
// decoding-constraint cases (full problem size — the solver is cheap).
func BenchmarkTable1Feasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := exper.Table1(46 + int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cases {
			if !c.Feasible {
				b.Fatalf("%s: no feasible distribution found (got %v)", c.Name, c.SolvedP)
			}
		}
	}
}

// BenchmarkFig7DecodingCurves regenerates Fig. 7: PLC decoding curves for
// the three Table 1 priority distributions (paper's values, reduced
// scale). Case 1 must decode level 1 by ~M=130·scale, Case 2 both levels
// by ~287·scale, per the constraints that produced them.
func BenchmarkFig7DecodingCurves(b *testing.B) {
	paper := []core.PriorityDistribution{
		{0.5138, 0.0768, 0.4094},
		{0, 0.6149, 0.3851},
		{0.2894, 0.3246, 0.3860},
	}
	names := []string{"case1", "case2", "case3"}
	for i := 0; i < b.N; i++ {
		curves, err := exper.Fig7(paper, names, exper.FigureOptions{
			Trials: 20, Seed: 47 + int64(i), Scale: 5, Stride: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			last := c.Points[len(c.Points)-1]
			if last.Mean < 2.5 {
				b.Fatalf("%s: curve ends at %.2f levels, want near 3", c.Name, last.Mean)
			}
		}
	}
}

// --- Extension benches: protocol-level claims beyond the paper's figures.

// BenchmarkSparseDecodability checks the Dimakis O(ln N) fanout claim: a
// deployment disseminating each source block to only 3·ln(N) locations
// still decodes fully.
func BenchmarkSparseDecodability(b *testing.B) {
	levels, err := core.UniformLevels(5, 20) // N = 100
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(48 + int64(i)))
		enc, err := core.NewEncoder(core.PLC, levels, nil,
			core.WithSparsity(core.LogSparsity(levels.Total())))
		if err != nil {
			b.Fatal(err)
		}
		dec, err := core.NewDecoder(core.PLC, levels, 0)
		if err != nil {
			b.Fatal(err)
		}
		p := core.NewUniformDistribution(5)
		used := 0
		for !dec.Complete() && used < 6*levels.Total() {
			blocks, err := enc.EncodeBatch(rng, p, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dec.Add(blocks[0]); err != nil {
				b.Fatal(err)
			}
			used++
		}
		if !dec.Complete() {
			b.Fatalf("sparse PLC failed to decode within %d blocks", used)
		}
	}
}

// BenchmarkCouponCollector demonstrates the SLC degeneration the paper
// describes: with one source block per level, SLC becomes no-coding and
// needs Θ(N ln N) blocks, while PLC still decodes at ~N.
func BenchmarkCouponCollector(b *testing.B) {
	const n = 60
	levels, err := core.UniformLevels(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewUniformDistribution(n)
	blocksToComplete := func(rng *rand.Rand, scheme core.Scheme) int {
		enc, err := core.NewEncoder(scheme, levels, nil)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := core.NewDecoder(scheme, levels, 0)
		if err != nil {
			b.Fatal(err)
		}
		used := 0
		for !dec.Complete() && used < 100*n {
			blocks, err := enc.EncodeBatch(rng, p, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dec.Add(blocks[0]); err != nil {
				b.Fatal(err)
			}
			used++
		}
		return used
	}
	for i := 0; i < b.N; i++ {
		// Both completion counts are heavy-tailed, so compare means over a
		// small batch of trials rather than single draws.
		const trials = 8
		var slcSum, plcSum float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(49 + int64(i)*trials + int64(trial)))
			slcSum += float64(blocksToComplete(rng, core.SLC))
			plcSum += float64(blocksToComplete(rng, core.PLC))
		}
		slc, plc := slcSum/trials, plcSum/trials
		// E[coupon collector] = n·H_n ≈ 60·4.68 ≈ 281 vs ~120 for PLC
		// (whose tail constraints are far milder than full coupon
		// collecting).
		if slc <= plc {
			b.Fatalf("no coupon-collector effect: SLC %.0f blocks vs PLC %.0f", slc, plc)
		}
		b.ReportMetric(slc, "slcBlocks")
		b.ReportMetric(plc, "plcBlocks")
	}
}

// BenchmarkPredistCost measures the dissemination bandwidth of the Sec. 4
// protocol on a sensor field: messages and hops per source block, dense vs
// O(ln N) fanout.
func BenchmarkPredistCost(b *testing.B) {
	levels, err := core.UniformLevels(4, 10) // N = 40
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(50))
	router, _, err := NewSensorNetwork(rng, 150, 0.14)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := predist.NewGeoTransport(router, 150)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run := func(fanout int) predist.Stats {
			d, err := predist.NewDeployment(predist.Config{
				Scheme: core.PLC, Levels: levels, Dist: core.NewUniformDistribution(4),
				M: 120, Seed: 51, Fanout: fanout,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := d.ResolveOwners(tr); err != nil {
				b.Fatal(err)
			}
			for blk := 0; blk < levels.Total(); blk++ {
				if err := d.Disseminate(rng, tr, rng.Intn(150), blk, nil); err != nil {
					b.Fatal(err)
				}
			}
			return d.Stats()
		}
		dense := run(0)
		sparse := run(3 * core.LogSparsity(levels.Total()))
		if sparse.Messages >= dense.Messages {
			b.Fatalf("fanout failed to reduce messages: %d vs %d", sparse.Messages, dense.Messages)
		}
		b.ReportMetric(float64(dense.Messages)/float64(levels.Total()), "denseMsgs/block")
		b.ReportMetric(float64(sparse.Messages)/float64(levels.Total()), "sparseMsgs/block")
	}
}

// BenchmarkTwoChoicesLoad measures the Sec. 4 load-balancing claim: max
// cache load with and without power-of-two-choices placement.
func BenchmarkTwoChoicesLoad(b *testing.B) {
	levels, err := core.UniformLevels(2, 5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	router, _, err := NewSensorNetwork(rng, 120, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := predist.NewGeoTransport(router, 120)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		maxLoad := func(two bool) int {
			d, err := predist.NewDeployment(predist.Config{
				Scheme: core.PLC, Levels: levels, Dist: core.NewUniformDistribution(2),
				M: 600, Seed: 53 + int64(i), TwoChoices: two,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := d.ResolveOwners(tr); err != nil {
				b.Fatal(err)
			}
			return d.MaxLoad()
		}
		one, two := maxLoad(false), maxLoad(true)
		if two > one {
			b.Fatalf("two choices worsened load: %d vs %d", two, one)
		}
		b.ReportMetric(float64(one), "maxLoadOneChoice")
		b.ReportMetric(float64(two), "maxLoadTwoChoices")
	}
}

// BenchmarkPersistenceUnderFailure sweeps the failure rate on a sensor
// deployment and reports decoded levels — the end-to-end differentiated
// persistence story.
func BenchmarkPersistenceUnderFailure(b *testing.B) {
	levels, err := core.NewLevels(4, 8, 28) // N = 40
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	router, _, err := NewSensorNetwork(rng, 150, 0.14)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := predist.NewGeoTransport(router, 150)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d, err := predist.NewDeployment(predist.Config{
			Scheme: core.PLC, Levels: levels,
			Dist: core.PriorityDistribution{0.5, 0.25, 0.25},
			M:    120, Seed: 55 + int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.ResolveOwners(tr); err != nil {
			b.Fatal(err)
		}
		for blk := 0; blk < levels.Total(); blk++ {
			if err := d.Disseminate(rng, tr, rng.Intn(150), blk, nil); err != nil {
				b.Fatal(err)
			}
		}
		for _, failRate := range []float64{0.3, 0.6} {
			dead := make(map[int]bool)
			for node := 0; node < 150; node++ {
				if rng.Float64() < failRate {
					dead[node] = true
				}
			}
			blocks := d.CodedBlocks(func(n int) bool { return !dead[n] })
			res, _, err := Collect(rng, PLC, levels, blocks, CollectOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if failRate <= 0.3 && res.DecodedLevels < 1 {
				b.Fatalf("level 0 lost at %.0f%% failures", failRate*100)
			}
		}
	}
}

// BenchmarkGrowthCodesVsPLC quantifies the Sec. 6 related-work claim:
// Growth Codes maximize total partial recovery but treat all data
// equivalently, so with a fixed budget of M < N coded blocks they recover
// an arbitrary mix of priorities, while PLC concentrates recovery on the
// critical level. The bench reports, at M = N/2, the fraction of
// level-0 (critical) blocks each scheme recovers.
func BenchmarkGrowthCodesVsPLC(b *testing.B) {
	levels, err := core.NewLevels(10, 30, 60) // N = 100, level 0 critical
	if err != nil {
		b.Fatal(err)
	}
	n := levels.Total()
	const trials = 40
	for i := 0; i < b.N; i++ {
		var gcCritical, gcTotal, plcCritical, plcTotal float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(60 + trial + i)))

			// Growth Codes with idealized feedback, M = N/2 symbols.
			gcEnc, err := growthcodes.NewEncoder(n, nil)
			if err != nil {
				b.Fatal(err)
			}
			gcDec, err := growthcodes.NewDecoder(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			for m := 0; m < n/2; m++ {
				s, err := gcEnc.EncodeScheduled(rng, gcDec.DecodedCount())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := gcDec.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			for idx := 0; idx < levels.Size(0); idx++ {
				if gcDec.Decoded(idx) {
					gcCritical++
				}
			}
			gcTotal += float64(gcDec.DecodedCount())

			// PLC with a critical-heavy priority distribution, same M.
			enc, err := core.NewEncoder(core.PLC, levels, nil)
			if err != nil {
				b.Fatal(err)
			}
			dec, err := core.NewDecoder(core.PLC, levels, 0)
			if err != nil {
				b.Fatal(err)
			}
			p := core.PriorityDistribution{0.5, 0.3, 0.2}
			blocks, err := enc.EncodeBatch(rng, p, n/2)
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range blocks {
				if _, err := dec.Add(blk); err != nil {
					b.Fatal(err)
				}
			}
			for idx := 0; idx < levels.Size(0); idx++ {
				if s, err := dec.Source(idx); err == nil && s != nil {
					plcCritical++
				}
			}
			plcTotal += float64(dec.DecodedBlocks())
		}
		critSize := float64(levels.Size(0)) * trials
		if plcCritical <= gcCritical {
			b.Fatalf("PLC critical recovery %.2f did not beat Growth Codes %.2f",
				plcCritical/critSize, gcCritical/critSize)
		}
		b.ReportMetric(gcCritical/critSize, "gcCriticalFrac")
		b.ReportMetric(plcCritical/critSize, "plcCriticalFrac")
		b.ReportMetric(gcTotal/float64(n)/trials, "gcTotalFrac")
		b.ReportMetric(plcTotal/float64(n)/trials, "plcTotalFrac")
	}
}

// BenchmarkCorrelatedFailures contrasts the paper's independent-failure
// snapshot with a geographically correlated outage (storm/power cut) of
// matched severity. Because the seeded cache locations are uniform, a
// regional wipe still leaves a near-random subset of coded blocks, so
// differentiated recovery should degrade gracefully in both models — this
// bench verifies that and reports the decoded levels side by side.
func BenchmarkCorrelatedFailures(b *testing.B) {
	levels, err := core.NewLevels(4, 8, 28) // N = 40
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 200
	rng := rand.New(rand.NewSource(80))
	router, graph, err := NewSensorNetwork(rng, nodes, 0.14)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := predist.NewGeoTransport(router, nodes)
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]Point, nodes)
	for i := range pos {
		pos[i] = graph.Pos(i)
	}
	d, err := predist.NewDeployment(predist.Config{
		Scheme: core.PLC, Levels: levels,
		Dist: core.PriorityDistribution{0.5, 0.25, 0.25},
		M:    160, Seed: 81,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		b.Fatal(err)
	}
	for blk := 0; blk < levels.Total(); blk++ {
		if err := d.Disseminate(rng, tr, rng.Intn(nodes), blk, nil); err != nil {
			b.Fatal(err)
		}
	}
	collectLevels := func(dead map[int]bool) float64 {
		blocks := d.CodedBlocks(func(n int) bool { return !dead[n] })
		res, _, err := Collect(rng, PLC, levels, blocks, CollectOptions{})
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.DecodedLevels)
	}
	for i := 0; i < b.N; i++ {
		var randomSum, regionSum float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			// Regional outage first, to learn the victim count.
			victims, err := netsimFailRegion(rng, pos, 0.35)
			if err != nil {
				b.Fatal(err)
			}
			regionDead := map[int]bool{}
			for _, v := range victims {
				regionDead[v] = true
			}
			regionSum += collectLevels(regionDead)

			// Matched-severity independent failures.
			perm := rng.Perm(nodes)[:len(victims)]
			randomDead := map[int]bool{}
			for _, v := range perm {
				randomDead[v] = true
			}
			randomSum += collectLevels(randomDead)
		}
		b.ReportMetric(randomSum/trials, "levelsRandomFail")
		b.ReportMetric(regionSum/trials, "levelsRegionFail")
	}
}

// BenchmarkGossipVsRouting compares the two dissemination substrates at
// matched redundancy: location-routed pre-distribution (GPSR + seeded
// locations) against Metropolis–Hastings random-walk gossip (no locations,
// cache per node). Both must deliver full recovery; the metric is
// transmissions per source block.
func BenchmarkGossipVsRouting(b *testing.B) {
	levels, err := core.NewLevels(4, 8, 12) // N = 24
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 150
	rng := rand.New(rand.NewSource(90))
	router, graph, err := NewSensorNetwork(rng, nodes, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := predist.NewGeoTransport(router, nodes)
	if err != nil {
		b.Fatal(err)
	}
	walker, err := gossip.NewWalker(graph, 0)
	if err != nil {
		b.Fatal(err)
	}
	dist := core.PriorityDistribution{0.4, 0.3, 0.3}
	const fanout = 40
	for i := 0; i < b.N; i++ {
		// Routing-based deployment.
		dep, err := predist.NewDeployment(predist.Config{
			Scheme: core.PLC, Levels: levels, Dist: dist,
			M: nodes, Seed: 91 + int64(i), Fanout: fanout,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := dep.ResolveOwners(tr); err != nil {
			b.Fatal(err)
		}
		for blk := 0; blk < levels.Total(); blk++ {
			if err := dep.Disseminate(rng, tr, rng.Intn(nodes), blk, nil); err != nil {
				b.Fatal(err)
			}
		}
		res, _, err := Collect(rng, PLC, levels, dep.CodedBlocks(nil), CollectOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("routed deployment failed to decode")
		}

		// Gossip deployment, same fanout.
		gdep, err := gossip.NewDeployment(walker, gossip.Config{
			Scheme: core.PLC, Levels: levels, Dist: dist,
			Seed: 92 + int64(i), Fanout: fanout,
		})
		if err != nil {
			b.Fatal(err)
		}
		for blk := 0; blk < levels.Total(); blk++ {
			if err := gdep.Disseminate(rng, rng.Intn(nodes), blk, nil); err != nil {
				b.Fatal(err)
			}
		}
		res, _, err = Collect(rng, PLC, levels, gdep.CodedBlocks(nil), CollectOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("gossip deployment failed to decode")
		}
		nBlocks := float64(levels.Total())
		b.ReportMetric(float64(dep.Stats().Hops)/nBlocks, "routedTxPerBlock")
		b.ReportMetric(float64(gdep.Stats().Hops)/nBlocks, "gossipTxPerBlock")
	}
}

// BenchmarkPLCEventLowerBoundGap is the analysis ablation DESIGN.md calls
// out: the gap between the exact survival Pr(X ≥ k) and the single-event
// lower bound Pr(E_k) the paper-style approximation would use.
func BenchmarkPLCEventLowerBoundGap(b *testing.B) {
	levels, err := core.UniformLevels(10, 10)
	if err != nil {
		b.Fatal(err)
	}
	u := core.NewUniformDistribution(10)
	for i := 0; i < b.N; i++ {
		r, err := ExpectedDecodedLevels(PLC, levels, u, 100)
		if err != nil {
			b.Fatal(err)
		}
		exLower := 0.0
		for k := 1; k <= 10; k++ {
			e, err := eventProb(levels, u, 100, k)
			if err != nil {
				b.Fatal(err)
			}
			exLower += e
		}
		if exLower > r.EX+1e-9 {
			b.Fatalf("lower bound %.4f exceeds exact %.4f", exLower, r.EX)
		}
		b.ReportMetric(r.EX-exLower, "exactMinusLowerBound")
	}
}
