package prlc

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestRecombineFacade pins the repair primitive on the facade: a
// recombined block decodes like a fresh one, and the degenerate-sample
// sentinel is branchable with errors.Is.
func TestRecombineFacade(t *testing.T) {
	levels, err := NewLevels(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 8)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, UniformDistribution(2), 12)
	if err != nil {
		t.Fatal(err)
	}
	fresh, rank, err := RecombineRanked(rng, PLC, levels, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if rank < levels.Total() {
		t.Fatalf("12-block sample has rank %d, want %d", rank, levels.Total())
	}
	dec, err := NewDecoder(PLC, levels, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Add(fresh); err != nil {
		t.Fatalf("decoder rejected recombined block: %v", err)
	}
	for _, b := range blocks {
		if _, err := dec.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Complete() {
		t.Fatalf("recombined + original blocks decode %d levels", dec.DecodedLevels())
	}

	zero := &CodedBlock{Level: 0, Coeff: make([]byte, levels.Total()), Payload: make([]byte, 8)}
	if _, _, err := RecombineRanked(rng, PLC, levels, []*CodedBlock{zero}); !errors.Is(err, ErrDegenerateInputs) {
		t.Fatalf("all-zero sample = %v, want errors.Is ErrDegenerateInputs", err)
	}
	if _, err := Recombine(rng, PLC, levels, blocks); err != nil {
		t.Fatalf("unranked recombine: %v", err)
	}
}

// TestFacadeRepairRoundTrip exercises the repair surface through the
// facade: wipe a replica, audit the deficit, let the daemon regenerate
// it by recombination, and audit back to health.
func TestFacadeRepairRoundTrip(t *testing.T) {
	ctx := context.Background()
	levels, err := NewLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 16)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, UniformDistribution(2), 24)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int, levels.Count())
	for _, b := range blocks {
		targets[b.Level]++
	}

	var servers []*StoreServer
	var clients []*StoreClient
	for i := 0; i < 3; i++ {
		srv, err := NewStoreServer(StoreServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		cl, err := NewStoreClient(StoreClientConfig{Addr: srv.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		servers = append(servers, srv)
		clients = append(clients, cl)
	}
	repl, err := NewReplicatedStore(clients, levels.Count(), ReplicatedStoreConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repl.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}

	audit, err := AuditStore(ctx, repl, StoreAuditConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Healthy() {
		t.Fatalf("freshly provisioned fleet not healthy: %+v", audit)
	}

	// Wipe replica 1: drain it and bring an empty server back on the
	// same address — churn with a blank-disk replacement.
	addr := servers[1].Addr()
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	if err := servers[1].Shutdown(sctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	for attempt := 0; ; attempt++ {
		srv, err := NewStoreServer(StoreServerConfig{Addr: addr})
		if err == nil {
			servers[1] = srv
			break
		}
		if attempt > 50 {
			t.Fatalf("resurrect replica on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	audit, err = AuditStore(ctx, repl, StoreAuditConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Healthy() || audit.TotalDeficit() == 0 {
		t.Fatalf("wiped replica left no deficit: %+v", audit)
	}
	if def := audit.Deficient(); len(def) == 0 || def[0].Level != 0 {
		t.Fatalf("deficient levels %+v, want most-critical first", def)
	}

	d, err := NewRepairDaemon(repl, RepairConfig{
		Scheme:  PLC,
		Levels:  levels,
		Targets: targets,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; ; round++ {
		if round > 8 {
			t.Fatalf("repair did not converge in %d rounds", round)
		}
		rep, err := d.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.SkippedLevels) > 0 {
			t.Fatalf("daemon skipped levels %v", rep.SkippedLevels)
		}
		audit, err = AuditStore(ctx, repl, StoreAuditConfig{Targets: targets})
		if err != nil {
			t.Fatal(err)
		}
		if audit.TotalDeficit() == 0 {
			break
		}
	}
	if rep := d.LastReport(); rep.Audit == nil {
		t.Fatal("LastReport lost the audit")
	}

	// The repaired fleet decodes fully from a plain collect.
	survived, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(PLC, levels, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range survived {
		if _, err := dec.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Complete() {
		t.Fatalf("repaired fleet decodes %d/%d levels", dec.DecodedLevels(), levels.Count())
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(sources[i]) {
			t.Fatalf("source %d corrupted through repair", i)
		}
	}
}
