package exper

import (
	"testing"

	"repro/internal/core"
)

func churnConfig(t testing.TB) ChurnConfig {
	t.Helper()
	l, err := core.NewLevels(3, 6, 11) // N = 20
	if err != nil {
		t.Fatal(err)
	}
	return ChurnConfig{
		Scheme:       core.PLC,
		Levels:       l,
		Dist:         core.PriorityDistribution{0.5, 0.25, 0.25},
		Nodes:        80,
		Radius:       0.2,
		M:            60,
		MeanLifetime: 10,
		SampleTimes:  []float64{0, 5, 15, 40},
		Trials:       8,
		Seed:         1,
	}
}

func TestChurnConfigValidation(t *testing.T) {
	good := churnConfig(t)
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	mutations := []func(*ChurnConfig){
		func(c *ChurnConfig) { c.Levels = nil },
		func(c *ChurnConfig) { c.Scheme = core.Scheme(0) },
		func(c *ChurnConfig) { c.Dist = core.PriorityDistribution{1} },
		func(c *ChurnConfig) { c.Nodes = 0 },
		func(c *ChurnConfig) { c.Radius = 0 },
		func(c *ChurnConfig) { c.M = 0 },
		func(c *ChurnConfig) { c.MeanLifetime = 0 },
		func(c *ChurnConfig) { c.SampleTimes = nil },
		func(c *ChurnConfig) { c.SampleTimes = []float64{-1} },
	}
	for i, mutate := range mutations {
		cfg := churnConfig(t)
		mutate(&cfg)
		if _, err := PersistenceUnderChurn(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPersistenceUnderChurnTimeline(t *testing.T) {
	pts, err := PersistenceUnderChurn(churnConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	// At t = 0 everything is alive and (with M = 3N caches) decodable.
	if pts[0].AliveFrac < 0.999 {
		t.Errorf("t=0 alive fraction %g, want 1", pts[0].AliveFrac)
	}
	if pts[0].Mean < 2.5 {
		t.Errorf("t=0 decoded levels %g, want near 3", pts[0].Mean)
	}
	// Liveness must decay over time; decoded levels must not increase.
	for i := 1; i < len(pts); i++ {
		if pts[i].AliveFrac > pts[i-1].AliveFrac+1e-9 {
			t.Errorf("alive fraction increased: %+v", pts)
		}
		if pts[i].Mean > pts[i-1].Mean+0.3 {
			t.Errorf("decoded levels increased beyond noise: %+v", pts)
		}
	}
	// By t = 4 mean lifetimes, survival is ~e^-4 ≈ 2%: deep decay.
	last := pts[len(pts)-1]
	if last.AliveFrac > 0.15 {
		t.Errorf("t=40 alive fraction %g, want < 0.15", last.AliveFrac)
	}
	if last.Mean > 1.5 {
		t.Errorf("t=40 decoded levels %g, want heavy loss", last.Mean)
	}
}

func TestPersistenceUnderChurnDeterministic(t *testing.T) {
	cfg := churnConfig(t)
	cfg.Trials = 3
	a, err := PersistenceUnderChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PersistenceUnderChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
