package exper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/feasibility"
)

// FigureOptions scales the evaluation runs: the defaults reproduce the
// paper's settings (N = 1000, 100 trials, fine M grids); tests pass
// smaller values.
type FigureOptions struct {
	// Trials per curve point (0 = 100, the paper's setting).
	Trials int
	// Seed for reproducibility.
	Seed int64
	// Stride between M checkpoints (0 = 100).
	Stride int
	// Scale divides the paper's problem size (0 or 1 = full N = 1000;
	// e.g. 10 runs N = 100 with level sizes scaled accordingly).
	Scale int
	// Workers bounds simulation parallelism (0 = GOMAXPROCS). Results are
	// independent of the worker count.
	Workers int
}

func (o FigureOptions) withDefaults() FigureOptions {
	if o.Trials == 0 {
		o.Trials = 100
	}
	if o.Stride == 0 {
		o.Stride = 100
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

func (o FigureOptions) scaled(x int) int {
	s := x / o.Scale
	if s < 1 {
		s = 1
	}
	return s
}

// AnalysisVsSimulation reproduces one panel of Fig. 4 (PLC) or Fig. 5
// (SLC): N source blocks split uniformly over `nLevels`, uniform priority
// distribution, decoding curve with both simulation (mean ± 95% CI) and
// analysis series.
//
// Panels: Fig 4(a)/5(a) use nLevels = 5, Fig 4(b)/5(b) use nLevels = 50;
// N = 1000.
func AnalysisVsSimulation(scheme core.Scheme, nLevels int, opts FigureOptions) (*Curve, error) {
	opts = opts.withDefaults()
	perLevel := opts.scaled(1000 / nLevels)
	levels, err := core.UniformLevels(nLevels, perLevel)
	if err != nil {
		return nil, err
	}
	n := levels.Total()
	return SimulateCurve(CurveConfig{
		Name:         fmt.Sprintf("%s n=%d", scheme, nLevels),
		Scheme:       scheme,
		Levels:       levels,
		Dist:         core.NewUniformDistribution(nLevels),
		Ms:           Steps(0, n+n/2, opts.scaled(opts.Stride)),
		Trials:       opts.Trials,
		Seed:         opts.Seed,
		WithAnalysis: true,
		Workers:      opts.Workers,
	})
}

// SLCvsPLC reproduces one panel of Fig. 6: simulated decoding curves of
// SLC and PLC on the same level structure (N = 1000; 10 or 50 levels).
func SLCvsPLC(nLevels int, opts FigureOptions) (slc, plc *Curve, err error) {
	opts = opts.withDefaults()
	perLevel := opts.scaled(1000 / nLevels)
	levels, err := core.UniformLevels(nLevels, perLevel)
	if err != nil {
		return nil, nil, err
	}
	n := levels.Total()
	mk := func(scheme core.Scheme) (*Curve, error) {
		return SimulateCurve(CurveConfig{
			Name:    fmt.Sprintf("%s n=%d", scheme, nLevels),
			Scheme:  scheme,
			Levels:  levels,
			Dist:    core.NewUniformDistribution(nLevels),
			Ms:      Steps(0, 2*n, opts.scaled(opts.Stride)),
			Trials:  opts.Trials,
			Seed:    opts.Seed,
			Workers: opts.Workers,
		})
	}
	if slc, err = mk(core.SLC); err != nil {
		return nil, nil, err
	}
	if plc, err = mk(core.PLC); err != nil {
		return nil, nil, err
	}
	return slc, plc, nil
}

// Table1Case is one row of Table 1: a set of decoding constraints and the
// priority distribution the feasibility solver found for it.
type Table1Case struct {
	Name        string
	Constraints []feasibility.Constraint
	// PaperP is the distribution the paper's MATLAB run reported.
	PaperP core.PriorityDistribution
	// SolvedP is our solver's distribution; Feasible reports whether it
	// satisfies every constraint under the analytical model.
	SolvedP  core.PriorityDistribution
	Feasible bool
}

// table1Problem is the shared Sec. 5.3 setting: 500 source blocks in
// levels (50, 100, 350), PLC, α = 2, ε = 0.01.
func table1Problem(constraints []feasibility.Constraint) (feasibility.Problem, error) {
	levels, err := core.NewLevels(50, 100, 350)
	if err != nil {
		return feasibility.Problem{}, err
	}
	return feasibility.Problem{
		Scheme:   core.PLC,
		Levels:   levels,
		Decoding: constraints,
		Alpha:    2,
		Epsilon:  0.01,
	}, nil
}

// Table1 reproduces Table 1: it solves the three feasibility cases and
// returns the found distributions alongside the paper's.
func Table1(seed int64) ([]Table1Case, error) {
	cases := []Table1Case{
		{
			Name:        "Case 1",
			Constraints: []feasibility.Constraint{{M: 130, MinLevels: 1}, {M: 950, MinLevels: 2}},
			PaperP:      core.PriorityDistribution{0.5138, 0.0768, 0.4094},
		},
		{
			Name:        "Case 2",
			Constraints: []feasibility.Constraint{{M: 265, MinLevels: 1}, {M: 287, MinLevels: 2}},
			PaperP:      core.PriorityDistribution{0, 0.6149, 0.3851},
		},
		{
			Name:        "Case 3",
			Constraints: []feasibility.Constraint{{M: 240, MinLevels: 1}, {M: 450, MinLevels: 2}},
			PaperP:      core.PriorityDistribution{0.2894, 0.3246, 0.3860},
		},
	}
	for i := range cases {
		prob, err := table1Problem(cases[i].Constraints)
		if err != nil {
			return nil, err
		}
		sol, err := feasibility.Solve(prob, feasibility.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cases[i].Name, err)
		}
		cases[i].SolvedP = sol.P
		cases[i].Feasible = sol.Feasible
	}
	return cases, nil
}

// Fig7 reproduces Fig. 7: the simulated PLC decoding curves of the three
// Table 1 priority distributions. Pass the distributions to plot (either
// the solver's or the paper's).
func Fig7(dists []core.PriorityDistribution, names []string, opts FigureOptions) ([]*Curve, error) {
	if len(dists) != len(names) {
		return nil, fmt.Errorf("exper: %d distributions, %d names", len(dists), len(names))
	}
	opts = opts.withDefaults()
	levels, err := core.NewLevels(opts.scaled(50), opts.scaled(100), opts.scaled(350))
	if err != nil {
		return nil, err
	}
	out := make([]*Curve, 0, len(dists))
	for i, p := range dists {
		c, err := SimulateCurve(CurveConfig{
			Name:    names[i],
			Scheme:  core.PLC,
			Levels:  levels,
			Dist:    p,
			Ms:      Steps(0, opts.scaled(1000), opts.scaled(min(opts.Stride, 50))),
			Trials:  opts.Trials,
			Seed:    opts.Seed + int64(i),
			Workers: opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", names[i], err)
		}
		out = append(out, c)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
