package exper

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/gpsr"
	"repro/internal/netsim"
	"repro/internal/predist"
)

// Churn experiment: instead of the paper's one-shot failure snapshot, run
// the Sec. 2 network model on a time axis. Sensors pre-distribute coded
// measurement data at t = 0, then die at exponentially distributed times
// (the memoryless churn model); a collector snapshots the network at the
// configured sample times and records how many priority levels the
// surviving caches still decode. The discrete-event engine orders failure
// and sampling events deterministically per trial.

// ChurnConfig parameterizes a persistence-under-churn run on a sensor
// field.
type ChurnConfig struct {
	Scheme core.Scheme
	Levels *core.Levels
	Dist   core.PriorityDistribution
	// Nodes and Radius shape the unit-disk deployment.
	Nodes  int
	Radius float64
	// M is the cache-location count; Fanout the per-block dissemination
	// fanout (0 = dense).
	M      int
	Fanout int
	// MeanLifetime is the exponential mean node lifetime.
	MeanLifetime float64
	// SampleTimes are the collection snapshot instants.
	SampleTimes []float64
	// Trials per sample point (0 = 50).
	Trials int
	Seed   int64
}

func (c ChurnConfig) validate() error {
	if c.Levels == nil {
		return fmt.Errorf("exper: nil levels")
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("exper: invalid scheme %v", c.Scheme)
	}
	if err := c.Dist.Validate(c.Levels); err != nil {
		return err
	}
	if c.Nodes <= 0 || c.Radius <= 0 || c.M <= 0 {
		return fmt.Errorf("exper: nodes %d, radius %g, M %d must be positive", c.Nodes, c.Radius, c.M)
	}
	if c.MeanLifetime <= 0 {
		return fmt.Errorf("exper: mean lifetime %g, want > 0", c.MeanLifetime)
	}
	if len(c.SampleTimes) == 0 {
		return fmt.Errorf("exper: no sample times")
	}
	for _, t := range c.SampleTimes {
		if t < 0 {
			return fmt.Errorf("exper: negative sample time %g", t)
		}
	}
	return nil
}

// ChurnPoint is one timeline sample: at time T, AliveFrac of the nodes
// survive on average and the collector decodes Mean levels (± CI95).
type ChurnPoint struct {
	T         float64
	AliveFrac float64
	Mean      float64
	CI95      float64
}

// PersistenceUnderChurn runs the timeline experiment and returns one
// point per sample time.
func PersistenceUnderChurn(cfg ChurnConfig) ([]ChurnPoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials == 0 {
		trials = 50
	}
	times := append([]float64(nil), cfg.SampleTimes...)
	sort.Float64s(times)

	levelsAt := make([][]float64, len(times))
	aliveAt := make([][]float64, len(times))
	for i := range times {
		levelsAt[i] = make([]float64, 0, trials)
		aliveAt[i] = make([]float64, 0, trials)
	}

	for trial := 0; trial < trials; trial++ {
		if err := churnTrial(cfg, times, cfg.Seed+int64(trial)*7_919, func(i int, alive, levels float64) {
			aliveAt[i] = append(aliveAt[i], alive)
			levelsAt[i] = append(levelsAt[i], levels)
		}); err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
	}

	out := make([]ChurnPoint, len(times))
	for i, t := range times {
		ls := dist.Summarize(levelsAt[i])
		as := dist.Summarize(aliveAt[i])
		out[i] = ChurnPoint{T: t, AliveFrac: as.Mean, Mean: ls.Mean, CI95: ls.CI95}
	}
	return out, nil
}

// churnTrial runs one deployment through its failure timeline, invoking
// record(sampleIndex, aliveFraction, decodedLevels) at each sample time.
func churnTrial(cfg ChurnConfig, times []float64, seed int64, record func(int, float64, float64)) error {
	rng := rand.New(rand.NewSource(seed))

	// Sample a connected deployment.
	var g *geom.Graph
	for attempt := 0; ; attempt++ {
		pos := geom.RandomPoints(rng, cfg.Nodes)
		var err error
		g, err = geom.NewUnitDiskGraph(pos, cfg.Radius)
		if err != nil {
			return err
		}
		if g.Connected() {
			break
		}
		if attempt > 200 {
			return fmt.Errorf("exper: could not sample a connected deployment")
		}
	}
	router, err := gpsr.New(g)
	if err != nil {
		return err
	}
	tr, err := predist.NewGeoTransport(router, cfg.Nodes)
	if err != nil {
		return err
	}

	dep, err := predist.NewDeployment(predist.Config{
		Scheme: cfg.Scheme, Levels: cfg.Levels, Dist: cfg.Dist,
		M: cfg.M, Seed: seed, Fanout: cfg.Fanout,
	})
	if err != nil {
		return err
	}
	if err := dep.ResolveOwners(tr); err != nil {
		return err
	}
	for blk := 0; blk < cfg.Levels.Total(); blk++ {
		if err := dep.Disseminate(rng, tr, rng.Intn(cfg.Nodes), blk, nil); err != nil {
			return err
		}
	}

	// Timeline: failures at exponential lifetimes, snapshots at the
	// sample times. The event engine interleaves them in time order.
	engine := netsim.NewEngine()
	lifetimes, err := netsim.Lifetimes(rng, cfg.Nodes, cfg.MeanLifetime)
	if err != nil {
		return err
	}
	alive := make([]bool, cfg.Nodes)
	aliveCount := cfg.Nodes
	for i := range alive {
		alive[i] = true
	}
	for node, life := range lifetimes {
		node := node
		if err := engine.ScheduleAt(life, func() {
			if alive[node] {
				alive[node] = false
				aliveCount--
			}
		}); err != nil {
			return err
		}
	}
	var sampleErr error
	for i, t := range times {
		i, t := i, t
		if err := engine.ScheduleAt(t, func() {
			blocks := dep.CodedBlocks(func(n int) bool { return alive[n] })
			res, _, err := collect.Run(rng, cfg.Scheme, cfg.Levels, blocks, collect.Options{})
			if err != nil {
				if sampleErr == nil {
					sampleErr = err
				}
				return
			}
			record(i, float64(aliveCount)/float64(cfg.Nodes), float64(res.DecodedLevels))
		}); err != nil {
			return err
		}
	}
	engine.Run()
	return sampleErr
}
