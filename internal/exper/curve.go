// Package exper is the experiment harness behind Sec. 5: it produces
// decoding curves — expected decoded priority levels against the number of
// processed coded blocks — by Monte-Carlo simulation of the actual codes
// (mean and 95% confidence interval over independent trials, 100 by
// default as in the paper) and by the analytical model, and packages every
// table and figure of the evaluation as a reproducible runner.
package exper

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dist"
)

// CurvePoint is one decoding-curve sample at M processed coded blocks.
type CurvePoint struct {
	M float64
	// Mean and CI95 are the simulated expected decoded levels and its 95%
	// confidence half-width.
	Mean float64
	CI95 float64
	// Analysis is the model's E(X); NaN-free zero when not computed.
	Analysis float64
	// HasAnalysis reports whether Analysis was computed for this point.
	HasAnalysis bool
}

// Curve is a full decoding curve for one scheme and distribution.
type Curve struct {
	Name   string
	Scheme core.Scheme
	Points []CurvePoint
}

// CurveConfig parameterizes a decoding-curve experiment.
type CurveConfig struct {
	Name   string
	Scheme core.Scheme
	Levels *core.Levels
	Dist   core.PriorityDistribution
	// Ms are the checkpoints (numbers of processed coded blocks).
	Ms []int
	// Trials is the number of independent simulation runs per point
	// (0 = 100, the paper's setting).
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
	// WithAnalysis also evaluates the analytical model at every
	// checkpoint.
	WithAnalysis bool
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c CurveConfig) validate() error {
	if c.Levels == nil {
		return fmt.Errorf("exper: nil levels")
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("exper: invalid scheme %v", c.Scheme)
	}
	if err := c.Dist.Validate(c.Levels); err != nil {
		return err
	}
	if len(c.Ms) == 0 {
		return fmt.Errorf("exper: no checkpoints given")
	}
	for _, m := range c.Ms {
		if m < 0 {
			return fmt.Errorf("exper: negative checkpoint %d", m)
		}
	}
	return nil
}

// SimulateCurve runs the Monte-Carlo experiment: for each trial it streams
// randomly generated coded blocks into a partial decoder, recording the
// decoded-level count at every checkpoint, then aggregates means and 95%
// confidence intervals. Trials run in parallel; results are independent of
// the worker count because each trial derives its own seeded generator.
func SimulateCurve(cfg CurveConfig) (*Curve, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials == 0 {
		trials = 100
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	ms := append([]int(nil), cfg.Ms...)
	sort.Ints(ms)
	maxM := ms[len(ms)-1]

	// levelsAt[t][i] is trial t's decoded-level count at checkpoint i.
	levelsAt := make([][]int, trials)
	var (
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				rec, err := runTrial(cfg, ms, maxM, cfg.Seed+int64(t)*1_000_003)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("trial %d: %w", t, err)
					}
					continue
				}
				levelsAt[t] = rec
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	curve := &Curve{Name: cfg.Name, Scheme: cfg.Scheme, Points: make([]CurvePoint, len(ms))}
	samples := make([]float64, trials)
	for i, m := range ms {
		for t := 0; t < trials; t++ {
			samples[t] = float64(levelsAt[t][i])
		}
		s := dist.Summarize(samples)
		curve.Points[i] = CurvePoint{M: float64(m), Mean: s.Mean, CI95: s.CI95}
	}
	if cfg.WithAnalysis {
		for i, m := range ms {
			r, err := analysis.Eval(cfg.Scheme, cfg.Levels, cfg.Dist, m)
			if err != nil {
				return nil, err
			}
			curve.Points[i].Analysis = r.EX
			curve.Points[i].HasAnalysis = true
		}
	}
	return curve, nil
}

// runTrial streams maxM random coded blocks into a decoder and returns the
// decoded-level count at each checkpoint.
func runTrial(cfg CurveConfig, ms []int, maxM int, seed int64) ([]int, error) {
	rng := rand.New(rand.NewSource(seed))
	enc, err := core.NewEncoder(cfg.Scheme, cfg.Levels, nil)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewDecoder(cfg.Scheme, cfg.Levels, 0)
	if err != nil {
		return nil, err
	}
	sampler, err := dist.NewCategorical(cfg.Dist)
	if err != nil {
		return nil, err
	}
	rec := make([]int, len(ms))
	ci := 0
	for processed := 0; processed <= maxM && ci < len(ms); processed++ {
		for ci < len(ms) && ms[ci] == processed {
			rec[ci] = dec.DecodedLevels()
			ci++
		}
		if processed == maxM {
			break
		}
		// Generating a block only matters while the decoder is incomplete;
		// once complete, every checkpoint reads n levels anyway.
		if dec.Complete() {
			for ci < len(ms) {
				rec[ci] = dec.DecodedLevels()
				ci++
			}
			break
		}
		b, err := enc.Encode(rng, sampler.Draw(rng))
		if err != nil {
			return nil, err
		}
		if _, err := dec.Add(b); err != nil {
			return nil, err
		}
	}
	for ci < len(ms) {
		rec[ci] = dec.DecodedLevels()
		ci++
	}
	return rec, nil
}

// Steps returns the inclusive integer sweep {from, from+step, ..., to},
// the usual checkpoint grid for decoding curves.
func Steps(from, to, step int) []int {
	if step <= 0 || to < from {
		return nil
	}
	out := make([]int, 0, (to-from)/step+1)
	for m := from; m <= to; m += step {
		out = append(out, m)
	}
	return out
}
