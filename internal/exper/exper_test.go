package exper

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSteps(t *testing.T) {
	got := Steps(0, 10, 5)
	want := []int{0, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("Steps = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Steps = %v, want %v", got, want)
		}
	}
	if Steps(5, 4, 1) != nil {
		t.Error("descending Steps should be nil")
	}
	if Steps(0, 10, 0) != nil {
		t.Error("zero stride should be nil")
	}
}

func TestCurveConfigValidation(t *testing.T) {
	l, err := core.UniformLevels(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := CurveConfig{
		Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), Ms: []int{0, 5},
	}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CurveConfig{
		{Scheme: core.PLC, Dist: core.NewUniformDistribution(2), Ms: []int{1}},
		{Scheme: core.Scheme(9), Levels: l, Dist: core.NewUniformDistribution(2), Ms: []int{1}},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3), Ms: []int{1}},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2)},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), Ms: []int{-1}},
	}
	for i, cfg := range bad {
		if _, err := SimulateCurve(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSimulateCurveBasicShape(t *testing.T) {
	l, err := core.UniformLevels(3, 5) // N = 15
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateCurve(CurveConfig{
		Name:   "plc",
		Scheme: core.PLC,
		Levels: l,
		Dist:   core.NewUniformDistribution(3),
		Ms:     Steps(0, 40, 5),
		Trials: 60,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 9 {
		t.Fatalf("curve has %d points, want 9", len(c.Points))
	}
	if c.Points[0].Mean != 0 {
		t.Errorf("E at M=0 should be 0, got %g", c.Points[0].Mean)
	}
	last := c.Points[len(c.Points)-1]
	if last.Mean < 2.9 {
		t.Errorf("E at M=40 is %g, want near 3 (saturation)", last.Mean)
	}
	prev := -1.0
	for _, p := range c.Points {
		if p.Mean < prev-0.15 {
			t.Errorf("curve decreased beyond CI noise at M=%g: %g -> %g", p.M, prev, p.Mean)
		}
		prev = p.Mean
		if p.CI95 < 0 {
			t.Errorf("negative CI at M=%g", p.M)
		}
	}
}

// TestSimulateDeterministicAcrossWorkerCounts: trial seeding makes results
// identical whether run on 1 worker or many.
func TestSimulateDeterministicAcrossWorkerCounts(t *testing.T) {
	l, err := core.UniformLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Curve {
		c, err := SimulateCurve(CurveConfig{
			Scheme: core.SLC, Levels: l, Dist: core.NewUniformDistribution(2),
			Ms: Steps(0, 24, 4), Trials: 20, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(1), run(8)
	for i := range a.Points {
		if a.Points[i].Mean != b.Points[i].Mean || a.Points[i].CI95 != b.Points[i].CI95 {
			t.Fatalf("worker counts disagree at point %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// TestAnalysisVsSimulationSmallScale is Fig. 4/5 at 1/20 scale: the
// analysis series must track the simulation within CI-plus-model slack.
func TestAnalysisVsSimulationSmallScale(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		c, err := AnalysisVsSimulation(scheme, 5, FigureOptions{
			Trials: 60, Seed: 2, Scale: 20, Stride: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range c.Points {
			if !p.HasAnalysis {
				t.Fatalf("%v: missing analysis at M=%g", scheme, p.M)
			}
			if math.Abs(p.Analysis-p.Mean) > 0.35 {
				t.Errorf("%v M=%g: analysis %g vs simulation %g", scheme, p.M, p.Analysis, p.Mean)
			}
		}
	}
}

// TestSLCvsPLCSmallScale is Fig. 6 at reduced scale: PLC must dominate SLC
// at every checkpoint.
func TestSLCvsPLCSmallScale(t *testing.T) {
	slc, plc, err := SLCvsPLC(10, FigureOptions{Trials: 50, Seed: 3, Scale: 10, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(slc.Points) != len(plc.Points) {
		t.Fatal("panel curves have different grids")
	}
	for i := range slc.Points {
		if plc.Points[i].Mean < slc.Points[i].Mean-0.2 {
			t.Errorf("M=%g: PLC %g below SLC %g", slc.Points[i].M, plc.Points[i].Mean, slc.Points[i].Mean)
		}
	}
}

func TestFig7Validation(t *testing.T) {
	if _, err := Fig7([]core.PriorityDistribution{{1}}, nil, FigureOptions{}); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestFig7SmallScale(t *testing.T) {
	dists := []core.PriorityDistribution{
		{0.5138, 0.0768, 0.4094},
		{0, 0.6149, 0.3851},
	}
	curves, err := Fig7(dists, []string{"case1", "case2"}, FigureOptions{
		Trials: 30, Seed: 4, Scale: 10, Stride: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	// Case 1 weights level 0 heavily: its curve must reach level 1 earlier
	// than case 2 (which has no level-0 blocks at all).
	reach := func(c *Curve) float64 {
		for _, p := range c.Points {
			if p.Mean >= 0.9 {
				return p.M
			}
		}
		return math.Inf(1)
	}
	if reach(curves[0]) > reach(curves[1]) {
		t.Errorf("case1 reaches level 1 at M=%g, later than case2 at M=%g",
			reach(curves[0]), reach(curves[1]))
	}
}

func TestRenderCurvesAndCSV(t *testing.T) {
	l, err := core.UniformLevels(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateCurve(CurveConfig{
		Name: "demo", Scheme: core.PLC, Levels: l,
		Dist: core.NewUniformDistribution(2),
		Ms:   []int{0, 8, 16}, Trials: 10, Seed: 5, WithAnalysis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderCurves(&buf, "demo title", c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo title", "M", "demo sim", "demo analysis"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	if err := RenderCurves(&buf, "x"); err == nil {
		t.Error("RenderCurves with no curves succeeded")
	}

	buf.Reset()
	if err := WriteCurvesCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 {
		t.Errorf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "curve,m,mean,ci95,analysis" {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestRenderTable1Formatting(t *testing.T) {
	cases := []Table1Case{{
		Name:   "Case 1",
		PaperP: core.PriorityDistribution{0.5, 0.25, 0.25},
	}}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, cases); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Case 1", "0.5000/0.2500/0.2500", "false", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChurnAndCSV(t *testing.T) {
	pts := []ChurnPoint{
		{T: 0, AliveFrac: 1, Mean: 3, CI95: 0},
		{T: 10, AliveFrac: 0.5, Mean: 1.5, CI95: 0.2},
	}
	var buf bytes.Buffer
	if err := RenderChurn(&buf, "timeline", pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"timeline", "alive%", "1.50±0.20", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn table missing %q:\n%s", want, out)
		}
	}
	if err := RenderChurn(&buf, "x", nil); err == nil {
		t.Error("empty churn render succeeded")
	}
	buf.Reset()
	if err := WriteChurnCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "t,aliveFrac,mean,ci95" {
		t.Errorf("churn CSV:\n%s", buf.String())
	}
}

// TestTable1FullSolve reproduces Table 1 end to end (full problem size);
// guarded by -short since each case costs seconds of analysis evaluations.
func TestTable1FullSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 1 feasibility solving is expensive; run without -short")
	}
	cases, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(cases))
	}
	for _, c := range cases {
		if !c.Feasible {
			t.Errorf("%s infeasible: %v", c.Name, c.SolvedP)
		}
		if len(c.SolvedP) != 3 || len(c.PaperP) != 3 {
			t.Errorf("%s has malformed distributions", c.Name)
		}
	}
}
