package exper

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestMeasurePerfValidation(t *testing.T) {
	if _, err := MeasurePerf(PerfConfig{}); err == nil {
		t.Error("MeasurePerf accepted a zero config")
	}
	levels, err := core.UniformLevels(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasurePerf(PerfConfig{Scheme: core.PLC, Levels: levels}); err == nil {
		t.Error("MeasurePerf accepted zero payload length")
	}
	if _, err := MeasurePerf(PerfConfig{Scheme: core.Scheme(9), Levels: levels, PayloadLen: 8}); err == nil {
		t.Error("MeasurePerf accepted an invalid scheme")
	}
}

func TestMeasurePerfReportsPositiveRates(t *testing.T) {
	levels, err := core.UniformLevels(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		res, err := MeasurePerf(PerfConfig{
			Scheme:      scheme,
			Levels:      levels,
			PayloadLen:  64,
			Workers:     1,
			Seed:        7,
			MinDuration: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Scheme != scheme {
			t.Errorf("scheme = %v, want %v", res.Scheme, scheme)
		}
		if res.EncodeMBps <= 0 || res.DecodeMBps <= 0 || res.RankTrialsPerSec <= 0 {
			t.Errorf("%v: non-positive rates: %+v", scheme, res)
		}
		if res.TotalBlocks != levels.Total() {
			t.Errorf("%v: TotalBlocks = %d, want %d", scheme, res.TotalBlocks, levels.Total())
		}
		if res.DecodedBlocks < 0 || res.DecodedBlocks > res.TotalBlocks {
			t.Errorf("%v: DecodedBlocks = %d out of range", scheme, res.DecodedBlocks)
		}
	}
}
