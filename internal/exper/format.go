package exper

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderCurves renders one or more curves as an aligned ASCII table keyed
// by M, with one Mean±CI column per curve (plus an analysis column when
// present) — the textual form of the paper's figures.
func RenderCurves(w io.Writer, title string, curves ...*Curve) error {
	if len(curves) == 0 {
		return fmt.Errorf("exper: no curves to render")
	}
	header := []string{"M"}
	for _, c := range curves {
		header = append(header, c.Name+" sim")
		if curveHasAnalysis(c) {
			header = append(header, c.Name+" analysis")
		}
	}
	rows := [][]string{}
	for i := range curves[0].Points {
		row := []string{strconv.Itoa(int(curves[0].Points[i].M))}
		for _, c := range curves {
			if i >= len(c.Points) {
				row = append(row, "-")
				continue
			}
			p := c.Points[i]
			row = append(row, fmt.Sprintf("%.3f±%.3f", p.Mean, p.CI95))
			if curveHasAnalysis(c) {
				row = append(row, fmt.Sprintf("%.3f", p.Analysis))
			}
		}
		rows = append(rows, row)
	}
	return renderTable(w, title, header, rows)
}

func curveHasAnalysis(c *Curve) bool {
	for _, p := range c.Points {
		if p.HasAnalysis {
			return true
		}
	}
	return false
}

// WriteCurvesCSV emits the same data as machine-readable CSV.
func WriteCurvesCSV(w io.Writer, curves ...*Curve) error {
	cw := csv.NewWriter(w)
	header := []string{"curve", "m", "mean", "ci95", "analysis"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			an := ""
			if p.HasAnalysis {
				an = strconv.FormatFloat(p.Analysis, 'g', 8, 64)
			}
			rec := []string{
				c.Name,
				strconv.Itoa(int(p.M)),
				strconv.FormatFloat(p.Mean, 'g', 8, 64),
				strconv.FormatFloat(p.CI95, 'g', 8, 64),
				an,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderTable1 renders the Table 1 reproduction: per case, the paper's
// distribution next to ours.
func RenderTable1(w io.Writer, cases []Table1Case) error {
	header := []string{"case", "constraints", "paper p1/p2/p3", "ours p1/p2/p3", "feasible"}
	rows := make([][]string, 0, len(cases))
	for _, c := range cases {
		cons := make([]string, 0, len(c.Constraints))
		for _, d := range c.Constraints {
			cons = append(cons, fmt.Sprintf("(%d,%g)", d.M, d.MinLevels))
		}
		rows = append(rows, []string{
			c.Name,
			strings.Join(cons, " "),
			fmtDist(c.PaperP),
			fmtDist(c.SolvedP),
			strconv.FormatBool(c.Feasible),
		})
	}
	return renderTable(w, "Table 1: priority distributions from the feasibility problem", header, rows)
}

func fmtDist(p []float64) string {
	if len(p) == 0 {
		return "-"
	}
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.FormatFloat(v, 'f', 4, 64)
	}
	return strings.Join(parts, "/")
}

// RenderChurn renders a churn timeline as an aligned ASCII table.
func RenderChurn(w io.Writer, title string, pts []ChurnPoint) error {
	if len(pts) == 0 {
		return fmt.Errorf("exper: no churn points to render")
	}
	header := []string{"time", "alive%", "levels"}
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.FormatFloat(p.T, 'f', 1, 64),
			fmt.Sprintf("%.0f", p.AliveFrac*100),
			fmt.Sprintf("%.2f±%.2f", p.Mean, p.CI95),
		})
	}
	return renderTable(w, title, header, rows)
}

// WriteChurnCSV emits a churn timeline as CSV.
func WriteChurnCSV(w io.Writer, pts []ChurnPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "aliveFrac", "mean", "ci95"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.FormatFloat(p.T, 'g', 8, 64),
			strconv.FormatFloat(p.AliveFrac, 'g', 8, 64),
			strconv.FormatFloat(p.Mean, 'g', 8, 64),
			strconv.FormatFloat(p.CI95, 'g', 8, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// renderTable prints an aligned ASCII table.
func renderTable(w io.Writer, title string, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	printRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := printRow(header); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := printRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	return nil
}
