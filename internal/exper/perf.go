package exper

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// Perf harness: wall-clock throughput of the encode and decode hot paths,
// plus the rank-only trial rate that bounds how fast the Monte-Carlo
// experiments (Fig. 4/5, N trials per curve point) can run. prlcbench
// exposes it via -perf so performance PRs have a one-command A/B for both
// sides of the pipeline.

// PerfConfig parameterizes one perf measurement.
type PerfConfig struct {
	Scheme core.Scheme
	Levels *core.Levels
	// PayloadLen is the per-block payload size for the throughput
	// measurements (the rank-only rate always uses zero-length payloads).
	PayloadLen int
	// Workers sizes the encode and decode worker pools (0 = GOMAXPROCS).
	Workers int
	// Seed drives all randomness; results are deterministic given a seed.
	Seed int64
	// MinDuration is the minimum measuring time per metric (0 = 500ms).
	MinDuration time.Duration
	// Sparsity, when positive, draws that many nonzero coefficients per
	// block (core.WithSparsity) instead of dense vectors.
	Sparsity int
	// BandWidth, when positive, draws contiguous coefficient bands of that
	// width (core.WithBand).
	BandWidth int
	// ChunkSize/ChunkOverlap, when ChunkSize is positive, switch the whole
	// measurement to expander-chunked coding over the same N source blocks;
	// Scheme and the level structure then only size the problem.
	ChunkSize, ChunkOverlap int
}

// PerfResult reports one scheme's hot-path throughput.
type PerfResult struct {
	Scheme core.Scheme
	// EncodeMBps is coded-payload production in MB/s over full batches.
	EncodeMBps float64
	// DecodeMBps is coded-payload absorption in MB/s while decoding a batch
	// to completion (or exhaustion).
	DecodeMBps float64
	// DecodedBlocks/TotalBlocks report how much of the source the decode
	// pass recovered, so a throughput number is never read without its
	// recovery context.
	DecodedBlocks, TotalBlocks int
	// RankTrialsPerSec is the rate of payload-free full-decode trials — the
	// inner loop of every simulated curve point.
	RankTrialsPerSec float64
}

func (c PerfConfig) validate() error {
	if c.Levels == nil {
		return fmt.Errorf("exper: nil levels")
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("exper: invalid scheme %v", c.Scheme)
	}
	if c.PayloadLen <= 0 {
		return fmt.Errorf("exper: perf payload length %d, want > 0", c.PayloadLen)
	}
	set := 0
	for _, on := range []bool{c.Sparsity > 0, c.BandWidth > 0, c.ChunkSize > 0} {
		if on {
			set++
		}
	}
	if set > 1 {
		return fmt.Errorf("exper: Sparsity, BandWidth and ChunkSize are mutually exclusive")
	}
	return nil
}

// MeasurePerf runs the three measurements of cfg and returns the rates.
func MeasurePerf(cfg PerfConfig) (*PerfResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	minDur := cfg.MinDuration
	if minDur <= 0 {
		minDur = 500 * time.Millisecond
	}
	levels := cfg.Levels
	n := levels.Total()
	p := core.NewUniformDistribution(levels.Count())

	rng := rand.New(rand.NewSource(cfg.Seed))
	sources := make([][]byte, n)
	for i := range sources {
		sources[i] = make([]byte, cfg.PayloadLen)
		rng.Read(sources[i])
	}
	if cfg.ChunkSize > 0 {
		return measureChunkedPerf(cfg, minDur, sources)
	}
	var opts []core.EncoderOption
	if cfg.Sparsity > 0 {
		opts = append(opts, core.WithSparsity(cfg.Sparsity))
	}
	if cfg.BandWidth > 0 {
		opts = append(opts, core.WithBand(cfg.BandWidth))
	}
	enc, err := core.NewEncoder(cfg.Scheme, levels, sources, opts...)
	if err != nil {
		return nil, err
	}
	penc, err := core.NewParallelEncoder(enc, cfg.Workers)
	if err != nil {
		return nil, err
	}
	count := n + n/4

	res := &PerfResult{Scheme: cfg.Scheme, TotalBlocks: n}

	// Encode throughput: full batches, fresh seed per batch.
	var blocks []*core.CodedBlock
	encoded := 0
	start := time.Now()
	for round := 0; time.Since(start) < minDur || round == 0; round++ {
		blocks, err = penc.EncodeBatch(cfg.Seed+int64(round), p, count)
		if err != nil {
			return nil, err
		}
		encoded += count
	}
	res.EncodeMBps = mbps(encoded*cfg.PayloadLen, time.Since(start))

	// Decode throughput: absorb the last batch into a fresh decoder until
	// complete or exhausted; MB/s counts the coded payload bytes processed.
	absorbed := 0
	start = time.Now()
	for round := 0; time.Since(start) < minDur || round == 0; round++ {
		dec, err := core.NewDecoder(cfg.Scheme, levels, cfg.PayloadLen)
		if err != nil {
			return nil, err
		}
		dec.SetWorkers(cfg.Workers)
		for _, b := range blocks {
			if _, err := dec.Add(b); err != nil {
				return nil, err
			}
			absorbed++
			if dec.Complete() {
				break
			}
		}
		res.DecodedBlocks = dec.DecodedBlocks()
	}
	res.DecodeMBps = mbps(absorbed*cfg.PayloadLen, time.Since(start))

	// Rank-only trial rate: the exact shape of the Monte-Carlo inner loop —
	// payload-free encoder and decoder, stream until complete or 2N blocks.
	rankEnc, err := core.NewEncoder(cfg.Scheme, levels, nil, opts...)
	if err != nil {
		return nil, err
	}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		return nil, err
	}
	trials := 0
	start = time.Now()
	for time.Since(start) < minDur || trials == 0 {
		trng := rand.New(rand.NewSource(cfg.Seed + int64(trials)*1_000_003))
		dec, err := core.NewDecoder(cfg.Scheme, levels, 0)
		if err != nil {
			return nil, err
		}
		for m := 0; m < 2*n && !dec.Complete(); m++ {
			b, err := rankEnc.Encode(trng, sampler.Draw(trng))
			if err != nil {
				return nil, err
			}
			if _, err := dec.Add(b); err != nil {
				return nil, err
			}
		}
		trials++
	}
	res.RankTrialsPerSec = float64(trials) / time.Since(start).Seconds()

	return res, nil
}

// measureChunkedPerf is the expander-chunked twin of MeasurePerf: the
// same three measurements through ChunkedEncoder/ChunkedDecoder.
func measureChunkedPerf(cfg PerfConfig, minDur time.Duration, sources [][]byte) (*PerfResult, error) {
	n := cfg.Levels.Total()
	layout, err := core.NewChunkLayout(n, cfg.ChunkSize, cfg.ChunkOverlap)
	if err != nil {
		return nil, err
	}
	enc, err := core.NewChunkedEncoder(layout, sources)
	if err != nil {
		return nil, err
	}
	count := n + n/4
	res := &PerfResult{Scheme: cfg.Scheme, TotalBlocks: n}

	var blocks []*core.CodedBlock
	encoded := 0
	start := time.Now()
	for round := 0; time.Since(start) < minDur || round == 0; round++ {
		blocks, err = enc.EncodeBatch(rand.New(rand.NewSource(cfg.Seed+int64(round))), count)
		if err != nil {
			return nil, err
		}
		encoded += count
	}
	res.EncodeMBps = mbps(encoded*cfg.PayloadLen, time.Since(start))

	absorbed := 0
	start = time.Now()
	for round := 0; time.Since(start) < minDur || round == 0; round++ {
		dec, err := core.NewChunkedDecoder(layout, cfg.PayloadLen)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			if _, err := dec.Add(b); err != nil {
				return nil, err
			}
			absorbed++
			if dec.Complete() {
				break
			}
		}
		res.DecodedBlocks = dec.DecodedCount()
	}
	res.DecodeMBps = mbps(absorbed*cfg.PayloadLen, time.Since(start))

	// Rank-only trials: payload-free chunked stream until complete or 2N.
	rankEnc, err := core.NewChunkedEncoder(layout, nil)
	if err != nil {
		return nil, err
	}
	trials := 0
	start = time.Now()
	for time.Since(start) < minDur || trials == 0 {
		trng := rand.New(rand.NewSource(cfg.Seed + int64(trials)*1_000_003))
		dec, err := core.NewChunkedDecoder(layout, 0)
		if err != nil {
			return nil, err
		}
		for m := 0; m < 2*n && !dec.Complete(); m++ {
			b, err := rankEnc.EncodeChunk(trng, m%layout.Count)
			if err != nil {
				return nil, err
			}
			if _, err := dec.Add(b); err != nil {
				return nil, err
			}
		}
		trials++
	}
	res.RankTrialsPerSec = float64(trials) / time.Since(start).Seconds()

	return res, nil
}

func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}
