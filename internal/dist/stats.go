package dist

import "math"

// Summary captures the sample statistics the paper reports for every data
// point: the mean over independent trials and a 95% confidence interval.
type Summary struct {
	N      int     // number of samples
	Mean   float64 // sample mean
	StdDev float64 // sample standard deviation (Bessel-corrected)
	CI95   float64 // half-width of the 95% confidence interval on the mean
}

// Summarize computes mean, standard deviation and the 95% confidence
// half-width (normal approximation, z = 1.96 — the paper averages 100
// independent experiments per point, well into the CLT regime).
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, x := range samples {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	ss := 0.0
	for _, x := range samples {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Summary{
		N:      n,
		Mean:   mean,
		StdDev: sd,
		CI95:   1.96 * sd / math.Sqrt(float64(n)),
	}
}
