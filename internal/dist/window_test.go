package dist

import (
	"math"
	"testing"
)

func TestBinomialWindowCoversMass(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {100, 0.1}, {2000, 0.37}, {1, 0.5}, {50, 0.99}} {
		lo, pmf := BinomialWindow(tc.n, tc.p, 1e-18)
		sum := 0.0
		for _, v := range pmf {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d p=%g: window mass %g, want ~1", tc.n, tc.p, sum)
		}
		for i, v := range pmf {
			want := BinomialPMF(tc.n, lo+i, tc.p)
			if math.Abs(v-want) > 1e-12*(1+want) {
				t.Errorf("n=%d p=%g k=%d: window %g, pmf %g", tc.n, tc.p, lo+i, v, want)
			}
		}
		if lo < 0 || lo+len(pmf)-1 > tc.n {
			t.Errorf("n=%d p=%g: window [%d, %d] out of range", tc.n, tc.p, lo, lo+len(pmf)-1)
		}
	}
}

func TestBinomialWindowEdgeCases(t *testing.T) {
	if lo, pmf := BinomialWindow(10, 0, 1e-18); lo != 0 || len(pmf) != 1 || pmf[0] != 1 {
		t.Errorf("p=0: (%d, %v)", lo, pmf)
	}
	if lo, pmf := BinomialWindow(10, 1, 1e-18); lo != 10 || len(pmf) != 1 || pmf[0] != 1 {
		t.Errorf("p=1: (%d, %v)", lo, pmf)
	}
	if lo, pmf := BinomialWindow(0, 0.5, 1e-18); lo != 0 || len(pmf) != 1 || pmf[0] != 1 {
		t.Errorf("n=0: (%d, %v)", lo, pmf)
	}
	if _, pmf := BinomialWindow(-1, 0.5, 1e-18); pmf != nil {
		t.Errorf("n=-1: %v", pmf)
	}
	// Non-positive tailEps falls back to the default.
	_, pmf := BinomialWindow(100, 0.5, 0)
	sum := 0.0
	for _, v := range pmf {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("default tailEps: mass %g", sum)
	}
}

func TestBinomialWindowIsNarrow(t *testing.T) {
	// The window must be O(sqrt(n log(1/eps))) wide, far below n.
	n := 10000
	_, pmf := BinomialWindow(n, 0.5, 1e-18)
	sigma := math.Sqrt(float64(n) * 0.25)
	if len(pmf) > int(25*sigma) {
		t.Errorf("window width %d exceeds 25 sigma (%g)", len(pmf), 25*sigma)
	}
}

func BenchmarkBinomialWindow2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomialWindow(2000, 0.37, 1e-18)
	}
}
