package dist

import "math"

// BinomialWindow returns the PMF of Binomial(n, p) restricted to the
// contiguous window around the mode where the mass is non-negligible:
// values below tailEps times the modal mass are truncated on both sides.
// It returns the first index lo of the window and the PMF values
// pmf[i] = Pr(X = lo+i).
//
// The constrained-multinomial dynamic programs in internal/analysis invoke
// a binomial kernel once per DP state; truncating the kernel to its
// O(sqrt(n)) central window turns an O(M^2)-per-level pass into an
// O(M·sqrt(M)) one with error far below the 1e-9 the experiments resolve.
func BinomialWindow(n int, p float64, tailEps float64) (lo int, pmf []float64) {
	if n < 0 {
		return 0, nil
	}
	if n == 0 || p <= 0 {
		return 0, []float64{1}
	}
	if p >= 1 {
		return n, []float64{1}
	}
	if tailEps <= 0 {
		tailEps = 1e-18
	}
	mode := int(float64(n+1) * p)
	if mode > n {
		mode = n
	}
	modal := math.Exp(LogBinomialPMF(n, mode, p))
	cut := modal * tailEps
	ratio := p / (1 - p)

	// Walk down from the mode until mass drops below cut.
	lo = mode
	v := modal
	for lo > 0 {
		// pmf(k-1) = pmf(k) / ratio * k / (n-k+1)
		v = v / ratio * float64(lo) / float64(n-lo+1)
		if v < cut {
			break
		}
		lo--
	}
	// Walk up from the mode.
	hi := mode
	v = modal
	for hi < n {
		// pmf(k+1) = pmf(k) * ratio * (n-k) / (k+1)
		v = v * ratio * float64(n-hi) / float64(hi+1)
		if v < cut {
			break
		}
		hi++
	}

	pmf = make([]float64, hi-lo+1)
	pmf[mode-lo] = modal
	for k := mode + 1; k <= hi; k++ {
		pmf[k-lo] = pmf[k-1-lo] * ratio * float64(n-k+1) / float64(k)
	}
	for k := mode - 1; k >= lo; k-- {
		pmf[k-lo] = pmf[k+1-lo] / ratio * float64(k+1) / float64(n-k)
	}
	return lo, pmf
}
