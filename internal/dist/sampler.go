package dist

import (
	"fmt"
	"math/rand"
)

// Categorical draws category indices from a fixed discrete distribution in
// O(1) per draw using Vose's alias method. The Monte-Carlo experiments draw
// millions of coded-block levels from the priority distribution, so the
// constant-time sampler matters.
type Categorical struct {
	prob  []float64
	alias []int
}

// NewCategorical builds an alias table for the given probability vector,
// which must be a valid distribution within a 1e-9 tolerance.
func NewCategorical(p []float64) (*Categorical, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("dist: empty distribution")
	}
	if err := Simplex(p, 1e-9); err != nil {
		return nil, err
	}
	n := len(p)
	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, v := range p {
		scaled[i] = v * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c, nil
}

// Draw returns a category index sampled from the distribution.
func (c *Categorical) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(c.prob))
	if rng.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.prob) }

// MultinomialDraw returns category counts for n independent draws from p.
func MultinomialDraw(rng *rand.Rand, n int, c *Categorical) []int {
	counts := make([]int, c.Len())
	for i := 0; i < n; i++ {
		counts[c.Draw(rng)]++
	}
	return counts
}
