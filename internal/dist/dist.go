// Package dist provides the probability primitives shared by the
// analytical model (internal/analysis) and the Monte-Carlo experiment
// harness (internal/exper): log-space binomial/multinomial mass functions,
// an O(1) alias-method categorical sampler for drawing coded-block levels
// from a priority distribution, and mean/confidence-interval estimators
// for simulation output.
package dist

import (
	"fmt"
	"math"
)

// LogFactorial returns ln(n!) using the log-gamma function.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogChoose returns ln(C(n, k)), or -Inf for k outside [0, n].
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// LogBinomialPMF returns ln Pr(X = k) for X ~ Binomial(n, p).
func LogBinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns Pr(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	return math.Exp(LogBinomialPMF(n, k, p))
}

// BinomialCDF returns Pr(X <= k) for X ~ Binomial(n, p).
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialPMFRow returns the full PMF vector [Pr(X=0) ... Pr(X=n)] for
// X ~ Binomial(n, p), computed with a multiplicative recurrence that is both
// fast and numerically stable for the n (~2000) used by the analysis.
func BinomialPMFRow(n int, p float64) []float64 {
	row := make([]float64, n+1)
	if p <= 0 {
		row[0] = 1
		return row
	}
	if p >= 1 {
		row[n] = 1
		return row
	}
	// Start at the mode in log space to avoid underflow for large n.
	mode := int(float64(n+1) * p)
	if mode > n {
		mode = n
	}
	row[mode] = math.Exp(LogBinomialPMF(n, mode, p))
	ratio := p / (1 - p)
	for k := mode + 1; k <= n; k++ {
		row[k] = row[k-1] * ratio * float64(n-k+1) / float64(k)
	}
	for k := mode - 1; k >= 0; k-- {
		row[k] = row[k+1] / ratio * float64(k+1) / float64(n-k)
	}
	return row
}

// Simplex validates that p is a probability vector: nonnegative entries
// summing to 1 within tol.
func Simplex(p []float64, tol float64) error {
	sum := 0.0
	for i, v := range p {
		if v < -tol {
			return fmt.Errorf("dist: negative probability p[%d] = %g", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("dist: probabilities sum to %g, want 1 (tolerance %g)", sum, tol)
	}
	return nil
}

// ProjectToSimplex returns the Euclidean projection of v onto the
// probability simplex (Duchi et al. algorithm). Used by the feasibility
// solver to keep candidate priority distributions valid.
func ProjectToSimplex(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	// Sort a copy descending.
	u := make([]float64, n)
	copy(u, v)
	sortDescending(u)
	cum := 0.0
	theta := 0.0
	k := 0
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - 1) / float64(i+1)
		if u[i]-t > 0 {
			theta = t
			k = i + 1
		}
	}
	if k == 0 {
		// All mass on the largest coordinate (degenerate input).
		out := make([]float64, n)
		best := 0
		for i := 1; i < n; i++ {
			if v[i] > v[best] {
				best = i
			}
		}
		out[best] = 1
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if w := v[i] - theta; w > 0 {
			out[i] = w
		}
	}
	return out
}

func sortDescending(v []float64) {
	// Insertion sort is fine for the small n (priority levels) seen here;
	// avoid pulling in sort for a hot inner loop over tiny slices.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] < x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// Uniform returns the uniform distribution over n categories.
func Uniform(n int) []float64 {
	if n <= 0 {
		return nil
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}
