package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogFactorialSmall(t *testing.T) {
	facts := []float64{1, 1, 2, 6, 24, 120, 720}
	for n, f := range facts {
		if got := LogFactorial(n); !almostEqual(got, math.Log(f), 1e-12) {
			t.Errorf("LogFactorial(%d) = %g, want %g", n, got, math.Log(f))
		}
	}
	if got := LogFactorial(-1); !math.IsInf(got, -1) {
		t.Errorf("LogFactorial(-1) = %g, want -Inf", got)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, tc := range cases {
		if got := LogChoose(tc.n, tc.k); !almostEqual(got, math.Log(tc.want), 1e-9) {
			t.Errorf("LogChoose(%d,%d) = %g, want ln(%g)", tc.n, tc.k, got, tc.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.01}, {1000, 0.5}, {7, 0}, {7, 1}} {
		sum := 0.0
		for k := 0; k <= tc.n; k++ {
			sum += BinomialPMF(tc.n, k, tc.p)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("n=%d p=%g: PMF sums to %g", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialPMFRowMatchesPMF(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{1, 0.5}, {10, 0.3}, {200, 0.05}, {2000, 0.5}, {50, 0}, {50, 1}} {
		row := BinomialPMFRow(tc.n, tc.p)
		if len(row) != tc.n+1 {
			t.Fatalf("row length %d, want %d", len(row), tc.n+1)
		}
		for k := 0; k <= tc.n; k++ {
			want := BinomialPMF(tc.n, k, tc.p)
			if !almostEqual(row[k], want, 1e-9*(1+want)) {
				t.Errorf("n=%d p=%g k=%d: row %g, pmf %g", tc.n, tc.p, k, row[k], want)
			}
		}
	}
}

func TestBinomialCDF(t *testing.T) {
	if got := BinomialCDF(10, -1, 0.5); got != 0 {
		t.Errorf("CDF(k=-1) = %g, want 0", got)
	}
	if got := BinomialCDF(10, 10, 0.5); got != 1 {
		t.Errorf("CDF(k=n) = %g, want 1", got)
	}
	// Symmetry at p = 0.5: Pr(X <= 4) + Pr(X <= 5) = 1 for n = 10.
	got := BinomialCDF(10, 4, 0.5) + BinomialCDF(10, 5, 0.5)
	if !almostEqual(got, 1, 1e-9) {
		t.Errorf("symmetry check = %g, want 1", got)
	}
}

func TestSimplex(t *testing.T) {
	if err := Simplex([]float64{0.2, 0.3, 0.5}, 1e-9); err != nil {
		t.Errorf("valid simplex rejected: %v", err)
	}
	if err := Simplex([]float64{0.5, 0.6}, 1e-9); err == nil {
		t.Error("sum > 1 accepted")
	}
	if err := Simplex([]float64{-0.1, 1.1}, 1e-9); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestProjectToSimplexFixedPoints(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	got := ProjectToSimplex(p)
	for i := range p {
		if !almostEqual(got[i], p[i], 1e-12) {
			t.Errorf("projection moved a simplex point: %v -> %v", p, got)
		}
	}
}

func TestProjectToSimplexKnown(t *testing.T) {
	// Projection of (1,1) onto the simplex is (0.5, 0.5).
	got := ProjectToSimplex([]float64{1, 1})
	if !almostEqual(got[0], 0.5, 1e-12) || !almostEqual(got[1], 0.5, 1e-12) {
		t.Errorf("project (1,1) = %v, want (0.5,0.5)", got)
	}
	// Strongly negative coordinates clip to zero.
	got = ProjectToSimplex([]float64{-5, 1})
	if !almostEqual(got[0], 0, 1e-12) || !almostEqual(got[1], 1, 1e-12) {
		t.Errorf("project (-5,1) = %v, want (0,1)", got)
	}
	if got := ProjectToSimplex(nil); got != nil {
		t.Errorf("project nil = %v, want nil", got)
	}
}

func TestQuickProjectionIsOnSimplex(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp wild inputs to a sane range to avoid Inf/NaN noise.
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 100)
		}
		p := ProjectToSimplex(v)
		return Simplex(p, 1e-6) == nil
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	if got := Uniform(0); got != nil {
		t.Errorf("Uniform(0) = %v, want nil", got)
	}
	u := Uniform(4)
	for _, v := range u {
		if !almostEqual(v, 0.25, 1e-15) {
			t.Errorf("Uniform(4) = %v", u)
		}
	}
}

func TestCategoricalRejectsInvalid(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := NewCategorical([]float64{0.5, 0.6}); err == nil {
		t.Error("non-simplex distribution accepted")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	c, err := NewCategorical(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := MultinomialDraw(rng, n, c)
	for i, want := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency %g, want %g±0.01", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	c, err := NewCategorical([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 1000; i++ {
		if got := c.Draw(rng); got != 1 {
			t.Fatalf("degenerate distribution drew %d, want 1", got)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	c, err := NewCategorical([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	if got := c.Draw(rng); got != 0 {
		t.Errorf("single-category draw = %d, want 0", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
	if s := Summarize([]float64{5}); s.N != 1 || s.Mean != 5 || s.StdDev != 0 {
		t.Errorf("Summarize single = %+v", s)
	}
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	// Sample (Bessel) stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("stddev = %g, want %g", s.StdDev, want)
	}
	if !almostEqual(s.CI95, 1.96*s.StdDev/math.Sqrt(8), 1e-12) {
		t.Errorf("CI95 = %g", s.CI95)
	}
}

func BenchmarkCategoricalDraw(b *testing.B) {
	c, err := NewCategorical(Uniform(50))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Draw(rng)
	}
}

func BenchmarkBinomialPMFRow2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomialPMFRow(2000, 0.37)
	}
}
