package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestPLCSurvivalMatchesThresholdMonteCarlo cross-checks the exact
// forward/backward DP against a direct Monte-Carlo evaluation of the
// threshold model at a scale far beyond the brute-force enumerations:
// n = 10 levels, N = 100 source blocks, 40k occupancy draws per point.
// The MC evaluates X via the R-statistic (itself exhaustively verified in
// rstat_test.go), so any disagreement isolates a DP bug.
func TestPLCSurvivalMatchesThresholdMonteCarlo(t *testing.T) {
	l := mustLevels(t, 5, 5, 10, 10, 10, 10, 10, 10, 15, 15) // N = 100
	p := core.PriorityDistribution{0.2, 0.15, 0.1, 0.1, 0.1, 0.1, 0.05, 0.05, 0.1, 0.05}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 40000

	for _, m := range []int{40, 80, 100, 120, 160} {
		r, err := Eval(core.PLC, l, p, m)
		if err != nil {
			t.Fatal(err)
		}
		// Monte-Carlo survival counts via the R-statistic.
		geCount := make([]int, l.Count())
		for draw := 0; draw < draws; draw++ {
			counts := dist.MultinomialDraw(rng, m, sampler)
			rs := rStatistic(l, counts)
			x := 0
			for j := 1; j <= l.Count(); j++ {
				if rs[j-1] >= l.CumSize(j-1) {
					x = j
				}
			}
			for k := 1; k <= x; k++ {
				geCount[k-1]++
			}
		}
		for k := 1; k <= l.Count(); k++ {
			mc := float64(geCount[k-1]) / draws
			exact := r.PrGE[k-1]
			// Standard error of a Bernoulli mean over 40k draws is at most
			// 0.0025; allow 5 sigma.
			if math.Abs(mc-exact) > 0.013 {
				t.Errorf("M=%d k=%d: exact %.4f vs MC %.4f", m, k, exact, mc)
			}
		}
	}
}

// TestSLCSurvivalMatchesThresholdMonteCarlo does the same for the SLC DP.
func TestSLCSurvivalMatchesThresholdMonteCarlo(t *testing.T) {
	l := mustLevels(t, 8, 12, 20, 10) // N = 50
	p := core.PriorityDistribution{0.3, 0.3, 0.25, 0.15}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const draws = 40000
	for _, m := range []int{30, 60, 90, 120} {
		r, err := Eval(core.SLC, l, p, m)
		if err != nil {
			t.Fatal(err)
		}
		geCount := make([]int, l.Count())
		for draw := 0; draw < draws; draw++ {
			counts := dist.MultinomialDraw(rng, m, sampler)
			for k := 1; k <= l.Count(); k++ {
				if counts[k-1] < l.Size(k-1) {
					break
				}
				geCount[k-1]++
			}
		}
		for k := 1; k <= l.Count(); k++ {
			mc := float64(geCount[k-1]) / draws
			if math.Abs(mc-r.PrGE[k-1]) > 0.013 {
				t.Errorf("M=%d k=%d: exact %.4f vs MC %.4f", m, k, r.PrGE[k-1], mc)
			}
		}
	}
}
