package analysis

import (
	"testing"

	"repro/internal/core"
)

func TestMinBlocksValidation(t *testing.T) {
	l := mustLevels(t, 5, 5)
	u := core.NewUniformDistribution(2)
	if _, err := MinBlocks(core.PLC, l, u, 0, 0.9, 100); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MinBlocks(core.PLC, l, u, 3, 0.9, 100); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := MinBlocks(core.PLC, l, u, 1, 0, 100); err == nil {
		t.Error("prob=0 accepted")
	}
	if _, err := MinBlocks(core.PLC, l, u, 1, 1.5, 100); err == nil {
		t.Error("prob>1 accepted")
	}
	if _, err := MinBlocks(core.PLC, nil, u, 1, 0.9, 100); err == nil {
		t.Error("nil levels accepted")
	}
}

func TestMinBlocksMatchesForwardEval(t *testing.T) {
	l := mustLevels(t, 4, 8)
	u := core.NewUniformDistribution(2)
	for _, tc := range []struct {
		k    int
		prob float64
	}{{1, 0.5}, {1, 0.95}, {2, 0.5}, {2, 0.9}} {
		m, err := MinBlocks(core.PLC, l, u, tc.k, tc.prob, 200)
		if err != nil {
			t.Fatalf("k=%d prob=%g: %v", tc.k, tc.prob, err)
		}
		// Verify the defining property: reaches at m, misses at m-1.
		at, err := Eval(core.PLC, l, u, m)
		if err != nil {
			t.Fatal(err)
		}
		if at.PrGE[tc.k-1] < tc.prob {
			t.Errorf("k=%d prob=%g: Pr at M=%d is %g < prob", tc.k, tc.prob, m, at.PrGE[tc.k-1])
		}
		if m > 0 {
			below, err := Eval(core.PLC, l, u, m-1)
			if err != nil {
				t.Fatal(err)
			}
			if below.PrGE[tc.k-1] >= tc.prob {
				t.Errorf("k=%d prob=%g: M=%d not minimal (%g at M-1)",
					tc.k, tc.prob, m, below.PrGE[tc.k-1])
			}
		}
	}
}

func TestMinBlocksMonotoneInK(t *testing.T) {
	l := mustLevels(t, 3, 6, 9)
	u := core.NewUniformDistribution(3)
	prev := 0
	for k := 1; k <= 3; k++ {
		m, err := MinBlocks(core.SLC, l, u, k, 0.8, 300)
		if err != nil {
			t.Fatal(err)
		}
		if m < prev {
			t.Errorf("MinBlocks decreased at k=%d: %d < %d", k, m, prev)
		}
		prev = m
	}
}

func TestMinBlocksUnreachable(t *testing.T) {
	l := mustLevels(t, 5, 5)
	// No level-1 coded blocks at all under SLC: level 1 can never decode.
	p := core.PriorityDistribution{0, 1}
	if _, err := MinBlocks(core.SLC, l, p, 1, 0.5, 500); err == nil {
		t.Error("unreachable target reported a finite M")
	}
}

func TestMinBlocksDefaultMaxM(t *testing.T) {
	l := mustLevels(t, 2, 2)
	u := core.NewUniformDistribution(2)
	m, err := MinBlocks(core.PLC, l, u, 2, 0.5, 0) // maxM defaulted
	if err != nil {
		t.Fatal(err)
	}
	if m < l.Total() {
		t.Errorf("full recovery with M=%d < N", m)
	}
}
