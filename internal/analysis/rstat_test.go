package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// The exact PLC analysis rests on one reduction (see plc.go): with
// R_0 = 0 and R_j = D_j + min(R_{j-1}, b_{j-1}), the Lemma-2 event E_j
// (every suffix count D_{i,j} ≥ b_j − b_{i−1}) holds iff R_j ≥ b_j.
// These tests verify that equivalence exhaustively on small occupancy
// vectors and randomly on larger ones.

// hallEvent evaluates E_j directly from its definition (1-based j).
func hallEvent(l *core.Levels, counts []int, j int) bool {
	bj := l.CumSize(j - 1)
	suffix := 0
	for i := j - 1; i >= 0; i-- {
		suffix += counts[i]
		prevCum := 0
		if i > 0 {
			prevCum = l.CumSize(i - 1)
		}
		if suffix < bj-prevCum {
			return false
		}
	}
	return true
}

// rStatistic evaluates R_j for every j from the recurrence.
func rStatistic(l *core.Levels, counts []int) []int {
	n := l.Count()
	rs := make([]int, n)
	r := 0
	for j := 0; j < n; j++ {
		bPrev := 0
		if j > 0 {
			bPrev = l.CumSize(j - 1)
		}
		if r > bPrev {
			r = bPrev
		}
		r += counts[j]
		rs[j] = r
	}
	return rs
}

// TestRStatisticEquivalenceExhaustive enumerates every occupancy vector of
// up to 12 blocks over small level structures and compares the recurrence
// against the direct Hall-condition evaluation for every prefix length.
func TestRStatisticEquivalenceExhaustive(t *testing.T) {
	structures := [][]int{
		{1, 1}, {2, 1}, {1, 2, 3}, {2, 2, 2}, {3, 1, 2},
	}
	for _, sizes := range structures {
		l := mustLevels(t, sizes...)
		n := l.Count()
		counts := make([]int, n)
		var walk func(level, left int)
		walk = func(level, left int) {
			if level == n-1 {
				counts[level] = left
				rs := rStatistic(l, counts)
				for j := 1; j <= n; j++ {
					got := rs[j-1] >= l.CumSize(j-1)
					want := hallEvent(l, counts, j)
					if got != want {
						t.Fatalf("sizes=%v counts=%v j=%d: R-statistic %v, Hall %v",
							sizes, counts, j, got, want)
					}
				}
				return
			}
			for c := 0; c <= left; c++ {
				counts[level] = c
				walk(level+1, left-c)
			}
		}
		for total := 0; total <= 12; total++ {
			walk(0, total)
		}
	}
}

// TestQuickRStatisticEquivalence fuzzes larger structures and counts.
func TestQuickRStatisticEquivalence(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(10)
		}
		l, err := core.NewLevels(sizes...)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(25)
		}
		rs := rStatistic(l, counts)
		for j := 1; j <= n; j++ {
			if (rs[j-1] >= l.CumSize(j-1)) != hallEvent(l, counts, j) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestRStatisticDecoderAgreement ties the reduction to the real system:
// for random PLC accumulations, the threshold model's decodable prefix
// (max j with R_j ≥ b_j) must match the actual Gauss–Jordan decoder's
// DecodedLevels except for rare rank-deficient draws, where the decoder
// can only be behind.
func TestRStatisticDecoderAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	l := mustLevels(t, 3, 5, 7)
	enc, err := core.NewEncoder(core.PLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	agree, behind := 0, 0
	for trial := 0; trial < 200; trial++ {
		dec, err := core.NewDecoder(core.PLC, l, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, l.Count())
		m := rng.Intn(2 * l.Total())
		for i := 0; i < m; i++ {
			level := rng.Intn(l.Count())
			counts[level]++
			b, err := enc.Encode(rng, level)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.Add(b); err != nil {
				t.Fatal(err)
			}
		}
		rs := rStatistic(l, counts)
		model := 0
		for j := 1; j <= l.Count(); j++ {
			if rs[j-1] >= l.CumSize(j-1) {
				model = j
			}
		}
		actual := dec.DecodedLevels()
		switch {
		case actual == model:
			agree++
		case actual < model:
			behind++ // rank deficiency: counting says yes, the matrix was singular
		default:
			t.Fatalf("trial %d: decoder ahead of the counting model (%d > %d)", trial, actual, model)
		}
	}
	if agree < 190 {
		t.Errorf("model agreed on only %d/200 trials (%d rank-deficient)", agree, behind)
	}
}
