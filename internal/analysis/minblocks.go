package analysis

import (
	"fmt"

	"repro/internal/core"
)

// MinBlocks answers the provisioning question dual to the decoding curve:
// the smallest number of randomly accumulated coded blocks M such that
// the first k levels decode with probability at least prob. Pr(X ≥ k) is
// monotone in M (an extra block can only increase every level count, and
// the Lemma-2 events are monotone in the counts), so a binary search over
// [0, maxM] suffices. It returns an error when even maxM blocks fall
// short — the signal that the distribution starves some level (cf. the
// eq. 10 constraint).
func MinBlocks(scheme core.Scheme, l *core.Levels, p core.PriorityDistribution, k int, prob float64, maxM int) (int, error) {
	if err := validate(l, p, 0); err != nil {
		return 0, err
	}
	if err := l.ValidLevel(k - 1); err != nil {
		return 0, fmt.Errorf("analysis: MinBlocks: %w", err)
	}
	if prob <= 0 || prob > 1 {
		return 0, fmt.Errorf("analysis: probability %g outside (0, 1]", prob)
	}
	if maxM <= 0 {
		maxM = 4 * l.Total()
	}
	reaches := func(m int) (bool, error) {
		r, err := Eval(scheme, l, p, m)
		if err != nil {
			return false, err
		}
		return r.PrGE[k-1] >= prob, nil
	}
	ok, err := reaches(maxM)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("analysis: Pr(X >= %d) stays below %g even at M = %d "+
			"(the priority distribution may starve a level)", k, prob, maxM)
	}
	lo, hi := 0, maxM
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := reaches(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
