package analysis

import (
	"repro/internal/core"
	"repro/internal/dist"
)

// PLC decoding analysis.
//
// Under the threshold (generic-rank) model, the first k levels decode from
// a level-occupancy vector D iff there exists j ≥ k whose Lemma-2 event
//
//	E_j = ∩_{i≤j} { D_{i,j} ≥ b_j − b_{i−1} }
//
// holds (blocks of levels above j have support beyond prefix b_j and can
// only decode it as part of a longer prefix b_{j'}, which is again an
// E_{j'}). E_j is a Hall condition on prefix-support bipartite matching:
// unknowns past b_{i−1} are only touched by blocks of level ≥ i.
//
// The key reduction: define the running statistic
//
//	R_0 = 0,   R_j = D_j + min(R_{j−1}, b_{j−1}).
//
// Then E_j ⟺ R_j ≥ b_j. (Proof sketch: min(R_{j−1}, b_{j−1}) counts the
// blocks from levels < j usable inside prefix b_{j−1} without exceeding its
// size; unrolling the recurrence reproduces every suffix-count constraint,
// with the cap absorbing overshoot exactly where Hall's condition stops
// binding.) This turns the 2^k-event structure into a scalar Markov chain.
//
// Writing C_j for the cumulative block count and O_j = C_j − R_j, the pair
// (O, C) is Markov with O' = max(O, C − b_{j−1}) and C' = C + D_j, so the
// joint law evolves on a small 2D grid. Two sweeps give everything:
//
//	forward:  f_j(O, C)  = Pr(state before step j)
//	backward: h_j(O, C)  = Pr(R_{j'} < b_{j'} for all j' ≥ j | state)
//
// and Pr(X ≥ k) = 1 − Σ_s f_{k−1}(s)·h_{k−1}(s) — exact (up to the tail
// truncation of the binomial kernels), where the paper resorts to
// approximations "to reduce computation complexity" (Sec. 3.3.2).

// plcSurvival returns prGE[k-1] = Pr(X ≥ k) for k = 1..n under PLC.
func plcSurvival(l *core.Levels, p core.PriorityDistribution, m int) []float64 {
	n := l.Count()

	// Forward pass: f[j] is the distribution of (O, C) before step j.
	f := make([]*grid, n)
	f[0] = singletonGrid()
	remProb := 1.0
	qs := make([]float64, n)
	for j := 0; j < n; j++ {
		qs[j] = conditionalProb(p[j], remProb)
		remProb -= p[j]
		if j+1 < n {
			f[j+1] = forwardStep(f[j], l, m, j, qs[j])
		}
	}

	// Backward pass: h[j](s) = Pr(E_{j'} fails for all j' ≥ j | state s),
	// evaluated on f[j]'s grid. hNext starts as the all-ones function on
	// the (virtual) step-n grid.
	prGE := make([]float64, n)
	var hNext *grid // nil means "identically 1"
	for j := n - 1; j >= 0; j-- {
		h := backwardStep(f[j], hNext, l, m, j, qs[j])
		prLT := dotGrids(f[j], h)
		if prLT > 1 {
			prLT = 1
		}
		prGE[j] = 1 - prLT
		hNext = h
	}
	// prGE[j] is Pr(∃ j' ≥ j: E_{j'}) = Pr(X ≥ j+1). Numerical noise can
	// break monotonicity at the 1e-12 scale; clamp.
	for k := n - 2; k >= 0; k-- {
		if prGE[k] < prGE[k+1] {
			prGE[k] = prGE[k+1]
		}
	}
	return prGE
}

// grid is a dense window over the (O, C) state space.
type grid struct {
	oLo, cLo int
	nO, nC   int
	v        []float64
}

func singletonGrid() *grid {
	return &grid{oLo: 0, cLo: 0, nO: 1, nC: 1, v: []float64{1}}
}

func (g *grid) at(o, c int) float64 {
	if o < g.oLo || o >= g.oLo+g.nO || c < g.cLo || c >= g.cLo+g.nC {
		return 0
	}
	return g.v[(o-g.oLo)*g.nC+(c-g.cLo)]
}

// kernelCache holds, for one DP step, the truncated binomial kernel per
// distinct cumulative count c — the kernel depends on the state only
// through the remaining trials m−c, so it is shared across the O axis.
type kernelCache struct {
	m, cLo int
	q      float64
	dLo    []int
	pmf    [][]float64
}

func newKernelCache(m, cLo, nC int, q float64) *kernelCache {
	k := &kernelCache{
		m: m, cLo: cLo, q: q,
		dLo: make([]int, nC),
		pmf: make([][]float64, nC),
	}
	for ci := 0; ci < nC; ci++ {
		trials := m - (cLo + ci)
		if trials < 0 {
			continue // unreachable states beyond m keep a nil kernel
		}
		k.dLo[ci], k.pmf[ci] = dist.BinomialWindow(trials, q, kernelTailEps)
	}
	return k
}

// forwardStep advances the (O, C) distribution across level j.
func forwardStep(cur *grid, l *core.Levels, m, j int, q float64) *grid {
	if len(cur.v) == 0 {
		return &grid{nO: 0, nC: 0}
	}
	bPrev := 0
	if j > 0 {
		bPrev = l.CumSize(j - 1)
	}
	kern := newKernelCache(m, cur.cLo, cur.nC, q)

	// Destination bounds: O' = max(O, C−bPrev) spans the same extremes the
	// source corners produce; C' spans c+dLo .. c+dLo+len(pmf)-1.
	oMin, oMax := 1<<30, -1
	cMin, cMax := 1<<30, -1
	for oi := 0; oi < cur.nO; oi++ {
		for ci := 0; ci < cur.nC; ci++ {
			if cur.v[oi*cur.nC+ci] == 0 || kern.pmf[ci] == nil {
				continue
			}
			o, c := cur.oLo+oi, cur.cLo+ci
			oNew := maxInt(o, c-bPrev)
			if oNew < oMin {
				oMin = oNew
			}
			if oNew > oMax {
				oMax = oNew
			}
			lo := c + kern.dLo[ci]
			hi := lo + len(kern.pmf[ci]) - 1
			if lo < cMin {
				cMin = lo
			}
			if hi > cMax {
				cMax = hi
			}
		}
	}
	if oMax < 0 {
		return &grid{nO: 0, nC: 0}
	}

	next := &grid{
		oLo: oMin, cLo: cMin,
		nO: oMax - oMin + 1, nC: cMax - cMin + 1,
	}
	next.v = make([]float64, next.nO*next.nC)
	for oi := 0; oi < cur.nO; oi++ {
		for ci := 0; ci < cur.nC; ci++ {
			mass := cur.v[oi*cur.nC+ci]
			if mass == 0 || kern.pmf[ci] == nil {
				continue
			}
			o, c := cur.oLo+oi, cur.cLo+ci
			oNew := maxInt(o, c-bPrev)
			row := next.v[(oNew-next.oLo)*next.nC:]
			base := c + kern.dLo[ci] - next.cLo
			for di, pd := range kern.pmf[ci] {
				row[base+di] += mass * pd
			}
		}
	}
	return next.pruned()
}

// pruned trims the grid to the bounding box of non-negligible mass.
func (g *grid) pruned() *grid {
	total := 0.0
	for _, x := range g.v {
		total += x
	}
	if total == 0 {
		return &grid{nO: 0, nC: 0}
	}
	cut := total * pruneEps
	oMin, oMax, cMin, cMax := g.nO, -1, g.nC, -1
	for oi := 0; oi < g.nO; oi++ {
		for ci := 0; ci < g.nC; ci++ {
			if g.v[oi*g.nC+ci] >= cut {
				if oi < oMin {
					oMin = oi
				}
				if oi > oMax {
					oMax = oi
				}
				if ci < cMin {
					cMin = ci
				}
				if ci > cMax {
					cMax = ci
				}
			}
		}
	}
	if oMax < 0 {
		return &grid{nO: 0, nC: 0}
	}
	if oMin == 0 && cMin == 0 && oMax == g.nO-1 && cMax == g.nC-1 {
		return g
	}
	out := &grid{
		oLo: g.oLo + oMin, cLo: g.cLo + cMin,
		nO: oMax - oMin + 1, nC: cMax - cMin + 1,
	}
	out.v = make([]float64, out.nO*out.nC)
	for oi := 0; oi < out.nO; oi++ {
		copy(out.v[oi*out.nC:(oi+1)*out.nC],
			g.v[(oi+oMin)*g.nC+cMin:(oi+oMin)*g.nC+cMin+out.nC])
	}
	return out
}

// backwardStep computes h_j on f_j's grid from h_{j+1} (hNext == nil means
// the all-ones terminal function).
func backwardStep(fj, hNext *grid, l *core.Levels, m, j int, q float64) *grid {
	bPrev := 0
	if j > 0 {
		bPrev = l.CumSize(j - 1)
	}
	bj := l.CumSize(j)

	h := &grid{oLo: fj.oLo, cLo: fj.cLo, nO: fj.nO, nC: fj.nC}
	h.v = make([]float64, len(fj.v))
	if len(fj.v) == 0 {
		return h
	}
	kern := newKernelCache(m, fj.cLo, fj.nC, q)
	for oi := 0; oi < fj.nO; oi++ {
		for ci := 0; ci < fj.nC; ci++ {
			if fj.v[oi*fj.nC+ci] == 0 || kern.pmf[ci] == nil {
				continue
			}
			o, c := fj.oLo+oi, fj.cLo+ci
			oNew := maxInt(o, c-bPrev)
			// Constraint "E_j fails": R' = C + d − O' < b_j, i.e.
			// d ≤ b_j − C + O' − 1.
			dCap := bj - c + oNew - 1
			if dCap < 0 {
				continue // E_j holds for every d: h = 0
			}
			dLo, pmf := kern.dLo[ci], kern.pmf[ci]
			sum := 0.0
			for di, pd := range pmf {
				d := dLo + di
				if d > dCap {
					break
				}
				if hNext == nil {
					sum += pd
				} else {
					sum += pd * hNext.at(oNew, c+d)
				}
			}
			h.v[oi*h.nC+ci] = sum
		}
	}
	return h
}

// dotGrids returns Σ_s f(s)·h(s) over grids with identical geometry.
func dotGrids(f, h *grid) float64 {
	sum := 0.0
	for i, x := range f.v {
		sum += x * h.v[i]
	}
	return sum
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
