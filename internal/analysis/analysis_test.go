package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func mustLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// enumerate walks every occupancy vector of m blocks over n levels and
// accumulates multinomial-weighted indicator values — the brute-force
// O(M^{n-1}) computation the paper's DP replaces.
func enumerate(m int, p []float64, indicator func(counts []int) bool) float64 {
	counts := make([]int, len(p))
	var walk func(level, left int, logw float64) float64
	walk = func(level, left int, logw float64) float64 {
		if level == len(p)-1 {
			counts[level] = left
			w := logw
			if p[level] > 0 {
				w += float64(left) * math.Log(p[level])
			} else if left > 0 {
				return 0
			}
			w -= dist.LogFactorial(left)
			if indicator(counts) {
				return math.Exp(w + dist.LogFactorial(m))
			}
			return 0
		}
		total := 0.0
		for c := 0; c <= left; c++ {
			counts[level] = c
			w := logw
			if p[level] > 0 {
				w += float64(c) * math.Log(p[level])
			} else if c > 0 {
				continue
			}
			w -= dist.LogFactorial(c)
			total += walk(level+1, left-c, w)
		}
		return total
	}
	return walk(0, m, 0)
}

func TestEvalValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	u := core.NewUniformDistribution(2)
	if _, err := Eval(core.Scheme(0), l, u, 10); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := Eval(core.SLC, nil, u, 10); err == nil {
		t.Error("nil levels accepted")
	}
	if _, err := Eval(core.SLC, l, core.PriorityDistribution{1}, 10); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if _, err := Eval(core.PLC, l, u, -1); err == nil {
		t.Error("negative M accepted")
	}
}

func TestRLCStepFunction(t *testing.T) {
	l := mustLevels(t, 5, 5)
	u := core.NewUniformDistribution(2)
	below, err := Eval(core.RLC, l, u, 9)
	if err != nil {
		t.Fatal(err)
	}
	if below.EX != 0 || below.PrAll() != 0 {
		t.Errorf("RLC with M < N: EX = %g, PrAll = %g; want 0, 0", below.EX, below.PrAll())
	}
	at, err := Eval(core.RLC, l, u, 10)
	if err != nil {
		t.Fatal(err)
	}
	if at.EX != 2 || at.PrAll() != 1 {
		t.Errorf("RLC with M = N: EX = %g, PrAll = %g; want 2, 1", at.EX, at.PrAll())
	}
}

// TestSLCMatchesBruteForce cross-checks the SLC DP against full multinomial
// enumeration on small structures.
func TestSLCMatchesBruteForce(t *testing.T) {
	cases := []struct {
		sizes []int
		p     core.PriorityDistribution
		m     int
	}{
		{[]int{2, 3}, core.PriorityDistribution{0.5, 0.5}, 8},
		{[]int{2, 3}, core.PriorityDistribution{0.8, 0.2}, 12},
		{[]int{1, 2, 3}, core.PriorityDistribution{0.2, 0.3, 0.5}, 10},
		{[]int{3, 3, 3}, core.NewUniformDistribution(3), 15},
		{[]int{2, 2}, core.PriorityDistribution{0, 1}, 6}, // degenerate level share
	}
	for _, tc := range cases {
		l := mustLevels(t, tc.sizes...)
		got, err := Eval(core.SLC, l, tc.p, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= l.Count(); k++ {
			k := k
			want := enumerate(tc.m, tc.p, func(counts []int) bool {
				for i := 0; i < k; i++ {
					if counts[i] < tc.sizes[i] {
						return false
					}
				}
				return true
			})
			if math.Abs(got.PrGE[k-1]-want) > 1e-9 {
				t.Errorf("sizes=%v p=%v M=%d: Pr(X>=%d) = %.12f, brute force %.12f",
					tc.sizes, tc.p, tc.m, k, got.PrGE[k-1], want)
			}
		}
	}
}

// lemma2Event reports whether E_k holds for the given occupancy counts:
// D_{i,k} ≥ b_k − b_{i−1} for every i ≤ k (1-based k).
func lemma2Event(l *core.Levels, counts []int, k int) bool {
	bk := l.CumSize(k - 1)
	suffix := 0
	for i := k - 1; i >= 0; i-- {
		suffix += counts[i]
		prevCum := 0
		if i > 0 {
			prevCum = l.CumSize(i - 1)
		}
		if suffix < bk-prevCum {
			return false
		}
	}
	return true
}

// TestPLCMatchesBruteForce cross-checks the exact PLC survival DP against
// full enumeration of the Theorem-1 semantics: X ≥ k iff some j ≥ k
// satisfies the Lemma-2 event E_j.
func TestPLCMatchesBruteForce(t *testing.T) {
	cases := []struct {
		sizes []int
		p     core.PriorityDistribution
		m     int
	}{
		{[]int{2, 3}, core.PriorityDistribution{0.5, 0.5}, 8},
		{[]int{1, 2, 3}, core.PriorityDistribution{0.2, 0.3, 0.5}, 12},
		{[]int{2, 2, 2}, core.NewUniformDistribution(3), 9},
		{[]int{1, 1, 1, 1}, core.NewUniformDistribution(4), 7},
		{[]int{3, 2, 1}, core.PriorityDistribution{0.1, 0.1, 0.8}, 10},
	}
	for _, tc := range cases {
		l := mustLevels(t, tc.sizes...)
		got, err := Eval(core.PLC, l, tc.p, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= l.Count(); k++ {
			k := k
			want := enumerate(tc.m, tc.p, func(counts []int) bool {
				for j := k; j <= l.Count(); j++ {
					if lemma2Event(l, counts, j) {
						return true
					}
				}
				return false
			})
			if math.Abs(got.PrGE[k-1]-want) > 1e-9 {
				t.Errorf("sizes=%v p=%v M=%d: Pr(X>=%d) = %.12f, brute force %.12f",
					tc.sizes, tc.p, tc.m, k, got.PrGE[k-1], want)
			}
		}
	}
}

// TestEventProbMatchesBruteForce cross-checks the exported Lemma-2 event
// probability (the single-event lower bound) against enumeration.
func TestEventProbMatchesBruteForce(t *testing.T) {
	l := mustLevels(t, 1, 2, 3)
	p := core.PriorityDistribution{0.2, 0.3, 0.5}
	const m = 12
	for k := 1; k <= 3; k++ {
		got, err := EventProb(l, p, m, k)
		if err != nil {
			t.Fatal(err)
		}
		want := enumerate(m, p, func(counts []int) bool { return lemma2Event(l, counts, k) })
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Pr(E_%d) = %.12f, brute force %.12f", k, got, want)
		}
		// The event probability is a lower bound on the exact survival.
		exact, err := Eval(core.PLC, l, p, m)
		if err != nil {
			t.Fatal(err)
		}
		if got > exact.PrGE[k-1]+1e-9 {
			t.Errorf("Pr(E_%d) = %g exceeds exact Pr(X>=%d) = %g", k, got, k, exact.PrGE[k-1])
		}
	}
	if _, err := EventProb(l, p, m, 0); err == nil {
		t.Error("EventProb(k=0) succeeded, want error")
	}
	if _, err := EventProb(l, p, m, 4); err == nil {
		t.Error("EventProb(k>n) succeeded, want error")
	}
}

func TestPrGEIsMonotone(t *testing.T) {
	l := mustLevels(t, 4, 4, 4, 4)
	u := core.NewUniformDistribution(4)
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		for _, m := range []int{0, 5, 10, 16, 24, 40} {
			r, err := Eval(scheme, l, u, m)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k < len(r.PrGE); k++ {
				if r.PrGE[k] > r.PrGE[k-1]+1e-12 {
					t.Errorf("%v M=%d: PrGE[%d]=%g > PrGE[%d]=%g",
						scheme, m, k, r.PrGE[k], k-1, r.PrGE[k-1])
				}
			}
		}
	}
}

func TestEXMonotoneInM(t *testing.T) {
	l := mustLevels(t, 5, 10, 15)
	p := core.PriorityDistribution{0.3, 0.3, 0.4}
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		prev := -1.0
		for m := 0; m <= 60; m += 5 {
			r, err := Eval(scheme, l, p, m)
			if err != nil {
				t.Fatal(err)
			}
			if r.EX < prev-1e-9 {
				t.Errorf("%v: E(X) decreased from %g to %g at M=%d", scheme, prev, r.EX, m)
			}
			prev = r.EX
		}
	}
}

func TestEXSaturatesAtN(t *testing.T) {
	l := mustLevels(t, 3, 3)
	u := core.NewUniformDistribution(2)
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		r, err := Eval(scheme, l, u, 200)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.EX-2) > 1e-6 {
			t.Errorf("%v at M=200: E(X) = %g, want ≈ 2", scheme, r.EX)
		}
		if math.Abs(r.PrAll()-1) > 1e-6 {
			t.Errorf("%v at M=200: PrAll = %g, want ≈ 1", scheme, r.PrAll())
		}
	}
}

func TestEXZeroAtZeroBlocks(t *testing.T) {
	l := mustLevels(t, 2, 2)
	u := core.NewUniformDistribution(2)
	for _, scheme := range []core.Scheme{core.RLC, core.SLC, core.PLC} {
		r, err := Eval(scheme, l, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.EX != 0 {
			t.Errorf("%v at M=0: E(X) = %g, want 0", scheme, r.EX)
		}
	}
}

// TestPLCDominatesSLC verifies the paper's Theorem-1-of-[14] claim on the
// analysis side: at every M, PLC's expected decoded levels are at least
// SLC's.
func TestPLCDominatesSLC(t *testing.T) {
	l := mustLevels(t, 4, 4, 4, 4, 4)
	u := core.NewUniformDistribution(5)
	for m := 0; m <= 40; m += 4 {
		slc, err := Eval(core.SLC, l, u, m)
		if err != nil {
			t.Fatal(err)
		}
		plc, err := Eval(core.PLC, l, u, m)
		if err != nil {
			t.Fatal(err)
		}
		if plc.EX < slc.EX-1e-9 {
			t.Errorf("M=%d: PLC E(X)=%g < SLC E(X)=%g", m, plc.EX, slc.EX)
		}
	}
}

// TestAnalysisMatchesSimulationSmall is Fig. 4/5 in miniature: the
// analytical curve must track Monte-Carlo simulation of the actual codes.
func TestAnalysisMatchesSimulationSmall(t *testing.T) {
	l := mustLevels(t, 5, 10, 15) // N = 30
	u := core.NewUniformDistribution(3)
	const trials = 300
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		for _, m := range []int{10, 30, 50, 70} {
			r, err := Eval(scheme, l, u, m)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(100*m) + int64(scheme)))
			enc, err := core.NewEncoder(scheme, l, nil)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				dec, err := core.NewDecoder(scheme, l, 0)
				if err != nil {
					t.Fatal(err)
				}
				blocks, err := enc.EncodeBatch(rng, u, m)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range blocks {
					if _, err := dec.Add(b); err != nil {
						t.Fatal(err)
					}
				}
				sum += float64(dec.DecodedLevels())
			}
			sim := sum / trials
			// 300 trials of a variable bounded by n=3 give a standard error
			// below 0.06; allow analytic-model slack (rank deficiency, PLC
			// lower bound) on top.
			if math.Abs(sim-r.EX) > 0.25 {
				t.Errorf("%v M=%d: analysis E(X)=%.3f, simulation %.3f", scheme, m, r.EX, sim)
			}
		}
	}
}

func TestPrEqTelescopes(t *testing.T) {
	l := mustLevels(t, 3, 3, 3)
	u := core.NewUniformDistribution(3)
	r, err := Eval(core.SLC, l, u, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_k Pr(X = k)·k must reproduce E(X) minus the X=0 mass contribution.
	ex := 0.0
	for k := 0; k < 3; k++ {
		ex += float64(k+1) * r.PrEq(k)
	}
	if math.Abs(ex-r.EX) > 1e-9 {
		t.Errorf("Σ k·Pr(X=k) = %g, E(X) = %g", ex, r.EX)
	}
	if r.PrEq(-1) != 0 || r.PrEq(5) != 0 {
		t.Error("out-of-range PrEq should be 0")
	}
}

func TestCurve(t *testing.T) {
	l := mustLevels(t, 2, 2)
	u := core.NewUniformDistribution(2)
	ms := []int{0, 4, 8, 16}
	rs, err := Curve(core.PLC, l, u, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(ms) {
		t.Fatalf("curve has %d points, want %d", len(rs), len(ms))
	}
	for i, r := range rs {
		if r.M != ms[i] {
			t.Errorf("point %d: M = %d, want %d", i, r.M, ms[i])
		}
	}
	if _, err := Curve(core.PLC, l, u, []int{-1}); err == nil {
		t.Error("negative M in curve accepted")
	}
}

func TestPrAllEmpty(t *testing.T) {
	if got := (Result{}).PrAll(); got != 0 {
		t.Errorf("empty Result PrAll = %g, want 0", got)
	}
}

func BenchmarkEvalSLCUniform50(b *testing.B) {
	l, err := core.UniformLevels(50, 20)
	if err != nil {
		b.Fatal(err)
	}
	u := core.NewUniformDistribution(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(core.SLC, l, u, 1100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalPLCUniform50(b *testing.B) {
	l, err := core.UniformLevels(50, 20)
	if err != nil {
		b.Fatal(err)
	}
	u := core.NewUniformDistribution(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(core.PLC, l, u, 1100); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPrEqIsADistribution: the exact-level probabilities Pr(X = k) derived
// by telescoping must be nonnegative and sum (with the X = 0 mass) to 1.
func TestPrEqIsADistribution(t *testing.T) {
	l := mustLevels(t, 3, 5, 7, 4)
	p := core.PriorityDistribution{0.3, 0.3, 0.2, 0.2}
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		for _, m := range []int{0, 10, 19, 25, 38, 60} {
			r, err := Eval(scheme, l, p, m)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for k := 0; k < l.Count(); k++ {
				pe := r.PrEq(k)
				if pe < 0 {
					t.Fatalf("%v M=%d: Pr(X=%d) = %g < 0", scheme, m, k+1, pe)
				}
				sum += pe
			}
			prZero := 1 - r.PrGE[0]
			if total := sum + prZero; math.Abs(total-1) > 1e-9 {
				t.Errorf("%v M=%d: probabilities sum to %g", scheme, m, total)
			}
		}
	}
}
