// Package analysis implements the numerical decoding-performance model of
// Sec. 3.3: the expected number of decoded priority levels E(X) as a
// function of the number of randomly accumulated coded blocks M, for SLC
// (eq. 2–6) and PLC (Theorem 1).
//
// # Model
//
// Each of the M accumulated coded blocks carries a level drawn
// independently from the priority distribution P, so the level-occupancy
// vector D is Multinomial(M, P). Decodability is evaluated under the
// paper's threshold model (footnote 1): a set of random coefficients over
// GF(2^8) is treated as full rank whenever the counting conditions hold,
// which is true with probability > 0.99 at the paper's scales.
//
// Both schemes are evaluated through the identity E(X) = Σ_k Pr(X ≥ k):
//
//   - SLC: X ≥ k iff D_i ≥ a_i for every level i ≤ k (eq. 2, with the
//     complement event absorbed by the telescoping sum). This is exact
//     under the threshold model. One forward pass of a constrained-
//     multinomial dynamic program yields Pr(X ≥ k) for every k at once.
//
//   - PLC: X ≥ k iff some j ≥ k satisfies the Lemma-2 event
//     E_j = ∩_{i≤j} {D_{i,j} ≥ b_j − b_{i−1}} (Theorem 1). The union over
//     j is computed EXACTLY by reducing the event family to a scalar
//     Markov statistic (see plc.go), where the paper applies
//     approximations "to reduce computation complexity" whose error grows
//     with the number of levels (cf. its Fig. 4b); our analysis-vs-
//     simulation gap is therefore only the threshold model's own
//     rank-deficiency slack. EventProb exposes the single-event lower
//     bound Pr(E_k) for comparison.
//
// Instead of enumerating the O(M^{k+1}) occupancy partitions, each event
// probability is computed by a dynamic program over per-level binomial
// conditionals with tail-truncated kernels (dist.BinomialWindow), giving
// O(n · M · sqrt(M)) per curve point — the same complexity-reduction role
// the paper assigns to the Kontkanen–Myllymäki FFT method.
package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

const (
	// kernelTailEps truncates each binomial kernel's tails.
	kernelTailEps = 1e-16
	// pruneEps trims DP state-vector edges whose mass is negligible
	// relative to the surviving total.
	pruneEps = 1e-15
)

// Result is the analytical decoding performance at one curve point.
type Result struct {
	// M is the number of randomly accumulated coded blocks.
	M int
	// EX is the expected number of decoded priority levels E(X).
	EX float64
	// PrGE[i] is Pr(X ≥ i+1): the probability that levels 0..i (the i+1
	// most important) are all decoded.
	PrGE []float64
}

// PrEq returns Pr(X = k+1) for 0-based k, i.e. the probability that
// exactly the first k+1 levels decode, derived by telescoping and clamped
// at zero against approximation noise.
func (r Result) PrEq(k int) float64 {
	if k < 0 || k >= len(r.PrGE) {
		return 0
	}
	p := r.PrGE[k]
	if k+1 < len(r.PrGE) {
		p -= r.PrGE[k+1]
	}
	if p < 0 {
		return 0
	}
	return p
}

// PrAll returns the probability that all levels decode — the quantity
// constrained by eq. (10).
func (r Result) PrAll() float64 {
	if len(r.PrGE) == 0 {
		return 0
	}
	return r.PrGE[len(r.PrGE)-1]
}

func validate(l *core.Levels, p core.PriorityDistribution, m int) error {
	if l == nil {
		return fmt.Errorf("analysis: nil levels")
	}
	if err := p.Validate(l); err != nil {
		return err
	}
	if m < 0 {
		return fmt.Errorf("analysis: negative block count M = %d", m)
	}
	return nil
}

// Eval computes the analytical decoding performance for the given scheme
// at M accumulated coded blocks.
func Eval(scheme core.Scheme, l *core.Levels, p core.PriorityDistribution, m int) (Result, error) {
	switch scheme {
	case core.RLC:
		return evalRLC(l, p, m)
	case core.SLC:
		return evalSLC(l, p, m)
	case core.PLC:
		return evalPLC(l, p, m)
	default:
		return Result{}, fmt.Errorf("analysis: invalid scheme %v", scheme)
	}
}

// Curve evaluates Eval over a sweep of M values — one decoding curve.
func Curve(scheme core.Scheme, l *core.Levels, p core.PriorityDistribution, ms []int) ([]Result, error) {
	out := make([]Result, 0, len(ms))
	for _, m := range ms {
		r, err := Eval(scheme, l, p, m)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// evalRLC is the all-or-nothing baseline under the threshold model:
// everything decodes iff M ≥ N.
func evalRLC(l *core.Levels, p core.PriorityDistribution, m int) (Result, error) {
	if err := validate(l, p, m); err != nil {
		return Result{}, err
	}
	n := l.Count()
	r := Result{M: m, PrGE: make([]float64, n)}
	if m >= l.Total() {
		for i := range r.PrGE {
			r.PrGE[i] = 1
		}
		r.EX = float64(n)
	}
	return r, nil
}

// evalSLC runs one forward constrained-multinomial DP over the levels.
// After absorbing level i with the constraint D_i ≥ a_i, the surviving
// mass equals Pr(X ≥ i+1).
func evalSLC(l *core.Levels, p core.PriorityDistribution, m int) (Result, error) {
	if err := validate(l, p, m); err != nil {
		return Result{}, err
	}
	n := l.Count()
	r := Result{M: m, PrGE: make([]float64, n)}

	cur := newMassVec(0, []float64{1})
	remProb := 1.0
	for i := 0; i < n; i++ {
		q := conditionalProb(p[i], remProb)
		next := make([]float64, m+1)
		minD := l.Size(i) // constraint D_i ≥ a_i
		for idx, mu := range cur.v {
			if mu == 0 {
				continue
			}
			s := cur.lo + idx
			trials := m - s
			if trials < minD {
				continue
			}
			dlo, pmf := dist.BinomialWindow(trials, q, kernelTailEps)
			for di, pd := range pmf {
				d := dlo + di
				if d < minD {
					continue
				}
				next[s+d] += mu * pd
			}
		}
		cur = compact(next)
		r.PrGE[i] = cur.total
		remProb -= p[i]
	}
	for _, v := range r.PrGE {
		r.EX += v
	}
	return r, nil
}

// evalPLC computes the exact survival function Pr(X ≥ k) via the
// forward/backward (O, C) dynamic program in plc.go.
func evalPLC(l *core.Levels, p core.PriorityDistribution, m int) (Result, error) {
	if err := validate(l, p, m); err != nil {
		return Result{}, err
	}
	r := Result{M: m, PrGE: plcSurvival(l, p, m)}
	for _, v := range r.PrGE {
		r.EX += v
	}
	return r, nil
}

// EventProb returns Pr(E_k) for 1-based k: the probability of the Lemma-2
// event that the first k levels decode from the blocks of levels 1..k
// alone, i.e. D_{i,k} ≥ b_k − b_{i−1} for every i = 1..k. It is a lower
// bound on Pr(X ≥ k) — the single-event approximation whose gap to the
// exact union the ablation benchmarks measure. Levels are processed from k
// down to 1, with the DP state holding the suffix count D_{i,k}.
func EventProb(l *core.Levels, p core.PriorityDistribution, m, k int) (float64, error) {
	if err := validate(l, p, m); err != nil {
		return 0, err
	}
	if err := l.ValidLevel(k - 1); err != nil {
		return 0, err
	}
	return plcEventProb(l, p, m, k), nil
}

func plcEventProb(l *core.Levels, p core.PriorityDistribution, m, k int) float64 {
	bk := l.CumSize(k - 1)
	if bk > m {
		return 0 // the i=1 constraint D_{1,k} ≥ b_k cannot hold
	}
	cur := newMassVec(0, []float64{1})
	remProb := 1.0
	for i := k - 1; i >= 0; i-- { // 0-based level i
		q := conditionalProb(p[i], remProb)
		prevCum := 0
		if i > 0 {
			prevCum = l.CumSize(i - 1)
		}
		thresh := bk - prevCum // suffix count after absorbing level i must reach this
		next := make([]float64, m+1)
		for idx, mu := range cur.v {
			if mu == 0 {
				continue
			}
			s := cur.lo + idx
			trials := m - s
			if s+trials < thresh {
				continue
			}
			dlo, pmf := dist.BinomialWindow(trials, q, kernelTailEps)
			for di, pd := range pmf {
				d := dlo + di
				if s+d < thresh {
					continue
				}
				next[s+d] += mu * pd
			}
		}
		cur = compact(next)
		if cur.total == 0 {
			return 0
		}
		remProb -= p[i]
	}
	return cur.total
}

// conditionalProb returns the per-level binomial success probability given
// the unprocessed probability mass, guarding the numerical edges.
func conditionalProb(pi, remProb float64) float64 {
	if pi <= 0 {
		return 0
	}
	if remProb <= pi {
		return 1
	}
	q := pi / remProb
	if q > 1 {
		return 1
	}
	return q
}

// massVec is a probability vector over DP states [lo, lo+len(v)).
type massVec struct {
	lo    int
	v     []float64
	total float64
}

func newMassVec(lo int, v []float64) massVec {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return massVec{lo: lo, v: v, total: t}
}

// compact trims negligible-mass edges from a dense state vector.
func compact(dense []float64) massVec {
	total := 0.0
	for _, x := range dense {
		total += x
	}
	if total == 0 {
		return massVec{total: 0, v: nil}
	}
	cut := total * pruneEps
	lo := 0
	for lo < len(dense) && dense[lo] < cut {
		lo++
	}
	hi := len(dense) - 1
	for hi >= lo && dense[hi] < cut {
		hi--
	}
	if hi < lo {
		return massVec{total: 0, v: nil}
	}
	return massVec{lo: lo, v: dense[lo : hi+1], total: total}
}
