package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

func sampleField(t testing.TB, seed int64, res int) (*Field, []float64) {
	t.Helper()
	f, err := NewField(rand.New(rand.NewSource(seed)), 6)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := f.SampleGrid(res)
	if err != nil {
		t.Fatal(err)
	}
	return f, grid
}

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("zero bumps accepted")
	}
}

func TestFieldIsSmoothAndPositive(t *testing.T) {
	f, _ := sampleField(t, 1, 4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		v := f.At(p)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("field value %g at %v", v, p)
		}
		// Smoothness: a tiny step moves the value only slightly.
		q := geom.Point{X: p.X + 1e-4, Y: p.Y}
		if math.Abs(f.At(q)-v) > 0.01 {
			t.Fatalf("field jumps at %v", p)
		}
	}
}

func TestSampleGridValidation(t *testing.T) {
	f, _ := sampleField(t, 3, 2)
	if _, err := f.SampleGrid(0); err == nil {
		t.Error("resolution 0 accepted")
	}
}

func TestBuildPyramidValidation(t *testing.T) {
	if _, err := BuildPyramid(make([]float64, 9), 3); err == nil {
		t.Error("non-power-of-two resolution accepted")
	}
	if _, err := BuildPyramid(make([]float64, 5), 4); err == nil {
		t.Error("wrong grid size accepted")
	}
	if _, err := BuildPyramid(nil, 0); err == nil {
		t.Error("zero resolution accepted")
	}
}

func TestPyramidPerfectReconstruction(t *testing.T) {
	_, grid := sampleField(t, 4, 16)
	p, err := BuildPyramid(grid, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() != 5 || p.Res() != 16 {
		t.Fatalf("pyramid levels=%d res=%d", p.Levels(), p.Res())
	}
	full, err := p.Reconstruct(p.Levels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(full, grid)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-12 {
		t.Errorf("full reconstruction RMSE %g, want 0", rmse)
	}
	// upTo beyond the top is clamped.
	same, err := p.Reconstruct(99)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := RMSE(same, grid); r > 1e-12 {
		t.Errorf("clamped reconstruction RMSE %g", r)
	}
	if _, err := p.Reconstruct(-1); err == nil {
		t.Error("negative level accepted")
	}
}

// TestPyramidRMSEDecreases is the multi-resolution property the priority
// model buys: each additional recovered level refines the approximation.
func TestPyramidRMSEDecreases(t *testing.T) {
	_, grid := sampleField(t, 5, 32)
	p, err := BuildPyramid(grid, 32)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for upTo := 0; upTo < p.Levels(); upTo++ {
		approx, err := p.Reconstruct(upTo)
		if err != nil {
			t.Fatal(err)
		}
		rmse, err := RMSE(approx, grid)
		if err != nil {
			t.Fatal(err)
		}
		if rmse > prev+1e-12 {
			t.Errorf("RMSE increased at level %d: %g -> %g", upTo, prev, rmse)
		}
		prev = rmse
	}
	if prev > 1e-12 {
		t.Errorf("final RMSE %g, want 0", prev)
	}
}

// TestPyramidLevelZeroIsMean: the coarsest level must equal the grid mean.
func TestPyramidLevelZeroIsMean(t *testing.T) {
	_, grid := sampleField(t, 6, 8)
	p, err := BuildPyramid(grid, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range grid {
		sum += v
	}
	mean := sum / float64(len(grid))
	coarse, err := p.Reconstruct(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range coarse {
		if math.Abs(v-mean) > 1e-12 {
			t.Fatalf("level-0 reconstruction %g, want mean %g", v, mean)
		}
	}
}

func TestToBlocksValidation(t *testing.T) {
	_, grid := sampleField(t, 7, 4)
	p, err := BuildPyramid(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ToBlocks(0); err == nil {
		t.Error("payload 0 accepted")
	}
	if _, _, err := p.ToBlocks(12); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	_, grid := sampleField(t, 8, 16)
	p, err := BuildPyramid(grid, 16)
	if err != nil {
		t.Fatal(err)
	}
	blocks, layout, err := p.ToBlocks(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout.LevelSizes) != p.Levels() {
		t.Fatalf("layout has %d levels, want %d", len(layout.LevelSizes), p.Levels())
	}
	total := 0
	for _, s := range layout.LevelSizes {
		total += s
	}
	if total != len(blocks) {
		t.Fatalf("layout wants %d blocks, got %d", total, len(blocks))
	}
	rebuilt, levels, err := FromBlocks(blocks, layout, 16)
	if err != nil {
		t.Fatal(err)
	}
	if levels != p.Levels() {
		t.Fatalf("rebuilt %d levels, want %d", levels, p.Levels())
	}
	full, err := rebuilt.Reconstruct(levels - 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse, _ := RMSE(full, grid); rmse > 1e-12 {
		t.Errorf("round-trip RMSE %g", rmse)
	}
}

func TestFromBlocksPartialPrefix(t *testing.T) {
	_, grid := sampleField(t, 9, 16)
	p, err := BuildPyramid(grid, 16)
	if err != nil {
		t.Fatal(err)
	}
	blocks, layout, err := p.ToBlocks(16)
	if err != nil {
		t.Fatal(err)
	}
	// Nil out everything past the first three pyramid levels.
	keep := layout.LevelSizes[0] + layout.LevelSizes[1] + layout.LevelSizes[2]
	for i := keep; i < len(blocks); i++ {
		blocks[i] = nil
	}
	rebuilt, levels, err := FromBlocks(blocks, layout, 16)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 3 {
		t.Fatalf("rebuilt %d levels, want 3", levels)
	}
	approx, err := rebuilt.Reconstruct(levels - 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Reconstruct(2)
	if err != nil {
		t.Fatal(err)
	}
	if rmse, _ := RMSE(approx, want); rmse > 1e-12 {
		t.Errorf("partial reconstruction differs from direct truncation: %g", rmse)
	}
}

func TestFromBlocksErrors(t *testing.T) {
	layout := BlockLayout{LevelSizes: []int{1, 1, 4}, PayloadLen: 8}
	if _, _, err := FromBlocks(nil, layout, 4); err == nil {
		t.Error("too few blocks accepted")
	}
	if _, _, err := FromBlocks(make([][]byte, 6), BlockLayout{LevelSizes: []int{1}, PayloadLen: 8}, 4); err == nil {
		t.Error("wrong level count accepted")
	}
	if _, _, err := FromBlocks(make([][]byte, 6), layout, 3); err == nil {
		t.Error("bad resolution accepted")
	}
	if _, _, err := FromBlocks(make([][]byte, 6), BlockLayout{LevelSizes: []int{1, 1, 4}, PayloadLen: 0}, 4); err == nil {
		t.Error("bad payload length accepted")
	}
	// All-nil blocks: nothing decodable.
	if _, _, err := FromBlocks(make([][]byte, 6), layout, 4); err == nil {
		t.Error("no decodable level accepted")
	}
}

// TestEndToEndWithPLC ties the pyramid to the codec: encode the blocks
// under PLC, decode partially, and verify the recovered prefix rebuilds
// the corresponding approximation.
func TestEndToEndWithPLC(t *testing.T) {
	_, grid := sampleField(t, 10, 16)
	p, err := BuildPyramid(grid, 16)
	if err != nil {
		t.Fatal(err)
	}
	blocks, layout, err := p.ToBlocks(16)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := core.NewLevels(layout.LevelSizes...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	enc, err := core.NewEncoder(core.PLC, levels, blocks)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecoder(core.PLC, levels, layout.PayloadLen)
	if err != nil {
		t.Fatal(err)
	}
	// Feed coded blocks until at least 3 pyramid levels are decodable.
	dist := core.PriorityDistribution{0.15, 0.15, 0.2, 0.25, 0.25}
	for dec.DecodedLevels() < 3 {
		cb, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(cb[0]); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, got, err := FromBlocks(dec.Sources(), layout, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 {
		t.Fatalf("rebuilt %d levels, want >= 3", got)
	}
	approx, err := rebuilt.Reconstruct(got - 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Reconstruct(got - 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse, _ := RMSE(approx, want); rmse > 1e-12 {
		t.Errorf("decoded approximation differs: RMSE %g", rmse)
	}
}

func TestRMSEValidation(t *testing.T) {
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if v, err := RMSE(nil, nil); err != nil || v != 0 {
		t.Errorf("empty RMSE = %g, %v", v, err)
	}
}

func TestQuickPyramidMeanPreserved(t *testing.T) {
	// The pyramid's coarsest coefficient is always the grid mean, for any
	// grid (linearity of the averaging chain).
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := []int{2, 4, 8}[rng.Intn(3)]
		grid := make([]float64, res*res)
		sum := 0.0
		for i := range grid {
			grid[i] = rng.NormFloat64()
			sum += grid[i]
		}
		p, err := BuildPyramid(grid, res)
		if err != nil {
			return false
		}
		return math.Abs(p.levels[0][0]-sum/float64(len(grid))) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
