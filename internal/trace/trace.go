// Package trace generates the measurement data the paper's scenarios
// persist, and implements the multi-resolution prioritization its strict
// priority model motivates ("multi-resolution sensor image dissemination
// [22]"): a smooth synthetic sensor field is sampled on a grid and
// decomposed into a resolution pyramid whose coarse levels are the
// high-priority source blocks — recovering a prefix of the levels yields a
// faithful low-resolution approximation of the whole field, and every
// additional level sharpens it.
package trace

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Field is a smooth synthetic scalar field over the unit square, built as
// a sum of Gaussian bumps — a stand-in for temperature/humidity surfaces.
type Field struct {
	bumps []bump
}

type bump struct {
	center geom.Point
	amp    float64
	sigma2 float64
}

// NewField samples a random field with the given number of bumps.
func NewField(rng *rand.Rand, bumps int) (*Field, error) {
	if bumps <= 0 {
		return nil, fmt.Errorf("trace: bump count %d, want > 0", bumps)
	}
	f := &Field{bumps: make([]bump, bumps)}
	for i := range f.bumps {
		s := 0.05 + 0.2*rng.Float64()
		f.bumps[i] = bump{
			center: geom.Point{X: rng.Float64(), Y: rng.Float64()},
			amp:    0.3 + 0.7*rng.Float64(),
			sigma2: s * s,
		}
	}
	return f, nil
}

// At evaluates the field at a point.
func (f *Field) At(p geom.Point) float64 {
	v := 0.0
	for _, b := range f.bumps {
		v += b.amp * math.Exp(-p.Dist2(b.center)/(2*b.sigma2))
	}
	return v
}

// SampleGrid evaluates the field on a res×res grid (row-major, cell
// centers).
func (f *Field) SampleGrid(res int) ([]float64, error) {
	if res <= 0 {
		return nil, fmt.Errorf("trace: grid resolution %d, want > 0", res)
	}
	out := make([]float64, res*res)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			p := geom.Point{
				X: (float64(x) + 0.5) / float64(res),
				Y: (float64(y) + 0.5) / float64(res),
			}
			out[y*res+x] = f.At(p)
		}
	}
	return out, nil
}

// Pyramid is a multi-resolution decomposition of a square grid: level 0
// holds the 1×1 mean, and each further level holds the residual detail
// against the nearest-neighbor upsampling of the previous reconstruction.
// Level ℓ has resolution 2^ℓ. Transmitting levels 0..k reconstructs the
// field at resolution 2^k exactly, with finer detail zeroed.
type Pyramid struct {
	res    int         // full resolution (power of two)
	levels [][]float64 // levels[l] has (2^l)^2 entries
}

// BuildPyramid decomposes a res×res grid (res must be a power of two).
func BuildPyramid(grid []float64, res int) (*Pyramid, error) {
	if res <= 0 || res&(res-1) != 0 {
		return nil, fmt.Errorf("trace: resolution %d is not a positive power of two", res)
	}
	if len(grid) != res*res {
		return nil, fmt.Errorf("trace: grid has %d cells, want %d", len(grid), res*res)
	}
	// Downsample chain: averages at each resolution.
	nLevels := bits(res) + 1 // res = 2^(nLevels-1)
	avgs := make([][]float64, nLevels)
	avgs[nLevels-1] = append([]float64(nil), grid...)
	for l := nLevels - 2; l >= 0; l-- {
		r := 1 << uint(l)
		cur := make([]float64, r*r)
		prev := avgs[l+1]
		pr := r * 2
		for y := 0; y < r; y++ {
			for x := 0; x < r; x++ {
				sum := prev[(2*y)*pr+2*x] + prev[(2*y)*pr+2*x+1] +
					prev[(2*y+1)*pr+2*x] + prev[(2*y+1)*pr+2*x+1]
				cur[y*r+x] = sum / 4
			}
		}
		avgs[l] = cur
	}
	// Residuals: level l detail = avgs[l] − upsample(avgs[l-1]).
	p := &Pyramid{res: res, levels: make([][]float64, nLevels)}
	p.levels[0] = avgs[0]
	for l := 1; l < nLevels; l++ {
		r := 1 << uint(l)
		up := upsample(avgs[l-1], r/2)
		detail := make([]float64, r*r)
		for i := range detail {
			detail[i] = avgs[l][i] - up[i]
		}
		p.levels[l] = detail
	}
	return p, nil
}

func bits(res int) int {
	n := 0
	for res > 1 {
		res >>= 1
		n++
	}
	return n
}

// upsample doubles a square grid by nearest-neighbor replication.
func upsample(grid []float64, r int) []float64 {
	out := make([]float64, 4*r*r)
	pr := 2 * r
	for y := 0; y < pr; y++ {
		for x := 0; x < pr; x++ {
			out[y*pr+x] = grid[(y/2)*r+(x/2)]
		}
	}
	return out
}

// Levels returns the number of pyramid levels.
func (p *Pyramid) Levels() int { return len(p.levels) }

// Res returns the full grid resolution.
func (p *Pyramid) Res() int { return p.res }

// Reconstruct rebuilds the full-resolution grid using levels 0..upTo
// (inclusive); finer details are treated as zero, so the result is the
// resolution-2^upTo approximation upsampled to full size. upTo ≥ Levels-1
// reproduces the original exactly.
func (p *Pyramid) Reconstruct(upTo int) ([]float64, error) {
	if upTo < 0 {
		return nil, fmt.Errorf("trace: reconstruct up to level %d, want >= 0", upTo)
	}
	if upTo >= len(p.levels) {
		upTo = len(p.levels) - 1
	}
	cur := append([]float64(nil), p.levels[0]...)
	for l := 1; l <= upTo; l++ {
		r := 1 << uint(l)
		up := upsample(cur, r/2)
		for i := range up {
			up[i] += p.levels[l][i]
		}
		cur = up
	}
	// Upsample the approximation to full resolution.
	for r := 1 << uint(upTo); r < p.res; r *= 2 {
		cur = upsample(cur, r)
	}
	return cur, nil
}

// RMSE returns the root-mean-square error between two equal-length grids.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("trace: RMSE over %d vs %d cells", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}

// Serialization: each pyramid level becomes a run of fixed-size source
// blocks (float64 coefficients, big endian), so the pyramid maps directly
// onto a core.Levels priority structure — coarse levels first.

// coeffsPerBlock is how many float64 coefficients fit one source block.
const coeffBytes = 8

// BlockLayout describes how a pyramid maps to prioritized source blocks.
type BlockLayout struct {
	// LevelSizes is the number of source blocks per priority level,
	// aligned with the pyramid levels.
	LevelSizes []int
	// PayloadLen is the source-block size in bytes.
	PayloadLen int
}

// ToBlocks serializes the pyramid into source blocks of the given payload
// size (a multiple of 8), returning the blocks in priority order and the
// layout needed to rebuild.
func (p *Pyramid) ToBlocks(payloadLen int) ([][]byte, BlockLayout, error) {
	if payloadLen <= 0 || payloadLen%coeffBytes != 0 {
		return nil, BlockLayout{}, fmt.Errorf("trace: payload length %d, want a positive multiple of %d", payloadLen, coeffBytes)
	}
	perBlock := payloadLen / coeffBytes
	var blocks [][]byte
	layout := BlockLayout{PayloadLen: payloadLen}
	for _, level := range p.levels {
		count := (len(level) + perBlock - 1) / perBlock
		layout.LevelSizes = append(layout.LevelSizes, count)
		for b := 0; b < count; b++ {
			block := make([]byte, payloadLen)
			for i := 0; i < perBlock; i++ {
				idx := b*perBlock + i
				if idx >= len(level) {
					break
				}
				binary.BigEndian.PutUint64(block[i*coeffBytes:], math.Float64bits(level[idx]))
			}
			blocks = append(blocks, block)
		}
	}
	return blocks, layout, nil
}

// FromBlocks rebuilds a pyramid from (a prefix of) decoded source blocks.
// blocks[i] may be nil for undecoded blocks; only pyramid levels whose
// blocks are all present are populated, and the returned count says how
// many leading levels were rebuilt.
func FromBlocks(blocks [][]byte, layout BlockLayout, res int) (*Pyramid, int, error) {
	if layout.PayloadLen <= 0 || layout.PayloadLen%coeffBytes != 0 {
		return nil, 0, fmt.Errorf("trace: invalid layout payload length %d", layout.PayloadLen)
	}
	if res <= 0 || res&(res-1) != 0 {
		return nil, 0, fmt.Errorf("trace: resolution %d is not a positive power of two", res)
	}
	if want := bits(res) + 1; len(layout.LevelSizes) != want {
		return nil, 0, fmt.Errorf("trace: layout has %d levels, want %d for res %d",
			len(layout.LevelSizes), want, res)
	}
	perBlock := layout.PayloadLen / coeffBytes
	p := &Pyramid{res: res, levels: make([][]float64, len(layout.LevelSizes))}
	offset := 0
	rebuilt := 0
	for l, count := range layout.LevelSizes {
		if offset+count > len(blocks) {
			return nil, 0, fmt.Errorf("trace: layout wants %d blocks, have %d", offset+count, len(blocks))
		}
		complete := true
		for b := 0; b < count; b++ {
			if blocks[offset+b] == nil {
				complete = false
				break
			}
		}
		if !complete {
			break
		}
		r := 1 << uint(l)
		coeffs := make([]float64, r*r)
		for i := range coeffs {
			blk := blocks[offset+i/perBlock]
			if len(blk) != layout.PayloadLen {
				return nil, 0, fmt.Errorf("trace: block %d has %d bytes, want %d",
					offset+i/perBlock, len(blk), layout.PayloadLen)
			}
			pos := (i % perBlock) * coeffBytes
			coeffs[i] = math.Float64frombits(binary.BigEndian.Uint64(blk[pos:]))
		}
		p.levels[l] = coeffs
		rebuilt++
		offset += count
	}
	// Zero-fill the missing fine levels so Reconstruct stays usable.
	for l := rebuilt; l < len(p.levels); l++ {
		r := 1 << uint(l)
		p.levels[l] = make([]float64, r*r)
	}
	if rebuilt == 0 {
		return nil, 0, fmt.Errorf("trace: no complete pyramid level decodable")
	}
	return p, rebuilt, nil
}
