package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_ns")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil metrics: %v %v %v", c, g, h)
	}
	// All recording paths must be no-ops, not panics.
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	h.Observe(42)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics recorded values")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote prometheus output: %q", buf.String())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if again := r.Counter("reqs_total"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("conns")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestBadNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "9bad", "has space", "x{unclosed", `x{a=b}`, `x{a="b"`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name)
		}()
	}
	// Labeled names are legal.
	r.Counter(`x_total{replica="0"}`)
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every sample must land in a bucket whose [lower, upper] range
	// contains it, across the full magnitude sweep.
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		upper := bucketUpper(i)
		if uint64(upper) < v {
			t.Fatalf("bucketUpper(bucketOf(%d)) = %d < sample", v, upper)
		}
		if i > 0 && uint64(bucketUpper(i-1)) >= v {
			t.Fatalf("sample %d also fits bucket %d (upper %d)", v, i-1, bucketUpper(i-1))
		}
	}
	// Monotone uppers.
	last := int64(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u < last {
			t.Fatalf("bucketUpper not monotone at %d: %d < %d", i, u, last)
		}
		last = u
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	// 1..1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990, within bucket width (12.5%).
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	check := func(name string, got int64, want float64) {
		if float64(got) < want || float64(got) > want*1.15 {
			t.Errorf("%s = %d, want within [%v, %v]", name, got, want, want*1.15)
		}
	}
	check("p50", s.P50, 500)
	check("p95", s.P95, 950)
	check("p99", s.P99, 990)
	if s.Max < 1000 || s.Max > 1151 {
		t.Errorf("max = %d, want ~1000 (bucket upper)", s.Max)
	}
	if s.Mean != 500.5 {
		t.Errorf("mean = %v, want 500.5", s.Mean)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.P99 != 0 {
		t.Fatalf("negative sample snapshot: %+v", s)
	}
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(-4)
	r.Histogram("h_ns").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Counters) != 2 || back.Gauges[0].Value != -4 || back.Histograms[0].Count != 1 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

func TestPrometheusOutputValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("store_server_requests_total").Add(17)
	r.Counter(`store_replica_put_errors_total{replica="0"}`).Add(1)
	r.Counter(`store_replica_put_errors_total{replica="1"}`).Add(2)
	r.Gauge("store_server_active_conns").Set(3)
	h := r.Histogram("store_client_op_ns")
	for i := 0; i < 100; i++ {
		h.Observe(int64(rand.Intn(1_000_000)))
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePromText(strings.NewReader(text)); err != nil {
		t.Fatalf("own prometheus output does not validate: %v\n%s", err, text)
	}
	// Labeled variants share one TYPE header.
	if n := strings.Count(text, "# TYPE store_replica_put_errors_total counter"); n != 1 {
		t.Fatalf("TYPE header emitted %d times:\n%s", n, text)
	}
	for _, want := range []string{
		`store_client_op_ns{quantile="0.5"}`,
		"store_client_op_ns_sum",
		"store_client_op_ns_count 100",
		`store_replica_put_errors_total{replica="1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestValidatePromTextRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"",                         // no samples
		"foo",                      // no value
		"foo bar",                  // non-float value
		"9foo 1",                   // bad name
		"foo{a=b} 1",               // unquoted label
		"foo{a=\"b\" 1",            // unterminated label set
		"# TYPE foo banana\nfoo 1", // unknown type
	} {
		if err := ValidatePromText(strings.NewReader(doc)); err == nil {
			t.Errorf("ValidatePromText accepted %q", doc)
		}
	}
	good := "# HELP foo help text here\n# TYPE foo counter\nfoo 1\nbar{x=\"y\"} 2.5 1700000000\n"
	if err := ValidatePromText(strings.NewReader(good)); err != nil {
		t.Errorf("ValidatePromText rejected valid doc: %v", err)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := ValidatePromText(resp.Body); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	jresp, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics.json does not decode: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Fatalf("/metrics.json snapshot: %+v", snap)
	}

	presp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", presp.StatusCode)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_ns")
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(rng.Intn(1 << 20)))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if got := r.Histogram("h_ns").Snapshot().Count; got != 16000 {
		t.Fatalf("histogram count = %d, want 16000", got)
	}
}

func TestRecordingAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot-path recording allocates %.1f allocs/op, want 0", allocs)
	}
}
