package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, 8 linear sub-buckets per octave
// (HDR-style). Values 0..7 land in exact buckets 0..7; beyond that, each
// power-of-two octave splits into 8 equal sub-buckets, so relative
// resolution stays within 12.5% at every magnitude. The full uint64 range
// needs 8 + 61*8 = 496 buckets — 4 KiB of atomics per histogram, sized
// once, no allocation ever on the record path.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8
	histBuckets = histSub + (64-histSubBits)*histSub
)

// Histogram is a fixed-bucket log-linear histogram of non-negative int64
// samples (latencies in nanoseconds, sizes in bytes). Recording is two
// atomic adds plus a bucket increment; quantiles are computed at snapshot
// time by walking the bucket array. The zero value is ready to use; a nil
// *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(v) - 1 - histSubBits // >= 0 here
	sub := int((v >> uint(shift)) & (histSub - 1))
	return histSub + shift*histSub + sub
}

// bucketUpper returns the largest sample value mapping to bucket i — the
// conservative estimate quantile queries report.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	shift := (i - histSub) / histSub
	sub := (i - histSub) % histSub
	lower := uint64(histSub+sub) << uint(shift)
	upper := lower + (uint64(1) << uint(shift)) - 1
	if upper > uint64(1)<<62 {
		return int64(1) << 62
	}
	return int64(upper)
}

// Observe records one sample; negative samples clamp to zero. No-op on a
// nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(uint64(v))].Add(1)
}

// ObserveSince records the elapsed nanoseconds since t0. No-op on a nil
// receiver (time.Since is still evaluated; callers on hot paths should
// guard with h != nil if even that matters).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// HistogramSnapshot is a histogram's point-in-time summary. Quantiles are
// bucket upper bounds, i.e. conservative to within the bucket's 12.5%
// relative width; Mean is exact over the recorded sum.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"` // upper bound of the highest occupied bucket
}

// Snapshot summarizes the histogram. Safe concurrently with Observe; a
// racing sample may be counted in Count but not yet in a bucket, which
// the quantile walk tolerates by treating the tail as the last occupied
// bucket. A nil receiver yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)

	// One pass: cumulative rank targets for p50/p95/p99 against a local
	// copy of the occupancy, tracking the highest occupied bucket.
	var counts [histBuckets]uint64
	total := uint64(0)
	maxBucket := -1
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
		if c > 0 {
			maxBucket = i
		}
	}
	if total == 0 {
		return s
	}
	q := func(p float64) int64 {
		rank := uint64(float64(total)*p + 0.5)
		if rank < 1 {
			rank = 1
		}
		cum := uint64(0)
		for i := 0; i <= maxBucket; i++ {
			cum += counts[i]
			if cum >= rank {
				return bucketUpper(i)
			}
		}
		return bucketUpper(maxBucket)
	}
	s.P50 = q(0.50)
	s.P95 = q(0.95)
	s.P99 = q(0.99)
	s.Max = bucketUpper(maxBucket)
	return s
}
