package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateMetricName checks a registry name: a Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*), optionally followed by one inline label set
// `{key="value",...}` with no escapes in the values.
func ValidateMetricName(name string) error {
	base, labels := splitName(name)
	if !validBareName(base) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if labels == "" {
		if strings.ContainsAny(name, "{}") {
			return fmt.Errorf("invalid metric name %q: malformed label set", name)
		}
		return nil
	}
	if err := validateLabelSet(labels); err != nil {
		return fmt.Errorf("invalid metric name %q: %v", name, err)
	}
	return nil
}

// splitName splits `base{labels}` into base and the inner label text;
// labels is empty when there is no label set.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if !strings.HasSuffix(name, "}") {
		return name[:i], ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func validBareName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validateLabelSet(labels string) error {
	for _, pair := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("label %q is not key=\"value\"", pair)
		}
		if !validBareName(k) || strings.ContainsRune(k, ':') {
			return fmt.Errorf("bad label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %s is not quoted", v)
		}
		if strings.ContainsAny(v[1:len(v)-1], `"\`+"\n") {
			return fmt.Errorf("label value %s needs escaping", v)
		}
	}
	return nil
}

// withQuantile merges a quantile label into a possibly-labeled name:
// foo -> foo{quantile="0.5"}, foo{a="b"} -> foo{a="b",quantile="0.5"}.
func withQuantile(name, q string) string {
	base, labels := splitName(name)
	if labels == "" {
		return fmt.Sprintf("%s{quantile=%q}", base, q)
	}
	return fmt.Sprintf("%s{%s,quantile=%q}", base, labels, q)
}

// withSuffix appends a suffix to the base name, preserving the label set:
// foo{a="b"} + _sum -> foo_sum{a="b"}.
func withSuffix(name, suffix string) string {
	base, labels := splitName(name)
	if labels == "" {
		return base + suffix
	}
	return fmt.Sprintf("%s%s{%s}", base, suffix, labels)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with pre-computed p50/p95/p99 quantiles plus
// _sum and _count. Series sharing a base name (labeled variants) emit one
// TYPE header. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	emitType := typeEmitter(bw)
	for _, c := range s.Counters {
		emitType(c.Name, "counter")
		fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		emitType(g.Name, "gauge")
		fmt.Fprintf(bw, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		emitType(h.Name, "summary")
		fmt.Fprintf(bw, "%s %d\n", withQuantile(h.Name, "0.5"), h.P50)
		fmt.Fprintf(bw, "%s %d\n", withQuantile(h.Name, "0.95"), h.P95)
		fmt.Fprintf(bw, "%s %d\n", withQuantile(h.Name, "0.99"), h.P99)
		fmt.Fprintf(bw, "%s %d\n", withSuffix(h.Name, "_sum"), h.Sum)
		fmt.Fprintf(bw, "%s %d\n", withSuffix(h.Name, "_count"), h.Count)
	}
	return bw.Flush()
}

// typeEmitter returns a closure that writes `# TYPE base kind` once per
// base name. Snapshot order is sorted, so labeled variants of one base
// name are adjacent and the last-seen check suffices.
func typeEmitter(w io.Writer) func(name, kind string) {
	last := ""
	return func(name, kind string) {
		base, _ := splitName(name)
		if base == last {
			return
		}
		last = base
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
	}
}

// WriteJSON renders the registry snapshot as an indented JSON document —
// the machine-readable twin of the Prometheus endpoint, consumed by
// `prlcd metrics`.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ValidatePromText parses a Prometheus text-format document and returns
// the first violation found (nil for a valid document). It checks line
// structure, metric-name and label syntax, float-parseable sample values,
// and that TYPE declarations name a known type — a scrape-compatibility
// smoke test with no external dependencies, not a full exposition-format
// implementation.
func ValidatePromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateCommentLine(line); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		if err := validateSampleLine(line); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in document")
	}
	return nil
}

func validateCommentLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validBareName(fields[2]) {
			return fmt.Errorf("bad metric name %q in TYPE line", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "summary", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	case "HELP":
		if len(fields) < 3 || !validBareName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func validateSampleLine(line string) error {
	// name[{labels}] value [timestamp]
	rest := line
	i := strings.IndexAny(rest, " \t{")
	if i < 0 {
		return fmt.Errorf("sample %q has no value", line)
	}
	name := rest[:i]
	if !validBareName(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if inner := rest[1:end]; inner != "" {
			if err := validateLabelSet(inner); err != nil {
				return err
			}
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return nil
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}
