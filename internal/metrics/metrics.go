// Package metrics is the dependency-free observability seam of the
// reproduction: atomic counters, gauges and log-linear histograms behind
// a named registry, with Prometheus-text, JSON and human-readable
// renderings plus an HTTP handler (see http.go).
//
// The design goals, in order:
//
//  1. Zero cost when unused. Every metric type is nil-safe: calling Add,
//     Set or Observe on a nil pointer is a no-op, and looking a metric up
//     in a nil *Registry returns nil. Library layers therefore thread a
//     possibly-nil registry through their configs and instrument
//     unconditionally; users who pass no registry pay a nil check.
//  2. Allocation-free hot paths. Metrics are resolved by name once, at
//     construction time, into plain struct fields; recording is a single
//     atomic RMW (plus a bucket index computation for histograms). The
//     registry map is only touched at setup and at snapshot time.
//  3. No dependencies. The Prometheus exposition is hand-rolled text
//     format (counters, gauges, and summaries with pre-computed
//     quantiles), validated by the promtext.go parser in tests.
//
// Metric names follow Prometheus conventions (snake_case, unit-suffixed,
// `_total` for counters) and may carry a fixed label set inline:
// `store_replica_put_errors_total{replica="2"}`. Labels are part of the
// registry key — there is no dynamic label indexing, which keeps lookup
// out of hot paths by construction.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is fully usable as
// a no-op: every lookup returns nil, every snapshot is empty.
//
// Lookups are idempotent — asking for the same name twice returns the
// same metric — so independent components sharing a registry naturally
// aggregate into shared series. Registering one name as two different
// kinds is a programming error and panics at setup time.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, kindHistogram)
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// checkName panics on malformed names and cross-kind collisions — both
// are programming errors caught by any test that touches the metric, and
// panicking at setup beats corrupting the exposition format at scrape
// time. Must be called with r.mu held; asKind is the caller's own kind
// (same-kind re-registration is the idempotent lookup path).
func (r *Registry) checkName(name string, asKind metricKind) {
	if err := ValidateMetricName(name); err != nil {
		panic(fmt.Sprintf("metrics: %v", err))
	}
	if _, ok := r.counters[name]; ok && asKind != kindCounter {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && asKind != kindGauge {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && asKind != kindHistogram {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name within each kind — the JSON document `prlcd metrics` renders.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures every metric's current value. Safe to call
// concurrently with recording; individual values are atomically read but
// the snapshot as a whole is not a consistent cut. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for name, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, HistogramValue{Name: name, HistogramSnapshot: h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
