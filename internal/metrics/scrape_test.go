package metrics

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePromTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("loadtest_ops_total").Add(42)
	reg.Counter(`loadtest_errs_total{kind="put"}`).Add(3)
	reg.Counter(`loadtest_errs_total{kind="get"}`).Add(4)
	reg.Gauge("loadtest_active").Set(7)
	h := reg.Histogram("loadtest_lat_ns")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) * 1000)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePromText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParsePromText on our own exposition: %v", err)
	}
	if got := samples.Value("loadtest_ops_total"); got != 42 {
		t.Errorf("ops_total = %v, want 42", got)
	}
	if got := samples.Value(`loadtest_errs_total{kind="put"}`); got != 3 {
		t.Errorf("errs{put} = %v, want 3", got)
	}
	if got := samples.SumPrefix("loadtest_errs_total"); got != 7 {
		t.Errorf("SumPrefix(errs) = %v, want 7", got)
	}
	if got := samples.Value("loadtest_active"); got != 7 {
		t.Errorf("active = %v, want 7", got)
	}
	if got := samples.Value("loadtest_lat_ns_count"); got != 100 {
		t.Errorf("lat_count = %v, want 100", got)
	}
	if got := samples.Value(`loadtest_lat_ns{quantile="0.99"}`); got <= 0 {
		t.Errorf("p99 sample missing, got %v", got)
	}
}

func TestParsePromTextNormalizesLabelOrder(t *testing.T) {
	doc := "m{b=\"2\",a=\"1\"} 5\n"
	samples, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples.Value(`m{a="1",b="2"}`); got != 5 {
		t.Errorf("normalized lookup = %v, want 5 (names: %v)", got, samples.Names())
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"",
		"not a metric line at all!!!\n",
		"name{unterminated 3\n",
		"name twelve\n",
	} {
		if _, err := ParsePromText(strings.NewReader(doc)); err == nil {
			t.Errorf("ParsePromText(%q) accepted garbage", doc)
		}
	}
}

func TestSumPrefixDoesNotMatchLongerNames(t *testing.T) {
	doc := "foo_total 1\nfoo_total_extra 10\nfoo_total{op=\"x\"} 2\n"
	samples, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples.SumPrefix("foo_total"); got != 3 {
		t.Errorf("SumPrefix = %v, want 3 (base + labeled only)", got)
	}
}

func TestScrapeLiveHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrape_me_total").Add(9)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	samples, err := Scrape(ctx, strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples.Value("scrape_me_total"); got != 9 {
		t.Errorf("scraped value = %v, want 9", got)
	}
}
