package metrics

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability endpoint served by
// `prlcd serve -metrics <addr>`:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (what `prlcd metrics` renders)
//	/debug/pprof/  the standard net/http/pprof profiles
//	/              a plain-text index of the above
//
// The registry may be nil; the endpoints then serve empty documents,
// keeping pprof available on uninstrumented daemons.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "prlcd observability endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  JSON snapshot")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	})
	return mux
}
