package metrics

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series sample from a Prometheus text document.
// Name is the full series identifier — base name plus a normalized label
// set, `foo{a="b",q="0.5"}` — so two samples differing only in labels
// stay distinct.
type Sample struct {
	Name  string
	Value float64
}

// Samples is a parsed scrape: full series name -> value. Later samples of
// a duplicated series overwrite earlier ones (last-wins, matching how a
// scraper would ingest the document).
type Samples map[string]float64

// Value returns the sample under the exact series name (labels included),
// or 0 when absent — counters that never fired simply do not appear in
// the exposition, so absence reads naturally as zero.
func (s Samples) Value(name string) float64 { return s[name] }

// SumPrefix sums every sample whose series name starts with prefix —
// `store_server_requests_total` sums the per-op labeled variants. A base
// name matches itself, its labeled variants `base{...}`, and nothing else
// (`store_server_requests_total_foo` does not ride along).
func (s Samples) SumPrefix(prefix string) float64 {
	total := 0.0
	for name, v := range s {
		if name == prefix || strings.HasPrefix(name, prefix+"{") {
			total += v
		}
	}
	return total
}

// Names returns the series names sorted, for reports and tests.
func (s Samples) Names() []string {
	out := make([]string, 0, len(s))
	for name := range s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParsePromText parses a Prometheus 0.0.4 text document into samples.
// It applies the same structural validation as ValidatePromText — the
// first malformed line fails the whole parse, because a load harness
// cross-checking SLOs against a daemon must not silently drop series —
// and normalizes each sample's label set so lookups are stable across
// emitters (labels sorted, `base{b="2",a="1"}` -> `base{a="1",b="2"}`).
func ParsePromText(r io.Reader) (Samples, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := make(Samples)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateCommentLine(line); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out[s.Name] = s.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in document")
	}
	return out, nil
}

// parseSampleLine parses `name[{labels}] value [timestamp]` into a
// Sample, reusing the validator's structural checks.
func parseSampleLine(line string) (Sample, error) {
	if err := validateSampleLine(line); err != nil {
		return Sample{}, err
	}
	rest := line
	i := strings.IndexAny(rest, " \t{")
	name := rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if inner := rest[1:end]; inner != "" {
			name = name + "{" + normalizeLabels(inner) + "}"
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	return Sample{Name: name, Value: v}, nil
}

// normalizeLabels sorts `k="v"` pairs so the same label set always
// produces the same series name regardless of emitter order.
func normalizeLabels(inner string) string {
	pairs := strings.Split(inner, ",")
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// Scrape fetches and parses one daemon's Prometheus endpoint. addr is
// the observability address (`prlcd serve -metrics`); the path defaults
// to /metrics when addr carries none. It is the SLO harness's view into
// a live daemon: the generator's own clocks measure client-side latency,
// the scrape says what the server believes happened.
func Scrape(ctx context.Context, addr string) (Samples, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics") && !strings.Contains(url, "/metrics") {
		url = strings.TrimSuffix(url, "/") + "/metrics"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("metrics: scrape %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: scrape %s: %s", addr, resp.Status)
	}
	samples, err := ParsePromText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics: scrape %s: %w", addr, err)
	}
	return samples, nil
}
