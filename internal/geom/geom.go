// Package geom provides the geometric-network primitives of Sec. 2 and
// Sec. 4: points in the unit square, unit-disk connectivity graphs for
// sensor networks, Gabriel-graph planarization (the planar subgraph GPSR's
// perimeter mode traverses), and the common-random-seed generation of the
// M cache locations that all nodes derive independently.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the unit square [0,1) x [0,1).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance, cheaper when only
// comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of the segment pq.
func (p Point) Mid(q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// RandomPoints returns n points drawn uniformly from the unit square.
func RandomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// SeededLocations deterministically generates the M random cache locations
// from a shared seed — the Sec. 4 mechanism by which every node, knowing
// only the common random seed, reconstructs the same set of storage points
// without any coordination.
func SeededLocations(seed int64, m int) []Point {
	return RandomPoints(rand.New(rand.NewSource(seed)), m)
}

// Graph is an undirected geometric graph over indexed node positions.
type Graph struct {
	pos []Point
	adj [][]int
}

// NewUnitDiskGraph connects every pair of nodes within the given radio
// range — the standard sensor-network connectivity model.
func NewUnitDiskGraph(pos []Point, radius float64) (*Graph, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("geom: radius %g, want > 0", radius)
	}
	g := &Graph{
		pos: append([]Point(nil), pos...),
		adj: make([][]int, len(pos)),
	}
	r2 := radius * radius
	// Grid-bucket the nodes so construction is near-linear for the dense
	// deployments the experiments use.
	cell := radius
	if cell > 1 {
		cell = 1
	}
	nCells := int(math.Ceil(1 / cell))
	buckets := make(map[[2]int][]int)
	key := func(p Point) [2]int {
		cx, cy := int(p.X/cell), int(p.Y/cell)
		if cx >= nCells {
			cx = nCells - 1
		}
		if cy >= nCells {
			cy = nCells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pos {
		buckets[key(p)] = append(buckets[key(p)], i)
	}
	for i, p := range pos {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j <= i {
						continue
					}
					if p.Dist2(pos[j]) <= r2 {
						g.adj[i] = append(g.adj[i], j)
						g.adj[j] = append(g.adj[j], i)
					}
				}
			}
		}
	}
	return g, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.pos) }

// Pos returns the position of node i.
func (g *Graph) Pos(i int) Point { return g.pos[i] }

// Neighbors returns the adjacency list of node i (not a copy; callers must
// not mutate it).
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the number of neighbors of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Connected reports whether the graph is connected (true for the empty
// graph).
func (g *Graph) Connected() bool {
	n := len(g.pos)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// ClosestNode returns the index of the node nearest to p — the node "in
// charge of" a random cache location in the Sec. 4 protocol. alive, when
// non-nil, restricts the search to nodes for which alive(i) is true.
// Returns an error when no eligible node exists.
func (g *Graph) ClosestNode(p Point, alive func(int) bool) (int, error) {
	best, bestD := -1, math.Inf(1)
	for i, q := range g.pos {
		if alive != nil && !alive(i) {
			continue
		}
		if d := p.Dist2(q); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("geom: no eligible node for location (%.3f, %.3f)", p.X, p.Y)
	}
	return best, nil
}

// Gabriel returns the Gabriel subgraph: edge (u,v) survives iff no third
// node lies strictly inside the disk with diameter uv. The Gabriel graph
// is planar and connected whenever the unit-disk graph is, which is what
// GPSR's perimeter mode requires.
func (g *Graph) Gabriel() *Graph {
	out := &Graph{
		pos: append([]Point(nil), g.pos...),
		adj: make([][]int, len(g.pos)),
	}
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if v <= u {
				continue
			}
			mid := g.pos[u].Mid(g.pos[v])
			r2 := g.pos[u].Dist2(g.pos[v]) / 4
			blocked := false
			// Witnesses must be common neighbors: any node inside the
			// diameter disk is within the unit-disk range of both ends.
			for _, w := range g.adj[u] {
				if w != v && mid.Dist2(g.pos[w]) < r2-1e-15 {
					blocked = true
					break
				}
			}
			if !blocked {
				out.adj[u] = append(out.adj[u], v)
				out.adj[v] = append(out.adj[v], u)
			}
		}
	}
	return out
}
