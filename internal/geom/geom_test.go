package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := a.Dist2(b); math.Abs(got-25) > 1e-12 {
		t.Errorf("Dist2 = %g, want 25", got)
	}
	if got := a.Mid(b); got != (Point{1.5, 2}) {
		t.Errorf("Mid = %v, want {1.5 2}", got)
	}
}

func TestRandomPointsInUnitSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range RandomPoints(rng, 500) {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("point %v outside unit square", p)
		}
	}
}

func TestSeededLocationsDeterministic(t *testing.T) {
	a := SeededLocations(42, 100)
	b := SeededLocations(42, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different locations")
		}
	}
	c := SeededLocations(43, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical locations")
	}
}

func TestUnitDiskGraphValidation(t *testing.T) {
	if _, err := NewUnitDiskGraph(nil, 0); err == nil {
		t.Error("radius 0 accepted")
	}
	if _, err := NewUnitDiskGraph(nil, -1); err == nil {
		t.Error("negative radius accepted")
	}
	g, err := NewUnitDiskGraph(nil, 0.1)
	if err != nil || g.Len() != 0 {
		t.Errorf("empty graph: %v, %v", g, err)
	}
	if !g.Connected() {
		t.Error("empty graph should count as connected")
	}
}

func TestUnitDiskGraphEdges(t *testing.T) {
	pos := []Point{{0.1, 0.1}, {0.15, 0.1}, {0.9, 0.9}}
	g, err := NewUnitDiskGraph(pos, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %d %d %d, want 1 1 0", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if g.Pos(2) != pos[2] {
		t.Error("Pos mismatch")
	}
}

// TestUnitDiskGraphMatchesBruteForce compares the bucketed construction
// against the O(n^2) definition.
func TestUnitDiskGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pos := RandomPoints(rng, 200)
	const r = 0.15
	g, err := NewUnitDiskGraph(pos, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pos {
		want := map[int]bool{}
		for j := range pos {
			if j != i && pos[i].Dist2(pos[j]) <= r*r {
				want[j] = true
			}
		}
		if len(want) != g.Degree(i) {
			t.Fatalf("node %d: degree %d, brute force %d", i, g.Degree(i), len(want))
		}
		for _, j := range g.Neighbors(i) {
			if !want[j] {
				t.Fatalf("node %d: spurious edge to %d", i, j)
			}
		}
	}
}

func TestConnectedDenseDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pos := RandomPoints(rng, 400)
	g, err := NewUnitDiskGraph(pos, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("dense deployment unexpectedly disconnected")
	}
}

func TestClosestNode(t *testing.T) {
	pos := []Point{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}}
	g, err := NewUnitDiskGraph(pos, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ClosestNode(Point{0.45, 0.55}, nil)
	if err != nil || got != 1 {
		t.Errorf("ClosestNode = %d, %v; want 1", got, err)
	}
	// Restricting to alive nodes skips the nearest.
	got, err = g.ClosestNode(Point{0.45, 0.55}, func(i int) bool { return i != 1 })
	if err != nil || got == 1 {
		t.Errorf("ClosestNode with filter = %d, %v", got, err)
	}
	if _, err := g.ClosestNode(Point{0, 0}, func(int) bool { return false }); err == nil {
		t.Error("ClosestNode with no eligible nodes succeeded, want error")
	}
}

// TestGabrielSubsetAndPlanarityWitness checks Gabriel edges are a subset of
// unit-disk edges and that every removed edge has a witness in the diameter
// disk; every kept edge has none.
func TestGabrielSubsetAndPlanarityWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pos := RandomPoints(rng, 150)
	g, err := NewUnitDiskGraph(pos, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	gg := g.Gabriel()
	if gg.Len() != g.Len() {
		t.Fatal("Gabriel changed node count")
	}
	udgEdge := func(u, v int) bool {
		for _, w := range g.Neighbors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	hasWitness := func(u, v int) bool {
		mid := pos[u].Mid(pos[v])
		r2 := pos[u].Dist2(pos[v]) / 4
		for w := range pos {
			if w != u && w != v && mid.Dist2(pos[w]) < r2-1e-15 {
				return true
			}
		}
		return false
	}
	for u := 0; u < gg.Len(); u++ {
		for _, v := range gg.Neighbors(u) {
			if !udgEdge(u, v) {
				t.Fatalf("Gabriel edge (%d,%d) not in unit-disk graph", u, v)
			}
			if u < v && hasWitness(u, v) {
				t.Fatalf("kept Gabriel edge (%d,%d) has a witness", u, v)
			}
		}
		// Removed edges must have witnesses.
		for _, v := range g.Neighbors(u) {
			if u > v {
				continue
			}
			kept := false
			for _, w := range gg.Neighbors(u) {
				if w == v {
					kept = true
					break
				}
			}
			if !kept && !hasWitness(u, v) {
				t.Fatalf("removed edge (%d,%d) has no witness", u, v)
			}
		}
	}
}

// TestGabrielPreservesConnectivity: the Gabriel graph of a connected UDG
// stays connected (a classical property GPSR relies on).
func TestGabrielPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		pos := RandomPoints(rng, 300)
		g, err := NewUnitDiskGraph(pos, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			continue
		}
		if !g.Gabriel().Connected() {
			t.Fatal("Gabriel graph of connected UDG is disconnected")
		}
	}
}

func TestQuickUnitDiskSymmetric(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := RandomPoints(rng, 30)
		g, err := NewUnitDiskGraph(pos, 0.25)
		if err != nil {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			for _, v := range g.Neighbors(u) {
				found := false
				for _, w := range g.Neighbors(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
