// Package cliutil holds small flag-parsing helpers shared by the
// command-line tools (prlcfile, prlcd).
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFloats parses a comma-separated float list ("0.1,0.2,0.7").
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInts parses a comma-separated int list ("4,12").
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// SplitAddrs parses a comma-separated address list, dropping empties.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// FractionsToSizes turns positive level fractions into per-level block
// counts summing to blocks, rounding drift onto the last (least
// important) level and guaranteeing every level at least one block.
func FractionsToSizes(fracs []float64, blocks int) ([]int, error) {
	if len(fracs) == 0 {
		return nil, fmt.Errorf("no level fractions")
	}
	sum := 0.0
	for _, f := range fracs {
		if f <= 0 {
			return nil, fmt.Errorf("level fraction %g, want > 0", f)
		}
		sum += f
	}
	sizes := make([]int, len(fracs))
	used := 0
	for i, f := range fracs {
		sizes[i] = int(f / sum * float64(blocks))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		used += sizes[i]
	}
	sizes[len(sizes)-1] += blocks - used
	if sizes[len(sizes)-1] < 1 {
		return nil, fmt.Errorf("too many levels (%d) for %d blocks", len(fracs), blocks)
	}
	return sizes, nil
}

// SplitPayloads slices data into `blocks` equal zero-padded payloads.
func SplitPayloads(data []byte, blocks int) [][]byte {
	payloadLen := (len(data) + blocks - 1) / blocks
	out := make([][]byte, blocks)
	for i := range out {
		out[i] = make([]byte, payloadLen)
		lo := i * payloadLen
		if lo < len(data) {
			hi := lo + payloadLen
			if hi > len(data) {
				hi = len(data)
			}
			copy(out[i], data[lo:hi])
		}
	}
	return out
}
