package cliutil

import (
	"bytes"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats(" 0.1, 0.2,0.7")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 0.7 {
		t.Fatalf("ParseFloats = %v", got)
	}
	if _, err := ParseFloats("1,x"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("4, 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 12 {
		t.Fatalf("ParseInts = %v", got)
	}
	if _, err := ParseInts("4,1.5"); err == nil {
		t.Fatal("float accepted as int")
	}
}

func TestSplitAddrs(t *testing.T) {
	got := SplitAddrs(" a:1 ,, b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("SplitAddrs = %v", got)
	}
}

func TestFractionsToSizes(t *testing.T) {
	sizes, err := FractionsToSizes([]float64{0.1, 0.2, 0.7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 100 || sizes[0] != 10 {
		t.Fatalf("FractionsToSizes = %v (sum %d)", sizes, sum)
	}
	if _, err := FractionsToSizes([]float64{1, 1, 1, 1}, 3); err == nil {
		t.Fatal("more levels than blocks accepted")
	}
	if _, err := FractionsToSizes([]float64{0, 1}, 10); err == nil {
		t.Fatal("zero fraction accepted")
	}
	// Tiny fractions round up to one block.
	sizes, err = FractionsToSizes([]float64{0.001, 0.999}, 10)
	if err != nil || sizes[0] != 1 {
		t.Fatalf("tiny fraction: %v, %v", sizes, err)
	}
}

func TestSplitPayloads(t *testing.T) {
	data := []byte("abcdefghij") // 10 bytes into 3 blocks of 4
	got := SplitPayloads(data, 3)
	if len(got) != 3 || len(got[0]) != 4 {
		t.Fatalf("SplitPayloads shape: %v", got)
	}
	if !bytes.Equal(got[0], []byte("abcd")) || !bytes.Equal(got[2], []byte("ij\x00\x00")) {
		t.Fatalf("SplitPayloads content: %q", got)
	}
}
