package gfmat

import (
	"math/rand"
	"testing"
)

// Tests for the sparse add path: AddSparse must be observationally
// identical to the dense oracle for any density, and must reject
// malformed index vectors instead of corrupting the elimination.

// sparsify converts a dense vector into its canonical sparse form.
func sparsify(coeff []byte) (idx []uint32, val []byte) {
	for j, v := range coeff {
		if v != 0 {
			idx = append(idx, uint32(j))
			val = append(val, v)
		}
	}
	return idx, val
}

// randomDensityBlocks generates blocks over n symbols whose nonzero
// pattern is either a contiguous band of the given width (bandWidth > 0)
// or i.i.d. with the given per-column density.
func randomDensityBlocks(rng *rand.Rand, symbols [][]byte, n, plen, count, bandWidth int, density float64) []levelBlock {
	blocks := make([]levelBlock, 0, count)
	for r := 0; r < count; r++ {
		coeff := make([]byte, n)
		if bandWidth > 0 {
			w := bandWidth
			if w > n {
				w = n
			}
			start := rng.Intn(n - w + 1)
			for j := start; j < start+w; j++ {
				coeff[j] = byte(1 + rng.Intn(255))
			}
		} else {
			for j := range coeff {
				if rng.Float64() < density {
					coeff[j] = byte(1 + rng.Intn(255))
				}
			}
		}
		blocks = append(blocks, levelBlock{coeff: coeff, payload: encodeWith(coeff, symbols, plen), bound: n})
	}
	return blocks
}

func TestAddSparseMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		n, plen, bandWidth int
		density            float64
	}{
		{n: 24, plen: 8, density: 0.1},
		{n: 24, plen: 8, density: 0.5},
		{n: 24, plen: 0, density: 1.0},
		{n: 40, plen: 5, bandWidth: 6},
		{n: 40, plen: 5, bandWidth: 1},
		{n: 7, plen: 3, density: 0.3},
	}
	for ci, tc := range cases {
		symbols := randomSymbols(rng, tc.n, tc.plen)
		blocks := randomDensityBlocks(rng, symbols, tc.n, tc.plen, 2*tc.n, tc.bandWidth, tc.density)
		sparse, err := NewDecoder(tc.n, tc.plen)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewDecoder(tc.n, tc.plen)
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range blocks {
			idx, val := sparsify(b.coeff)
			i1, err := sparse.AddSparse(idx, val, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := dense.AddRef(b.coeff, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			if i1 != i2 {
				t.Fatalf("case %d block %d: innovation sparse %v, dense %v", ci, bi, i1, i2)
			}
		}
		compareDecoders(t, sparse, dense, "sparse vs dense oracle")
		for i := 0; i < tc.n; i++ {
			if sparse.Decoded(i) {
				s, err := sparse.Symbol(i)
				if err != nil {
					t.Fatal(err)
				}
				if tc.plen > 0 && string(s) != string(symbols[i]) {
					t.Fatalf("case %d: symbol %d decoded wrong", ci, i)
				}
			}
		}
	}
}

// TestAddSparseInterleaved mixes all three add paths on one decoder — the
// representations must compose, since real decode feeds see dense v1
// frames and sparse v3 frames of the same generation interleaved.
func TestAddSparseInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n, plen := 30, 6
	symbols := randomSymbols(rng, n, plen)
	blocks := randomDensityBlocks(rng, symbols, n, plen, 3*n, 0, 0.3)
	mixed, _ := NewDecoder(n, plen)
	oracle, _ := NewDecoder(n, plen)
	for bi, b := range blocks {
		var i1 bool
		var err error
		switch bi % 3 {
		case 0:
			idx, val := sparsify(b.coeff)
			i1, err = mixed.AddSparse(idx, val, b.payload)
		case 1:
			i1, err = mixed.AddBounded(b.coeff, b.payload, b.bound)
		default:
			i1, err = mixed.AddRef(b.coeff, b.payload)
		}
		if err != nil {
			t.Fatal(err)
		}
		i2, err := oracle.AddRef(b.coeff, b.payload)
		if err != nil {
			t.Fatal(err)
		}
		if i1 != i2 {
			t.Fatalf("block %d: innovation mixed %v, oracle %v", bi, i1, i2)
		}
	}
	compareDecoders(t, mixed, oracle, "interleaved adds")
}

func TestAddSparseValidation(t *testing.T) {
	d, err := NewDecoder(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pay := []byte{1, 2}
	cases := []struct {
		name string
		idx  []uint32
		val  []byte
		pay  []byte
	}{
		{"length mismatch", []uint32{1, 2}, []byte{5}, pay},
		{"index out of range", []uint32{8}, []byte{5}, pay},
		{"index far out of range", []uint32{1 << 30}, []byte{5}, pay},
		{"duplicate index", []uint32{3, 3}, []byte{5, 6}, pay},
		{"decreasing index", []uint32{4, 2}, []byte{5, 6}, pay},
		{"payload mismatch", []uint32{1}, []byte{5}, []byte{9}},
	}
	for _, tc := range cases {
		if _, err := d.AddSparse(tc.idx, tc.val, tc.pay); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if d.Rank() != 0 {
		t.Fatalf("rejected adds changed rank to %d", d.Rank())
	}
	// The empty vector is a legal, linearly dependent block.
	innovative, err := d.AddSparse(nil, nil, pay)
	if err != nil || innovative {
		t.Fatalf("empty sparse vector: innovative=%v err=%v", innovative, err)
	}
	// Explicit zero values are tolerated: equivalent to the zero vector.
	innovative, err = d.AddSparse([]uint32{2, 5}, []byte{0, 0}, pay)
	if err != nil || innovative {
		t.Fatalf("all-zero sparse values: innovative=%v err=%v", innovative, err)
	}
}

// FuzzSparseDenseEquiv drives random-density and banded systems through
// AddSparse and the dense AddRef oracle and asserts they agree on every
// observable, with the raw-matrix rank as shared-nothing ground truth —
// the sparse analogue of FuzzDecoderEquivBatch.
func FuzzSparseDenseEquiv(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), uint8(64), uint8(0))
	f.Add(int64(2), uint8(9), uint8(0), uint8(255), uint8(0))
	f.Add(int64(3), uint8(32), uint8(3), uint8(0), uint8(5))
	f.Add(int64(4), uint8(5), uint8(8), uint8(10), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, plenRaw, densityRaw, bandRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%48)
		plen := int(plenRaw % 9)
		band := int(bandRaw % 9) // 0 = i.i.d. density, else band width
		density := float64(densityRaw) / 255
		symbols := randomSymbols(rng, n, plen)
		blocks := randomDensityBlocks(rng, symbols, n, plen, n+n/2+1, band, density)

		sparse, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := New(len(blocks), n)
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range blocks {
			idx, val := sparsify(b.coeff)
			i1, err := sparse.AddSparse(idx, val, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := dense.AddRef(b.coeff, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			if i1 != i2 {
				t.Fatalf("block %d: innovation sparse %v, dense %v", bi, i1, i2)
			}
			copy(raw.Row(bi), b.coeff)
		}
		if sparse.Rank() != raw.Rank() {
			t.Fatalf("rank: sparse %d, ground truth %d", sparse.Rank(), raw.Rank())
		}
		compareDecoders(t, sparse, dense, "fuzz sparse vs dense")
		for i := 0; i < n; i++ {
			if plen > 0 && sparse.Decoded(i) {
				s, err := sparse.Symbol(i)
				if err != nil {
					t.Fatal(err)
				}
				if string(s) != string(symbols[i]) {
					t.Fatalf("symbol %d decoded wrong", i)
				}
			}
		}
	})
}
