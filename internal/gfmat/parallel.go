package gfmat

import (
	"runtime"
	"sync"

	"repro/internal/gf256"
)

// Parallel payload pipeline. The coefficient-side elimination of an Add is
// inherently sequential — each row operation depends on the previous one's
// result — but every payload row operation it implies is elementwise:
// byte i of the output depends only on byte i of the inputs. Add therefore
// records the operations (fwdOps, backOps) while reducing coefficients and
// replays them on the payload side afterwards. For large payloads the
// replay is striped across a worker pool: each worker runs the complete
// operation chain — copy-in, forward folds, pivot normalization,
// back-substitution fan-out — restricted to its own byte range, so stripes
// never read or write each other's memory and the result is bit-identical
// to the sequential replay for any worker count. This mirrors the payload
// striping of core.ParallelEncoder one layer down.

// payloadStripeMin is the payload size below which striping is not worth
// the goroutine fan-out; smaller payloads replay sequentially.
const payloadStripeMin = 16 << 10

// payloadStripeAlign keeps stripe boundaries on 64-byte lines so the SIMD
// bulk of AddMulSlice stays aligned and workers don't false-share cache
// lines.
const payloadStripeAlign = 64

// SetPayloadWorkers configures the payload-striping pool: Add calls replay
// payload row operations across up to n goroutines when the payload length
// is at least payloadStripeMin bytes. n <= 0 selects GOMAXPROCS; n == 1
// restores the sequential replay. Decoded output is bit-identical for any
// setting. Not safe to call concurrently with Add.
func (d *Decoder) SetPayloadWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	d.workers = n
}

// PayloadWorkers returns the configured payload-striping pool size
// (0 = never configured, sequential).
func (d *Decoder) PayloadWorkers() int { return d.workers }

// applyPayload replays the recorded row operations of one innovative Add on
// the payload side: rp (the new row's arena payload, arriving zeroed) takes
// the reduced, normalized combination of the incoming payload and the
// forward-fold rows, then fans out into the back-substitution targets.
func (d *Decoder) applyPayload(rp, incoming []byte, inv byte) {
	plen := d.payloadLen
	if d.workers <= 1 || plen < payloadStripeMin {
		d.payloadStripe(rp, incoming, inv, 0, plen)
		return
	}
	stripe := (plen + d.workers - 1) / d.workers
	stripe = (stripe + payloadStripeAlign - 1) &^ (payloadStripeAlign - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < plen; lo += stripe {
		hi := lo + stripe
		if hi > plen {
			hi = plen
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			d.payloadStripe(rp, incoming, inv, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// payloadStripe runs the full payload operation chain restricted to byte
// range [lo, hi). Within the stripe the operations execute in the exact
// order the sequential algorithm would: forward folds read pre-existing row
// payloads before back-substitution writes any of them, and the
// back-substitution reads of rp see the stripe's fully reduced value.
func (d *Decoder) payloadStripe(rp, incoming []byte, inv byte, lo, hi int) {
	copy(rp[lo:hi], incoming[lo:hi])
	for _, op := range d.fwdOps {
		gf256.AddMulSlice(rp[lo:hi], d.rows[op.row].payload[lo:hi], op.v)
	}
	if inv != 1 {
		gf256.ScaleInPlace(rp[lo:hi], inv)
	}
	for _, op := range d.backOps {
		gf256.AddMulSlice(d.rows[op.row].payload[lo:hi], rp[lo:hi], op.v)
	}
}
