package gfmat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// ErrDimensionMismatch is returned when a row added to a Decoder does not
// match the decoder's symbol count or payload length.
var ErrDimensionMismatch = errors.New("gfmat: dimension mismatch")

// Decoder is an incremental Gauss–Jordan decoder. It consumes coded blocks
// (a coefficient vector over the unknown source symbols plus a payload) one
// at a time and keeps the accumulated coefficient matrix in reduced
// row-echelon form at all times, applying identical row operations to the
// payloads. This is exactly the progressive partial-decoding algorithm of
// Sec. 3.2: as soon as the first j rows of the RREF form the identity on
// the first j columns, the first j source symbols are decoded — no row
// pre-sorting required, since the RREF of a matrix is invariant under row
// permutation.
//
// The decoder exploits the coefficient structure the priority schemes
// guarantee by construction. Every stored row carries an active span
// [pivot, width): coefficients before the pivot and at or beyond width are
// known zero, so elimination kernels run only over the overlap of the two
// rows' spans. PLC rows are lower-triangular by blocks (zero beyond the
// block's level boundary) and callers pass that boundary via AddBounded,
// shrinking the per-row work from O(K) to O(level prefix); spans are
// maintained as rows combine, so the invariant holds for every linear
// combination the elimination produces.
//
// The zero value is not usable; construct with NewDecoder.
type Decoder struct {
	numSymbols int
	payloadLen int

	// pivotRow[c] is the index into rows of the row whose pivot is column c,
	// or -1 if no such row exists yet.
	pivotRow []int
	rows     []decRow

	// arena backs the committed rows: at most numSymbols innovative rows of
	// numSymbols+payloadLen bytes each, so one grow-once allocation covers
	// the decoder's lifetime.
	arena rowArena

	// scratchCoeff holds the incoming coefficient vector while it is reduced
	// against the existing pivots. Only rows that turn out innovative are
	// copied into the arena; dependent rows never touch it. scratchWidth is
	// the dirty prefix left behind by the previous Add, so bounded adds only
	// zero what was actually used. scratchPayload is used by the dense AddRef
	// reference path only; the structured path works on arena storage
	// directly and never copies a dependent block's payload at all.
	scratchCoeff   []byte
	scratchWidth   int
	scratchPayload []byte

	// fwdOps and backOps record, per Add, the row operations of the
	// coefficient-side elimination so the identical operations can be
	// replayed on the payload side afterwards — sequentially, or striped
	// across a worker pool for large payloads (see parallel.go). Payload work
	// for dependent (non-innovative) blocks is skipped entirely: the
	// coefficient reduction alone decides innovation.
	fwdOps  []payloadOp
	backOps []payloadOp

	// workers is the payload-striping pool size; see SetPayloadWorkers.
	workers int

	// decodedPrefix caches the length of the maximal decoded prefix; it only
	// ever grows. decodedCount tracks the number of solved (unit-vector) rows
	// incrementally, making DecodedCount O(1). Both rely on solved rows never
	// being touched again: a unit vector's only nonzero is its own pivot,
	// which can never coincide with a fresh pivot column.
	decodedPrefix int
	decodedCount  int
}

type decRow struct {
	coeff   []byte
	payload []byte
	pivot   int  // pivot column; coeff[:pivot] is all zero
	width   int  // upper bound on 1 + last nonzero column; coeff[width:] is all zero
	solved  bool // row is a unit vector: the symbol at pivot is decoded
}

// payloadOp is one deferred payload row operation: add v times row's payload
// (forward reduction) or add v times the new pivot payload into row
// (back-substitution).
type payloadOp struct {
	row int
	v   byte
}

// NewDecoder returns a decoder over numSymbols unknowns with payloads of
// payloadLen bytes. payloadLen may be zero when only rank/decodability is
// of interest (as in the Monte-Carlo experiments).
func NewDecoder(numSymbols, payloadLen int) (*Decoder, error) {
	if numSymbols <= 0 {
		return nil, fmt.Errorf("gfmat: NewDecoder: numSymbols %d, want > 0", numSymbols)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("gfmat: NewDecoder: negative payload length %d", payloadLen)
	}
	d := &Decoder{
		numSymbols:     numSymbols,
		payloadLen:     payloadLen,
		pivotRow:       make([]int, numSymbols),
		scratchCoeff:   make([]byte, numSymbols),
		scratchPayload: make([]byte, payloadLen),
	}
	d.arena.init(numSymbols+payloadLen, numSymbols)
	for i := range d.pivotRow {
		d.pivotRow[i] = -1
	}
	return d, nil
}

// NumSymbols returns the number of unknown source symbols.
func (d *Decoder) NumSymbols() int { return d.numSymbols }

// PayloadLen returns the payload length in bytes.
func (d *Decoder) PayloadLen() int { return d.payloadLen }

// Rank returns the current rank of the accumulated coefficient matrix,
// i.e. the number of innovative coded blocks absorbed so far.
func (d *Decoder) Rank() int { return len(d.rows) }

// Complete reports whether all source symbols are decoded.
func (d *Decoder) Complete() bool { return len(d.rows) == d.numSymbols }

// Add absorbs one coded block. It returns true if the block was innovative
// (increased the rank) and false if it was linearly dependent on previously
// absorbed blocks. The inputs are copied; the caller may reuse the slices.
func (d *Decoder) Add(coeff, payload []byte) (bool, error) {
	return d.AddBounded(coeff, payload, d.numSymbols)
}

// AddBounded absorbs one coded block whose coefficients are known by
// construction to be zero at and beyond column bound — the level boundary
// of a PLC block, or NumSymbols when nothing is known. The elimination then
// touches only the first bound columns (growing as wider pivot rows fold
// in), which is what makes structured decoding cheaper than dense: a
// low-level PLC block costs O(level prefix) instead of O(K).
//
// The bound is a caller promise, not re-checked here: a nonzero coefficient
// at or beyond bound silently corrupts the decoding. Callers that cannot
// guarantee the invariant must use Add, which assumes nothing.
func (d *Decoder) AddBounded(coeff, payload []byte, bound int) (bool, error) {
	if len(coeff) != d.numSymbols {
		return false, fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return false, fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}
	if bound < 0 || bound > d.numSymbols {
		return false, fmt.Errorf("%w: boundary %d outside [0, %d]",
			ErrDimensionMismatch, bound, d.numSymbols)
	}

	// Reduce into the reusable scratch row, zeroing only the prefix the
	// previous Add dirtied beyond this block's bound.
	c := d.scratchCoeff
	copy(c[:bound], coeff[:bound])
	if d.scratchWidth > bound {
		clear(c[bound:d.scratchWidth])
	}
	return d.eliminate(payload, 0, bound)
}

// AddSparse absorbs one coded block given as a sparse coefficient vector:
// strictly increasing positions idx with values val (zeros among the
// values are tolerated and ignored). The block is never densified by the
// caller — the decoder scatters the entries into its own scratch row and
// eliminates over [idx[0], idx[last]+1) only, so a block with d nonzeros
// in a width-w band costs O(w) instead of O(numSymbols) before any pivot
// rows fold in. An empty vector is linearly dependent by definition.
func (d *Decoder) AddSparse(idx []uint32, val, payload []byte) (bool, error) {
	if len(idx) != len(val) {
		return false, fmt.Errorf("%w: %d sparse indices with %d values",
			ErrDimensionMismatch, len(idx), len(val))
	}
	if len(payload) != d.payloadLen {
		return false, fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}
	prev := -1
	for _, j := range idx {
		if int(j) <= prev || int(j) >= d.numSymbols {
			return false, fmt.Errorf("%w: sparse index %d (after %d) outside strictly increasing [0, %d)",
				ErrDimensionMismatch, j, prev, d.numSymbols)
		}
		prev = int(j)
	}
	if len(idx) == 0 {
		return false, nil // zero vector: linearly dependent, payload skipped
	}
	c := d.scratchCoeff
	clear(c[:d.scratchWidth])
	gf256.ScatterAt(c, idx, val)
	lo := int(idx[0])
	hi := int(idx[len(idx)-1]) + 1
	d.scratchWidth = hi
	return d.eliminate(payload, lo, hi)
}

// eliminate reduces the block already staged in scratchCoeff — nonzero
// only within [lo, w), with the scratch dirty prefix set to at least w —
// against the existing pivot rows, commits it if innovative, and replays
// the recorded row operations on the payload. Shared tail of AddBounded
// and AddSparse.
func (d *Decoder) eliminate(payload []byte, lo, w int) (bool, error) {
	// Forward-reduce the incoming row against existing pivots. The active
	// width w grows when a wider pivot row folds in; columns already passed
	// stay final because a pivot row has no nonzeros before its pivot. The
	// first nonzero column with no pivot row is the new pivot; reduction
	// continues past it so the row ends up with zeros at every existing
	// pivot column (the RREF invariant for the new row). Zero runs — the
	// common case for sparse and banded rows, where most columns between
	// the endpoints never light up — are skipped a word at a time.
	c := d.scratchCoeff
	pivot := -1
	d.fwdOps = d.fwdOps[:0]
	for col := lo; col < w; col++ {
		v := c[col]
		if v == 0 {
			nz := gf256.NextNonzero(c[:w], col+1)
			if nz >= w {
				break
			}
			col = nz
			v = c[col]
		}
		ri := d.pivotRow[col]
		if ri < 0 {
			if pivot < 0 {
				pivot = col
			}
			continue
		}
		r := &d.rows[ri]
		rw := r.width
		gf256.AddMulSlice(c[col:rw], r.coeff[col:rw], v)
		if rw > w {
			w = rw
		}
		if d.payloadLen > 0 {
			d.fwdOps = append(d.fwdOps, payloadOp{row: ri, v: v})
		}
	}
	d.scratchWidth = w
	if pivot < 0 {
		return false, nil // linearly dependent; payload work skipped entirely
	}

	// Trim trailing zeros so the stored span is as tight as the data allows
	// — combinations of same-level PLC rows stay within the level boundary
	// even when the caller passed no bound.
	for w > pivot+1 && c[w-1] == 0 {
		w--
	}

	inv, err := gf256.Inv(c[pivot])
	if err != nil {
		return false, fmt.Errorf("gfmat: normalize pivot: %w", err)
	}
	gf256.ScaleInPlace(c[pivot:w], inv)

	// Commit the innovative row: slice its storage out of the arena
	// (coefficients and payload adjacent for locality) and copy the reduced
	// span in; the arena row arrives zeroed.
	if cap(d.rows) == 0 {
		d.rows = make([]decRow, 0, d.numSymbols)
	}
	row := d.arena.alloc()
	rc := row[:d.numSymbols:d.numSymbols]
	rp := row[d.numSymbols:]
	copy(rc[pivot:w], c[pivot:w])
	// After the trailing trim, rc[w-1] != 0 — so the new row is a unit
	// vector exactly when its span is the single pivot byte.
	solved := w == pivot+1

	// Back-substitute: eliminate this pivot column from every existing row
	// so the matrix stays in RREF. Only rows whose span reaches the pivot
	// can hold a nonzero there, and the update touches columns [pivot, w)
	// only. A touched row keeps coeff[r.pivot] == 1 (the fresh pivot is a
	// different column) and zeros before it, so it became solved exactly
	// when the rest of its span drained to zero — an early-exit word scan
	// instead of the old full-row countNonzero per touch.
	newIdx := len(d.rows)
	d.backOps = d.backOps[:0]
	for i := range d.rows {
		r := &d.rows[i]
		if r.width <= pivot {
			continue
		}
		v := r.coeff[pivot]
		if v == 0 {
			continue
		}
		gf256.AddMulSlice(r.coeff[pivot:w], rc[pivot:w], v)
		if w > r.width {
			r.width = w
		}
		// Solved rows are never touched again (their only nonzero is their
		// own pivot), so this transition fires at most once per row.
		if !r.solved && isZeroRange(r.coeff[r.pivot+1:r.width]) {
			r.solved = true
			r.width = r.pivot + 1
			d.decodedCount++
		}
		if d.payloadLen > 0 {
			d.backOps = append(d.backOps, payloadOp{row: i, v: v})
		}
	}
	d.rows = append(d.rows, decRow{coeff: rc, payload: rp, pivot: pivot, width: w, solved: solved})
	d.pivotRow[pivot] = newIdx
	if solved {
		d.decodedCount++
	}

	// Replay the recorded row operations on the payload side — the identical
	// linear combination, applied once, optionally striped across workers.
	if d.payloadLen > 0 {
		d.applyPayload(rp, payload, inv)
	}

	d.advancePrefix()
	return true, nil
}

// AddRef absorbs one coded block via the dense, structure-blind elimination
// the structured path replaced: full-width row operations, a full-row
// nonzero rescan after every back-substitution touch, no payload deferral.
// It maintains exactly the same decoder state (interleaving Add and AddRef
// is legal) and exists as the reference oracle for differential tests and
// as the baseline side of the dense-vs-truncated decode benchmarks —
// mirroring AddMulSliceRef one layer down.
func (d *Decoder) AddRef(coeff, payload []byte) (bool, error) {
	if len(coeff) != d.numSymbols {
		return false, fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return false, fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}

	c := d.scratchCoeff
	copy(c, coeff)
	d.scratchWidth = d.numSymbols
	p := d.scratchPayload
	copy(p, payload)

	for col := 0; col < d.numSymbols; col++ {
		v := c[col]
		if v == 0 {
			continue
		}
		ri := d.pivotRow[col]
		if ri < 0 {
			continue
		}
		r := &d.rows[ri]
		gf256.AddMulSlice(c, r.coeff, v)
		gf256.AddMulSlice(p, r.payload, v)
	}

	pivot := -1
	for col, v := range c {
		if v != 0 {
			pivot = col
			break
		}
	}
	if pivot < 0 {
		return false, nil
	}

	inv, err := gf256.Inv(c[pivot])
	if err != nil {
		return false, fmt.Errorf("gfmat: normalize pivot: %w", err)
	}
	gf256.ScaleInPlace(c, inv)
	gf256.ScaleInPlace(p, inv)

	if cap(d.rows) == 0 {
		d.rows = make([]decRow, 0, d.numSymbols)
	}
	row := d.arena.alloc()
	rc := row[:d.numSymbols:d.numSymbols]
	rp := row[d.numSymbols:]
	copy(rc, c)
	copy(rp, p)

	newIdx := len(d.rows)
	for i := range d.rows {
		r := &d.rows[i]
		if v := r.coeff[pivot]; v != 0 {
			gf256.AddMulSlice(r.coeff, rc, v)
			gf256.AddMulSlice(r.payload, rp, v)
			r.width = d.numSymbols
			if !r.solved && countNonzeroRange(r.coeff) == 1 {
				r.solved = true
				d.decodedCount++
			}
		}
	}
	solved := countNonzeroRange(rc) == 1
	d.rows = append(d.rows, decRow{coeff: rc, payload: rp, pivot: pivot, width: d.numSymbols, solved: solved})
	d.pivotRow[pivot] = newIdx
	if solved {
		d.decodedCount++
	}

	d.advancePrefix()
	return true, nil
}

// isZeroRange reports whether every byte of v is zero, a word at a time
// with early exit — the hot check that tells a back-substituted row it has
// collapsed to a unit vector.
func isZeroRange(v []byte) bool {
	i := 0
	for ; i+8 <= len(v); i += 8 {
		if binary.LittleEndian.Uint64(v[i:]) != 0 {
			return false
		}
	}
	for ; i < len(v); i++ {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// countNonzeroRange counts the nonzero bytes of v, skipping zero regions a
// word at a time — the common case inside an RREF row's span.
func countNonzeroRange(v []byte) int {
	n := 0
	i := 0
	for ; i+8 <= len(v); i += 8 {
		if binary.LittleEndian.Uint64(v[i:]) == 0 {
			continue
		}
		for _, x := range v[i : i+8] {
			if x != 0 {
				n++
			}
		}
	}
	for ; i < len(v); i++ {
		if v[i] != 0 {
			n++
		}
	}
	return n
}

// advancePrefix extends the cached decoded-prefix pointer. A symbol i is in
// the decoded prefix when its pivot row exists and is a unit vector.
func (d *Decoder) advancePrefix() {
	for d.decodedPrefix < d.numSymbols {
		ri := d.pivotRow[d.decodedPrefix]
		if ri < 0 || !d.rows[ri].solved {
			return
		}
		d.decodedPrefix++
	}
}

// DecodedPrefix returns the length of the maximal prefix of source symbols
// that is fully decoded — the quantity progressive (PLC) decoding cares
// about.
func (d *Decoder) DecodedPrefix() int { return d.decodedPrefix }

// Decoded reports whether source symbol i is individually decoded (its
// pivot row is a unit vector). Symbols outside the decoded prefix can still
// be decoded, e.g. under SLC where levels decode independently.
func (d *Decoder) Decoded(i int) bool {
	if i < 0 || i >= d.numSymbols {
		return false
	}
	ri := d.pivotRow[i]
	return ri >= 0 && d.rows[ri].solved
}

// DecodedCount returns the number of individually decoded source symbols.
// The count is maintained incrementally, so this is O(1).
func (d *Decoder) DecodedCount() int { return d.decodedCount }

// Symbol returns the decoded payload of source symbol i, or an error if the
// symbol is not yet decoded. The returned slice is a copy.
func (d *Decoder) Symbol(i int) ([]byte, error) {
	if !d.Decoded(i) {
		return nil, fmt.Errorf("gfmat: symbol %d is not decoded (rank %d/%d)", i, d.Rank(), d.numSymbols)
	}
	out := make([]byte, d.payloadLen)
	copy(out, d.rows[d.pivotRow[i]].payload)
	return out, nil
}

// Symbols returns all decoded payloads, indexed by symbol; entries for
// undecoded symbols are nil.
func (d *Decoder) Symbols() [][]byte {
	out := make([][]byte, d.numSymbols)
	for i := range out {
		if d.Decoded(i) {
			s, err := d.Symbol(i)
			if err == nil {
				out[i] = s
			}
		}
	}
	return out
}

// CoefficientMatrix returns a copy of the current (RREF) coefficient matrix,
// one row per innovative block absorbed, mainly for tests and debugging.
func (d *Decoder) CoefficientMatrix() (*Matrix, error) {
	m, err := New(len(d.rows), d.numSymbols)
	if err != nil {
		return nil, fmt.Errorf("gfmat: CoefficientMatrix: %w", err)
	}
	// Emit rows in pivot order so the result is literally in RREF.
	i := 0
	for col := 0; col < d.numSymbols; col++ {
		if ri := d.pivotRow[col]; ri >= 0 {
			copy(m.Row(i), d.rows[ri].coeff)
			i++
		}
	}
	return m, nil
}
