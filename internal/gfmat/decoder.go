package gfmat

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// ErrDimensionMismatch is returned when a row added to a Decoder does not
// match the decoder's symbol count or payload length.
var ErrDimensionMismatch = errors.New("gfmat: dimension mismatch")

// Decoder is an incremental Gauss–Jordan decoder. It consumes coded blocks
// (a coefficient vector over the unknown source symbols plus a payload) one
// at a time and keeps the accumulated coefficient matrix in reduced
// row-echelon form at all times, applying identical row operations to the
// payloads. This is exactly the progressive partial-decoding algorithm of
// Sec. 3.2: as soon as the first j rows of the RREF form the identity on
// the first j columns, the first j source symbols are decoded — no row
// pre-sorting required, since the RREF of a matrix is invariant under row
// permutation.
//
// The zero value is not usable; construct with NewDecoder.
type Decoder struct {
	numSymbols int
	payloadLen int

	// pivotRow[c] is the index into rows of the row whose pivot is column c,
	// or -1 if no such row exists yet.
	pivotRow []int
	rows     []decRow

	// arena backs the committed rows: at most numSymbols innovative rows of
	// numSymbols+payloadLen bytes each, so one grow-once allocation covers
	// the decoder's lifetime.
	arena rowArena

	// scratchCoeff/scratchPayload hold the incoming row while it is reduced
	// against the existing pivots. Only rows that turn out innovative are
	// copied into the arena; dependent rows never touch it.
	scratchCoeff   []byte
	scratchPayload []byte

	// decodedPrefix caches the length of the maximal decoded prefix; it only
	// ever grows.
	decodedPrefix int
}

type decRow struct {
	coeff   []byte
	payload []byte
	pivot   int // pivot column
	nnz     int // number of nonzero coefficients; nnz==1 means the symbol at pivot is solved
}

// NewDecoder returns a decoder over numSymbols unknowns with payloads of
// payloadLen bytes. payloadLen may be zero when only rank/decodability is
// of interest (as in the Monte-Carlo experiments).
func NewDecoder(numSymbols, payloadLen int) (*Decoder, error) {
	if numSymbols <= 0 {
		return nil, fmt.Errorf("gfmat: NewDecoder: numSymbols %d, want > 0", numSymbols)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("gfmat: NewDecoder: negative payload length %d", payloadLen)
	}
	d := &Decoder{
		numSymbols:     numSymbols,
		payloadLen:     payloadLen,
		pivotRow:       make([]int, numSymbols),
		scratchCoeff:   make([]byte, numSymbols),
		scratchPayload: make([]byte, payloadLen),
	}
	d.arena.init(numSymbols+payloadLen, numSymbols)
	for i := range d.pivotRow {
		d.pivotRow[i] = -1
	}
	return d, nil
}

// NumSymbols returns the number of unknown source symbols.
func (d *Decoder) NumSymbols() int { return d.numSymbols }

// PayloadLen returns the payload length in bytes.
func (d *Decoder) PayloadLen() int { return d.payloadLen }

// Rank returns the current rank of the accumulated coefficient matrix,
// i.e. the number of innovative coded blocks absorbed so far.
func (d *Decoder) Rank() int { return len(d.rows) }

// Complete reports whether all source symbols are decoded.
func (d *Decoder) Complete() bool { return len(d.rows) == d.numSymbols }

// Add absorbs one coded block. It returns true if the block was innovative
// (increased the rank) and false if it was linearly dependent on previously
// absorbed blocks. The inputs are copied; the caller may reuse the slices.
func (d *Decoder) Add(coeff, payload []byte) (bool, error) {
	if len(coeff) != d.numSymbols {
		return false, fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return false, fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}

	// Reduce into the reusable scratch row: a dependent (non-innovative)
	// block is discarded without ever allocating or copying into the arena.
	c := d.scratchCoeff
	copy(c, coeff)
	p := d.scratchPayload
	copy(p, payload)

	// Forward-reduce the incoming row against existing pivots.
	for col := 0; col < d.numSymbols; col++ {
		v := c[col]
		if v == 0 {
			continue
		}
		ri := d.pivotRow[col]
		if ri < 0 {
			continue
		}
		r := &d.rows[ri]
		gf256.AddMulSlice(c, r.coeff, v)
		gf256.AddMulSlice(p, r.payload, v)
	}

	// Locate the new pivot.
	pivot := -1
	for col, v := range c {
		if v != 0 {
			pivot = col
			break
		}
	}
	if pivot < 0 {
		return false, nil // linearly dependent
	}

	// Normalize so the pivot is 1.
	inv, err := gf256.Inv(c[pivot])
	if err != nil {
		return false, fmt.Errorf("gfmat: normalize pivot: %w", err)
	}
	gf256.ScaleInPlace(c, inv)
	gf256.ScaleInPlace(p, inv)

	// Commit the innovative row: slice its storage out of the arena
	// (coefficients and payload adjacent for locality) and copy the reduced
	// scratch row in.
	if cap(d.rows) == 0 {
		d.rows = make([]decRow, 0, d.numSymbols)
	}
	row := d.arena.alloc()
	rc := row[:d.numSymbols:d.numSymbols]
	rp := row[d.numSymbols:]
	copy(rc, c)
	copy(rp, p)

	// Back-substitute: eliminate this pivot column from every existing row
	// so the matrix stays in RREF.
	newIdx := len(d.rows)
	for i := range d.rows {
		r := &d.rows[i]
		if v := r.coeff[pivot]; v != 0 {
			gf256.AddMulSlice(r.coeff, rc, v)
			gf256.AddMulSlice(r.payload, rp, v)
			r.nnz = countNonzero(r.coeff)
		}
	}
	d.rows = append(d.rows, decRow{coeff: rc, payload: rp, pivot: pivot, nnz: countNonzero(rc)})
	d.pivotRow[pivot] = newIdx

	d.advancePrefix()
	return true, nil
}

func countNonzero(v []byte) int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

// advancePrefix extends the cached decoded-prefix pointer. A symbol i is in
// the decoded prefix when its pivot row exists and is a unit vector.
func (d *Decoder) advancePrefix() {
	for d.decodedPrefix < d.numSymbols {
		ri := d.pivotRow[d.decodedPrefix]
		if ri < 0 || d.rows[ri].nnz != 1 {
			return
		}
		d.decodedPrefix++
	}
}

// DecodedPrefix returns the length of the maximal prefix of source symbols
// that is fully decoded — the quantity progressive (PLC) decoding cares
// about.
func (d *Decoder) DecodedPrefix() int { return d.decodedPrefix }

// Decoded reports whether source symbol i is individually decoded (its
// pivot row is a unit vector). Symbols outside the decoded prefix can still
// be decoded, e.g. under SLC where levels decode independently.
func (d *Decoder) Decoded(i int) bool {
	if i < 0 || i >= d.numSymbols {
		return false
	}
	ri := d.pivotRow[i]
	return ri >= 0 && d.rows[ri].nnz == 1
}

// DecodedCount returns the number of individually decoded source symbols.
func (d *Decoder) DecodedCount() int {
	n := 0
	for i := 0; i < d.numSymbols; i++ {
		if d.Decoded(i) {
			n++
		}
	}
	return n
}

// Symbol returns the decoded payload of source symbol i, or an error if the
// symbol is not yet decoded. The returned slice is a copy.
func (d *Decoder) Symbol(i int) ([]byte, error) {
	if !d.Decoded(i) {
		return nil, fmt.Errorf("gfmat: symbol %d is not decoded (rank %d/%d)", i, d.Rank(), d.numSymbols)
	}
	out := make([]byte, d.payloadLen)
	copy(out, d.rows[d.pivotRow[i]].payload)
	return out, nil
}

// Symbols returns all decoded payloads, indexed by symbol; entries for
// undecoded symbols are nil.
func (d *Decoder) Symbols() [][]byte {
	out := make([][]byte, d.numSymbols)
	for i := range out {
		if d.Decoded(i) {
			s, err := d.Symbol(i)
			if err == nil {
				out[i] = s
			}
		}
	}
	return out
}

// CoefficientMatrix returns a copy of the current (RREF) coefficient matrix,
// one row per innovative block absorbed, mainly for tests and debugging.
func (d *Decoder) CoefficientMatrix() *Matrix {
	m, err := New(len(d.rows), d.numSymbols)
	if err != nil {
		return nil
	}
	// Emit rows in pivot order so the result is literally in RREF.
	i := 0
	for col := 0; col < d.numSymbols; col++ {
		if ri := d.pivotRow[col]; ri >= 0 {
			copy(m.Row(i), d.rows[ri].coeff)
			i++
		}
	}
	return m
}
