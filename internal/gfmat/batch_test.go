package gfmat

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestNewBatchDecoderValidation(t *testing.T) {
	if _, err := NewBatchDecoder(0, 4); err == nil {
		t.Error("numSymbols=0 accepted")
	}
	if _, err := NewBatchDecoder(4, -1); err == nil {
		t.Error("negative payload length accepted")
	}
}

func TestBatchAddValidation(t *testing.T) {
	d, err := NewBatchDecoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]byte{1}, []byte{0, 0}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short coeff: %v", err)
	}
	if err := d.Add([]byte{1, 2, 3}, []byte{0}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short payload: %v", err)
	}
	if d.Buffered() != 0 {
		t.Error("rejected blocks buffered")
	}
}

func TestBatchSolveUnderdetermined(t *testing.T) {
	d, err := NewBatchDecoder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]byte{1, 2, 3}, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Solve(); err == nil {
		t.Error("underdetermined Solve succeeded — batch decoding must be all-or-nothing")
	}
}

func TestBatchSolveSingular(t *testing.T) {
	d, err := NewBatchDecoder(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three dependent rows: rank 1.
	for i := 0; i < 3; i++ {
		row := []byte{1, 2}
		if i > 0 {
			MulSliceForTest(row, byte(2*i))
		}
		if err := d.Add(row, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Solve(); err == nil {
		t.Error("singular Solve succeeded")
	}
}

// MulSliceForTest scales a row in place for test setup.
func MulSliceForTest(v []byte, c byte) {
	tmp := make([]byte, len(v))
	copy(tmp, v)
	for i := range v {
		v[i] = mulRef(tmp[i], c)
	}
}

func TestBatchSolveMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	const n, plen = 24, 8
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	batch, err := NewBatchDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n+4; i++ {
		coeff := make([]byte, n)
		rng.Read(coeff)
		payload := encodeWith(coeff, symbols, plen)
		if err := batch.Add(coeff, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Add(coeff, payload); err != nil {
			t.Fatal(err)
		}
	}
	if !inc.Complete() {
		t.Fatal("incremental decoder incomplete")
	}
	solved, err := batch.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if !bytes.Equal(solved[i], symbols[i]) {
			t.Fatalf("batch symbol %d wrong", i)
		}
		fromInc, err := inc.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(solved[i], fromInc) {
			t.Fatalf("batch and incremental disagree at %d", i)
		}
	}
}

func TestBatchSolveIsRerunnable(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n = 6
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = []byte{byte(i + 1)}
	}
	d, err := NewBatchDecoder(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		coeff := make([]byte, n)
		rng.Read(coeff)
		if err := d.Add(coeff, encodeWith(coeff, symbols, 1)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := d.Solve()
	if err != nil {
		t.Skip("rank-deficient draw; deterministic seed avoids this in practice")
	}
	second, err := d.Solve()
	if err != nil {
		t.Fatalf("second Solve failed: %v", err)
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatal("Solve is not idempotent")
		}
	}
}

// BenchmarkBatchVsIncremental quantifies the Sec. 3.2 tradeoff: batch
// Gaussian elimination is faster when all blocks are present, but only the
// incremental Gauss–Jordan decoder yields partial results.
func BenchmarkBatchDecode256(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	const n, plen = 256, 64
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	coeffs := make([][]byte, n+8)
	payloads := make([][]byte, n+8)
	for i := range coeffs {
		coeffs[i] = make([]byte, n)
		rng.Read(coeffs[i])
		payloads[i] = encodeWith(coeffs[i], symbols, plen)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewBatchDecoder(n, plen)
		if err != nil {
			b.Fatal(err)
		}
		for j := range coeffs {
			if err := d.Add(coeffs[j], payloads[j]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := d.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
