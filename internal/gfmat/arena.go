package gfmat

// Row arenas. Both decoders used to allocate two fresh slices per absorbed
// block; at production block counts the garbage collector ends up doing a
// measurable share of the decode work. The arenas below hand out rows
// sliced from large backing arrays instead. Rows are never reallocated once
// handed out, so slices into an arena stay valid for the arena's lifetime.

// rowArena is a grow-once arena: one backing []byte sized for a fixed
// maximum number of rows, allocated lazily on the first request. The
// incremental Decoder uses it — it commits at most numSymbols innovative
// rows, so the bound is known up front.
type rowArena struct {
	rowLen  int
	maxRows int
	buf     []byte
	used    int
}

// init configures the arena without allocating. rowLen == 0 is permitted
// (payload-free decoders); alloc then returns empty, non-nil rows.
func (a *rowArena) init(rowLen, maxRows int) {
	a.rowLen = rowLen
	a.maxRows = maxRows
}

// alloc returns the next row, a zeroed slice of rowLen bytes with full
// capacity clamped so appends cannot bleed into the neighboring row.
func (a *rowArena) alloc() []byte {
	if a.buf == nil {
		a.buf = make([]byte, a.maxRows*a.rowLen)
	}
	row := a.buf[a.used : a.used+a.rowLen : a.used+a.rowLen]
	a.used += a.rowLen
	return row
}

// chunkArena is the unbounded-variant for BatchDecoder, which may buffer
// arbitrarily many redundant blocks: rows are carved out of fixed-size
// chunks, and a fresh chunk is allocated when the current one runs out.
// Previously handed-out rows always stay valid — exhausted chunks are left
// alone, only the arena's current-chunk pointer moves on.
type chunkArena struct {
	rowLen    int
	chunkRows int
	cur       []byte
	off       int
}

func (a *chunkArena) init(rowLen, chunkRows int) {
	a.rowLen = rowLen
	if chunkRows < 1 {
		chunkRows = 1
	}
	a.chunkRows = chunkRows
}

// alloc returns the next zeroed row, starting a new chunk when needed.
func (a *chunkArena) alloc() []byte {
	if a.rowLen == 0 {
		return []byte{}
	}
	if a.off+a.rowLen > len(a.cur) {
		a.cur = make([]byte, a.chunkRows*a.rowLen)
		a.off = 0
	}
	row := a.cur[a.off : a.off+a.rowLen : a.off+a.rowLen]
	a.off += a.rowLen
	return row
}
