package gfmat

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// Tests for the structure-aware decode path: level-truncated rows
// (AddBounded), the dense reference oracle (AddRef), incremental
// nnz/DecodedCount bookkeeping, and the striped payload pipeline.

// levelBlock is one synthetic level-structured coded block: coefficients
// supported on [lo, hi), so hi doubles as the AddBounded boundary hint.
type levelBlock struct {
	coeff   []byte
	payload []byte
	bound   int
}

// randomLevelBlocks generates level-structured blocks over n symbols split
// into nLevels equal levels: per level, rowsPerLevel rows shaped either
// like PLC (support [0, b_k)) or like SLC (support [b_{k-1}, b_k)),
// shuffled so decoders see levels interleaved. n must be a multiple of
// nLevels.
func randomLevelBlocks(rng *rand.Rand, symbols [][]byte, n, nLevels, plen, rowsPerLevel int, slcShaped bool) []levelBlock {
	per := n / nLevels
	var blocks []levelBlock
	for lvl := 0; lvl < nLevels; lvl++ {
		lo, hi := lvl*per, (lvl+1)*per
		if !slcShaped {
			lo = 0
		}
		for r := 0; r < rowsPerLevel; r++ {
			coeff := make([]byte, n)
			for j := lo; j < hi; j++ {
				coeff[j] = byte(rng.Intn(256))
			}
			blocks = append(blocks, levelBlock{coeff: coeff, payload: encodeWith(coeff, symbols, plen), bound: hi})
		}
	}
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	return blocks
}

func randomSymbols(rng *rand.Rand, n, plen int) [][]byte {
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	return symbols
}

// compareDecoders asserts two decoders that absorbed the same blocks agree
// on every observable: rank, prefix, per-symbol decodability and value, and
// the RREF coefficient matrix itself.
func compareDecoders(t *testing.T, a, b *Decoder, label string) {
	t.Helper()
	if a.Rank() != b.Rank() {
		t.Fatalf("%s: rank %d vs %d", label, a.Rank(), b.Rank())
	}
	if a.DecodedPrefix() != b.DecodedPrefix() {
		t.Fatalf("%s: prefix %d vs %d", label, a.DecodedPrefix(), b.DecodedPrefix())
	}
	if a.DecodedCount() != b.DecodedCount() {
		t.Fatalf("%s: decoded count %d vs %d", label, a.DecodedCount(), b.DecodedCount())
	}
	for i := 0; i < a.NumSymbols(); i++ {
		if a.Decoded(i) != b.Decoded(i) {
			t.Fatalf("%s: Decoded(%d) %v vs %v", label, i, a.Decoded(i), b.Decoded(i))
		}
		if a.Decoded(i) {
			sa, err := a.Symbol(i)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := b.Symbol(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sa, sb) {
				t.Fatalf("%s: symbol %d differs", label, i)
			}
		}
	}
	ma, err := a.CoefficientMatrix()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.CoefficientMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Equal(mb) {
		t.Fatalf("%s: coefficient matrices differ:\n%s\nvs\n%s", label, ma, mb)
	}
}

// TestAddBoundedMatchesAdd: feeding the same level-structured blocks with
// and without boundary hints must produce identical decoder state — the
// hints are a performance lever, never a semantic one.
func TestAddBoundedMatchesAdd(t *testing.T) {
	for _, slcShaped := range []bool{false, true} {
		rng := rand.New(rand.NewSource(31))
		const n, nLevels, plen = 12, 3, 5
		symbols := randomSymbols(rng, n, plen)
		blocks := randomLevelBlocks(rng, symbols, n, nLevels, plen, n/nLevels+2, slcShaped)

		plain, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		hinted, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			i1, err := plain.Add(b.coeff, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := hinted.AddBounded(b.coeff, b.payload, b.bound)
			if err != nil {
				t.Fatal(err)
			}
			if i1 != i2 {
				t.Fatalf("innovation disagrees: %v vs %v", i1, i2)
			}
		}
		label := "plc-shaped"
		if slcShaped {
			label = "slc-shaped"
		}
		compareDecoders(t, plain, hinted, label)
		if !plain.Complete() {
			t.Fatalf("%s: system should be complete (rank %d/%d)", label, plain.Rank(), n)
		}
	}
}

// TestAddRefMatchesAdd: the dense reference path and the structured path
// must maintain identical state, including under interleaving.
func TestAddRefMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n, nLevels, plen = 12, 4, 3
	symbols := randomSymbols(rng, n, plen)
	blocks := randomLevelBlocks(rng, symbols, n, nLevels, plen, n/nLevels+2, false)

	structured, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if _, err := structured.AddBounded(b.coeff, b.payload, b.bound); err != nil {
			t.Fatal(err)
		}
		if _, err := dense.AddRef(b.coeff, b.payload); err != nil {
			t.Fatal(err)
		}
		var err error
		if i%2 == 0 {
			_, err = mixed.AddBounded(b.coeff, b.payload, b.bound)
		} else {
			_, err = mixed.AddRef(b.coeff, b.payload)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	compareDecoders(t, structured, dense, "structured vs dense")
	compareDecoders(t, structured, mixed, "structured vs interleaved")
}

func TestAddBoundedValidation(t *testing.T) {
	d, err := NewDecoder(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	coeff := []byte{1, 2, 3, 4}
	if _, err := d.AddBounded(coeff, nil, -1); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := d.AddBounded(coeff, nil, 5); err == nil {
		t.Error("bound beyond numSymbols accepted")
	}
	if _, err := d.AddBounded(coeff, nil, 4); err != nil {
		t.Errorf("bound == numSymbols rejected: %v", err)
	}
	// A zero bound is a legal (if useless) promise: the block is all-zero.
	if innov, err := d.AddBounded(make([]byte, 4), nil, 0); err != nil || innov {
		t.Errorf("zero bound: innovative=%v err=%v, want false, nil", innov, err)
	}
}

// TestDecodedCountIncremental cross-checks the O(1) counter against a brute
// recount after every absorbed block.
func TestDecodedCountIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n, nLevels = 10, 5
	symbols := randomSymbols(rng, n, 0)
	blocks := randomLevelBlocks(rng, symbols, n, nLevels, 0, n/nLevels+1, true)
	d, err := NewDecoder(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := d.AddBounded(b.coeff, b.payload, b.bound); err != nil {
			t.Fatal(err)
		}
		brute := 0
		for i := 0; i < n; i++ {
			if d.Decoded(i) {
				brute++
			}
		}
		if got := d.DecodedCount(); got != brute {
			t.Fatalf("DecodedCount = %d, brute recount = %d", got, brute)
		}
	}
}

// TestPayloadWorkersBitIdentical: with payloads above the striping
// threshold, decoded output must be byte-identical for any worker count.
func TestPayloadWorkersBitIdentical(t *testing.T) {
	const n, nLevels, plen = 6, 3, payloadStripeMin + 777
	rng := rand.New(rand.NewSource(34))
	symbols := randomSymbols(rng, n, plen)
	blocks := randomLevelBlocks(rng, symbols, n, nLevels, plen, n/nLevels+1, false)

	decode := func(workers int) *Decoder {
		d, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		if workers != 0 {
			d.SetPayloadWorkers(workers)
		}
		for _, b := range blocks {
			if _, err := d.AddBounded(b.coeff, b.payload, b.bound); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	base := decode(1)
	if !base.Complete() {
		t.Fatalf("system incomplete: rank %d/%d", base.Rank(), n)
	}
	for i := range symbols {
		got, err := base.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, symbols[i]) {
			t.Fatalf("symbol %d decoded incorrectly", i)
		}
	}
	for _, workers := range []int{0, 2, 3, 7} {
		compareDecoders(t, base, decode(workers), "sequential vs striped")
	}
}

func TestSetPayloadWorkersDefaults(t *testing.T) {
	d, err := NewDecoder(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.PayloadWorkers(); got != 0 {
		t.Errorf("fresh decoder PayloadWorkers = %d, want 0", got)
	}
	d.SetPayloadWorkers(0)
	if got := d.PayloadWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetPayloadWorkers(0): PayloadWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	d.SetPayloadWorkers(3)
	if got := d.PayloadWorkers(); got != 3 {
		t.Errorf("SetPayloadWorkers(3): PayloadWorkers = %d", got)
	}
}

// TestCoefficientMatrixEmpty guards the satellite fix: an empty decoder
// yields a valid zero-row matrix, not a silent nil.
func TestCoefficientMatrixEmpty(t *testing.T) {
	d, err := NewDecoder(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.CoefficientMatrix()
	if err != nil {
		t.Fatalf("CoefficientMatrix on empty decoder: %v", err)
	}
	if m == nil {
		t.Fatal("CoefficientMatrix returned nil matrix without error")
	}
	if m.Rows() != 0 || m.Cols() != 3 {
		t.Errorf("dims = %dx%d, want 0x3", m.Rows(), m.Cols())
	}
}

// TestBatchAddBoundedSolveMatchesDense: the truncated batch elimination
// must solve to the same payloads as the dense one.
func TestBatchAddBoundedSolveMatchesDense(t *testing.T) {
	for _, slcShaped := range []bool{false, true} {
		rng := rand.New(rand.NewSource(35))
		const n, nLevels, plen = 12, 3, 4
		symbols := randomSymbols(rng, n, plen)
		blocks := randomLevelBlocks(rng, symbols, n, nLevels, plen, n/nLevels+2, slcShaped)

		bounded, err := NewBatchDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewBatchDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if err := bounded.AddBounded(b.coeff, b.payload, b.bound); err != nil {
				t.Fatal(err)
			}
			if err := dense.Add(b.coeff, b.payload); err != nil {
				t.Fatal(err)
			}
		}
		sb, err := bounded.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sd, err := dense.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for i := range symbols {
			if !bytes.Equal(sb[i], symbols[i]) {
				t.Fatalf("bounded solve: symbol %d wrong", i)
			}
			if !bytes.Equal(sb[i], sd[i]) {
				t.Fatalf("bounded vs dense solve: symbol %d differs", i)
			}
		}
	}
}

func TestBatchAddBoundedValidation(t *testing.T) {
	d, err := NewBatchDecoder(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddBounded([]byte{1, 2, 3}, nil, -1); err == nil {
		t.Error("negative bound accepted")
	}
	if err := d.AddBounded([]byte{1, 2, 3}, nil, 4); err == nil {
		t.Error("bound beyond numSymbols accepted")
	}
}
