package gfmat

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf256"
)

func TestNewDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0, 4); err == nil {
		t.Error("NewDecoder(0, 4) succeeded, want error")
	}
	if _, err := NewDecoder(4, -1); err == nil {
		t.Error("NewDecoder(4, -1) succeeded, want error")
	}
	if d, err := NewDecoder(4, 0); err != nil || d.PayloadLen() != 0 {
		t.Errorf("NewDecoder(4, 0) = %v, %v; want zero-payload decoder", d, err)
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	d, err := NewDecoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]byte{1, 2}, []byte{0, 0}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short coeff vector: err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := d.Add([]byte{1, 2, 3}, []byte{0}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short payload: err = %v, want ErrDimensionMismatch", err)
	}
}

// encodeWith computes the coded payload for a coefficient row over the
// given source symbols.
func encodeWith(coeff []byte, symbols [][]byte, payloadLen int) []byte {
	out := make([]byte, payloadLen)
	for j, c := range coeff {
		if c != 0 {
			gf256.AddMulSlice(out, symbols[j], c)
		}
	}
	return out
}

func TestDecodeIdentityRows(t *testing.T) {
	symbols := [][]byte{{10, 11}, {20, 21}, {30, 31}}
	d, err := NewDecoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		coeff := make([]byte, 3)
		coeff[i] = 1
		innovative, err := d.Add(coeff, symbols[i])
		if err != nil {
			t.Fatal(err)
		}
		if !innovative {
			t.Fatalf("identity row %d not innovative", i)
		}
		if got := d.DecodedPrefix(); got != i+1 {
			t.Fatalf("after row %d: DecodedPrefix = %d, want %d", i, got, i+1)
		}
	}
	if !d.Complete() {
		t.Error("decoder not complete after N independent rows")
	}
	for i := range symbols {
		got, err := d.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, symbols[i]) {
			t.Errorf("symbol %d = %v, want %v", i, got, symbols[i])
		}
	}
}

func TestDecodeFullRandomSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const n, plen = 12, 8
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	added := 0
	for !d.Complete() {
		coeff := make([]byte, n)
		rng.Read(coeff)
		if _, err := d.Add(coeff, encodeWith(coeff, symbols, plen)); err != nil {
			t.Fatal(err)
		}
		added++
		if added > 100 {
			t.Fatal("decoder did not complete after 100 random rows")
		}
	}
	for i := range symbols {
		got, err := d.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, symbols[i]) {
			t.Errorf("symbol %d decoded incorrectly", i)
		}
	}
}

func TestDependentRowsNotInnovative(t *testing.T) {
	d, err := NewDecoder(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := []byte{1, 2, 3}
	if innov, _ := d.Add(row, nil); !innov {
		t.Fatal("first row should be innovative")
	}
	// Any scalar multiple must be rejected.
	scaled := make([]byte, 3)
	gf256.MulSlice(scaled, row, 7)
	if innov, _ := d.Add(scaled, nil); innov {
		t.Error("scaled duplicate row reported innovative")
	}
	if d.Rank() != 1 {
		t.Errorf("rank = %d, want 1", d.Rank())
	}
}

// TestProgressivePrefixPLCShape reproduces the Sec. 3.2 scenario: coded
// blocks whose support is a prefix of the symbols (PLC-shaped rows) decode
// progressively — the prefix pops out before full rank is reached.
func TestProgressivePrefixPLCShape(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, plen = 6, 4
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}

	addPrefixRow := func(width int) {
		t.Helper()
		coeff := make([]byte, n)
		for j := 0; j < width; j++ {
			coeff[j] = byte(1 + rng.Intn(255))
		}
		if _, err := d.Add(coeff, encodeWith(coeff, symbols, plen)); err != nil {
			t.Fatal(err)
		}
	}

	// Two rows over the first two symbols: prefix 2 decodable immediately.
	addPrefixRow(2)
	addPrefixRow(2)
	if got := d.DecodedPrefix(); got != 2 {
		t.Fatalf("after 2 width-2 rows: DecodedPrefix = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		got, err := d.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, symbols[i]) {
			t.Fatalf("prefix symbol %d wrong", i)
		}
	}
	// Symbols beyond the prefix must not claim decodability.
	if d.Decoded(2) {
		t.Error("symbol 2 claims decoded with no covering rows")
	}

	// Four rows over all six symbols: still rank 6 total, full decode.
	for i := 0; i < 4; i++ {
		addPrefixRow(6)
	}
	if !d.Complete() {
		t.Fatalf("rank = %d, want 6", d.Rank())
	}
	if got := d.DecodedPrefix(); got != n {
		t.Errorf("DecodedPrefix = %d, want %d", got, n)
	}
}

// TestFig2Scenario replays the exact structure of Fig. 2: five coded blocks
// over five symbols where the top-left 3x3 block is solvable while symbols
// 4-5 are not, and verifies partial decoding of exactly the first three.
func TestFig2Scenario(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, plen = 6, 3
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{3, 3, 3, 6, 6} // three rows on the 3-prefix, two spanning all 6
	for _, w := range widths {
		coeff := make([]byte, n)
		for j := 0; j < w; j++ {
			coeff[j] = byte(1 + rng.Intn(255))
		}
		if _, err := d.Add(coeff, encodeWith(coeff, symbols, plen)); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.DecodedPrefix(); got != 3 {
		t.Fatalf("DecodedPrefix = %d, want 3 (Fig. 2 partial decode)", got)
	}
	if got := d.DecodedCount(); got != 3 {
		t.Errorf("DecodedCount = %d, want 3", got)
	}
	if d.Decoded(3) || d.Decoded(4) || d.Decoded(5) {
		t.Error("symbols 4-6 decodable from only two spanning rows")
	}
}

func TestMatrixStaysInRREF(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, err := NewDecoder(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		coeff := make([]byte, 8)
		// Random sparse-ish rows to exercise varied pivot patterns.
		for j := range coeff {
			if rng.Intn(3) == 0 {
				coeff[j] = byte(rng.Intn(256))
			}
		}
		if _, err := d.Add(coeff, nil); err != nil {
			t.Fatal(err)
		}
		m, err := d.CoefficientMatrix()
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsRREF() {
			t.Fatalf("after %d adds, coefficient matrix is not in RREF:\n%s", i+1, m)
		}
	}
}

// TestRREFOrderInvariance verifies the paper's observation that partial
// decoding does not require row pre-sorting: feeding the same blocks in any
// order yields the same decoded set.
func TestRREFOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const n = 6
	type block struct{ coeff []byte }
	blocks := make([]block, 7)
	for i := range blocks {
		width := 2 + rng.Intn(n-1)
		c := make([]byte, n)
		for j := 0; j < width; j++ {
			c[j] = byte(1 + rng.Intn(255))
		}
		blocks[i] = block{coeff: c}
	}
	run := func(order []int) (int, int) {
		d, err := NewDecoder(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := d.Add(blocks[i].coeff, nil); err != nil {
				t.Fatal(err)
			}
		}
		return d.Rank(), d.DecodedPrefix()
	}
	baseRank, basePrefix := run([]int{0, 1, 2, 3, 4, 5, 6})
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(blocks))
		rank, prefix := run(order)
		if rank != baseRank || prefix != basePrefix {
			t.Fatalf("order %v: (rank,prefix) = (%d,%d), want (%d,%d)",
				order, rank, prefix, baseRank, basePrefix)
		}
	}
}

func TestSymbolErrorsWhenUndecoded(t *testing.T) {
	d, err := NewDecoder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Symbol(0); err == nil {
		t.Error("Symbol on empty decoder succeeded, want error")
	}
	if _, err := d.Symbol(-1); err == nil {
		t.Error("Symbol(-1) succeeded, want error")
	}
	if _, err := d.Symbol(3); err == nil {
		t.Error("Symbol(out of range) succeeded, want error")
	}
}

func TestSymbolsSnapshot(t *testing.T) {
	d, err := NewDecoder(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]byte{1, 0}, []byte{42}); err != nil {
		t.Fatal(err)
	}
	syms := d.Symbols()
	if len(syms) != 2 || syms[1] != nil {
		t.Fatalf("Symbols() = %v, want [decoded nil]", syms)
	}
	if !bytes.Equal(syms[0], []byte{42}) {
		t.Errorf("Symbols()[0] = %v, want [42]", syms[0])
	}
	// Mutating the returned slice must not affect decoder state.
	syms[0][0] = 0
	again, err := d.Symbol(0)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 42 {
		t.Error("Symbol returned aliased internal storage")
	}
}

func TestAddCopiesInputs(t *testing.T) {
	d, err := NewDecoder(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	coeff := []byte{1, 0}
	payload := []byte{7}
	if _, err := d.Add(coeff, payload); err != nil {
		t.Fatal(err)
	}
	coeff[0] = 99
	payload[0] = 99
	got, err := d.Symbol(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("decoder aliased caller-owned slices")
	}
}

// TestQuickDecoderRecoversRandomSystems is the core correctness property:
// for random solvable systems the decoder always reproduces the sources.
func TestQuickDecoderRecoversRandomSystems(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		plen := 1 + rng.Intn(6)
		symbols := make([][]byte, n)
		for i := range symbols {
			symbols[i] = make([]byte, plen)
			rng.Read(symbols[i])
		}
		d, err := NewDecoder(n, plen)
		if err != nil {
			return false
		}
		for tries := 0; !d.Complete() && tries < 20*n; tries++ {
			coeff := make([]byte, n)
			rng.Read(coeff)
			if _, err := d.Add(coeff, encodeWith(coeff, symbols, plen)); err != nil {
				return false
			}
		}
		if !d.Complete() {
			return false
		}
		for i := range symbols {
			got, err := d.Symbol(i)
			if err != nil || !bytes.Equal(got, symbols[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickRankMatchesBatchRank cross-checks incremental rank against the
// batch Gaussian-elimination rank on the same row set.
func TestQuickRankMatchesBatchRank(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		rows := 1 + rng.Intn(12)
		m, _ := New(rows, n)
		d, err := NewDecoder(n, 0)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			coeff := make([]byte, n)
			for j := range coeff {
				if rng.Intn(2) == 0 {
					coeff[j] = byte(rng.Intn(256))
				}
			}
			copy(m.Row(i), coeff)
			if _, err := d.Add(coeff, nil); err != nil {
				return false
			}
		}
		return d.Rank() == m.Rank()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkDecoderFullDecode256(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	const n, plen = 256, 64
	symbols := make([][]byte, n)
	for i := range symbols {
		symbols[i] = make([]byte, plen)
		rng.Read(symbols[i])
	}
	coeffs := make([][]byte, n+8)
	payloads := make([][]byte, n+8)
	for i := range coeffs {
		coeffs[i] = make([]byte, n)
		rng.Read(coeffs[i])
		payloads[i] = encodeWith(coeffs[i], symbols, plen)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDecoder(n, plen)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; !d.Complete() && j < len(coeffs); j++ {
			if _, err := d.Add(coeffs[j], payloads[j]); err != nil {
				b.Fatal(err)
			}
		}
		if !d.Complete() {
			b.Fatal("decode incomplete")
		}
	}
}
