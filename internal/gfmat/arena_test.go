package gfmat

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf256"
)

// randomSystem encodes numSymbols random source payloads into count dense
// coded blocks and returns (coeffs, codedPayloads, sources).
func randomSystem(t *testing.T, rng *rand.Rand, numSymbols, payloadLen, count int) (coeffs, payloads, sources [][]byte) {
	t.Helper()
	sources = make([][]byte, numSymbols)
	for i := range sources {
		sources[i] = make([]byte, payloadLen)
		rng.Read(sources[i])
	}
	for b := 0; b < count; b++ {
		c := make([]byte, numSymbols)
		p := make([]byte, payloadLen)
		for j := range c {
			c[j] = byte(1 + rng.Intn(255))
			gf256.AddMulSlice(p, sources[j], c[j])
		}
		coeffs = append(coeffs, c)
		payloads = append(payloads, p)
	}
	return coeffs, payloads, sources
}

// TestDecoderArenaRecoversSources is an end-to-end check that the
// arena-backed incremental decoder still recovers every source payload.
func TestDecoderArenaRecoversSources(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, plen = 24, 100
	coeffs, payloads, sources := randomSystem(t, rng, n, plen, n+6)

	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if _, err := d.Add(coeffs[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Complete() {
		t.Fatalf("decoder incomplete at rank %d/%d", d.Rank(), n)
	}
	for i, want := range sources {
		got, err := d.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("symbol %d decoded incorrectly", i)
		}
	}
}

// TestDecoderAddNonInnovativeNoAlloc pins the satellite behavior: once the
// decoder is full-rank, absorbing dependent rows must not allocate — the
// row is reduced in the scratch buffers and discarded before touching the
// arena.
func TestDecoderAddNonInnovativeNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, plen = 16, 64
	coeffs, payloads, _ := randomSystem(t, rng, n, plen, n+4)

	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := d.Add(coeffs[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Complete() {
		t.Skipf("random system not full rank after %d rows", n)
	}
	allocs := testing.AllocsPerRun(50, func() {
		innovative, err := d.Add(coeffs[n], payloads[n])
		if err != nil {
			t.Fatal(err)
		}
		if innovative {
			t.Fatal("row innovative past full rank")
		}
	})
	if allocs != 0 {
		t.Fatalf("non-innovative Add allocates %v times, want 0", allocs)
	}
}

// TestDecoderMutatingCallerSlices verifies Add still copies its inputs: the
// caller may clobber coeff/payload afterwards without corrupting the
// decoder (the arena rows must be private copies, not aliases).
func TestDecoderMutatingCallerSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, plen = 8, 32
	coeffs, payloads, sources := randomSystem(t, rng, n, plen, n+2)

	d, err := NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if _, err := d.Add(coeffs[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
		// Clobber the caller-owned slices immediately.
		for j := range coeffs[i] {
			coeffs[i][j] = 0xee
		}
		for j := range payloads[i] {
			payloads[i][j] = 0xee
		}
	}
	if !d.Complete() {
		t.Skipf("random system not full rank")
	}
	for i, want := range sources {
		got, err := d.Symbol(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("symbol %d corrupted by caller mutation", i)
		}
	}
}

// TestBatchDecoderArenaSolve checks the arena-backed BatchDecoder against
// the known sources, including re-running Solve after further Adds.
func TestBatchDecoderArenaSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, plen = 20, 48
	coeffs, payloads, sources := randomSystem(t, rng, n, plen, n+10)

	d, err := NewBatchDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Add(coeffs[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	first, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Feed the redundant rows (spilling into a second arena chunk) and
	// solve again; both solutions must match the sources.
	for i := n; i < len(coeffs); i++ {
		if err := d.Add(coeffs[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	second, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sources {
		if !bytes.Equal(first[i], want) || !bytes.Equal(second[i], want) {
			t.Fatalf("batch solution %d incorrect", i)
		}
	}
}

// TestReduceRows builds a row-echelon system by forward elimination and
// checks that ReduceRows produces the identity coefficient matrix and the
// original sources as payloads.
func TestReduceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, plen = 12, 40
	coeffs, payloads, sources := randomSystem(t, rng, n, plen, n)

	// Forward elimination with pivot normalization (no back-substitution).
	pivotRow := make([]int, n)
	rank := 0
	for col := 0; col < n; col++ {
		p := -1
		for r := rank; r < n; r++ {
			if coeffs[r][col] != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			t.Skipf("random system singular at column %d", col)
		}
		coeffs[p], coeffs[rank] = coeffs[rank], coeffs[p]
		payloads[p], payloads[rank] = payloads[rank], payloads[p]
		inv, err := gf256.Inv(coeffs[rank][col])
		if err != nil {
			t.Fatal(err)
		}
		gf256.ScaleInPlace(coeffs[rank], inv)
		gf256.ScaleInPlace(payloads[rank], inv)
		for r := rank + 1; r < n; r++ {
			if c := coeffs[r][col]; c != 0 {
				gf256.AddMulSlice(coeffs[r], coeffs[rank], c)
				gf256.AddMulSlice(payloads[r], payloads[rank], c)
			}
		}
		pivotRow[col] = rank
		rank++
	}

	ReduceRows(coeffs, payloads, pivotRow)

	for col := 0; col < n; col++ {
		row := coeffs[pivotRow[col]]
		for j, v := range row {
			want := byte(0)
			if j == col {
				want = 1
			}
			if v != want {
				t.Fatalf("RREF violated at row %d col %d: %#02x", pivotRow[col], j, v)
			}
		}
		if !bytes.Equal(payloads[pivotRow[col]], sources[col]) {
			t.Fatalf("ReduceRows payload %d incorrect", col)
		}
	}
}

// TestReduceRowsNilPayloads covers the coefficient-only mode used by
// rank/decodability experiments.
func TestReduceRowsNilPayloads(t *testing.T) {
	coeffs := [][]byte{
		{1, 2, 3},
		{0, 1, 5},
		{0, 0, 1},
	}
	ReduceRows(coeffs, nil, []int{0, 1, 2})
	want := [][]byte{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i := range want {
		if !bytes.Equal(coeffs[i], want[i]) {
			t.Fatalf("row %d = %v, want %v", i, coeffs[i], want[i])
		}
	}
}

// TestChunkArenaRowIsolation makes sure appends to one arena row can never
// bleed into its neighbor, and that rows survive chunk turnover.
func TestChunkArenaRowIsolation(t *testing.T) {
	var a chunkArena
	a.init(4, 2)
	rows := make([][]byte, 0, 7)
	for i := 0; i < 7; i++ {
		r := a.alloc()
		if len(r) != 4 || cap(r) != 4 {
			t.Fatalf("row %d: len %d cap %d, want 4/4", i, len(r), cap(r))
		}
		for j := range r {
			r[j] = byte(i)
		}
		rows = append(rows, r)
	}
	for i, r := range rows {
		for j, v := range r {
			if v != byte(i) {
				t.Fatalf("row %d byte %d clobbered: %d", i, j, v)
			}
		}
	}
}
