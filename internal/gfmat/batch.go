package gfmat

import (
	"fmt"

	"repro/internal/gf256"
)

// Batch decoding via plain Gaussian elimination — the strawman Sec. 3.2
// argues against: it solves the system only once it is fully determined,
// so nothing is recoverable from an underdetermined accumulation. It is
// retained as (a) the ablation baseline for the progressive decoder and
// (b) a faster path when a caller knows it has all the blocks up front
// (forward elimination + one back-substitution pass beats maintaining the
// RREF invariant incrementally).

// BatchDecoder accumulates coded blocks and solves them in one shot.
type BatchDecoder struct {
	numSymbols int
	payloadLen int
	coeffs     [][]byte
	payloads   [][]byte

	// arena backs the buffered rows in chunks of numSymbols rows, so Add
	// stops paying two heap allocations per block.
	arena chunkArena
}

// NewBatchDecoder returns a batch decoder over numSymbols unknowns.
func NewBatchDecoder(numSymbols, payloadLen int) (*BatchDecoder, error) {
	if numSymbols <= 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: numSymbols %d, want > 0", numSymbols)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: negative payload length %d", payloadLen)
	}
	d := &BatchDecoder{numSymbols: numSymbols, payloadLen: payloadLen}
	d.arena.init(numSymbols+payloadLen, numSymbols)
	return d, nil
}

// Add buffers one coded block without processing it.
func (d *BatchDecoder) Add(coeff, payload []byte) error {
	if len(coeff) != d.numSymbols {
		return fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}
	row := d.arena.alloc()
	c := row[:d.numSymbols:d.numSymbols]
	p := row[d.numSymbols:]
	copy(c, coeff)
	copy(p, payload)
	d.coeffs = append(d.coeffs, c)
	d.payloads = append(d.payloads, p)
	return nil
}

// Buffered returns the number of blocks accumulated.
func (d *BatchDecoder) Buffered() int { return len(d.coeffs) }

// Solve runs forward Gaussian elimination and back-substitution. It
// returns all numSymbols payloads, or an error when the system is
// underdetermined — the all-or-nothing behavior that motivates the
// progressive decoder.
func (d *BatchDecoder) Solve() ([][]byte, error) {
	n := d.numSymbols
	rows := len(d.coeffs)
	if rows < n {
		return nil, fmt.Errorf("gfmat: underdetermined system: %d blocks for %d symbols", rows, n)
	}
	// Work on copies; Solve must be re-runnable after more Adds. The
	// working rows are sliced out of two one-shot backing arrays rather
	// than allocated individually.
	a := make([][]byte, rows)
	b := make([][]byte, rows)
	abuf := make([]byte, rows*n)
	bbuf := make([]byte, rows*d.payloadLen)
	for i := range d.coeffs {
		a[i] = abuf[i*n : (i+1)*n : (i+1)*n]
		copy(a[i], d.coeffs[i])
		b[i] = bbuf[i*d.payloadLen : (i+1)*d.payloadLen : (i+1)*d.payloadLen]
		copy(b[i], d.payloads[i])
	}

	// Forward elimination with partial pivoting by first nonzero.
	rank := 0
	pivotRow := make([]int, n)
	for col := 0; col < n && rank < rows; col++ {
		p := -1
		for r := rank; r < rows; r++ {
			if a[r][col] != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("gfmat: singular accumulation: no pivot for symbol %d", col)
		}
		a[p], a[rank] = a[rank], a[p]
		b[p], b[rank] = b[rank], b[p]
		inv, err := gf256.Inv(a[rank][col])
		if err != nil {
			return nil, fmt.Errorf("gfmat: normalize pivot: %w", err)
		}
		gf256.ScaleInPlace(a[rank], inv)
		gf256.ScaleInPlace(b[rank], inv)
		for r := rank + 1; r < rows; r++ {
			if c := a[r][col]; c != 0 {
				gf256.AddMulSlice(a[r], a[rank], c)
				gf256.AddMulSlice(b[r], b[rank], c)
			}
		}
		pivotRow[col] = rank
		rank++
	}
	if rank < n {
		return nil, fmt.Errorf("gfmat: rank %d < %d symbols", rank, n)
	}

	// Batched back-substitution from the last pivot upward.
	ReduceRows(a, b, pivotRow)

	out := make([][]byte, n)
	for col := 0; col < n; col++ {
		out[col] = append([]byte(nil), b[pivotRow[col]]...)
	}
	return out, nil
}

// ReduceRows is the batched back-substitution pass shared by one-shot
// solvers: given rows in row-echelon form — pivotRow[col] names the row
// holding column col's pivot, pivots normalized to 1, and every pivot row
// index strictly increasing with col — it eliminates each pivot column from
// all rows above it, bringing the system to reduced row-echelon form.
// Identical row operations are applied to payloads; payloads may be nil
// when only the coefficient matrix matters.
//
// Running one batched pass over a fully determined system does each
// elimination exactly once, which is what makes BatchDecoder.Solve cheaper
// than maintaining the RREF invariant incrementally per row.
func ReduceRows(coeffs, payloads [][]byte, pivotRow []int) {
	for col := len(pivotRow) - 1; col >= 0; col-- {
		pr := pivotRow[col]
		pc := coeffs[pr]
		var pp []byte
		if payloads != nil {
			pp = payloads[pr]
		}
		for r := 0; r < pr; r++ {
			if c := coeffs[r][col]; c != 0 {
				gf256.AddMulSlice(coeffs[r], pc, c)
				if payloads != nil {
					gf256.AddMulSlice(payloads[r], pp, c)
				}
			}
		}
	}
}
