package gfmat

import (
	"fmt"

	"repro/internal/gf256"
)

// Batch decoding via plain Gaussian elimination — the strawman Sec. 3.2
// argues against: it solves the system only once it is fully determined,
// so nothing is recoverable from an underdetermined accumulation. It is
// retained as (a) the ablation baseline for the progressive decoder and
// (b) a faster path when a caller knows it has all the blocks up front
// (forward elimination + one back-substitution pass beats maintaining the
// RREF invariant incrementally).

// BatchDecoder accumulates coded blocks and solves them in one shot.
type BatchDecoder struct {
	numSymbols int
	payloadLen int
	coeffs     [][]byte
	payloads   [][]byte
	// widths[i] bounds 1 + the last nonzero column of coeffs[i]; level
	// boundaries passed to AddBounded propagate through Solve's elimination
	// the same way the incremental decoder's row spans do.
	widths []int

	// arena backs the buffered rows in chunks of numSymbols rows, so Add
	// stops paying two heap allocations per block.
	arena chunkArena
}

// NewBatchDecoder returns a batch decoder over numSymbols unknowns.
func NewBatchDecoder(numSymbols, payloadLen int) (*BatchDecoder, error) {
	if numSymbols <= 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: numSymbols %d, want > 0", numSymbols)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: negative payload length %d", payloadLen)
	}
	d := &BatchDecoder{numSymbols: numSymbols, payloadLen: payloadLen}
	d.arena.init(numSymbols+payloadLen, numSymbols)
	return d, nil
}

// Add buffers one coded block without processing it.
func (d *BatchDecoder) Add(coeff, payload []byte) error {
	return d.AddBounded(coeff, payload, d.numSymbols)
}

// AddBounded buffers one coded block whose coefficients are known by
// construction to be zero at and beyond column bound (see
// Decoder.AddBounded for the contract). Solve's elimination then operates
// on the bounded spans only.
func (d *BatchDecoder) AddBounded(coeff, payload []byte, bound int) error {
	if len(coeff) != d.numSymbols {
		return fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}
	if bound < 0 || bound > d.numSymbols {
		return fmt.Errorf("%w: boundary %d outside [0, %d]",
			ErrDimensionMismatch, bound, d.numSymbols)
	}
	row := d.arena.alloc()
	c := row[:d.numSymbols:d.numSymbols]
	p := row[d.numSymbols:]
	copy(c[:bound], coeff[:bound])
	copy(p, payload)
	d.coeffs = append(d.coeffs, c)
	d.payloads = append(d.payloads, p)
	d.widths = append(d.widths, bound)
	return nil
}

// Buffered returns the number of blocks accumulated.
func (d *BatchDecoder) Buffered() int { return len(d.coeffs) }

// Solve runs forward Gaussian elimination and back-substitution. It
// returns all numSymbols payloads, or an error when the system is
// underdetermined — the all-or-nothing behavior that motivates the
// progressive decoder. Row operations are truncated to the rows' active
// spans, so level-structured accumulations (SLC block-diagonal, PLC
// lower-triangular by blocks) eliminate in O(span) per operation.
func (d *BatchDecoder) Solve() ([][]byte, error) {
	n := d.numSymbols
	rows := len(d.coeffs)
	if rows < n {
		return nil, fmt.Errorf("gfmat: underdetermined system: %d blocks for %d symbols", rows, n)
	}
	// Work on copies; Solve must be re-runnable after more Adds. The
	// working rows are sliced out of two one-shot backing arrays rather
	// than allocated individually.
	a := make([][]byte, rows)
	b := make([][]byte, rows)
	w := make([]int, rows)
	abuf := make([]byte, rows*n)
	bbuf := make([]byte, rows*d.payloadLen)
	for i := range d.coeffs {
		a[i] = abuf[i*n : (i+1)*n : (i+1)*n]
		copy(a[i], d.coeffs[i])
		b[i] = bbuf[i*d.payloadLen : (i+1)*d.payloadLen : (i+1)*d.payloadLen]
		copy(b[i], d.payloads[i])
		w[i] = d.widths[i]
	}

	// Forward elimination with partial pivoting by first nonzero. The
	// invariant that rows at or below rank have zeros in all columns < col
	// means the pivot row's nonzeros live in [col, w[rank]), so every row
	// operation runs over that span only; a target row's span grows to the
	// pivot row's when the pivot row is wider.
	rank := 0
	pivotRow := make([]int, n)
	for col := 0; col < n && rank < rows; col++ {
		p := -1
		for r := rank; r < rows; r++ {
			if a[r][col] != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("gfmat: singular accumulation: no pivot for symbol %d", col)
		}
		a[p], a[rank] = a[rank], a[p]
		b[p], b[rank] = b[rank], b[p]
		w[p], w[rank] = w[rank], w[p]
		pw := w[rank]
		inv, err := gf256.Inv(a[rank][col])
		if err != nil {
			return nil, fmt.Errorf("gfmat: normalize pivot: %w", err)
		}
		gf256.ScaleInPlace(a[rank][col:pw], inv)
		gf256.ScaleInPlace(b[rank], inv)
		for r := rank + 1; r < rows; r++ {
			if c := a[r][col]; c != 0 {
				gf256.AddMulSlice(a[r][col:pw], a[rank][col:pw], c)
				if w[r] < pw {
					w[r] = pw
				}
				gf256.AddMulSlice(b[r], b[rank], c)
			}
		}
		pivotRow[col] = rank
		rank++
	}
	if rank < n {
		return nil, fmt.Errorf("gfmat: rank %d < %d symbols", rank, n)
	}

	// Batched back-substitution from the last pivot upward.
	reduceRowsBounded(a, b, pivotRow, w)

	out := make([][]byte, n)
	for col := 0; col < n; col++ {
		out[col] = append([]byte(nil), b[pivotRow[col]]...)
	}
	return out, nil
}

// ReduceRows is the batched back-substitution pass shared by one-shot
// solvers: given rows in row-echelon form — pivotRow[col] names the row
// holding column col's pivot, pivots normalized to 1, and every pivot row
// index strictly increasing with col — it eliminates each pivot column from
// all rows above it, bringing the system to reduced row-echelon form.
// Identical row operations are applied to payloads; payloads may be nil
// when only the coefficient matrix matters.
//
// Running one batched pass over a fully determined system does each
// elimination exactly once, which is what makes BatchDecoder.Solve cheaper
// than maintaining the RREF invariant incrementally per row.
func ReduceRows(coeffs, payloads [][]byte, pivotRow []int) {
	widths := make([]int, len(coeffs))
	for i, c := range coeffs {
		widths[i] = len(c)
	}
	reduceRowsBounded(coeffs, payloads, pivotRow, widths)
}

// reduceRowsBounded is ReduceRows with per-row active spans: widths[i]
// bounds 1 + the last nonzero column of coeffs[i], row operations run over
// the pivot row's span [col, widths[pr]) only, and target spans grow as
// wider pivot rows fold in. Widths are updated in place.
func reduceRowsBounded(coeffs, payloads [][]byte, pivotRow, widths []int) {
	for col := len(pivotRow) - 1; col >= 0; col-- {
		pr := pivotRow[col]
		pc := coeffs[pr]
		pw := widths[pr]
		var pp []byte
		if payloads != nil {
			pp = payloads[pr]
		}
		for r := 0; r < pr; r++ {
			if c := coeffs[r][col]; c != 0 {
				gf256.AddMulSlice(coeffs[r][col:pw], pc[col:pw], c)
				if widths[r] < pw {
					widths[r] = pw
				}
				if payloads != nil {
					gf256.AddMulSlice(payloads[r], pp, c)
				}
			}
		}
	}
}
