package gfmat

import (
	"fmt"

	"repro/internal/gf256"
)

// Batch decoding via plain Gaussian elimination — the strawman Sec. 3.2
// argues against: it solves the system only once it is fully determined,
// so nothing is recoverable from an underdetermined accumulation. It is
// retained as (a) the ablation baseline for the progressive decoder and
// (b) a faster path when a caller knows it has all the blocks up front
// (forward elimination + one back-substitution pass beats maintaining the
// RREF invariant incrementally).

// BatchDecoder accumulates coded blocks and solves them in one shot.
type BatchDecoder struct {
	numSymbols int
	payloadLen int
	coeffs     [][]byte
	payloads   [][]byte
}

// NewBatchDecoder returns a batch decoder over numSymbols unknowns.
func NewBatchDecoder(numSymbols, payloadLen int) (*BatchDecoder, error) {
	if numSymbols <= 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: numSymbols %d, want > 0", numSymbols)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("gfmat: NewBatchDecoder: negative payload length %d", payloadLen)
	}
	return &BatchDecoder{numSymbols: numSymbols, payloadLen: payloadLen}, nil
}

// Add buffers one coded block without processing it.
func (d *BatchDecoder) Add(coeff, payload []byte) error {
	if len(coeff) != d.numSymbols {
		return fmt.Errorf("%w: coefficient vector length %d, want %d",
			ErrDimensionMismatch, len(coeff), d.numSymbols)
	}
	if len(payload) != d.payloadLen {
		return fmt.Errorf("%w: payload length %d, want %d",
			ErrDimensionMismatch, len(payload), d.payloadLen)
	}
	d.coeffs = append(d.coeffs, append([]byte(nil), coeff...))
	d.payloads = append(d.payloads, append([]byte(nil), payload...))
	return nil
}

// Buffered returns the number of blocks accumulated.
func (d *BatchDecoder) Buffered() int { return len(d.coeffs) }

// Solve runs forward Gaussian elimination and back-substitution. It
// returns all numSymbols payloads, or an error when the system is
// underdetermined — the all-or-nothing behavior that motivates the
// progressive decoder.
func (d *BatchDecoder) Solve() ([][]byte, error) {
	n := d.numSymbols
	rows := len(d.coeffs)
	if rows < n {
		return nil, fmt.Errorf("gfmat: underdetermined system: %d blocks for %d symbols", rows, n)
	}
	// Work on copies; Solve must be re-runnable after more Adds.
	a := make([][]byte, rows)
	b := make([][]byte, rows)
	for i := range d.coeffs {
		a[i] = append([]byte(nil), d.coeffs[i]...)
		b[i] = append([]byte(nil), d.payloads[i]...)
	}

	// Forward elimination with partial pivoting by first nonzero.
	rank := 0
	pivotRow := make([]int, n)
	for col := 0; col < n && rank < rows; col++ {
		p := -1
		for r := rank; r < rows; r++ {
			if a[r][col] != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("gfmat: singular accumulation: no pivot for symbol %d", col)
		}
		a[p], a[rank] = a[rank], a[p]
		b[p], b[rank] = b[rank], b[p]
		inv, err := gf256.Inv(a[rank][col])
		if err != nil {
			return nil, fmt.Errorf("gfmat: normalize pivot: %w", err)
		}
		gf256.ScaleInPlace(a[rank], inv)
		gf256.ScaleInPlace(b[rank], inv)
		for r := rank + 1; r < rows; r++ {
			if c := a[r][col]; c != 0 {
				gf256.AddMulSlice(a[r], a[rank], c)
				gf256.AddMulSlice(b[r], b[rank], c)
			}
		}
		pivotRow[col] = rank
		rank++
	}
	if rank < n {
		return nil, fmt.Errorf("gfmat: rank %d < %d symbols", rank, n)
	}

	// Back-substitution from the last pivot upward.
	for col := n - 1; col >= 0; col-- {
		pr := pivotRow[col]
		for r := 0; r < pr; r++ {
			if c := a[r][col]; c != 0 {
				gf256.AddMulSlice(a[r], a[pr], c)
				gf256.AddMulSlice(b[r], b[pr], c)
			}
		}
	}

	out := make([][]byte, n)
	for col := 0; col < n; col++ {
		out[col] = append([]byte(nil), b[pivotRow[col]]...)
	}
	return out, nil
}
