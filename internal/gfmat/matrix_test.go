package gfmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsNegative(t *testing.T) {
	if _, err := New(-1, 3); err == nil {
		t.Error("New(-1,3) succeeded, want error")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("New(3,-1) succeeded, want error")
	}
}

func TestIdentityProperties(t *testing.T) {
	id, err := Identity(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I[%d,%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	if got := id.Rank(); got != 4 {
		t.Errorf("rank(I4) = %d, want 4", got)
	}
	if !id.IsRREF() {
		t.Error("identity should be in RREF")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Errorf("FromRows produced wrong layout:\n%s", m)
	}
	if _, err := FromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged FromRows succeeded, want error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("FromRows(nil) = %v, %v", empty, err)
	}
}

func TestFromRowsCopies(t *testing.T) {
	src := [][]byte{{1, 2}}
	m, err := FromRows(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("FromRows did not copy the input rows")
	}
}

func TestMulVec(t *testing.T) {
	m, err := FromRows([][]byte{
		{1, 0, 2},
		{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := []byte{3, 5, 7}
	got, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: 1*3 + 2*7 = 3 ^ mul(2,7)=14 -> 3^14=13
	want0 := byte(3) ^ mulRef(2, 7)
	if got[0] != want0 || got[1] != 5 {
		t.Errorf("MulVec = %v, want [%d 5]", got, want0)
	}
	if _, err := m.MulVec([]byte{1}); err == nil {
		t.Error("MulVec with wrong length succeeded, want error")
	}
}

// mulRef is an independent GF(2^8) multiply for cross-checking.
func mulRef(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= 0x1D
		}
		b >>= 1
	}
	return p
}

func TestMulAssociativeWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := Random(rng, 4, 5)
	b, _ := Random(rng, 5, 3)
	v := make([]byte, 3)
	rng.Read(v)

	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := b.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	left, err := ab.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.MulVec(bv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range left {
		if left[i] != right[i] {
			t.Fatalf("(AB)v != A(Bv) at %d: %v vs %v", i, left, right)
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a, _ := New(2, 3)
	b, _ := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("Mul with mismatched inner dims succeeded, want error")
	}
}

func TestRankSmallCases(t *testing.T) {
	cases := []struct {
		rows [][]byte
		want int
	}{
		{[][]byte{{0, 0}, {0, 0}}, 0},
		{[][]byte{{1, 2}, {2, 4}}, 1}, // row1 = 2*row0 in GF(2^8)
		{[][]byte{{1, 0}, {0, 1}}, 2},
		{[][]byte{{1, 2, 3}}, 1},
		{[][]byte{{5, 5}, {5, 5}}, 1},
	}
	for i, tc := range cases {
		m, err := FromRows(tc.rows)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Rank(); got != tc.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, tc.want)
		}
	}
}

func TestRankDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, _ := Random(rng, 5, 5)
	before := m.Clone()
	m.Rank()
	if !m.Equal(before) {
		t.Error("Rank mutated the matrix")
	}
}

func TestRandomSquareMatrixUsuallyFullRank(t *testing.T) {
	// Footnote 1 of the paper: with GF(2^8) coefficients, random square
	// matrices are invertible w.h.p. The probability of full rank is
	// prod_{i=1..n} (1 - 256^-i) ≈ 0.996. Check that at least 95 of 100
	// random 20x20 matrices have full rank.
	rng := rand.New(rand.NewSource(9))
	full := 0
	for trial := 0; trial < 100; trial++ {
		m, _ := Random(rng, 20, 20)
		if m.Rank() == 20 {
			full++
		}
	}
	if full < 95 {
		t.Errorf("only %d/100 random 20x20 matrices were full rank", full)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		var m *Matrix
		for {
			m, _ = Random(rng, n, n)
			if m.Rank() == n {
				break
			}
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		id, _ := Identity(n)
		if !prod.Equal(id) {
			t.Fatalf("trial %d: M*Inv(M) != I:\n%s", trial, prod)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m, _ := FromRows([][]byte{{1, 2}, {2, 4}}) // row1 = 2*row0
	if _, err := m.Inverse(); err == nil {
		t.Error("Inverse of singular matrix succeeded, want error")
	}
	r, _ := New(2, 3)
	if _, err := r.Inverse(); err == nil {
		t.Error("Inverse of non-square matrix succeeded, want error")
	}
}

func TestIsRREF(t *testing.T) {
	good, _ := FromRows([][]byte{
		{1, 0, 0, 5},
		{0, 1, 0, 6},
		{0, 0, 1, 7},
	})
	if !good.IsRREF() {
		t.Error("valid RREF rejected")
	}
	badPivot, _ := FromRows([][]byte{
		{2, 0},
		{0, 1},
	})
	if badPivot.IsRREF() {
		t.Error("pivot != 1 accepted as RREF")
	}
	badOrder, _ := FromRows([][]byte{
		{0, 1},
		{1, 0},
	})
	if badOrder.IsRREF() {
		t.Error("descending pivots accepted as RREF")
	}
	zeroMid, _ := FromRows([][]byte{
		{0, 0},
		{1, 0},
	})
	if zeroMid.IsRREF() {
		t.Error("zero row above nonzero row accepted as RREF")
	}
	dirtyCol, _ := FromRows([][]byte{
		{1, 3},
		{0, 1},
	})
	if dirtyCol.IsRREF() {
		t.Error("nonzero entry above a pivot accepted as RREF")
	}
}

func TestQuickRankBoundedByDims(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		m, _ := Random(r, rows, cols)
		rank := m.Rank()
		min := rows
		if cols < min {
			min = cols
		}
		return rank >= 0 && rank <= min
	}, &quick.Config{MaxCount: 200, Rand: rng})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickRankInvariantUnderRowSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 + r.Intn(6)
		cols := 1 + r.Intn(8)
		m, _ := Random(r, rows, cols)
		rank := m.Rank()
		i, j := r.Intn(rows), r.Intn(rows)
		m.swapRows(i, j)
		return m.Rank() == rank
	}, &quick.Config{MaxCount: 200, Rand: rng})
	if err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	m, _ := FromRows([][]byte{{0x0a, 0xff}})
	if got, want := m.String(), "0a ff\n"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
