package gfmat

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecoderEquivBatch drives random level-structured systems through
// every decode path this package offers — the structured incremental
// decoder (AddBounded), the dense incremental reference (AddRef), and the
// one-shot BatchDecoder in both bounded and dense form — and asserts they
// agree on rank, per-symbol decodability and the decoded payloads. Rank is
// additionally cross-checked against straight Gaussian elimination on the
// raw coefficient matrix, the ground truth none of the decoders share code
// with.
func FuzzDecoderEquivBatch(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(4), uint8(3), false)
	f.Add(int64(7), uint8(1), uint8(1), uint8(0), uint8(1), true)
	f.Add(int64(42), uint8(3), uint8(2), uint8(8), uint8(5), false)
	f.Add(int64(99), uint8(4), uint8(4), uint8(2), uint8(0), true)

	f.Fuzz(func(t *testing.T, seed int64, nLevelsRaw, perRaw, plenRaw, extraRaw uint8, slcShaped bool) {
		rng := rand.New(rand.NewSource(seed))
		nLevels := 1 + int(nLevelsRaw%4)
		per := 1 + int(perRaw%4)
		n := nLevels * per
		plen := int(plenRaw % 9)
		// extra controls redundancy: extra == 0 keeps some systems
		// underdetermined so the partial-decode states get compared too.
		rowsPerLevel := per + int(extraRaw%3)

		symbols := randomSymbols(rng, n, plen)
		blocks := randomLevelBlocks(rng, symbols, n, nLevels, plen, rowsPerLevel, slcShaped)

		structured, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		batchBounded, err := NewBatchDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		batchDense, err := NewBatchDecoder(n, plen)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := New(len(blocks), n)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range blocks {
			i1, err := structured.AddBounded(b.coeff, b.payload, b.bound)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := dense.AddRef(b.coeff, b.payload)
			if err != nil {
				t.Fatal(err)
			}
			if i1 != i2 {
				t.Fatalf("block %d: innovation disagrees (structured %v, dense %v)", i, i1, i2)
			}
			if err := batchBounded.AddBounded(b.coeff, b.payload, b.bound); err != nil {
				t.Fatal(err)
			}
			if err := batchDense.Add(b.coeff, b.payload); err != nil {
				t.Fatal(err)
			}
			copy(raw.Row(i), b.coeff)
		}

		// Incremental paths must agree on every observable, decoded symbol
		// values included.
		if structured.Rank() != dense.Rank() {
			t.Fatalf("rank: structured %d, dense %d", structured.Rank(), dense.Rank())
		}
		if structured.Rank() != raw.Rank() {
			t.Fatalf("rank: incremental %d, ground truth %d", structured.Rank(), raw.Rank())
		}
		if structured.DecodedPrefix() != dense.DecodedPrefix() {
			t.Fatalf("prefix: structured %d, dense %d", structured.DecodedPrefix(), dense.DecodedPrefix())
		}
		if structured.DecodedCount() != dense.DecodedCount() {
			t.Fatalf("decoded count: structured %d, dense %d", structured.DecodedCount(), dense.DecodedCount())
		}
		for i := 0; i < n; i++ {
			if structured.Decoded(i) != dense.Decoded(i) {
				t.Fatalf("Decoded(%d): structured %v, dense %v", i, structured.Decoded(i), dense.Decoded(i))
			}
			if !structured.Decoded(i) {
				continue
			}
			ss, err := structured.Symbol(i)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := dense.Symbol(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ss, ds) || !bytes.Equal(ss, symbols[i]) {
				t.Fatalf("symbol %d: structured/dense/truth disagree", i)
			}
		}

		// The batch solvers are all-or-nothing: when the incremental decoder
		// completed they must both solve to the same symbols; otherwise both
		// must refuse.
		sb, errB := batchBounded.Solve()
		sd, errD := batchDense.Solve()
		if (errB == nil) != (errD == nil) {
			t.Fatalf("batch solvers disagree: bounded err %v, dense err %v", errB, errD)
		}
		if structured.Complete() != (errB == nil) {
			t.Fatalf("incremental complete = %v but batch solve err = %v", structured.Complete(), errB)
		}
		if errB == nil {
			for i := 0; i < n; i++ {
				if !bytes.Equal(sb[i], sd[i]) || !bytes.Equal(sb[i], symbols[i]) {
					t.Fatalf("batch symbol %d: bounded/dense/truth disagree", i)
				}
			}
		}
	})
}
