// Package gfmat provides dense linear algebra over GF(2^8): matrices,
// rank and inversion by Gaussian elimination, and an incremental
// Gauss–Jordan decoder that maintains a reduced row-echelon form (RREF) as
// coded blocks arrive, enabling the progressive partial decoding described
// in Sec. 3.2 of the paper.
package gfmat

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gf256"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("gfmat: invalid dimensions %dx%d", rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := New(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m, nil
}

// FromRows builds a matrix from row slices, which must all have the same
// length. The rows are copied.
func FromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m, err := New(len(rows), cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("gfmat: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Random returns an r×c matrix with entries drawn uniformly from GF(2^8)
// (including zero).
func Random(rng *rand.Rand, rows, cols int) (*Matrix, error) {
	m, err := New(rows, cols)
	if err != nil {
		return nil, err
	}
	rng.Read(m.data)
	return m, nil
}

// RandomNonzero returns an r×c matrix with entries drawn uniformly from the
// 255 nonzero elements, matching the paper's "nonzero random number
// uniformly chosen from a Galois field" coefficient model.
func RandomNonzero(rng *rand.Rand, rows, cols int) (*Matrix, error) {
	m, err := New(rows, cols)
	if err != nil {
		return nil, err
	}
	for i := range m.data {
		m.data[i] = byte(1 + rng.Intn(255))
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) byte { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v byte) { m.data[i*m.cols+j] = v }

// Row returns a mutable view of row i (not a copy).
func (m *Matrix) Row(i int) []byte {
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]byte, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// MulVec returns m·v. v must have length m.Cols().
func (m *Matrix) MulVec(v []byte) ([]byte, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("gfmat: MulVec: vector length %d, want %d", len(v), m.cols)
	}
	out := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = gf256.Dot(m.Row(i), v)
	}
	return out, nil
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("gfmat: Mul: %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	p, err := New(m.rows, o.cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		prow := p.Row(i)
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			gf256.AddMulSlice(prow, o.Row(k), a)
		}
	}
	return p, nil
}

// Rank returns the rank of m. m is not modified.
func (m *Matrix) Rank() int {
	w := m.Clone()
	return w.rankInPlace()
}

// rankInPlace performs forward elimination destroying w and returns its rank.
func (w *Matrix) rankInPlace() int {
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		// Find a pivot at or below row `rank`.
		pivot := -1
		for r := rank; r < w.rows; r++ {
			if w.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			w.swapRows(pivot, rank)
		}
		prow := w.Row(rank)
		inv, err := gf256.Inv(prow[col])
		if err != nil {
			// Unreachable: pivot is nonzero by construction.
			continue
		}
		gf256.ScaleInPlace(prow, inv)
		for r := rank + 1; r < w.rows; r++ {
			if c := w.At(r, col); c != 0 {
				gf256.AddMulSlice(w.Row(r), prow, c)
			}
		}
		rank++
	}
	return rank
}

func (w *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := w.Row(i), w.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Inverse returns the inverse of a square matrix, or an error if m is not
// square or is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gfmat: Inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	w := m.Clone()
	inv, err := Identity(n)
	if err != nil {
		return nil, err
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if w.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gfmat: matrix is singular (no pivot in column %d)", col)
		}
		w.swapRows(pivot, col)
		inv.swapRows(pivot, col)
		pv, ierr := gf256.Inv(w.At(col, col))
		if ierr != nil {
			return nil, fmt.Errorf("gfmat: invert pivot: %w", ierr)
		}
		gf256.ScaleInPlace(w.Row(col), pv)
		gf256.ScaleInPlace(inv.Row(col), pv)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if c := w.At(r, col); c != 0 {
				gf256.AddMulSlice(w.Row(r), w.Row(col), c)
				gf256.AddMulSlice(inv.Row(r), inv.Row(col), c)
			}
		}
	}
	return inv, nil
}

// IsRREF reports whether m is in reduced row-echelon form: pivots are 1,
// strictly right of the pivot in the previous row, and the only nonzero
// entry in their column; zero rows are at the bottom.
func (m *Matrix) IsRREF() bool {
	prevPivot := -1
	sawZeroRow := false
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		lead := -1
		for j, v := range row {
			if v != 0 {
				lead = j
				break
			}
		}
		if lead < 0 {
			sawZeroRow = true
			continue
		}
		if sawZeroRow {
			return false // nonzero row below a zero row
		}
		if lead <= prevPivot {
			return false
		}
		if row[lead] != 1 {
			return false
		}
		for r := 0; r < m.rows; r++ {
			if r != i && m.At(r, lead) != 0 {
				return false
			}
		}
		prevPivot = lead
	}
	return true
}

// String renders the matrix in hexadecimal for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
