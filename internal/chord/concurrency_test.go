package chord

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSuccessors(t *testing.T) {
	r, err := New([]uint64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	ids := func(idxs []int) []uint64 {
		out := make([]uint64, len(idxs))
		for i, idx := range idxs {
			out[i] = r.ID(idx)
		}
		return out
	}
	got, err := r.Successors(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{20, 30, 40} {
		if ids(got)[i] != want {
			t.Fatalf("Successors(15, 3) = %v, want [20 30 40]", ids(got))
		}
	}
	// Wraps past the top of the ring.
	got, err = r.Successors(35, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{40, 10, 20} {
		if ids(got)[i] != want {
			t.Fatalf("Successors(35, 3) = %v, want [40 10 20]", ids(got))
		}
	}
	// Dead nodes are skipped.
	owner, _ := r.Successor(15)
	if err := r.Fail(owner); err != nil {
		t.Fatal(err)
	}
	got, err = r.Successors(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{30, 40} {
		if ids(got)[i] != want {
			t.Fatalf("Successors(15, 2) after failing 20 = %v, want [30 40]", ids(got))
		}
	}
	// Requesting more than alive returns everyone, not an error.
	got, err = r.Successors(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Successors over-ask returned %d nodes, want 3 alive", len(got))
	}
	if _, err := r.Successors(0, 0); err == nil {
		t.Error("zero count accepted")
	}
	// All nodes dead: error.
	for i := 0; i < r.Len(); i++ {
		r.Fail(i)
	}
	if _, err := r.Successors(0, 1); err == nil {
		t.Error("empty alive set produced successors")
	}
}

// TestSuccessorsDeterministic pins the placement contract: the same key
// and the same membership sequence yield the same assignment, run to run.
func TestSuccessorsDeterministic(t *testing.T) {
	build := func() *Ring {
		r, err := NewRandom(rand.New(rand.NewSource(99)), 16)
		if err != nil {
			t.Fatal(err)
		}
		r.Fail(3)
		r.Fail(7)
		r.Join(0x1234)
		r.Stabilize()
		return r
	}
	a, b := build(), build()
	for key := uint64(0); key < 1<<16; key += 1 << 11 {
		sa, err := a.Successors(key, 5)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Successors(key, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(sa) != len(sb) {
			t.Fatalf("key %#x: %d vs %d successors", key, len(sa), len(sb))
		}
		for i := range sa {
			if a.ID(sa[i]) != b.ID(sb[i]) {
				t.Fatalf("key %#x: assignment differs at position %d", key, i)
			}
		}
	}
}

// TestRingConcurrentChurn races Join/Fail/Recover/Stabilize against
// Lookup/Successor/Successors from many goroutines — the access pattern
// of a gossip-driven membership monitor updating the ring while placement
// queries read it. Run under -race this is the thread-safety gate; the
// only assertions are internal consistency of whatever each query sees.
func TestRingConcurrentChurn(t *testing.T) {
	r, err := NewRandom(rand.New(rand.NewSource(5)), 24)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		readers = 8
		ops     = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				switch rng.Intn(4) {
				case 0:
					// Never fail node 0 so at least one node stays alive and
					// readers always have a valid start.
					r.Fail(1 + rng.Intn(r.Len()-1))
				case 1:
					r.Recover(rng.Intn(r.Len()))
				case 2:
					r.Join(rng.Uint64())
				case 3:
					r.Stabilize()
				}
			}
		}(int64(w + 1))
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				key := rng.Uint64()
				if succ, err := r.Successors(key, 3); err == nil {
					seen := map[int]bool{}
					for _, idx := range succ {
						if seen[idx] {
							t.Errorf("Successors returned duplicate node %d", idx)
							return
						}
						seen[idx] = true
					}
				}
				r.Successor(key)
				r.AliveCount()
				if r.Alive(0) {
					r.Lookup(0, key)
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	// The ring must still be coherent after the storm.
	for i := 0; i < r.Len(); i++ {
		r.Recover(i)
	}
	r.Stabilize()
	for trial := 0; trial < 50; trial++ {
		key := rand.New(rand.NewSource(int64(trial))).Uint64()
		want, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r.Lookup(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-churn lookup for %#x routed to %d, ground truth %d", key, got, want)
		}
	}
}
