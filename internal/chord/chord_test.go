package chord

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New([]uint64{1, 1}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewRandom(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("zero-size random ring accepted")
	}
}

func TestInInterval(t *testing.T) {
	cases := []struct {
		x, a, b uint64
		want    bool
	}{
		{5, 3, 8, true},
		{3, 3, 8, false}, // open at a
		{8, 3, 8, true},  // closed at b
		{9, 3, 8, false},
		{1, 8, 3, true},  // wrapped interval
		{9, 8, 3, true},  // wrapped interval
		{5, 8, 3, false}, // outside wrapped interval
		{42, 7, 7, true}, // degenerate: full ring
	}
	for _, tc := range cases {
		if got := inInterval(tc.x, tc.a, tc.b); got != tc.want {
			t.Errorf("inInterval(%d, %d, %d) = %v, want %v", tc.x, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSuccessorGroundTruth(t *testing.T) {
	r, err := New([]uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want uint64 // expected owner ID
	}{
		{5, 10}, {10, 10}, {11, 20}, {20, 20}, {25, 30}, {31, 10}, // wraps
	}
	for _, tc := range cases {
		idx, err := r.Successor(tc.key)
		if err != nil {
			t.Fatal(err)
		}
		if r.ID(idx) != tc.want {
			t.Errorf("Successor(%d) owns ID %d, want %d", tc.key, r.ID(idx), tc.want)
		}
	}
}

func TestLookupMatchesSuccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, err := NewRandom(rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		start := rng.Intn(r.Len())
		key := rng.Uint64()
		got, hops, err := r.Lookup(start, key)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: Lookup -> node %d (ID %#x), want %d (ID %#x)",
				trial, got, r.ID(got), want, r.ID(want))
		}
		if hops < 1 {
			t.Fatalf("trial %d: nonpositive hop count %d", trial, hops)
		}
	}
}

// TestLookupLogarithmicHops verifies the O(log n) routing bound: average
// hops on a 1024-node ring must stay below ~ log2(n).
func TestLookupLogarithmicHops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := NewRandom(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		_, hops, err := r.Lookup(rng.Intn(r.Len()), rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	avg := float64(total) / trials
	if limit := math.Log2(1024); avg > limit {
		t.Errorf("average hops %.2f exceeds log2(n) = %.2f", avg, limit)
	}
}

func TestLookupValidation(t *testing.T) {
	r, err := New([]uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Lookup(-1, 0); err == nil {
		t.Error("negative start accepted")
	}
	if _, _, err := r.Lookup(5, 0); err == nil {
		t.Error("out-of-range start accepted")
	}
	if err := r.Fail(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Lookup(0, 0); err == nil {
		t.Error("dead start accepted")
	}
}

func TestFailRecoverBounds(t *testing.T) {
	r, err := New([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(3); err == nil {
		t.Error("Fail out of range accepted")
	}
	if err := r.Recover(-1); err == nil {
		t.Error("Recover out of range accepted")
	}
	if err := r.Fail(0); err != nil {
		t.Error(err)
	}
	if r.AliveCount() != 0 {
		t.Error("AliveCount after failing the only node")
	}
	if err := r.Recover(0); err != nil {
		t.Error(err)
	}
	if !r.Alive(0) || r.Alive(-1) || r.Alive(1) {
		t.Error("Alive accessor misbehaves")
	}
}

// TestLookupRoutesAroundFailures kills 30% of nodes WITHOUT stabilizing and
// verifies lookups still find the correct (post-failure) owner via
// successor lists and finger skipping.
func TestLookupRoutesAroundFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r, err := NewRandom(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if rng.Float64() < 0.3 {
			if err := r.Fail(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	ok := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		start := rng.Intn(r.Len())
		if !r.Alive(start) {
			continue
		}
		key := rng.Uint64()
		got, _, err := r.Lookup(start, key)
		if err != nil {
			continue // a torn successor list is possible pre-stabilization
		}
		want, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("only %d lookups succeeded under unrepaired failures", ok)
	}

	// After stabilization every lookup must succeed exactly.
	r.Stabilize()
	for trial := 0; trial < trials; trial++ {
		start := rng.Intn(r.Len())
		if !r.Alive(start) {
			continue
		}
		key := rng.Uint64()
		got, _, err := r.Lookup(start, key)
		if err != nil {
			t.Fatalf("post-stabilize trial %d: %v", trial, err)
		}
		want, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-stabilize trial %d: got %d, want %d", trial, got, want)
		}
	}
}

func TestSuccessorAllDead(t *testing.T) {
	r, err := New([]uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Successor(0); err == nil {
		t.Error("Successor on dead ring succeeded, want error")
	}
}

func TestSingleNodeRing(t *testing.T) {
	r, err := New([]uint64{42})
	if err != nil {
		t.Fatal(err)
	}
	owner, hops, err := r.Lookup(0, 7)
	if err != nil || owner != 0 {
		t.Errorf("single-node lookup = %d, %d, %v", owner, hops, err)
	}
}

func TestPointToKeyMonotone(t *testing.T) {
	if PointToKey(0) != 0 {
		t.Errorf("PointToKey(0) = %d", PointToKey(0))
	}
	prev := uint64(0)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.999999} {
		k := PointToKey(x)
		if k <= prev && x > 0 {
			t.Errorf("PointToKey not increasing at %g", x)
		}
		prev = k
	}
	// Clamping.
	if PointToKey(-1) != 0 {
		t.Error("negative input not clamped")
	}
	if PointToKey(2) < PointToKey(0.999) {
		t.Error("input >= 1 not clamped high")
	}
}

func TestQuickLookupAgreesWithSuccessor(t *testing.T) {
	err := quick.Check(func(seed int64, key uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := NewRandom(rng, 1+rng.Intn(64))
		if err != nil {
			return false
		}
		got, _, err := r.Lookup(rng.Intn(r.Len()), key)
		if err != nil {
			return false
		}
		want, err := r.Successor(key)
		return err == nil && got == want
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	r, err := NewRandom(rng, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Lookup(i%r.Len(), rng.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJoin(t *testing.T) {
	r, err := New([]uint64{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := r.Join(150)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 || !r.Alive(idx) || r.ID(idx) != 150 {
		t.Fatalf("join state: len=%d alive=%v id=%d", r.Len(), r.Alive(idx), r.ID(idx))
	}
	// The new node now owns keys in (100, 150].
	owner, err := r.Successor(120)
	if err != nil {
		t.Fatal(err)
	}
	if owner != idx {
		t.Errorf("Successor(120) = node %d (ID %d), want the joiner", owner, r.ID(owner))
	}
	// Lookups route to it from every existing node.
	for start := 0; start < 3; start++ {
		got, _, err := r.Lookup(start, 110)
		if err != nil {
			t.Fatal(err)
		}
		if got != idx {
			t.Errorf("Lookup(from %d, 110) = %d, want joiner %d", start, got, idx)
		}
	}
	// Duplicate IDs are rejected.
	if _, err := r.Join(200); err == nil {
		t.Error("duplicate join accepted")
	}
}

func TestJoinManyKeepsLookupConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r, err := NewRandom(rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 32; j++ {
		if _, err := r.Join(rng.Uint64()); err != nil {
			// Random collision with an existing ID: astronomically rare,
			// but legal to skip.
			continue
		}
	}
	for trial := 0; trial < 100; trial++ {
		start := rng.Intn(r.Len())
		key := rng.Uint64()
		got, _, err := r.Lookup(start, key)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Successor(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: lookup %d, want %d", trial, got, want)
		}
	}
}
