// Package chord implements a Chord distributed hash table — the P2P
// instance of the paper's geometric network model (Sec. 2): every node
// owns an ID on a one-dimensional ring, and a key is stored at its
// successor, the first node clockwise from the key. The Sec. 4
// pre-distribution protocol maps each of the M seeded cache locations to a
// ring key and routes coded blocks to the key's successor.
//
// The implementation follows the Chord paper's structure: per-node finger
// tables for O(log n) lookups, successor lists for fault tolerance, and a
// Stabilize step that repairs tables after churn (modeling the converged
// state of the periodic stabilization protocol). Between failures and
// stabilization, lookups route around dead fingers via successor lists,
// as real deployments do.
package chord

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

const (
	// fingerBits is the ring size exponent m: IDs live on a 2^64 ring.
	fingerBits = 64
	// successorListLen is the per-node successor-list length r.
	successorListLen = 8
)

// node is one ring participant.
type node struct {
	id         uint64
	alive      bool
	fingers    [fingerBits]int // node indices; -1 when unset
	successors []int           // node indices, nearest first
}

// Ring is a Chord ring over a node population with dynamic liveness.
// All methods are safe for concurrent use: mutators (Join, Fail, Recover,
// Stabilize) take the write lock, queries the read lock, so a membership
// monitor can drive the ring while placement lookups race it.
type Ring struct {
	mu    sync.RWMutex
	nodes []node
	// byID sorts node indices by ID for ground-truth successor queries.
	byID []int
}

// New builds a ring from explicit node IDs (must be unique) and runs an
// initial stabilization so tables start converged.
func New(ids []uint64) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("chord: empty ring")
	}
	seen := make(map[uint64]bool, len(ids))
	r := &Ring{nodes: make([]node, len(ids)), byID: make([]int, len(ids))}
	for i, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("chord: duplicate node ID %#x", id)
		}
		seen[id] = true
		r.nodes[i] = node{id: id, alive: true}
		r.byID[i] = i
	}
	sort.Slice(r.byID, func(a, b int) bool { return r.nodes[r.byID[a]].id < r.nodes[r.byID[b]].id })
	r.stabilizeLocked()
	return r, nil
}

// NewRandom builds a ring of n nodes with IDs drawn uniformly from the
// 64-bit space (the usual hash-of-address model).
func NewRandom(rng *rand.Rand, n int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chord: ring size %d, want > 0", n)
	}
	ids := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(ids) < n {
		id := rng.Uint64()
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return New(ids)
}

// Len returns the node population size (alive or not).
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// ID returns node i's ring identifier.
func (r *Ring) ID(i int) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[i].id
}

// Alive reports whether node i is alive.
func (r *Ring) Alive(i int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return i >= 0 && i < len(r.nodes) && r.nodes[i].alive
}

// AliveCount returns the number of alive nodes.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for i := range r.nodes {
		if r.nodes[i].alive {
			n++
		}
	}
	return n
}

// Fail marks node i dead. Its state remains (a failed node cannot serve
// queries or blocks) until Recover.
func (r *Ring) Fail(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("chord: node %d out of range", i)
	}
	r.nodes[i].alive = false
	return nil
}

// Recover marks node i alive again (a rejoin with the same ID). Call
// Stabilize to reintegrate it into routing tables.
func (r *Ring) Recover(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("chord: node %d out of range", i)
	}
	r.nodes[i].alive = true
	return nil
}

// Join adds a brand-new node with the given ID to the population, alive
// and immediately stabilized into every routing table (modeling a
// completed Chord join). It returns the new node's index.
func (r *Ring) Join(id uint64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.nodes {
		if r.nodes[i].id == id {
			return 0, fmt.Errorf("chord: node ID %#x already present", id)
		}
	}
	idx := len(r.nodes)
	r.nodes = append(r.nodes, node{id: id, alive: true})
	// Insert into the ID-sorted index.
	pos := sort.Search(len(r.byID), func(i int) bool { return r.nodes[r.byID[i]].id >= id })
	r.byID = append(r.byID, 0)
	copy(r.byID[pos+1:], r.byID[pos:])
	r.byID[pos] = idx
	r.stabilizeLocked()
	return idx, nil
}

// inInterval reports whether x lies in the clockwise-open interval (a, b]
// on the ring.
func inInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: the interval is the full ring
}

// Successor returns the alive node owning key — the ground truth the
// routed Lookup must agree with.
func (r *Ring) Successor(key uint64) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Binary search the first ID >= key, then scan clockwise for liveness.
	n := len(r.byID)
	lo := sort.Search(n, func(i int) bool { return r.nodes[r.byID[i]].id >= key })
	for off := 0; off < n; off++ {
		idx := r.byID[(lo+off)%n]
		if r.nodes[idx].alive {
			return idx, nil
		}
	}
	return 0, fmt.Errorf("chord: no alive node owns key %#x", key)
}

// Successors returns up to n distinct alive nodes clockwise from key,
// nearest first — the key's replica set in the successor-list placement
// model (Chord's own replication rule, and the decentralized fragment
// placement of Dimakis et al.). Fewer than n nodes come back when the
// alive population is smaller; an empty ring is an error. The result is
// a fresh slice ordered purely by ring geometry, so the same key and the
// same alive membership always produce the same assignment.
func (r *Ring) Successors(key uint64, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chord: successor count %d, want > 0", n)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := len(r.byID)
	lo := sort.Search(total, func(i int) bool { return r.nodes[r.byID[i]].id >= key })
	out := make([]int, 0, n)
	for off := 0; off < total && len(out) < n; off++ {
		idx := r.byID[(lo+off)%total]
		if r.nodes[idx].alive {
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chord: no alive node owns key %#x", key)
	}
	return out, nil
}

// Stabilize rebuilds every alive node's successor list and finger table
// from the current alive membership — the fixed point of Chord's periodic
// stabilize/fix_fingers protocol.
func (r *Ring) Stabilize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stabilizeLocked()
}

func (r *Ring) stabilizeLocked() {
	aliveSorted := make([]int, 0, len(r.byID))
	for _, idx := range r.byID {
		if r.nodes[idx].alive {
			aliveSorted = append(aliveSorted, idx)
		}
	}
	if len(aliveSorted) == 0 {
		return
	}
	pos := make(map[int]int, len(aliveSorted))
	for p, idx := range aliveSorted {
		pos[idx] = p
	}
	for _, idx := range aliveSorted {
		nd := &r.nodes[idx]
		p := pos[idx]
		// Successor list: the next r alive nodes clockwise.
		nd.successors = nd.successors[:0]
		for off := 1; off <= successorListLen && off < len(aliveSorted)+1; off++ {
			nd.successors = append(nd.successors, aliveSorted[(p+off)%len(aliveSorted)])
		}
		// Fingers: finger[k] = successor(id + 2^k).
		for k := 0; k < fingerBits; k++ {
			target := nd.id + 1<<uint(k)
			lo := sort.Search(len(aliveSorted), func(i int) bool {
				return r.nodes[aliveSorted[i]].id >= target
			})
			nd.fingers[k] = aliveSorted[lo%len(aliveSorted)]
		}
	}
}

// Lookup routes a query for key from the alive node start, returning the
// owning node and the number of hops taken. Dead fingers encountered
// mid-route (after failures, before stabilization) are skipped in favor of
// closer-preceding alternatives or the successor list.
func (r *Ring) Lookup(start int, key uint64) (owner, hops int, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if start < 0 || start >= len(r.nodes) {
		return 0, 0, fmt.Errorf("chord: start node %d out of range", start)
	}
	if !r.nodes[start].alive {
		return 0, 0, fmt.Errorf("chord: start node %d is not alive", start)
	}
	cur := start
	for hops = 0; hops <= 2*len(r.nodes); {
		nd := &r.nodes[cur]
		// Does the key land on our immediate (alive) successor?
		succ := -1
		for _, s := range nd.successors {
			if r.nodes[s].alive {
				succ = s
				break
			}
		}
		if succ < 0 {
			return 0, 0, fmt.Errorf("chord: node %d has no alive successor", cur)
		}
		if inInterval(key, nd.id, r.nodes[succ].id) {
			return succ, hops + 1, nil
		}
		// Forward to the closest alive finger preceding the key.
		next := -1
		for k := fingerBits - 1; k >= 0; k-- {
			f := nd.fingers[k]
			if f < 0 || !r.nodes[f].alive || f == cur {
				continue
			}
			if inInterval(r.nodes[f].id, nd.id, key-1) {
				next = f
				break
			}
		}
		if next == -1 {
			next = succ // fall back to the successor list
		}
		cur = next
		hops++
	}
	return 0, 0, fmt.Errorf("chord: lookup for %#x from %d exceeded hop bound", key, start)
}

// PointToKey maps a coordinate in [0, 1) onto the ring — how the
// pre-distribution protocol converts a seeded cache location into a DHT
// key.
func PointToKey(x float64) uint64 {
	if x < 0 {
		x = 0
	}
	if x >= 1 {
		x = 1 - 1e-16
	}
	return uint64(x * (1 << 63) * 2)
}
