package gpsr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestStepValidation(t *testing.T) {
	r, _ := denseRouter(t, 40, 50, 0.3)
	dst := geom.Point{X: 0.5, Y: 0.5}
	if _, err := r.Step(-1, dst, PacketState{}); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := r.Step(99, dst, PacketState{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	alive := make([]bool, 50)
	for i := range alive {
		alive[i] = i != 7
	}
	if err := r.SetAlive(alive); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(7, dst, PacketState{}); err == nil {
		t.Error("dead node accepted")
	}
}

// TestStepDrivenForwardingMatchesRoute is the refactor's contract: driving
// packets hop by hop through Step — exactly what the message-passing
// cluster does — must reproduce Route's path bit for bit, because Route is
// defined as the centralized wrapper over Step.
func TestStepDrivenForwardingMatchesRoute(t *testing.T) {
	r, g := denseRouter(t, 41, 250, 0.13)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		want, err := r.Route(src, dst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Re-derive the path one Step at a time.
		got := []int{src}
		cur := src
		var st PacketState
		for hop := 0; hop < 10*g.Len(); hop++ {
			res, err := r.Step(cur, dst, st)
			if err != nil {
				t.Fatalf("trial %d hop %d: %v", trial, hop, err)
			}
			if res.Arrived {
				if res.Home != cur {
					t.Fatalf("trial %d: Home %d != current node %d", trial, res.Home, cur)
				}
				break
			}
			got = append(got, res.Next)
			cur = res.Next
			st = res.State
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Step path length %d, Route %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: paths diverge at hop %d: %v vs %v", trial, i, got, want)
			}
		}
	}
}

// TestStepStateIsSelfContained: routing must not depend on any state other
// than the packet header — replaying a prefix of hops from a copied state
// must continue identically (nodes are stateless).
func TestStepStateIsSelfContained(t *testing.T) {
	r, g := denseRouter(t, 43, 200, 0.14)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}

		// Walk 5 hops, snapshotting the state mid-route.
		cur := src
		var st PacketState
		type snap struct {
			cur int
			st  PacketState
		}
		var snaps []snap
		for hop := 0; hop < 5; hop++ {
			snaps = append(snaps, snap{cur, st})
			res, err := r.Step(cur, dst, st)
			if err != nil {
				t.Fatal(err)
			}
			if res.Arrived {
				break
			}
			cur, st = res.Next, res.State
		}
		// Resume from each snapshot: the continuation must terminate and at
		// the same home node as the full route.
		full, err := r.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		wantHome := full[len(full)-1]
		for _, s := range snaps {
			cur, st := s.cur, s.st
			var home int
			for hop := 0; hop < 10*g.Len(); hop++ {
				res, err := r.Step(cur, dst, st)
				if err != nil {
					t.Fatal(err)
				}
				if res.Arrived {
					home = res.Home
					break
				}
				cur, st = res.Next, res.State
			}
			if home != wantHome {
				t.Fatalf("trial %d: resumed route delivered to %d, want %d", trial, home, wantHome)
			}
		}
	}
}

// TestStepGreedyStateStaysZero: pure greedy hops carry no state, so
// intermediate nodes need nothing beyond the destination.
func TestStepGreedyStateStaysZero(t *testing.T) {
	r, g := denseRouter(t, 45, 150, 0.2)
	rng := rand.New(rand.NewSource(46))
	zero := PacketState{}
	for trial := 0; trial < 50; trial++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		cur := src
		st := zero
		for hop := 0; hop < g.Len(); hop++ {
			res, err := r.Step(cur, dst, st)
			if err != nil {
				t.Fatal(err)
			}
			if res.Arrived {
				break
			}
			if res.State.Mode == GreedyMode && res.State != zero {
				t.Fatalf("greedy hop produced non-zero state: %+v", res.State)
			}
			cur, st = res.Next, res.State
		}
	}
}
