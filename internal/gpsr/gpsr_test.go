package gpsr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func denseRouter(t testing.TB, seed int64, n int, radius float64) (*Router, *geom.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *geom.Graph
	for {
		pos := geom.RandomPoints(rng, n)
		var err error
		g, err = geom.NewUnitDiskGraph(pos, radius)
		if err != nil {
			t.Fatal(err)
		}
		if g.Connected() {
			break
		}
	}
	r, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestRouteValidation(t *testing.T) {
	r, _ := denseRouter(t, 1, 50, 0.3)
	if _, err := r.Route(-1, geom.Point{X: 0.5, Y: 0.5}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := r.Route(50, geom.Point{X: 0.5, Y: 0.5}); err == nil {
		t.Error("out-of-range source accepted")
	}
	alive := make([]bool, 50)
	for i := range alive {
		alive[i] = true
	}
	alive[3] = false
	if err := r.SetAlive(alive); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(3, geom.Point{X: 0.5, Y: 0.5}); err == nil {
		t.Error("dead source accepted")
	}
	if err := r.SetAlive(make([]bool, 3)); err == nil {
		t.Error("wrong-length alive vector accepted")
	}
}

func TestAliveAccessor(t *testing.T) {
	r, _ := denseRouter(t, 2, 20, 0.4)
	if !r.Alive(0) || r.Alive(-1) || r.Alive(99) {
		t.Error("Alive accessor misbehaves")
	}
}

// TestRouteReachesHomeNode is the core delivery property: on dense
// connected deployments, routing to a random point terminates at (or very
// near) the node closest to that point.
func TestRouteReachesHomeNode(t *testing.T) {
	r, g := denseRouter(t, 3, 300, 0.12)
	rng := rand.New(rand.NewSource(4))
	exact, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		path, err := r.Route(src, dst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if path[0] != src {
			t.Fatalf("path does not start at source: %v", path)
		}
		last := path[len(path)-1]
		want, err := r.HomeNode(dst)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if last == want {
			exact++
		} else if g.Pos(last).Dist(dst) > g.Pos(want).Dist(dst)+0.12 {
			// The simplified perimeter mode may occasionally settle on a
			// nearby face node, but never far from the true home.
			t.Fatalf("trial %d: delivered to %d at dist %.3f, home %d at dist %.3f",
				trial, last, g.Pos(last).Dist(dst), want, g.Pos(want).Dist(dst))
		}
	}
	if exact < total*9/10 {
		t.Errorf("only %d/%d routes reached the exact home node", exact, total)
	}
}

// TestRoutePathIsConnected verifies every hop uses a real edge between
// alive nodes.
func TestRoutePathIsConnected(t *testing.T) {
	r, g := denseRouter(t, 5, 200, 0.15)
	rng := rand.New(rand.NewSource(6))
	isEdge := func(u, v int) bool {
		for _, w := range g.Neighbors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 50; trial++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		path, err := r.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(path); i++ {
			if !isEdge(path[i-1], path[i]) {
				t.Fatalf("hop %d->%d is not an edge", path[i-1], path[i])
			}
		}
	}
}

// TestRouteSurvivesFailures kills a third of the nodes and verifies routing
// still delivers among the survivors when they remain connected.
func TestRouteSurvivesFailures(t *testing.T) {
	r, g := denseRouter(t, 7, 300, 0.15)
	rng := rand.New(rand.NewSource(8))
	alive := make([]bool, g.Len())
	for i := range alive {
		alive[i] = rng.Float64() > 0.33
	}
	alive[0] = true
	if err := r.SetAlive(alive); err != nil {
		t.Fatal(err)
	}
	// Check survivor connectivity via BFS over alive nodes; skip the test
	// body if the failure pattern partitioned the network.
	if !aliveConnected(g, alive) {
		t.Skip("survivor topology partitioned for this seed")
	}
	delivered := 0
	for trial := 0; trial < 100; trial++ {
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		path, err := r.Route(0, dst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, v := range path {
			if !alive[v] {
				t.Fatalf("route passes through dead node %d", v)
			}
		}
		want, err := r.HomeNode(dst)
		if err != nil {
			t.Fatal(err)
		}
		if path[len(path)-1] == want {
			delivered++
		}
	}
	if delivered < 85 {
		t.Errorf("only %d/100 routes reached the home node under failures", delivered)
	}
}

func aliveConnected(g *geom.Graph, alive []bool) bool {
	start := -1
	count := 0
	for i, a := range alive {
		if a {
			count++
			if start < 0 {
				start = i
			}
		}
	}
	if count == 0 {
		return true
	}
	seen := make([]bool, g.Len())
	seen[start] = true
	stack := []int{start}
	reached := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if alive[w] && !seen[w] {
				seen[w] = true
				reached++
				stack = append(stack, w)
			}
		}
	}
	return reached == count
}

// TestRouteToOwnLocation: routing from a node to its own position is a
// zero-hop route.
func TestRouteToOwnLocation(t *testing.T) {
	r, g := denseRouter(t, 9, 100, 0.2)
	for src := 0; src < 10; src++ {
		path, err := r.Route(src, g.Pos(src))
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 1 || path[0] != src {
			t.Errorf("route to own position = %v, want [%d]", path, src)
		}
	}
}

func TestHomeNodeMatchesClosest(t *testing.T) {
	r, g := denseRouter(t, 10, 100, 0.2)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		home, err := r.HomeNode(dst)
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.ClosestNode(dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if home != want {
			t.Errorf("HomeNode = %d, want %d", home, want)
		}
	}
}

func BenchmarkRoute300(b *testing.B) {
	r, g := denseRouter(b, 12, 300, 0.12)
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(g.Len())
		dst := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if _, err := r.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
