// Package gpsr implements greedy perimeter stateless routing over a
// geometric graph — the sensor-network routing substrate the Sec. 4
// pre-distribution protocol assumes ("a geometric routing protocol can
// route source blocks to a random point in the geometric network such as
// GPSR").
//
// Routing is location-centric, GHT style: a packet addressed to a point is
// delivered to the point's home node — the node closest to it. Forwarding
// is greedy (always to the neighbor strictly closer to the destination);
// at a local minimum the packet enters perimeter mode and traverses the
// face of the Gabriel-planarized graph intersected by the line to the
// destination under the right-hand rule, changing faces at edges that
// cross that line closer to the destination (the GPSR crossing rule) and
// resuming greedy forwarding as soon as a node closer than the point of
// entry is reached. A face tour that completes without progress ends the
// route at the home node, mirroring GHT's home-perimeter confirmation.
//
// The protocol is packet-stateless on nodes: all per-route state travels
// in PacketState, and Step forwards one hop using only information local
// to the current node — its neighbors' positions and its own planar
// adjacency (both locally computable in a real deployment). Route is the
// centralized convenience wrapper; internal/cluster drives Step from
// per-node goroutines as an actual message-passing system.
package gpsr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Router routes packets over a fixed node deployment. Node failures are
// modeled with SetAlive; the planar subgraph is re-derived from the
// surviving topology, since dead witnesses must not suppress Gabriel
// edges.
type Router struct {
	g     *geom.Graph
	alive []bool
	// gabriel[v] holds v's planar neighbors sorted by polar angle, used by
	// the right-hand rule.
	gabriel [][]int
	// maxSteps caps a single route; defaults to 4 * |V|.
	maxSteps int
}

// New builds a router over the given connectivity graph with all nodes
// alive.
func New(g *geom.Graph) (*Router, error) {
	if g == nil {
		return nil, fmt.Errorf("gpsr: nil graph")
	}
	r := &Router{
		g:        g,
		alive:    make([]bool, g.Len()),
		maxSteps: 4 * g.Len(),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	r.replanarize()
	return r, nil
}

// SetAlive marks node liveness and recomputes the planar subgraph over the
// survivors. The slice must have one entry per node.
func (r *Router) SetAlive(alive []bool) error {
	if len(alive) != r.g.Len() {
		return fmt.Errorf("gpsr: alive vector has %d entries, want %d", len(alive), r.g.Len())
	}
	copy(r.alive, alive)
	r.replanarize()
	return nil
}

// Alive reports whether node i is alive.
func (r *Router) Alive(i int) bool { return i >= 0 && i < len(r.alive) && r.alive[i] }

// replanarize rebuilds the angle-sorted Gabriel adjacency over alive nodes.
func (r *Router) replanarize() {
	n := r.g.Len()
	r.gabriel = make([][]int, n)
	for u := 0; u < n; u++ {
		if !r.alive[u] {
			continue
		}
		pu := r.g.Pos(u)
		for _, v := range r.g.Neighbors(u) {
			if v <= u || !r.alive[v] {
				continue
			}
			mid := pu.Mid(r.g.Pos(v))
			r2 := pu.Dist2(r.g.Pos(v)) / 4
			blocked := false
			for _, w := range r.g.Neighbors(u) {
				if w != v && r.alive[w] && mid.Dist2(r.g.Pos(w)) < r2-1e-15 {
					blocked = true
					break
				}
			}
			if !blocked {
				r.gabriel[u] = append(r.gabriel[u], v)
				r.gabriel[v] = append(r.gabriel[v], u)
			}
		}
	}
	for u := 0; u < n; u++ {
		nbrs := r.gabriel[u]
		pu := r.g.Pos(u)
		sort.Slice(nbrs, func(i, j int) bool {
			return r.angleFrom(pu, nbrs[i]) < r.angleFrom(pu, nbrs[j])
		})
	}
}

func (r *Router) angleFrom(from geom.Point, to int) float64 {
	p := r.g.Pos(to)
	return math.Atan2(p.Y-from.Y, p.X-from.X)
}

// Mode is a packet's forwarding mode.
type Mode int

const (
	// GreedyMode forwards to the neighbor strictly closer to the
	// destination. The zero PacketState is a fresh greedy packet.
	GreedyMode Mode = iota
	// PerimeterMode traverses the planar face enclosing the destination
	// by the right-hand rule.
	PerimeterMode
)

// PacketState is the per-packet routing state GPSR carries in the packet
// header — nodes themselves stay stateless. A zero PacketState starts a
// fresh greedy packet. The perimeter fields record where the packet
// entered perimeter mode (Entry, EntryD), the best crossing of the
// Lp→destination segment seen so far (LastCross), the first edge of the
// face being toured (FirstCur → FirstNext, with Started marking whether
// that edge has been traversed yet), and the previous hop (Prev) for the
// right-hand rule.
type PacketState struct {
	Mode      Mode
	Entry     int
	EntryD    float64
	LastCross float64
	FirstCur  int
	FirstNext int
	Prev      int
	Started   bool
}

// StepResult is the outcome of forwarding a packet one hop.
type StepResult struct {
	// Arrived reports packet termination: the current node is the home
	// node (Home == the node Step was invoked at).
	Arrived bool
	Home    int
	// Next is the next hop and State the header to carry to it (valid
	// when !Arrived).
	Next  int
	State PacketState
}

// Step forwards a packet currently held by node cur one hop toward the
// home node of dst, using only information local to cur (its neighbors'
// positions and its planar adjacency) plus the packet-carried state —
// the distributed, stateless form of the routing the centralized Route
// wraps.
func (r *Router) Step(cur int, dst geom.Point, st PacketState) (StepResult, error) {
	if cur < 0 || cur >= r.g.Len() {
		return StepResult{}, fmt.Errorf("gpsr: node %d out of range", cur)
	}
	if !r.alive[cur] {
		return StepResult{}, fmt.Errorf("gpsr: node %d is not alive", cur)
	}
	if r.g.Pos(cur).Dist2(dst) == 0 {
		return StepResult{Arrived: true, Home: cur}, nil
	}

	if st.Mode != PerimeterMode {
		if next, ok := r.greedyNext(cur, dst); ok {
			return StepResult{Next: next}, nil // State stays zero: greedy
		}
		// Local minimum: enter perimeter mode at cur.
		if len(r.gabriel[cur]) == 0 {
			return StepResult{Arrived: true, Home: cur}, nil
		}
		d := r.g.Pos(cur).Dist2(dst)
		st = PacketState{
			Mode:      PerimeterMode,
			Entry:     cur,
			EntryD:    d,
			LastCross: d,
			FirstCur:  cur,
			FirstNext: r.firstEdge(cur, dst),
			Prev:      cur,
		}
	} else if r.g.Pos(cur).Dist2(dst) < st.EntryD {
		// Progress past the perimeter entry point: resume greedy.
		return r.Step(cur, dst, PacketState{})
	}

	// Perimeter advance from cur.
	var next int
	if !st.Started && cur == st.FirstCur {
		next = st.FirstNext
	} else {
		next = r.rightHandNext(cur, st.Prev)
	}
	// Face change: while the edge about to be traversed crosses the
	// Entry→dst segment strictly closer to dst than any previous crossing,
	// rotate past it onto the adjacent face.
	lp := r.g.Pos(st.Entry)
	for {
		x, crosses := segmentIntersection(r.g.Pos(cur), r.g.Pos(next), lp, dst)
		if !crosses {
			break
		}
		d := x.Dist2(dst)
		if d >= st.LastCross-1e-15 {
			break
		}
		st.LastCross = d
		rotated := r.rightHandNext(cur, next)
		if rotated == next {
			break // degree-1 bounce; nothing to rotate to
		}
		next = rotated
		st.FirstCur, st.FirstNext = cur, next
		st.Started = false
	}
	if st.Started && cur == st.FirstCur && next == st.FirstNext {
		// Completed the face tour without progress: cur is the home node.
		return StepResult{Arrived: true, Home: cur}, nil
	}
	st.Started = true
	st.Prev = cur
	return StepResult{Next: next, State: st}, nil
}

// Route delivers a packet from node src to the home node of point dst and
// returns the node path taken (starting with src). It fails when src is
// dead or the route exceeds the step cap (a symptom of a partitioned
// survivor topology). Route is the centralized wrapper over Step.
func (r *Router) Route(src int, dst geom.Point) ([]int, error) {
	if src < 0 || src >= r.g.Len() {
		return nil, fmt.Errorf("gpsr: source node %d out of range", src)
	}
	if !r.alive[src] {
		return nil, fmt.Errorf("gpsr: source node %d is not alive", src)
	}
	path := []int{src}
	cur := src
	var st PacketState
	for steps := 0; steps < 3*r.maxSteps; steps++ {
		res, err := r.Step(cur, dst, st)
		if err != nil {
			return nil, err
		}
		if res.Arrived {
			return path, nil
		}
		path = append(path, res.Next)
		cur = res.Next
		st = res.State
	}
	return nil, fmt.Errorf("gpsr: route from %d to (%.3f, %.3f) exceeded %d steps",
		src, dst.X, dst.Y, 3*r.maxSteps)
}

// greedyNext returns the alive neighbor of cur strictly closer to dst, or
// ok == false at a local minimum.
func (r *Router) greedyNext(cur int, dst geom.Point) (int, bool) {
	best := -1
	bestD := r.g.Pos(cur).Dist2(dst)
	for _, w := range r.g.Neighbors(cur) {
		if !r.alive[w] {
			continue
		}
		if d := r.g.Pos(w).Dist2(dst); d < bestD {
			best, bestD = w, d
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// firstEdge returns the first perimeter edge from entry: the planar
// neighbor first clockwise from the ray entry→dst. Together with the
// counterclockwise face successor in rightHandNext, this enters the face
// intersected by the segment entry→dst.
func (r *Router) firstEdge(entry int, dst geom.Point) int {
	nbrs := r.gabriel[entry]
	ref := math.Atan2(dst.Y-r.g.Pos(entry).Y, dst.X-r.g.Pos(entry).X)
	first := nbrs[0]
	bestGap := math.Inf(1)
	for _, w := range nbrs {
		gap := ref - r.angleFrom(r.g.Pos(entry), w)
		for gap <= 0 {
			gap += 2 * math.Pi
		}
		if gap < bestGap {
			bestGap, first = gap, w
		}
	}
	return first
}

// segmentIntersection returns the intersection point of segments ab and
// cd, and whether they properly intersect (shared endpoints and collinear
// overlaps are not treated as crossings).
func segmentIntersection(a, b, c, d geom.Point) (geom.Point, bool) {
	r1x, r1y := b.X-a.X, b.Y-a.Y
	r2x, r2y := d.X-c.X, d.Y-c.Y
	den := r1x*r2y - r1y*r2x
	if math.Abs(den) < 1e-18 {
		return geom.Point{}, false // parallel or collinear
	}
	t := ((c.X-a.X)*r2y - (c.Y-a.Y)*r2x) / den
	u := ((c.X-a.X)*r1y - (c.Y-a.Y)*r1x) / den
	const eps = 1e-12
	if t <= eps || t >= 1-eps || u <= eps || u >= 1-eps {
		return geom.Point{}, false
	}
	return geom.Point{X: a.X + t*r1x, Y: a.Y + t*r1y}, true
}

// rightHandNext returns the next face edge: the neighbor of cur first
// clockwise from the edge (cur, prev).
func (r *Router) rightHandNext(cur, prev int) int {
	nbrs := r.gabriel[cur]
	if len(nbrs) == 1 {
		return nbrs[0] // dead end: bounce back
	}
	pin := r.angleFrom(r.g.Pos(cur), prev)
	best := nbrs[0]
	bestGap := math.Inf(1)
	for _, w := range nbrs {
		if w == prev {
			continue
		}
		gap := pin - r.angleFrom(r.g.Pos(cur), w)
		for gap <= 0 {
			gap += 2 * math.Pi
		}
		if gap < bestGap {
			bestGap, best = gap, w
		}
	}
	return best
}

// HomeNode returns the alive node closest to p — the ground truth the
// routing layer approximates, exposed for verification and for the
// collector's global view.
func (r *Router) HomeNode(p geom.Point) (int, error) {
	return r.g.ClosestNode(p, func(i int) bool { return r.alive[i] })
}
