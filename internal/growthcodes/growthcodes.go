// Package growthcodes implements Growth Codes (Kamra, Feldman, Misra,
// Rubenstein — SIGCOMM 2006), the related-work baseline the paper compares
// its priority schemes against. Growth Codes maximize the number of
// source symbols recovered from partial data but treat all data
// equivalently: a coded symbol is the XOR of a small set of source
// symbols whose degree grows as recovery proceeds, and the sink decodes by
// iterative peeling. The comparison benchmarks show the paper's point:
// with Growth Codes the recovered subset is an arbitrary mix of
// priorities, whereas PLC recovers the most important prefix first.
package growthcodes

import (
	"fmt"
	"math/rand"

	"repro/internal/gf256"
)

// Symbol is one Growth-Codes codeword: the XOR of the source symbols
// listed in Indices.
type Symbol struct {
	Indices []int
	Payload []byte
}

// Clone returns a deep copy of the symbol.
func (s *Symbol) Clone() *Symbol {
	return &Symbol{
		Indices: append([]int(nil), s.Indices...),
		Payload: append([]byte(nil), s.Payload...),
	}
}

// OptimalDegree returns the codeword degree Growth Codes use when the
// sink has already recovered r of n symbols: the degree that maximizes
// the probability of the codeword being immediately decodable, which is
// ~ n/(n-r) (degree 1 while nothing is recovered, growing without bound
// as recovery completes).
func OptimalDegree(n, r int) int {
	if r < 0 {
		r = 0
	}
	if r >= n {
		return n
	}
	d := n / (n - r)
	if d < 1 {
		d = 1
	}
	if d > n {
		d = n
	}
	return d
}

// Encoder produces Growth-Codes symbols over n source payloads.
type Encoder struct {
	n          int
	sources    [][]byte
	payloadLen int
}

// NewEncoder constructs an encoder. sources may be nil/empty for
// index-only experiments, or contain exactly n equal-length payloads.
func NewEncoder(n int, sources [][]byte) (*Encoder, error) {
	if n <= 0 {
		return nil, fmt.Errorf("growthcodes: n = %d, want > 0", n)
	}
	e := &Encoder{n: n}
	if len(sources) > 0 {
		if len(sources) != n {
			return nil, fmt.Errorf("growthcodes: %d source payloads, want %d", len(sources), n)
		}
		e.payloadLen = len(sources[0])
		e.sources = make([][]byte, n)
		for i, s := range sources {
			if len(s) != e.payloadLen {
				return nil, fmt.Errorf("growthcodes: source %d has %d bytes, want %d", i, len(s), e.payloadLen)
			}
			e.sources[i] = append([]byte(nil), s...)
		}
	}
	return e, nil
}

// N returns the number of source symbols.
func (e *Encoder) N() int { return e.n }

// Encode produces one symbol of the given degree: the XOR of `degree`
// distinct uniformly chosen source symbols.
func (e *Encoder) Encode(rng *rand.Rand, degree int) (*Symbol, error) {
	if degree < 1 || degree > e.n {
		return nil, fmt.Errorf("growthcodes: degree %d outside [1, %d]", degree, e.n)
	}
	idx := rng.Perm(e.n)[:degree]
	s := &Symbol{Indices: append([]int(nil), idx...)}
	if e.payloadLen > 0 {
		s.Payload = make([]byte, e.payloadLen)
		for _, i := range idx {
			gf256.AddSlice(s.Payload, e.sources[i])
		}
	} else {
		s.Payload = []byte{}
	}
	return s, nil
}

// EncodeScheduled produces one symbol with the degree the Growth-Codes
// schedule prescribes for a sink that has recovered r symbols (the
// idealized feedback model; the original paper approximates r from
// elapsed rounds).
func (e *Encoder) EncodeScheduled(rng *rand.Rand, recovered int) (*Symbol, error) {
	return e.Encode(rng, OptimalDegree(e.n, recovered))
}

// Decoder is the peeling (iterative belief-propagation) decoder: a
// degree-1 symbol reveals a source symbol, which is subtracted from every
// buffered symbol, possibly cascading.
type Decoder struct {
	n          int
	payloadLen int
	decoded    []bool
	payloads   [][]byte
	count      int
	// buffered holds still-unresolved symbols; byIndex maps a source index
	// to the buffered symbols containing it.
	buffered []*Symbol
	byIndex  map[int][]int
	received int
}

// NewDecoder constructs a peeling decoder over n source symbols with the
// given payload length (0 for index-only experiments).
func NewDecoder(n, payloadLen int) (*Decoder, error) {
	if n <= 0 {
		return nil, fmt.Errorf("growthcodes: n = %d, want > 0", n)
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("growthcodes: negative payload length %d", payloadLen)
	}
	return &Decoder{
		n:          n,
		payloadLen: payloadLen,
		decoded:    make([]bool, n),
		payloads:   make([][]byte, n),
		byIndex:    make(map[int][]int),
	}, nil
}

// Received returns the number of symbols offered to Add.
func (d *Decoder) Received() int { return d.received }

// DecodedCount returns the number of recovered source symbols.
func (d *Decoder) DecodedCount() int { return d.count }

// Decoded reports whether source symbol i is recovered.
func (d *Decoder) Decoded(i int) bool { return i >= 0 && i < d.n && d.decoded[i] }

// Complete reports whether every source symbol is recovered.
func (d *Decoder) Complete() bool { return d.count == d.n }

// Payload returns the recovered payload of source symbol i.
func (d *Decoder) Payload(i int) ([]byte, error) {
	if !d.Decoded(i) {
		return nil, fmt.Errorf("growthcodes: symbol %d is not decoded", i)
	}
	out := make([]byte, d.payloadLen)
	copy(out, d.payloads[i])
	return out, nil
}

// Add absorbs one symbol and runs peeling to a fixed point. It returns
// the number of source symbols newly recovered.
func (d *Decoder) Add(sym *Symbol) (int, error) {
	if sym == nil {
		return 0, fmt.Errorf("growthcodes: nil symbol")
	}
	if len(sym.Payload) != d.payloadLen {
		return 0, fmt.Errorf("growthcodes: payload length %d, want %d", len(sym.Payload), d.payloadLen)
	}
	seen := make(map[int]bool, len(sym.Indices))
	for _, i := range sym.Indices {
		if i < 0 || i >= d.n {
			return 0, fmt.Errorf("growthcodes: index %d out of range [0, %d)", i, d.n)
		}
		if seen[i] {
			return 0, fmt.Errorf("growthcodes: duplicate index %d", i)
		}
		seen[i] = true
	}
	d.received++
	before := d.count

	s := sym.Clone()
	// Subtract already-decoded symbols.
	d.reduce(s)
	switch len(s.Indices) {
	case 0:
		// Fully redundant.
	case 1:
		d.reveal(s.Indices[0], s.Payload)
	default:
		slot := len(d.buffered)
		d.buffered = append(d.buffered, s)
		for _, i := range s.Indices {
			d.byIndex[i] = append(d.byIndex[i], slot)
		}
	}
	return d.count - before, nil
}

// reduce strips decoded indices (and their payload contributions) from s.
func (d *Decoder) reduce(s *Symbol) {
	kept := s.Indices[:0]
	for _, i := range s.Indices {
		if d.decoded[i] {
			if d.payloadLen > 0 {
				gf256.AddSlice(s.Payload, d.payloads[i])
			}
			continue
		}
		kept = append(kept, i)
	}
	s.Indices = kept
}

// reveal records source symbol i and cascades peeling through the buffer.
func (d *Decoder) reveal(i int, payload []byte) {
	type pending struct {
		idx     int
		payload []byte
	}
	queue := []pending{{idx: i, payload: payload}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if d.decoded[p.idx] {
			continue
		}
		d.decoded[p.idx] = true
		d.payloads[p.idx] = append([]byte(nil), p.payload...)
		d.count++
		for _, slot := range d.byIndex[p.idx] {
			s := d.buffered[slot]
			if s == nil {
				continue
			}
			d.reduce(s)
			if len(s.Indices) == 1 {
				queue = append(queue, pending{idx: s.Indices[0], payload: s.Payload})
				d.buffered[slot] = nil
			} else if len(s.Indices) == 0 {
				d.buffered[slot] = nil
			}
		}
		delete(d.byIndex, p.idx)
	}
}
