package growthcodes

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOptimalDegree(t *testing.T) {
	cases := []struct {
		n, r, want int
	}{
		{100, 0, 1},  // nothing recovered: degree 1
		{100, 50, 2}, // half recovered: degree 2
		{100, 75, 4}, // three quarters: degree 4
		{100, 99, 100},
		{100, 100, 100}, // saturated
		{100, -5, 1},    // clamped
		{10, 9, 10},
	}
	for _, tc := range cases {
		if got := OptimalDegree(tc.n, tc.r); got != tc.want {
			t.Errorf("OptimalDegree(%d, %d) = %d, want %d", tc.n, tc.r, got, tc.want)
		}
	}
}

func TestOptimalDegreeMonotone(t *testing.T) {
	prev := 0
	for r := 0; r <= 200; r++ {
		d := OptimalDegree(200, r)
		if d < prev {
			t.Fatalf("degree decreased at r=%d: %d -> %d", r, prev, d)
		}
		if d < 1 || d > 200 {
			t.Fatalf("degree %d out of range at r=%d", d, r)
		}
		prev = d
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewEncoder(3, [][]byte{{1}}); err == nil {
		t.Error("wrong source count accepted")
	}
	if _, err := NewEncoder(2, [][]byte{{1}, {2, 3}}); err == nil {
		t.Error("ragged sources accepted")
	}
}

func TestEncodeDegreeBounds(t *testing.T) {
	e, err := NewEncoder(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := e.Encode(rng, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := e.Encode(rng, 6); err == nil {
		t.Error("degree > n accepted")
	}
	s, err := e.Encode(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Indices) != 3 {
		t.Errorf("degree-3 symbol has %d indices", len(s.Indices))
	}
	seen := map[int]bool{}
	for _, i := range s.Indices {
		if seen[i] {
			t.Error("duplicate index in symbol")
		}
		seen[i] = true
	}
}

func TestEncodePayloadIsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sources := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	e, err := NewEncoder(3, sources)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Encode(rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 2)
	for _, i := range s.Indices {
		want[0] ^= sources[i][0]
		want[1] ^= sources[i][1]
	}
	if !bytes.Equal(s.Payload, want) {
		t.Errorf("payload %v, want %v", s.Payload, want)
	}
}

func TestDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewDecoder(3, -1); err == nil {
		t.Error("negative payload length accepted")
	}
	d, err := NewDecoder(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(nil); err == nil {
		t.Error("nil symbol accepted")
	}
	if _, err := d.Add(&Symbol{Indices: []int{5}, Payload: []byte{}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := d.Add(&Symbol{Indices: []int{1, 1}, Payload: []byte{}}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := d.Add(&Symbol{Indices: []int{1}, Payload: []byte{9}}); err == nil {
		t.Error("wrong payload length accepted")
	}
	if d.Received() != 0 {
		t.Error("rejected symbols counted")
	}
}

func TestPeelingCascade(t *testing.T) {
	// Symbols: {0}, {0,1}, {1,2} — adding in reverse order decodes nothing
	// until {0} arrives, then the cascade recovers all three.
	sources := [][]byte{{10}, {20}, {30}}
	d, err := NewDecoder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	add := func(indices ...int) int {
		t.Helper()
		p := make([]byte, 1)
		for _, i := range indices {
			p[0] ^= sources[i][0]
		}
		n, err := d.Add(&Symbol{Indices: indices, Payload: p})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := add(1, 2); got != 0 {
		t.Fatalf("degree-2 first symbol decoded %d", got)
	}
	if got := add(0, 1); got != 0 {
		t.Fatalf("degree-2 second symbol decoded %d", got)
	}
	if got := add(0); got != 3 {
		t.Fatalf("cascade decoded %d, want 3", got)
	}
	for i, want := range sources {
		got, err := d.Payload(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("payload %d = %v, want %v", i, got, want)
		}
	}
	if !d.Complete() {
		t.Error("decoder not complete")
	}
}

func TestRedundantSymbolIgnored(t *testing.T) {
	d, err := NewDecoder(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(&Symbol{Indices: []int{0}, Payload: []byte{}}); err != nil {
		t.Fatal(err)
	}
	n, err := d.Add(&Symbol{Indices: []int{0}, Payload: []byte{}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || d.DecodedCount() != 1 {
		t.Errorf("redundant symbol decoded %d (count %d)", n, d.DecodedCount())
	}
}

func TestPayloadErrors(t *testing.T) {
	d, err := NewDecoder(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Payload(0); err == nil {
		t.Error("undecoded payload returned")
	}
	if _, err := d.Payload(-1); err == nil {
		t.Error("negative index accepted")
	}
}

// TestScheduledFullRecovery runs the idealized feedback loop: encode with
// the schedule driven by the decoder's actual recovery count; full
// recovery should need far fewer than the coupon-collector bound.
func TestScheduledFullRecovery(t *testing.T) {
	const n = 120
	rng := rand.New(rand.NewSource(3))
	sources := make([][]byte, n)
	for i := range sources {
		sources[i] = make([]byte, 4)
		rng.Read(sources[i])
	}
	e, err := NewEncoder(n, sources)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for !d.Complete() && used < 20*n {
		s, err := e.EncodeScheduled(rng, d.DecodedCount())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
		used++
	}
	if !d.Complete() {
		t.Fatalf("no full recovery after %d symbols", used)
	}
	// Coupon collector for n=120 needs ~ n ln n ≈ 575; Growth Codes should
	// beat that comfortably.
	if used > 500 {
		t.Errorf("scheduled growth codes needed %d symbols (coupon collector ~575)", used)
	}
	for i := range sources {
		got, err := d.Payload(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Errorf("payload %d corrupted", i)
		}
	}
}

// TestEarlyRecoveryBeatsRLC is the Growth-Codes headline property: with
// M < N symbols, a substantial fraction of sources is already recovered
// (where RLC would have recovered none).
func TestEarlyRecoveryBeatsRLC(t *testing.T) {
	const n = 100
	rng := rand.New(rand.NewSource(4))
	e, err := NewEncoder(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		s, err := e.EncodeScheduled(rng, d.DecodedCount())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if d.DecodedCount() < n/4 {
		t.Errorf("only %d/%d recovered from N/2 symbols", d.DecodedCount(), n)
	}
}

// TestQuickPeelingMatchesGaussian cross-checks peeling against the rank
// view: the peeling decoder can never decode MORE than the rank of the
// 0/1 index matrix allows, and decodes exactly the full set when peeling
// reaches rank n.
func TestQuickPeelingMatchesGaussian(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		e, err := NewEncoder(n, nil)
		if err != nil {
			return false
		}
		d, err := NewDecoder(n, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 3*n; i++ {
			s, err := e.EncodeScheduled(rng, d.DecodedCount())
			if err != nil {
				return false
			}
			if _, err := d.Add(s); err != nil {
				return false
			}
		}
		count := 0
		for i := 0; i < n; i++ {
			if d.Decoded(i) {
				count++
			}
		}
		return count == d.DecodedCount() && count <= n
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduledDecode500(b *testing.B) {
	const n = 500
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		e, err := NewEncoder(n, nil)
		if err != nil {
			b.Fatal(err)
		}
		d, err := NewDecoder(n, 0)
		if err != nil {
			b.Fatal(err)
		}
		for !d.Complete() {
			s, err := e.EncodeScheduled(rng, d.DecodedCount())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Add(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
