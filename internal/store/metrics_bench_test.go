package store

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Metrics-overhead benchmark for the wire path, captured by `make
// bench-metrics` into BENCH_metrics.json. MeteredRoundtrip drives a
// put/get round trip over loopback with server AND client sharing one
// live registry (every frame crosses two meterConns and touches a dozen
// counters plus two latency histograms); its Ref twin runs the identical
// round trip fully uninstrumented. ref_ns / metered_ns ≥ 0.95 means the
// whole observability seam costs ≤5% of a network round trip.

func benchmarkMeteredRoundtrip(b *testing.B, reg *metrics.Registry) {
	srv, err := NewServer(ServerConfig{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cl, err := NewClient(ClientConfig{
		Addr:      srv.Addr(),
		OpTimeout: 5 * time.Second,
		Metrics:   reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	levels, err := core.NewLevels(4, 12)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 4<<10)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, 8)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, blk := range blocks {
		if err := cl.Put(ctx, blk); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(8 * (4 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.Get(ctx, -1)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(blocks) {
			b.Fatalf("got %d blocks, want %d", len(got), len(blocks))
		}
	}
}

func BenchmarkMeteredRoundtrip(b *testing.B) {
	benchmarkMeteredRoundtrip(b, metrics.NewRegistry())
}

func BenchmarkMeteredRoundtripRef(b *testing.B) {
	benchmarkMeteredRoundtrip(b, nil)
}
