package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
)

// ReplicatedConfig parameterizes a Replicated store.
type ReplicatedConfig struct {
	// Tolerance is f, the number of simultaneous replica losses the
	// least-important level must survive: the last level is stored on
	// f+1 replicas. Default 1.
	Tolerance int
	// MinWrites is how many copies must land for Put to succeed; the
	// remainder is best-effort, absorbed by retries and later repair.
	// Default 1.
	MinWrites int
	// Metrics, when non-nil, receives fan-out and per-replica outcome
	// counters (see DESIGN.md §10).
	Metrics *metrics.Registry
	// ReplicaLabels, when set (length must match the client count), labels
	// each replica's metric series {node="<label>"} instead of the default
	// positional {replica="<i>"}. The placement layer passes node
	// addresses here so per-shard series stay meaningful as membership
	// shifts replicas between shards.
	ReplicaLabels []string
}

// Replicated fans one logical store out over several servers with a
// priority-differentiated replication factor: level 0 (most important)
// goes to every replica, the last level to Tolerance+1, intermediate
// levels linearly in between. This is the paper's priority semantics at
// the storage layer — the critical prefix survives more node losses.
type Replicated struct {
	clients []*Client
	levels  int
	cfg     ReplicatedConfig
	met     replicatedMetrics
	next    atomic.Uint64
}

// NewReplicated builds a replicated store over the given clients for a
// code with `levels` priority levels.
func NewReplicated(clients []*Client, levels int, cfg ReplicatedConfig) (*Replicated, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("store: replicated store needs at least one client")
	}
	if levels <= 0 {
		return nil, fmt.Errorf("store: replicated store needs at least one level, got %d", levels)
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1
	}
	if cfg.MinWrites <= 0 {
		cfg.MinWrites = 1
	}
	if cfg.MinWrites > len(clients) {
		return nil, fmt.Errorf("store: MinWrites %d exceeds %d replicas", cfg.MinWrites, len(clients))
	}
	if cfg.ReplicaLabels != nil && len(cfg.ReplicaLabels) != len(clients) {
		return nil, fmt.Errorf("store: %d replica labels for %d clients", len(cfg.ReplicaLabels), len(clients))
	}
	return &Replicated{
		clients: append([]*Client(nil), clients...),
		levels:  levels,
		cfg:     cfg,
		met:     newReplicatedMetrics(cfg.Metrics, len(clients), cfg.ReplicaLabels),
	}, nil
}

// Clients returns the per-replica clients as a fresh slice — mutating it
// cannot reorder or swap the store's own replica set (the elements still
// point at the live clients; replica membership itself is immutable here).
func (r *Replicated) Clients() []*Client {
	return append([]*Client(nil), r.clients...)
}

// Levels returns the number of priority levels the store was built for.
func (r *Replicated) Levels() int { return r.levels }

// ReplicaLabels returns the replica labels as a fresh slice — for a
// placement shard, the node addresses in successor order. Nil when the
// store was built without labels (positional replicas).
func (r *Replicated) ReplicaLabels() []string {
	if r.cfg.ReplicaLabels == nil {
		return nil
	}
	return append([]string(nil), r.cfg.ReplicaLabels...)
}

// Close closes every client.
func (r *Replicated) Close() error {
	for _, c := range r.clients {
		c.Close()
	}
	return nil
}

// ReplicasFor returns the replication factor of a priority level:
// linear interpolation from all replicas at level 0 down to
// Tolerance+1 at the last level, clamped to [1, len(clients)].
func (r *Replicated) ReplicasFor(level int) int {
	n := len(r.clients)
	floor := r.cfg.Tolerance + 1
	if floor > n {
		floor = n
	}
	if level <= 0 || r.levels <= 1 || n == floor {
		return n
	}
	if level >= r.levels-1 {
		return floor
	}
	rf := n - int(math.Round(float64(level*(n-floor))/float64(r.levels-1)))
	if rf < floor {
		rf = floor
	}
	if rf > n {
		rf = n
	}
	return rf
}

// Put stores one block on ReplicasFor(b.Level) replicas, chosen by a
// rotating window so load spreads evenly. Writes are sequential and the
// call succeeds once MinWrites copies landed; per-replica failures
// beyond that are absorbed (retries already ran inside each client).
// When the window itself cannot supply MinWrites copies, Put fails over
// to the remaining replicas rather than failing the write — an outage
// only surfaces to the caller once fewer than MinWrites replicas in the
// whole fleet accept the block.
func (r *Replicated) Put(ctx context.Context, b *core.CodedBlock) error {
	return r.PutPreferring(ctx, b, nil)
}

// PutPreferring stores one block like Put but tries the given replica
// indices first, in order, before falling back to the rotating window.
// Out-of-range and duplicate indices are ignored. The repair daemon uses
// it to steer regenerated blocks onto the replicas its audit found
// under-provisioned, instead of re-crowding the healthy ones.
func (r *Replicated) PutPreferring(ctx context.Context, b *core.CodedBlock, prefer []int) error {
	if b == nil {
		return fmt.Errorf("%w: nil block", ErrBadRequest)
	}
	targets := r.ReplicasFor(b.Level)
	start := int((r.next.Add(1) - 1) % uint64(len(r.clients)))
	order := make([]int, 0, len(r.clients))
	taken := make([]bool, len(r.clients))
	for _, i := range prefer {
		if i >= 0 && i < len(r.clients) && !taken[i] {
			taken[i] = true
			order = append(order, i)
		}
	}
	for i := 0; i < len(r.clients); i++ {
		if j := (start + i) % len(r.clients); !taken[j] {
			taken[j] = true
			order = append(order, j)
		}
	}
	r.met.puts.Inc()
	stored := 0
	var errs []error
	for n, idx := range order {
		// The first `targets` replicas are the level's provisioned
		// window; the rest are failover-only, tried while the durability
		// floor is unmet — so a put survives any outage that leaves
		// MinWrites replicas reachable, and the repair daemon later
		// migrates the copies back onto the window.
		if n >= targets && stored >= r.cfg.MinWrites {
			break
		}
		err := r.clients[idx].Put(ctx, b)
		r.met.perReplica[idx].put(err)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			errs = append(errs, err)
			continue
		}
		stored++
	}
	if stored >= r.cfg.MinWrites {
		return nil
	}
	r.met.putErrors.Inc()
	return fmt.Errorf("store: put level %d stored %d/%d copies (want >= %d): %w",
		b.Level, stored, targets, r.cfg.MinWrites, errors.Join(append([]error{ErrStoreUnavailable}, errs...)...))
}

// PutAll stores blocks in order, returning how many succeeded and the
// first error.
func (r *Replicated) PutAll(ctx context.Context, blocks []*core.CodedBlock) (int, error) {
	for i, b := range blocks {
		if err := r.Put(ctx, b); err != nil {
			return i, err
		}
	}
	return len(blocks), nil
}

// StatAll fetches every replica's inventory snapshot concurrently. The
// two slices are indexed by replica: errs[i] is non-nil (and stats[i]
// zero) where a replica was unreachable. Unlike Collect, reaching zero
// replicas is not an error here — an audit of a fully dark fleet is
// still an audit; callers decide how much reachability they need.
func (r *Replicated) StatAll(ctx context.Context) ([]Stats, []error) {
	stats := make([]Stats, len(r.clients))
	errs := make([]error, len(r.clients))
	var wg sync.WaitGroup
	for i, cl := range r.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			stats[i], errs[i] = cl.Stat(ctx)
			r.met.perReplica[i].stat(errs[i])
		}(i, cl)
	}
	wg.Wait()
	return stats, errs
}

// Collect fetches blocks with Level <= maxLevel (maxLevel < 0 for all)
// from every replica concurrently, deduplicates the replicated copies,
// and returns the union. It fails only when every replica fails.
func (r *Replicated) Collect(ctx context.Context, maxLevel int) ([]*core.CodedBlock, error) {
	return r.CollectObject(ctx, core.AllObjects, maxLevel)
}

// CollectObject is Collect restricted to one object (core.AllObjects for
// every object — the wire-compatible legacy request).
func (r *Replicated) CollectObject(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	perReplica := make([][]*core.CodedBlock, len(r.clients))
	errs := make([]error, len(r.clients))
	var wg sync.WaitGroup
	for i, cl := range r.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			perReplica[i], errs[i] = cl.GetObject(ctx, obj, maxLevel)
			r.met.perReplica[i].get(errs[i])
		}(i, cl)
	}
	wg.Wait()
	r.met.collects.Inc()
	seen := make(map[string]struct{})
	var out []*core.CodedBlock
	ok := 0
	for i, blocks := range perReplica {
		if errs[i] != nil {
			continue
		}
		ok++
		for _, b := range blocks {
			data, err := b.MarshalBinary()
			if err != nil {
				continue
			}
			if _, dup := seen[string(data)]; dup {
				r.met.collectDups.Inc()
				continue
			}
			seen[string(data)] = struct{}{}
			out = append(out, b)
		}
	}
	if ok == 0 {
		r.met.collectErrors.Inc()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("store: collect: all %d replicas failed: %w",
			len(r.clients), errors.Join(append([]error{ErrStoreUnavailable}, errs...)...))
	}
	r.met.collectBlocks.Add(uint64(len(out)))
	return out, nil
}
