package store

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkStatsManyObjects exercises the multi-object inventory path
// that used to rebuild its sorted sections by insertion into the middle
// of a slice — O(n²) in the object count, felt by every stat-driven
// audit once a node carries hundreds of namespaces. The fix sorts once.
func BenchmarkStatsManyObjects(b *testing.B) {
	for _, objects := range []int{16, 256, 2048} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			m := NewMemStore(0)
			defer m.Close()
			const levels = 4
			for o := 0; o < objects; o++ {
				obj := core.NamedObject(fmt.Sprintf("bench-%d", o))
				for lvl := 0; lvl < levels; lvl++ {
					wire := []byte(fmt.Sprintf("o%04d-l%d", o, lvl))
					if _, err := m.Put(obj, lvl, wire); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := m.Stats()
				if len(st.PerObject) != objects {
					b.Fatalf("stats found %d objects, want %d", len(st.PerObject), objects)
				}
			}
		})
	}
}
