package store

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// --- helpers ---------------------------------------------------------------

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func fastClientCfg(addr string, d Dialer) ClientConfig {
	return ClientConfig{
		Addr:        addr,
		Dialer:      d,
		DialTimeout: time.Second,
		OpTimeout:   2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
	}
}

func newTestClient(t *testing.T, addr string, d Dialer) *Client {
	t.Helper()
	c, err := NewClient(fastClientCfg(addr, d))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testCode builds a 2-level PLC code (4 critical + 12 bulk source blocks
// of 32 bytes) and n coded blocks from a fixed seed.
func testCode(t *testing.T, n int) (*core.Levels, [][]byte, []*core.CodedBlock) {
	t.Helper()
	levels, err := core.NewLevels(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, n)
	if err != nil {
		t.Fatal(err)
	}
	return levels, sources, blocks
}

// decodeAll feeds blocks to a fresh decoder and returns it.
func decodeAll(t *testing.T, levels *core.Levels, blocks []*core.CodedBlock) *core.Decoder {
	t.Helper()
	dec, err := core.NewDecoder(core.PLC, levels, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := dec.Add(b); err != nil {
			t.Fatalf("decoder rejected collected block: %v", err)
		}
	}
	return dec
}

func checkCriticalLevel(t *testing.T, dec *core.Decoder, levels *core.Levels, sources [][]byte) {
	t.Helper()
	if !dec.LevelDecoded(0) {
		t.Fatalf("critical level not decoded (%d/%d blocks)", dec.DecodedBlocks(), levels.Total())
	}
	for i := 0; i < levels.Size(0); i++ {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("critical block %d corrupted", i)
		}
	}
}

// --- frame layer -----------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello frames")
	if err := writeFrame(&buf, framePut, body); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != framePut || !bytes.Equal(got, body) {
		t.Fatalf("round trip gave type %q body %q", typ, got)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, framePut, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip every byte past the length prefix in turn: CRC must catch all.
	for i := 4; i < len(raw); i++ {
		mauled := append([]byte(nil), raw...)
		mauled[i] ^= 0xA5
		_, _, err := readFrame(bytes.NewReader(mauled), DefaultMaxFrame)
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptFrame", i, err)
		}
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, framePut, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	_, _, err := readFrame(&buf, 512)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversize frame err = %v, want ErrCorruptFrame", err)
	}
}

// --- single server ---------------------------------------------------------

func TestServerPutGetStatPing(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx := context.Background()

	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	levels, sources, blocks := testCode(t, 40)
	if n, err := cl.PutAll(ctx, blocks); err != nil || n != len(blocks) {
		t.Fatalf("PutAll = %d, %v", n, err)
	}
	// Idempotent re-put: dedup keeps the count stable.
	if err := cl.Put(ctx, blocks[0]); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != len(blocks) {
		t.Fatalf("Stat.Blocks = %d, want %d (dedup)", st.Blocks, len(blocks))
	}
	total := 0
	for _, lc := range st.PerLevel {
		total += lc.Count
	}
	if total != st.Blocks {
		t.Fatalf("per-level counts sum to %d, want %d", total, st.Blocks)
	}

	got, err := cl.Get(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("Get returned %d blocks, want %d", len(got), len(blocks))
	}
	dec := decodeAll(t, levels, got)
	checkCriticalLevel(t, dec, levels, sources)
	if !dec.Complete() {
		t.Fatal("full dump should decode completely")
	}

	// Level filter: only level-0 blocks come back.
	lvl0, err := cl.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range lvl0 {
		if b.Level != 0 {
			t.Fatalf("level filter leaked a level-%d block", b.Level)
		}
	}
	if len(lvl0) == 0 || len(lvl0) >= len(blocks) {
		t.Fatalf("level filter returned %d of %d blocks", len(lvl0), len(blocks))
	}
}

func TestClientContextCancel(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, blocks := testCode(t, 1)
	if err := cl.Put(ctx, blocks[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put on canceled ctx = %v, want context.Canceled", err)
	}
}

// flakyDialer fails the first n dials, then delegates.
type flakyDialer struct {
	remaining atomic.Int64
	base      net.Dialer
}

func (d *flakyDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	if d.remaining.Add(-1) >= 0 {
		return nil, errors.New("flaky: injected dial failure")
	}
	return d.base.DialContext(ctx, network, addr)
}

func TestClientRetriesDialFailures(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	d := &flakyDialer{}
	d.remaining.Store(3)
	cl := newTestClient(t, srv.Addr(), d)
	_, _, blocks := testCode(t, 1)
	if err := cl.Put(context.Background(), blocks[0]); err != nil {
		t.Fatalf("retries should absorb 3 dial failures: %v", err)
	}
	if srv.Len() != 1 {
		t.Fatalf("server holds %d blocks, want 1", srv.Len())
	}
}

func TestClientExhaustedRetriesReportUnavailable(t *testing.T) {
	cl := newTestClient(t, "127.0.0.1:1", nil) // reserved port: refused
	cl.cfg.Retry.MaxAttempts = 2
	_, _, blocks := testCode(t, 1)
	err := cl.Put(context.Background(), blocks[0])
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("err = %v, want ErrStoreUnavailable", err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx := context.Background()
	_, _, blocks := testCode(t, 4)
	if _, err := cl.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done() not closed after Shutdown")
	}
	cl.cfg.Retry.MaxAttempts = 2
	if err := cl.Ping(ctx); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("ping after shutdown = %v, want ErrStoreUnavailable", err)
	}
}

func TestShutdownFrameDrainsServer(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	if err := cl.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("server did not drain after shutdown frame")
	}
}

// stallThenRealDialer sends the first dial to a black-hole listener and
// later dials to the real server — a straggler for hedged reads.
type stallThenRealDialer struct {
	stallAddr string
	used      atomic.Bool
	base      net.Dialer
}

func (d *stallThenRealDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	if d.used.CompareAndSwap(false, true) {
		return d.base.DialContext(ctx, network, d.stallAddr)
	}
	return d.base.DialContext(ctx, network, addr)
}

func TestHedgedGetBeatsStraggler(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	_, _, blocks := testCode(t, 8)
	seed := newTestClient(t, srv.Addr(), nil)
	if _, err := seed.PutAll(context.Background(), blocks); err != nil {
		t.Fatal(err)
	}

	hole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	go func() {
		for {
			c, err := hole.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold open, never respond
		}
	}()

	cfg := fastClientCfg(srv.Addr(), &stallThenRealDialer{stallAddr: hole.Addr().String()})
	cfg.HedgeDelay = 20 * time.Millisecond
	cfg.OpTimeout = 5 * time.Second
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	got, err := cl.Get(context.Background(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("hedged get returned %d blocks, want %d", len(got), len(blocks))
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedged get took %v; the hedge should beat the stalled primary", elapsed)
	}
}

// --- replication policy ----------------------------------------------------

func TestReplicasForPolicy(t *testing.T) {
	cases := []struct {
		replicas, levels, tolerance int
		want                        []int
	}{
		{3, 2, 1, []int{3, 2}},
		{3, 3, 1, []int{3, 2, 2}}, // round(0.5) rounds half away from zero
		{5, 3, 1, []int{5, 3, 2}},
		{5, 5, 2, []int{5, 4, 4, 3, 3}},
		{3, 1, 1, []int{3}},
		{2, 4, 3, []int{2, 2, 2, 2}}, // tolerance clamped to replica count
	}
	for _, tc := range cases {
		clients := make([]*Client, tc.replicas)
		for i := range clients {
			clients[i] = &Client{cfg: ClientConfig{Addr: "x"}}
		}
		r, err := NewReplicated(clients, tc.levels, ReplicatedConfig{Tolerance: tc.tolerance})
		if err != nil {
			t.Fatal(err)
		}
		for lvl, want := range tc.want {
			if got := r.ReplicasFor(lvl); got != want {
				t.Errorf("R=%d L=%d f=%d: ReplicasFor(%d) = %d, want %d",
					tc.replicas, tc.levels, tc.tolerance, lvl, got, want)
			}
		}
	}
}

func TestReplicatedSpreadAndCollect(t *testing.T) {
	servers := make([]*Server, 3)
	clients := make([]*Client, 3)
	for i := range servers {
		servers[i] = newTestServer(t, ServerConfig{})
		clients[i] = newTestClient(t, servers[i].Addr(), nil)
	}
	repl, err := NewReplicated(clients, 2, ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	levels, sources, blocks := testCode(t, 40)
	ctx := context.Background()
	if n, err := repl.PutAll(ctx, blocks); err != nil || n != len(blocks) {
		t.Fatalf("PutAll = %d, %v", n, err)
	}

	// Level 0 lands on all 3 replicas, level 1 on exactly 2.
	var n0, n1 int
	for _, b := range blocks {
		if b.Level == 0 {
			n0++
		} else {
			n1++
		}
	}
	stored := 0
	for _, s := range servers {
		stored += s.Len()
	}
	if want := 3*n0 + 2*n1; stored != want {
		t.Fatalf("replicas hold %d copies, want %d (3x%d + 2x%d)", stored, want, n0, n1)
	}

	got, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("Collect deduped to %d blocks, want %d", len(got), len(blocks))
	}
	dec := decodeAll(t, levels, got)
	checkCriticalLevel(t, dec, levels, sources)
}
