package store

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
)

// placedFixture is a small fleet: n live servers plus a Placed front end
// routing over them.
type placedFixture struct {
	servers []*Server
	addrs   []string
	placed  *Placed
}

func newPlacedFixture(t *testing.T, n int, cfg PlacedConfig) *placedFixture {
	t.Helper()
	f := &placedFixture{}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		s := newTestServer(t, ServerConfig{})
		f.servers = append(f.servers, s)
		f.addrs = append(f.addrs, s.Addr())
		clients[i] = newTestClient(t, s.Addr(), nil)
	}
	p, err := NewPlaced(clients, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.placed = p
	return f
}

// keyedBlocks stamps a fresh coded batch with obj.
func keyedBlocks(t *testing.T, obj core.ObjectID, n int) (*core.Levels, [][]byte, []*core.CodedBlock) {
	t.Helper()
	levels, sources, blocks := testCode(t, n)
	for _, b := range blocks {
		b.Object = obj
	}
	return levels, sources, blocks
}

func TestPlacedKeyedEndToEnd(t *testing.T) {
	f := newPlacedFixture(t, 4, PlacedConfig{Replication: 3, Tolerance: 1})
	ctx := context.Background()

	alpha := core.NamedObject("alpha")
	beta := core.NamedObject("beta")
	levels, aSrc, aBlocks := keyedBlocks(t, alpha, 40)
	_, bSrc, bBlocks := keyedBlocks(t, beta, 40)

	if _, err := f.placed.PutAll(ctx, aBlocks); err != nil {
		t.Fatal(err)
	}
	if _, err := f.placed.PutAll(ctx, bBlocks); err != nil {
		t.Fatal(err)
	}

	// Each object decodes from exactly its own namespace, bit-exact.
	for _, tc := range []struct {
		obj core.ObjectID
		src [][]byte
	}{{alpha, aSrc}, {beta, bSrc}} {
		got, err := f.placed.Collect(ctx, tc.obj, -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b.Object != tc.obj {
				t.Fatalf("collect leaked foreign object %s into %s", b.Object, tc.obj)
			}
		}
		checkCriticalLevel(t, decodeAll(t, levels, got), levels, tc.src)
	}

	// Critical-level-only read stays keyed too.
	crit, err := f.placed.Collect(ctx, alpha, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range crit {
		if b.Level != 0 || b.Object != alpha {
			t.Fatalf("level-0 keyed read returned object %s level %d", b.Object, b.Level)
		}
	}

	// Daemon inventories report both namespaces separately.
	seen := map[core.ObjectID]int{}
	for _, s := range f.servers {
		st := s.Stats()
		var sum int
		for _, os := range st.PerObject {
			seen[os.Object] += os.Blocks
			sum += os.Blocks
		}
		if sum != st.Blocks {
			t.Fatalf("per-object blocks %d do not add up to total %d", sum, st.Blocks)
		}
	}
	if seen[alpha] == 0 || seen[beta] == 0 {
		t.Fatalf("per-object stats missing a namespace: %v", seen)
	}
}

// TestPlacedDeterministic pins the acceptance criterion: same fleet,
// same membership sequence → identical assignment, run to run.
func TestPlacedDeterministic(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.0.0.4:7000", "10.0.0.5:7000"}
	build := func() *Placed {
		clients := make([]*Client, len(addrs))
		for i, a := range addrs {
			cl, err := NewClient(ClientConfig{Addr: a})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			clients[i] = cl
		}
		p, err := NewPlaced(clients, 2, PlacedConfig{Replication: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Same membership script on both instances.
		if err := p.SetAlive(addrs[1], false); err != nil {
			t.Fatal(err)
		}
		if err := p.SetAlive(addrs[1], true); err != nil {
			t.Fatal(err)
		}
		if err := p.SetAlive(addrs[3], false); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	objs := []core.ObjectID{
		core.NamedObject("alpha"), core.NamedObject("beta"),
		core.NamedObject("gamma"), core.ObjectID(7), core.ObjectID(1 << 60),
	}
	for _, obj := range objs {
		ra, err := a.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("placement for %s differs across runs: %v vs %v", obj, ra, rb)
		}
		if len(ra) != 3 {
			t.Fatalf("want 3 replicas for %s, got %v", obj, ra)
		}
		for _, addr := range ra {
			if addr == addrs[3] {
				t.Fatalf("failed node still placed for %s: %v", obj, ra)
			}
		}
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("ring membership differs: %v vs %v", a.Members(), b.Members())
	}
}

func TestPlacedChurnReroutesAndHeals(t *testing.T) {
	f := newPlacedFixture(t, 4, PlacedConfig{Replication: 2, Tolerance: 1})
	ctx := context.Background()
	obj := core.NamedObject("churn")

	before, err := f.placed.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := f.placed.Shard(obj)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := f.placed.Shard(obj); again != shard1 {
		t.Fatal("shard cache missed with stable membership")
	}

	// Fail the object's primary: placement must move off it.
	if err := f.placed.SetAlive(before[0], false); err != nil {
		t.Fatal(err)
	}
	after, err := f.placed.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range after {
		if addr == before[0] {
			t.Fatalf("dead node %s still placed: %v", before[0], after)
		}
	}
	if shard2, _ := f.placed.Shard(obj); shard2 == shard1 {
		t.Fatal("membership change did not invalidate shard cache")
	}

	// Writes and reads keep working against the rerouted shard.
	levels, sources, blocks := keyedBlocks(t, obj, 40)
	if _, err := f.placed.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := f.placed.Collect(ctx, obj, -1)
	if err != nil {
		t.Fatal(err)
	}
	checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)

	// Heal: the node rejoins and the original assignment returns.
	if err := f.placed.Join(before[0]); err != nil {
		t.Fatal(err)
	}
	healed, err := f.placed.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(healed, before) {
		t.Fatalf("post-heal placement %v, want original %v", healed, before)
	}
}

func TestPlacedProbe(t *testing.T) {
	f := newPlacedFixture(t, 2, PlacedConfig{})
	ctx := context.Background()
	if err := f.placed.Probe(ctx, f.addrs[0]); err != nil {
		t.Fatalf("probe of live node: %v", err)
	}
	if err := f.placed.Probe(ctx, "nope:1"); err == nil {
		t.Fatal("probe of unknown node succeeded")
	}
	// Shut a node down; its probe must fail so a monitor can see it.
	sctx, cancel := context.WithTimeout(ctx, 2e9)
	defer cancel()
	f.servers[1].Shutdown(sctx)
	if err := f.placed.Probe(ctx, f.addrs[1]); err == nil {
		t.Fatal("probe of downed node succeeded")
	}
}

func TestPlacedValidation(t *testing.T) {
	f := newPlacedFixture(t, 3, PlacedConfig{})
	ctx := context.Background()
	if _, err := f.placed.Shard(core.AllObjects); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wildcard shard: %v", err)
	}
	if err := f.placed.Put(ctx, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil block: %v", err)
	}
	if err := f.placed.SetAlive("ghost:1", false); err == nil {
		t.Fatal("SetAlive accepted unknown address")
	}
	if _, err := NewPlaced(nil, 2, PlacedConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}

	// Zero-object (legacy key-less) blocks still route: the zero object
	// is a namespace like any other at the placement layer.
	_, _, blocks := testCode(t, 4)
	if err := f.placed.Put(ctx, blocks[0]); err != nil {
		t.Fatal(err)
	}

	if err := f.placed.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.placed.Shard(core.NamedObject("x")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("shard after close: %v", err)
	}
}

// TestReplicatedClientsCopy pins the accessor-aliasing fix: mutating the
// returned slice (or the constructor argument) must not corrupt wiring.
func TestReplicatedClientsCopy(t *testing.T) {
	s := newTestServer(t, ServerConfig{})
	cls := []*Client{newTestClient(t, s.Addr(), nil), newTestClient(t, s.Addr(), nil)}
	r, err := NewReplicated(cls, 2, ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	cls[0] = nil // caller scribbles on its own slice: must not matter
	got := r.Clients()
	if got[0] == nil {
		t.Fatal("NewReplicated aliased the caller's slice")
	}
	got[1] = nil // scribble on the accessor's result: must not matter
	if r.Clients()[1] == nil {
		t.Fatal("Clients() leaked the internal slice")
	}
}

func TestGetBodyRoundTrip(t *testing.T) {
	cases := []struct {
		obj      core.ObjectID
		maxLevel int
		wantLen  int
	}{
		{core.AllObjects, -1, getBodyLegacy},
		{core.AllObjects, 3, getBodyLegacy},
		{core.NamedObject("x"), -1, getBodyKeyed},
		{core.NamedObject("x"), 0, getBodyKeyed},
		{core.ZeroObject, 2, getBodyKeyed},
	}
	for _, tc := range cases {
		body := encodeGetBody(tc.obj, tc.maxLevel)
		if len(body) != tc.wantLen {
			t.Fatalf("encodeGetBody(%s, %d) len %d, want %d", tc.obj, tc.maxLevel, len(body), tc.wantLen)
		}
		obj, lvl, err := decodeGetBody(body)
		if err != nil {
			t.Fatal(err)
		}
		if obj != tc.obj || lvl != tc.maxLevel {
			t.Fatalf("round trip (%s, %d) → (%s, %d)", tc.obj, tc.maxLevel, obj, lvl)
		}
	}
	if _, _, err := decodeGetBody([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length get body accepted")
	}
}
