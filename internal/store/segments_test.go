package store

import (
	"context"
	"errors"
	"testing"
	"time"
)

// listingMemStore is a MemStore that also answers the segments op with a
// canned listing — the store package cannot import diskstore (it imports
// us), so this stands in for a disk engine at the wire layer.
type listingMemStore struct {
	*MemStore
	segs []SegmentInfo
}

func (l *listingMemStore) SegmentInfos() []SegmentInfo { return l.segs }

func TestSegmentListRoundTrip(t *testing.T) {
	now := time.Unix(1723100000, 123456789)
	in := []SegmentInfo{
		{ID: 0, Records: 17, Bytes: 4096, Created: now.Add(-time.Hour), Active: false},
		{ID: 1, Records: 0, Bytes: 16, Created: now, Active: true},
	}
	body, err := encodeSegmentList(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeSegmentList(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d segments, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Records != in[i].Records ||
			out[i].Bytes != in[i].Bytes || !out[i].Created.Equal(in[i].Created) ||
			out[i].Active != in[i].Active {
			t.Errorf("segment %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestSegmentListDecodeRejectsHostileBodies(t *testing.T) {
	for name, body := range map[string][]byte{
		"empty":          {},
		"truncated":      {0x00},
		"count overrun":  {0xFF, 0xFF, 1, 2, 3}, // claims 65535 entries in 3 bytes
		"trailing bytes": append([]byte{0x00, 0x00}, 1, 2, 3),
	} {
		if _, err := decodeSegmentList(body); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: decodeSegmentList = %v, want ErrCorruptFrame", name, err)
		}
	}
}

func TestSegmentsOpEndToEnd(t *testing.T) {
	now := time.Now().Truncate(time.Second)
	engine := &listingMemStore{
		MemStore: NewMemStore(0),
		segs: []SegmentInfo{
			{ID: 3, Records: 9, Bytes: 1234, Created: now.Add(-time.Minute)},
			{ID: 4, Records: 1, Bytes: 99, Created: now, Active: true},
		},
	}
	srv := newTestServer(t, ServerConfig{Blocks: engine})
	cl := newTestClient(t, srv.Addr(), nil)
	segs, err := cl.Segments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].ID != 3 || segs[1].ID != 4 || !segs[1].Active || segs[0].Active {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Records != 9 || segs[0].Bytes != 1234 || !segs[0].Created.Equal(now.Add(-time.Minute)) {
		t.Fatalf("segment 0 = %+v", segs[0])
	}
}

func TestSegmentsOpRejectedByMemoryEngine(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	_, err := cl.Segments(context.Background())
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Segments on a memory engine = %v, want ErrBadRequest", err)
	}
}
