package store

import (
	"fmt"
	"net"

	"repro/internal/metrics"
)

// This file is the store's metrics seam: each layer resolves its metric
// names once at construction into a plain struct of pointers, so the hot
// paths do a nil-check plus an atomic add and never touch the registry.
// All constructors accept a nil registry, in which case every field is
// nil and every recording call is a no-op — library users who configure
// no Metrics pay nothing. The name catalog lives in DESIGN.md §10.

// serverMetrics instruments one Server.
type serverMetrics struct {
	activeConns   *metrics.Gauge
	connsAccepted *metrics.Counter
	connsRejected *metrics.Counter

	bytesIn     *metrics.Counter
	bytesOut    *metrics.Counter
	crcFailures *metrics.Counter

	puts         *metrics.Counter
	putsStored   *metrics.Counter
	putsDeduped  *metrics.Counter
	putsRejected *metrics.Counter
	putsFull     *metrics.Counter
	putsBad      *metrics.Counter
	gets         *metrics.Counter
	stats        *metrics.Counter
	segments     *metrics.Counter
	pings        *metrics.Counter
	shutdowns    *metrics.Counter
	unknown      *metrics.Counter
	requestNs    *metrics.Histogram

	deletes        *metrics.Counter
	deletesRemoved *metrics.Counter

	blocks     *metrics.Gauge
	blockBytes *metrics.Gauge
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		activeConns:   r.Gauge("store_server_active_conns"),
		connsAccepted: r.Counter("store_server_conns_accepted_total"),
		connsRejected: r.Counter("store_server_conns_rejected_total"),
		bytesIn:       r.Counter("store_server_frame_bytes_in_total"),
		bytesOut:      r.Counter("store_server_frame_bytes_out_total"),
		crcFailures:   r.Counter("store_server_crc_failures_total"),
		puts:          r.Counter(`store_server_requests_total{op="put"}`),
		gets:          r.Counter(`store_server_requests_total{op="get"}`),
		stats:         r.Counter(`store_server_requests_total{op="stat"}`),
		segments:      r.Counter(`store_server_requests_total{op="segments"}`),
		pings:         r.Counter(`store_server_requests_total{op="ping"}`),
		shutdowns:     r.Counter(`store_server_requests_total{op="shutdown"}`),
		unknown:       r.Counter(`store_server_requests_total{op="unknown"}`),
		deletes:       r.Counter(`store_server_requests_total{op="delete"}`),
		deletesRemoved: r.Counter("store_server_deletes_removed_total"),
		putsStored:    r.Counter("store_server_puts_stored_total"),
		putsDeduped:   r.Counter("store_server_puts_deduped_total"),
		putsRejected:  r.Counter("store_server_puts_rejected_total"),
		putsFull:      r.Counter("store_server_puts_full_total"),
		putsBad:       r.Counter("store_server_puts_bad_total"),
		requestNs:     r.Histogram("store_server_request_ns"),
		blocks:        r.Gauge("store_server_blocks"),
		blockBytes:    r.Gauge("store_server_block_bytes"),
	}
}

// clientMetrics instruments one Client. Clients sharing a registry share
// series, which aggregates a fleet's client traffic into one view.
type clientMetrics struct {
	attempts        *metrics.Counter
	retries         *metrics.Counter
	backoffSleeps   *metrics.Counter
	backoffNs       *metrics.Histogram
	hedgesFired     *metrics.Counter
	hedgesWon       *metrics.Counter
	hedgesCancelled *metrics.Counter
	dials           *metrics.Counter
	dialErrors      *metrics.Counter
	poolHits        *metrics.Counter
	poolMisses      *metrics.Counter
	poisoned        *metrics.Counter
	opOK            *metrics.Counter
	opErrors        *metrics.Counter
	opNs            *metrics.Histogram
	bytesIn         *metrics.Counter
	bytesOut        *metrics.Counter
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	return clientMetrics{
		attempts:        r.Counter("store_client_attempts_total"),
		retries:         r.Counter("store_client_retries_total"),
		backoffSleeps:   r.Counter("store_client_backoff_sleeps_total"),
		backoffNs:       r.Histogram("store_client_backoff_ns"),
		hedgesFired:     r.Counter("store_client_hedges_fired_total"),
		hedgesWon:       r.Counter("store_client_hedges_won_total"),
		hedgesCancelled: r.Counter("store_client_hedges_cancelled_total"),
		dials:           r.Counter("store_client_dials_total"),
		dialErrors:      r.Counter("store_client_dial_errors_total"),
		poolHits:        r.Counter("store_client_pool_hits_total"),
		poolMisses:      r.Counter("store_client_pool_misses_total"),
		poisoned:        r.Counter("store_client_conns_poisoned_total"),
		opOK:            r.Counter("store_client_ops_ok_total"),
		opErrors:        r.Counter("store_client_op_errors_total"),
		opNs:            r.Histogram("store_client_op_ns"),
		bytesIn:         r.Counter("store_client_frame_bytes_in_total"),
		bytesOut:        r.Counter("store_client_frame_bytes_out_total"),
	}
}

// replicaMetrics is one replica's outcome counters inside a Replicated
// store, labeled by replica index.
type replicaMetrics struct {
	putOK, putErr   *metrics.Counter
	getOK, getErr   *metrics.Counter
	statOK, statErr *metrics.Counter
}

// replicatedMetrics instruments one Replicated store.
type replicatedMetrics struct {
	puts          *metrics.Counter
	putErrors     *metrics.Counter
	collects      *metrics.Counter
	collectErrors *metrics.Counter
	collectBlocks *metrics.Counter
	collectDups   *metrics.Counter
	perReplica    []replicaMetrics
}

// newReplicatedMetrics labels per-replica series positionally
// ({replica="i"}) by default, or {node="addr"} when labels are given —
// the placement layer's per-shard form, stable across membership churn.
func newReplicatedMetrics(r *metrics.Registry, replicas int, labels []string) replicatedMetrics {
	m := replicatedMetrics{
		puts:          r.Counter("store_replicated_puts_total"),
		putErrors:     r.Counter("store_replicated_put_errors_total"),
		collects:      r.Counter("store_replicated_collects_total"),
		collectErrors: r.Counter("store_replicated_collect_errors_total"),
		collectBlocks: r.Counter("store_replicated_collect_blocks_total"),
		collectDups:   r.Counter("store_replicated_collect_dup_blocks_total"),
		perReplica:    make([]replicaMetrics, replicas),
	}
	for i := range m.perReplica {
		l := fmt.Sprintf(`{replica="%d"}`, i)
		if labels != nil {
			l = fmt.Sprintf(`{node=%q}`, labels[i])
		}
		m.perReplica[i] = replicaMetrics{
			putOK:   r.Counter("store_replica_put_ok_total" + l),
			putErr:  r.Counter("store_replica_put_errors_total" + l),
			getOK:   r.Counter("store_replica_get_ok_total" + l),
			getErr:  r.Counter("store_replica_get_errors_total" + l),
			statOK:  r.Counter("store_replica_stat_ok_total" + l),
			statErr: r.Counter("store_replica_stat_errors_total" + l),
		}
	}
	return m
}

// placedMetrics instruments the placement front end. Per-shard outcome
// series come from each shard's replicatedMetrics with node labels.
type placedMetrics struct {
	puts             *metrics.Counter
	collects         *metrics.Counter
	membershipEvents *metrics.Counter
	nodes            *metrics.Gauge
}

func newPlacedMetrics(r *metrics.Registry) placedMetrics {
	return placedMetrics{
		puts:             r.Counter("store_placed_puts_total"),
		collects:         r.Counter("store_placed_collects_total"),
		membershipEvents: r.Counter("store_placed_membership_events_total"),
		nodes:            r.Gauge("store_placed_nodes"),
	}
}

// outcome picks the ok or err counter; a nil pick is still a no-op.
func (rm *replicaMetrics) put(err error)  { pick(err, rm.putOK, rm.putErr).Inc() }
func (rm *replicaMetrics) get(err error)  { pick(err, rm.getOK, rm.getErr).Inc() }
func (rm *replicaMetrics) stat(err error) { pick(err, rm.statOK, rm.statErr).Inc() }

func pick(err error, ok, bad *metrics.Counter) *metrics.Counter {
	if err != nil {
		return bad
	}
	return ok
}

// meteredConn counts frame bytes through a connection. Deadline and
// close calls pass through the embedded Conn, so callers keep full
// control of the underlying socket.
type meteredConn struct {
	net.Conn
	in, out *metrics.Counter
}

// meterConn wraps c with byte counters, or returns c unchanged when both
// counters are nil (the uninstrumented case pays zero indirection).
func meterConn(c net.Conn, in, out *metrics.Counter) net.Conn {
	if in == nil && out == nil {
		return c
	}
	return &meteredConn{Conn: c, in: in, out: out}
}

func (m *meteredConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	if n > 0 {
		m.in.Add(uint64(n))
	}
	return n, err
}

func (m *meteredConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	if n > 0 {
		m.out.Add(uint64(n))
	}
	return n, err
}
