package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestDecodeBlockListHostileCount pins the pre-allocation clamp: a body
// whose wire count claims billions of entries must fail fast with
// ErrCorruptFrame instead of sizing a multi-GB slice from a 12-byte
// frame.
func TestDecodeBlockListHostileCount(t *testing.T) {
	for _, claim := range []uint32{2, 1 << 16, 1 << 31, 0xFFFFFFFF} {
		body := binary.BigEndian.AppendUint32(nil, claim)
		body = append(body, make([]byte, 8)...) // room for at most one entry
		if _, err := decodeBlockList(body); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("count %d: err = %v, want ErrCorruptFrame", claim, err)
		}
	}
	// The rejection happens before the result slice is sized: the error
	// path performs only its own small allocations, independent of the
	// claimed count.
	hostile := binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF)
	hostile = append(hostile, make([]byte, 8)...)
	allocs := testing.AllocsPerRun(100, func() {
		decodeBlockList(hostile)
	})
	if allocs > 6 {
		t.Fatalf("hostile count costs %.1f allocs/op, want the error path only", allocs)
	}
	// A consistent count still decodes (zero entries here).
	if got, err := decodeBlockList(binary.BigEndian.AppendUint32(nil, 0)); err != nil || len(got) != 0 {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}

// sparseFrame hand-assembles a v3 pairs-mode block frame so the tests
// can produce the hostile shapes MarshalBinary refuses to emit.
func sparseFrame(nCoeff uint32, idx []uint32, val []byte) []byte {
	out := []byte{'P', 'B', 3}
	out = binary.BigEndian.AppendUint16(out, 0) // level
	out = binary.BigEndian.AppendUint32(out, nCoeff)
	out = binary.BigEndian.AppendUint32(out, 0) // no payload
	out = append(out, 0)                        // pairs mode
	out = binary.BigEndian.AppendUint32(out, uint32(len(idx)))
	for _, j := range idx {
		out = binary.BigEndian.AppendUint32(out, j)
	}
	return append(out, val...)
}

// wrapBlockList embeds raw block frames in a frameBlocks body the way the
// server does, bypassing the client-side marshal checks.
func wrapBlockList(frames ...[]byte) []byte {
	body := binary.BigEndian.AppendUint32(nil, uint32(len(frames)))
	for _, f := range frames {
		body = binary.BigEndian.AppendUint32(body, uint32(len(f)))
		body = append(body, f...)
	}
	return body
}

// TestDecodeBlockListHostileSparse pins the store-side handling of v3
// sparse frames: a hostile coefficient section inside an otherwise
// well-formed block list must surface as ErrCorruptFrame (the core
// unmarshal error wrapped at the framing layer), never as a panic or a
// silently mangled block.
func TestDecodeBlockListHostileSparse(t *testing.T) {
	// A frame whose nnz field claims 4 billion pairs while shipping none:
	// the clamp must bound the claim by the bytes present before any
	// allocation sized from it.
	inflated := sparseFrame(64, nil, nil)
	binary.BigEndian.PutUint32(inflated[len(inflated)-4:], 0xFFFFFFFF)

	for name, frame := range map[string][]byte{
		"inflated nnz count": inflated,
		"duplicate indices":  sparseFrame(64, []uint32{3, 3}, []byte{1, 2}),
		"descending indices": sparseFrame(64, []uint32{5, 2}, []byte{1, 2}),
		"index out of range": sparseFrame(64, []uint32{64}, []byte{1}),
		"zero pair value":    sparseFrame(64, []uint32{1}, []byte{0}),
		"giant dense claim":  sparseFrame(1<<31, []uint32{0}, []byte{1}),
	} {
		if _, err := decodeBlockList(wrapBlockList(frame)); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: err = %v, want ErrCorruptFrame", name, err)
		}
	}
}

// TestDecodeBlockListSparseRoundTrip pins that canonical v3 frames flow
// through the store framing unchanged: a sparse block survives
// encode/decode still sparse and re-marshals bit-identically, and a v1
// dense frame decodes to the exact bytes it arrived as.
func TestDecodeBlockListSparseRoundTrip(t *testing.T) {
	sp := &core.CodedBlock{
		Level: 1,
		SpCoeff: &core.SparseCoeff{
			Len: 512,
			Idx: []uint32{7, 99, 400},
			Val: []byte{3, 5, 9},
		},
		Payload: []byte{0xAA, 0xBB},
	}
	spWire, err := sp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_, _, dense := testCode(t, 1)
	denseWire, err := dense[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	got, err := decodeBlockList(wrapBlockList(spWire, denseWire))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d blocks, want 2", len(got))
	}
	if !got[0].IsSparse() {
		t.Fatal("sparse block densified by store framing")
	}
	if got[1].IsSparse() {
		t.Fatal("dense block sparsified by store framing")
	}
	for i, want := range [][]byte{spWire, denseWire} {
		back, err := got[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, want) {
			t.Errorf("block %d re-marshal drifted from wire bytes", i)
		}
	}
}

// TestStoreSparseEndToEnd puts a sparse block through a live server and
// reads it back: the v3 frame crosses the socket framing intact.
func TestStoreSparseEndToEnd(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx := context.Background()

	levels, sources, _ := testCode(t, 0)
	enc, err := core.NewEncoder(core.PLC, levels, sources, core.WithSparsity(6))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := cl.Put(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	back, err := cl.Get(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	sparseSeen := 0
	for _, b := range back {
		if b.IsSparse() {
			sparseSeen++
		}
	}
	if sparseSeen == 0 {
		t.Fatal("no sparse blocks survived the store round trip")
	}
	dec := decodeAll(t, levels, back)
	checkCriticalLevel(t, dec, levels, sources)
}

// TestEncodeBlockListBounds pins the encoder-side overflow checks.
func TestEncodeBlockListBounds(t *testing.T) {
	body, err := encodeBlockList([][]byte{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if n := binary.BigEndian.Uint32(body); n != 2 {
		t.Fatalf("encoded count %d, want 2", n)
	}
}

// TestEncodeStatsBounds pins the stat-frame bounds checks: level 65535
// (the top of the wire range) round-trips, while values that would
// silently truncate through the uint16/uint32 wire fields are rejected
// with ErrBadRequest.
func TestEncodeStatsBounds(t *testing.T) {
	top := Stats{
		Blocks:   3,
		Bytes:    96,
		PerLevel: []LevelCount{{Level: 0, Count: 1, Bytes: 32}, {Level: 0xFFFF, Count: 2, Bytes: 64}},
	}
	body, err := encodeStats(top)
	if err != nil {
		t.Fatalf("level 65535 rejected: %v", err)
	}
	back, err := decodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PerLevel) != 2 || back.PerLevel[1].Level != 0xFFFF || back.PerLevel[1].Count != 2 {
		t.Fatalf("level 65535 round trip drifted: %+v", back)
	}

	for name, st := range map[string]Stats{
		"level too high":  {PerLevel: []LevelCount{{Level: 0x10000, Count: 1}}},
		"level negative":  {PerLevel: []LevelCount{{Level: -1, Count: 1}}},
		"count overflow":  {PerLevel: []LevelCount{{Level: 0, Count: 1 << 32}}},
		"blocks overflow": {Blocks: 1 << 32},
		"too many levels": {PerLevel: make([]LevelCount, 0x10000)},
	} {
		if _, err := encodeStats(st); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

// TestGetRejectsSentinelLevel pins the API-side level validation: the
// wire sentinel 0xFFFF (and anything above) is a caller bug, not a
// fetch-everything request. The check fires before any dial.
func TestGetRejectsSentinelLevel(t *testing.T) {
	cl, err := NewClient(ClientConfig{Addr: "127.0.0.1:1"}) // never dialed
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, lvl := range []int{0xFFFF, 0x10000, 1 << 30} {
		if _, err := cl.Get(context.Background(), lvl); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Get(%d) err = %v, want ErrBadRequest", lvl, err)
		}
	}
}

// stallListener accepts connections and reads them forever without
// responding — the worst-case peer for cancellation latency.
func stallListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			t.Cleanup(func() { conn.Close() })
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestCancelAbortsStalledAttempt pins the poison ordering fix: with a
// 30-second OpTimeout and a server that never answers, cancelling the
// context must abort the in-flight attempt in milliseconds. Before the
// fix, a cancellation racing SetDeadline could be overwritten and the
// attempt rode out the full OpTimeout.
func TestCancelAbortsStalledAttempt(t *testing.T) {
	addr := stallListener(t)
	cl, err := NewClient(ClientConfig{
		Addr:      addr,
		OpTimeout: 30 * time.Second,
		Retry:     RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cl.Ping(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want well under OpTimeout", elapsed)
	}
}

// TestPoisonedConnNotPooled pins release's pooling guard: a connection
// whose cancellation poison has fired carries a past deadline and must be
// closed, never returned to the idle pool.
func TestPoisonedConnNotPooled(t *testing.T) {
	reg := metrics.NewRegistry()
	cl, err := NewClient(ClientConfig{Addr: "127.0.0.1:1", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	release := func(fired bool) net.Conn {
		a, b := net.Pipe()
		t.Cleanup(func() { b.Close() })
		// stop() reports whether it prevented the poison from running:
		// false means the poison already fired.
		cl.release(a, func() bool { return !fired })
		return a
	}

	clean := release(false)
	cl.mu.Lock()
	pooled := len(cl.idle) == 1 && cl.idle[0] == clean
	cl.mu.Unlock()
	if !pooled {
		t.Fatal("clean connection was not pooled")
	}

	poisoned := release(true)
	cl.mu.Lock()
	inPool := false
	for _, c := range cl.idle {
		if c == poisoned {
			inPool = true
		}
	}
	cl.mu.Unlock()
	if inPool {
		t.Fatal("poisoned connection was pooled")
	}
	// A closed pipe errors on write; proves release closed it.
	if _, err := poisoned.Write([]byte{0}); err == nil {
		t.Fatal("poisoned connection was not closed")
	}
	if got := reg.Counter("store_client_conns_poisoned_total").Value(); got != 1 {
		t.Fatalf("poisoned counter = %d, want 1", got)
	}
}

// TestServerMetricsEndToEnd drives one put/dup-put/get/stat/ping sequence
// and checks the server-side counters tell the same story.
func TestServerMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := newTestServer(t, ServerConfig{Metrics: reg})
	ccfg := fastClientCfg(srv.Addr(), nil)
	ccfg.Metrics = reg
	cl, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	_, _, blocks := testCode(t, 3)

	if err := cl.Put(ctx, blocks[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, blocks[0]); err != nil { // dedup
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		`store_server_requests_total{op="put"}`:  2,
		`store_server_requests_total{op="get"}`:  1,
		`store_server_requests_total{op="stat"}`: 1,
		`store_server_requests_total{op="ping"}`: 1,
		"store_server_puts_stored_total":         1,
		"store_server_puts_deduped_total":        1,
		"store_client_ops_ok_total":              5,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("store_server_blocks").Value(); got != 1 {
		t.Errorf("store_server_blocks = %d, want 1", got)
	}
	if reg.Counter("store_server_frame_bytes_in_total").Value() == 0 ||
		reg.Counter("store_client_frame_bytes_out_total").Value() == 0 {
		t.Error("byte counters did not move")
	}
	// The whole story renders as valid Prometheus text.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePromText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("prometheus output invalid: %v", err)
	}
}

// TestReplicatedMetricsPerReplica checks the labeled per-replica outcome
// counters against a fleet where one replica is down.
func TestReplicatedMetricsPerReplica(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := newTestServer(t, ServerConfig{})
	up := newTestClient(t, srv.Addr(), nil)
	down := newTestClient(t, "127.0.0.1:1", nil)
	repl, err := NewReplicated([]*Client{up, down}, 1, ReplicatedConfig{MinWrites: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	_, _, blocks := testCode(t, 1)
	if err := repl.Put(context.Background(), blocks[0]); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(`store_replica_put_ok_total{replica="0"}`).Value(); got != 1 {
		t.Errorf("replica 0 ok = %d, want 1", got)
	}
	if got := reg.Counter(`store_replica_put_errors_total{replica="1"}`).Value(); got != 1 {
		t.Errorf("replica 1 errors = %d, want 1", got)
	}
}

// TestConcurrentClientsShareRegistry hammers one registry from several
// clients at once — the data-race canary for the metrics seam (run under
// -race via the Makefile check target).
func TestConcurrentClientsShareRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := newTestServer(t, ServerConfig{Metrics: reg})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cfg := fastClientCfg(srv.Addr(), nil)
			cfg.Metrics = reg
			cfg.Seed = seed
			cl, err := NewClient(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			ctx := context.Background()
			for j := 0; j < 20; j++ {
				if err := cl.Ping(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if got := reg.Counter(`store_server_requests_total{op="ping"}`).Value(); got != 80 {
		t.Fatalf("pings = %d, want 80", got)
	}
}
