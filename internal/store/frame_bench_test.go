package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"
)

// Frame-path allocation benchmarks. The *Ref variants reimplement the
// pre-pool behavior (fresh buffer per frame) so `benchjson` can pair
// them and report the speedup and B/op delta of the reuse paths; run
// with -benchmem via `make bench-disk`.

// writeFrameAlloc is writeFrame without the buffer pool: one fresh
// build buffer per call, exactly what the code did before reuse.
func writeFrameAlloc(w io.Writer, typ byte, body []byte) error {
	buf := make([]byte, 0, frameHeader+len(body))
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameOverhead+len(body)))
	buf = append(buf, typ)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	buf = binary.BigEndian.AppendUint32(buf, crc.Sum32())
	buf = append(buf, body...)
	_, err := w.Write(buf)
	return err
}

func benchBody(n int) []byte {
	body := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(body)
	return body
}

func BenchmarkFrameWrite(b *testing.B) {
	body := benchBody(4096)
	b.SetBytes(int64(frameHeader + len(body)))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := writeFrame(io.Discard, framePut, body); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFrameWriteRef(b *testing.B) {
	body := benchBody(4096)
	b.SetBytes(int64(frameHeader + len(body)))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := writeFrameAlloc(io.Discard, framePut, body); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFrameRead(b *testing.B) {
	body := benchBody(4096)
	var wire bytes.Buffer
	if err := writeFrame(&wire, framePut, body); err != nil {
		b.Fatal(err)
	}
	raw := wire.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	var scratch []byte
	r := bytes.NewReader(raw)
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		var err error
		_, _, scratch, err = readFrameBuf(r, DefaultMaxFrame, scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameReadRef(b *testing.B) {
	body := benchBody(4096)
	var wire bytes.Buffer
	if err := writeFrame(&wire, framePut, body); err != nil {
		b.Fatal(err)
	}
	raw := wire.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	r := bytes.NewReader(raw)
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, _, err := readFrame(r, DefaultMaxFrame); err != nil {
			b.Fatal(err)
		}
	}
}
