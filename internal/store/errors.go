// Package store is the networked priority block store: a TCP server that
// holds coded blocks in memory, a pooled client with retries and hedged
// reads, and a replicated store that maps priority level to replication
// factor so the critical prefix survives more node losses — the paper's
// differentiated persistence made operational at the storage layer
// (Sec. 4 pre-distribution; Dimakis et al.'s client/storage-node split).
//
// Everything rides on one frame format (see frame.go) that carries
// CodedBlocks in their core wire format, so a block on the socket is
// byte-identical to a block on disk.
package store

import "errors"

// Sentinel errors. All client-visible failures wrap one of these, so
// callers branch with errors.Is instead of string matching.
var (
	// ErrCorruptFrame reports a frame whose CRC32 or length field did not
	// validate — transport corruption, not a semantic failure. The client
	// treats it as retryable.
	ErrCorruptFrame = errors.New("store: corrupt frame")

	// ErrStoreUnavailable reports that a store (or enough of its replicas)
	// could not be reached: dial failures, drained servers, exhausted
	// retries.
	ErrStoreUnavailable = errors.New("store: unavailable")

	// ErrBadRequest reports a request the server understood but rejected
	// (malformed block, unknown frame type). Not retryable: resending the
	// same bytes cannot succeed.
	ErrBadRequest = errors.New("store: bad request")

	// ErrClientClosed reports an operation on a closed Client.
	ErrClientClosed = errors.New("store: client closed")

	// ErrStoreFull reports a put rejected because the storage engine is at
	// capacity (MaxBlocks on the in-memory store, MaxBytes on disk). It is
	// deliberately distinguishable from other put failures: a client gives
	// up on the replica immediately instead of burning retries on a store
	// that cannot un-fill, while errors.Is(err, ErrStoreUnavailable) still
	// holds so replicated fail-over and repair keep routing around it.
	ErrStoreFull error = &storeFullError{}
)

// storeFullError makes ErrStoreFull match ErrStoreUnavailable under
// errors.Is without string matching: full is a *kind* of unavailable
// (try another replica), but callers who care can test for it exactly.
type storeFullError struct{}

func (*storeFullError) Error() string { return "store: full" }

func (*storeFullError) Is(target error) bool { return target == ErrStoreUnavailable }
