package store

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Placed is the object-keyed front end of the store fleet: instead of
// one static replica list for everything (Replicated), each object's
// replica set is resolved by consistent hashing over a chord ring —
// the object ID's successor list of R alive nodes, the decentralized
// placement of Dimakis et al. Within a shard the priority-differentiated
// replication factor applies unchanged: the critical level lands on all
// R shard members, the last level on Tolerance+1 of them.
//
// Membership is dynamic. A failure detector (internal/gossip.Monitor,
// whose Prober interface Placed itself satisfies via ping) reports
// transitions; SetAlive/Join/Leave move nodes in and out of the ring,
// and subsequent placement follows. Placement is deterministic: node IDs
// are hashes of addresses, so the same membership sequence yields the
// same object → replica assignment in every run.
//
// All methods are safe for concurrent use.
type Placed struct {
	levels int
	cfg    PlacedConfig
	met    placedMetrics

	mu      sync.RWMutex
	ring    *chord.Ring
	byAddr  map[string]int // addr → ring node index
	addrOf  []string       // ring node index → addr
	clients []*Client      // ring node index → client
	gen     uint64         // bumped on every membership change
	shards  map[core.ObjectID]*shardEntry
	closed  bool
}

type shardEntry struct {
	gen  uint64
	repl *Replicated
}

// PlacedConfig parameterizes a Placed store.
type PlacedConfig struct {
	// Replication is R, the successor-list size each object is spread
	// over. Default 3, clamped to the fleet size at lookup time.
	Replication int
	// Tolerance and MinWrites configure each object's shard exactly like
	// ReplicatedConfig (MinWrites is additionally clamped to the shard
	// size when churn shrinks a shard below it).
	Tolerance int
	MinWrites int
	// NewClient dials a client for a node joining after construction.
	// Default: NewClient(ClientConfig{Addr: addr}).
	NewClient func(addr string) (*Client, error)
	// Metrics, when non-nil, receives placement counters plus each
	// shard's per-node outcome series {node="addr"}.
	Metrics *metrics.Registry
	// OnMembershipChange, when non-nil, is called synchronously after
	// every membership event (join, leave, liveness flip), outside the
	// placement lock, with the exact ownership diff of the cached
	// objects: which objects moved, from whom, to whom. The migration
	// mover hangs off this hook to re-home data the moment placement
	// shifts. The callback may call back into Placed.
	OnMembershipChange func(MembershipChange)
}

// OwnershipChange records one object's replica-set move across a
// membership event: the successor lists before and after, nearest
// first. Old is nil for an object placed for the first time after the
// event; New is nil when no alive successor remains.
type OwnershipChange struct {
	Object core.ObjectID
	Old    []string
	New    []string
}

// MembershipChange is the payload of the OnMembershipChange hook: the
// placement generation after the event plus the ownership diff over the
// objects with cached shards. Objects this Placed has never looked up
// do not appear (nothing cached to diff); movers that must cover cold
// objects enumerate them from each node's Stats().PerObject inventory.
type MembershipChange struct {
	Gen     uint64
	Changed []OwnershipChange
}

// NodeID maps a node address onto the ring — FNV-64a through the ring
// finalizer, the same hash-of-address model NewRandom simulates.
// Exported so tools and tests can predict ownership.
func NodeID(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return ringMix(h.Sum64())
}

// ringMix finalizes a raw 64-bit identity into a ring position. FNV-64a
// — behind both object IDs and node addresses — barely avalanches its
// last input byte: names or addresses that differ only in a trailing
// character ("load/3" vs "load/4", sequential ports) land within a
// sliver of the ring, collapsing whole workloads onto one successor
// list and starving every other arc. A splitmix64 finalizer spreads
// them uniformly. Ring positions are recomputed from addresses and
// object IDs on every boot, so remixing costs nothing in compatibility:
// nothing on disk or on the wire stores a ring position.
func ringMix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// ringKey is an object's ring position: its ID through the same
// finalizer the nodes use.
func ringKey(obj core.ObjectID) uint64 { return ringMix(uint64(obj)) }

// NewPlaced builds the placement layer over the given clients (one per
// storage node, all initially alive) for a code with `levels` priority
// levels.
func NewPlaced(clients []*Client, levels int, cfg PlacedConfig) (*Placed, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("store: placed store needs at least one client")
	}
	if levels <= 0 {
		return nil, fmt.Errorf("store: placed store needs at least one level, got %d", levels)
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1
	}
	if cfg.MinWrites <= 0 {
		cfg.MinWrites = 1
	}
	if cfg.NewClient == nil {
		cfg.NewClient = func(addr string) (*Client, error) {
			return NewClient(ClientConfig{Addr: addr})
		}
	}
	p := &Placed{
		levels:  levels,
		cfg:     cfg,
		met:     newPlacedMetrics(cfg.Metrics),
		byAddr:  make(map[string]int, len(clients)),
		shards:  make(map[core.ObjectID]*shardEntry),
		clients: append([]*Client(nil), clients...),
	}
	ids := make([]uint64, len(clients))
	for i, cl := range clients {
		addr := cl.Addr()
		if _, dup := p.byAddr[addr]; dup {
			return nil, fmt.Errorf("store: duplicate node address %q", addr)
		}
		p.byAddr[addr] = i
		p.addrOf = append(p.addrOf, addr)
		ids[i] = NodeID(addr)
	}
	ring, err := chord.New(ids)
	if err != nil {
		return nil, fmt.Errorf("store: placement ring: %w", err)
	}
	p.ring = ring
	p.met.nodes.Set(int64(len(clients)))
	return p, nil
}

// Levels returns the number of priority levels the store was built for.
func (p *Placed) Levels() int { return p.levels }

// Close closes every node client.
func (p *Placed) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, cl := range p.clients {
		cl.Close()
	}
	p.shards = map[core.ObjectID]*shardEntry{}
	return nil
}

// SetAlive moves a known node in or out of placement — the hook a
// membership monitor drives: suspect/dead → false, alive/heal → true.
// Unknown addresses are an error (Join adds new ones).
func (p *Placed) SetAlive(addr string, alive bool) error {
	p.mu.Lock()
	idx, ok := p.byAddr[addr]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("store: unknown placement node %q", addr)
	}
	if p.ring.Alive(idx) == alive {
		p.mu.Unlock()
		return nil
	}
	if alive {
		p.ring.Recover(idx)
	} else {
		p.ring.Fail(idx)
	}
	p.ring.Stabilize()
	ev := p.bumpLocked()
	p.met.membershipEvents.Inc()
	p.mu.Unlock()
	p.notifyMembership(ev)
	return nil
}

// Join adds a brand-new node to the ring (dialing it via the configured
// client factory), or revives a known one like SetAlive(addr, true).
func (p *Placed) Join(addr string) error {
	p.mu.Lock()
	if idx, known := p.byAddr[addr]; known {
		if p.ring.Alive(idx) {
			p.mu.Unlock()
			return nil
		}
		p.ring.Recover(idx)
		p.ring.Stabilize()
		ev := p.bumpLocked()
		p.met.membershipEvents.Inc()
		p.mu.Unlock()
		p.notifyMembership(ev)
		return nil
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClientClosed
	}
	factory := p.cfg.NewClient
	p.mu.Unlock()
	// Dial outside the lock; a slow handshake must not stall placement.
	cl, err := factory(addr)
	if err != nil {
		return fmt.Errorf("store: join %s: %w", addr, err)
	}
	p.mu.Lock()
	if _, raced := p.byAddr[addr]; raced || p.closed {
		closed := p.closed
		p.mu.Unlock()
		cl.Close() // someone else joined it meanwhile, or we shut down
		if closed {
			return ErrClientClosed
		}
		return nil
	}
	idx, err := p.ring.Join(NodeID(addr))
	if err != nil {
		p.mu.Unlock()
		cl.Close()
		return fmt.Errorf("store: join %s: %w", addr, err)
	}
	if idx != len(p.clients) {
		p.mu.Unlock()
		cl.Close()
		return fmt.Errorf("store: ring index %d out of step with %d clients", idx, len(p.clients))
	}
	p.byAddr[addr] = idx
	p.addrOf = append(p.addrOf, addr)
	p.clients = append(p.clients, cl)
	ev := p.bumpLocked()
	p.met.membershipEvents.Inc()
	p.met.nodes.Set(int64(len(p.clients)))
	p.mu.Unlock()
	p.notifyMembership(ev)
	return nil
}

// Leave removes a node from placement (it stays known, so a later Join
// revives it without redialing).
func (p *Placed) Leave(addr string) error { return p.SetAlive(addr, false) }

// bumpLocked advances the placement generation and invalidates ONLY the
// cached shards whose successor list actually changed — an event on the
// far side of the ring must not cold-start every shard (and its
// {node="addr"} metric series) on this one. Unchanged entries are
// re-stamped with the new generation; changed ones are dropped and
// reported in the returned diff, which is also exactly what the
// migration mover needs to know.
func (p *Placed) bumpLocked() MembershipChange {
	p.gen++
	ev := MembershipChange{Gen: p.gen}
	for obj, e := range p.shards {
		old := e.repl.cfg.ReplicaLabels
		idxs, err := p.ring.Successors(ringKey(obj), p.cfg.Replication)
		if err != nil {
			// No alive successor remains: the shard is unplaceable.
			delete(p.shards, obj)
			ev.Changed = append(ev.Changed, OwnershipChange{
				Object: obj,
				Old:    append([]string(nil), old...),
			})
			continue
		}
		addrs := make([]string, len(idxs))
		same := len(idxs) == len(old)
		for i, idx := range idxs {
			addrs[i] = p.addrOf[idx]
			if same && addrs[i] != old[i] {
				same = false
			}
		}
		if same {
			e.gen = p.gen
			continue
		}
		delete(p.shards, obj)
		ev.Changed = append(ev.Changed, OwnershipChange{
			Object: obj,
			Old:    append([]string(nil), old...),
			New:    addrs,
		})
	}
	return ev
}

// notifyMembership fires the OnMembershipChange hook outside the lock.
func (p *Placed) notifyMembership(ev MembershipChange) {
	p.mu.RLock()
	hook := p.cfg.OnMembershipChange
	p.mu.RUnlock()
	if hook != nil {
		hook(ev)
	}
}

// SetMembershipHook installs (or replaces) the OnMembershipChange
// callback after construction — the mover is built over an existing
// Placed, so the hook cannot exist before the store does.
func (p *Placed) SetMembershipHook(hook func(MembershipChange)) {
	p.mu.Lock()
	p.cfg.OnMembershipChange = hook
	p.mu.Unlock()
}

// Probe pings one node — exactly the gossip.Prober contract, so a
// Monitor can probe through the store's own wire path and connection
// pools without the gossip package importing store.
func (p *Placed) Probe(ctx context.Context, addr string) error {
	p.mu.RLock()
	idx, ok := p.byAddr[addr]
	if !ok {
		p.mu.RUnlock()
		return fmt.Errorf("store: unknown placement node %q", addr)
	}
	cl := p.clients[idx]
	p.mu.RUnlock()
	return cl.Ping(ctx)
}

// Shard resolves the object's replica set and returns a Replicated store
// over exactly those nodes: level 0 on all of them, the last level on
// Tolerance+1 — the per-shard form of the fleet-wide wiring Replicated
// used to be. Shards are cached until membership changes, so repeated
// operations on one object reuse the same fan-out (and the same
// {node="addr"} metric series). Callers must not Close the shard; its
// clients belong to Placed.
func (p *Placed) Shard(obj core.ObjectID) (*Replicated, error) {
	if obj == core.AllObjects {
		return nil, fmt.Errorf("%w: the all-objects wildcard has no shard", ErrBadRequest)
	}
	p.mu.RLock()
	if e, hit := p.shards[obj]; hit && e.gen == p.gen {
		p.mu.RUnlock()
		return e.repl, nil
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClientClosed
	}
	if e, hit := p.shards[obj]; hit && e.gen == p.gen {
		return e.repl, nil
	}
	idxs, err := p.ring.Successors(ringKey(obj), p.cfg.Replication)
	if err != nil {
		return nil, fmt.Errorf("store: place %s: %w", obj, err)
	}
	clients := make([]*Client, len(idxs))
	labels := make([]string, len(idxs))
	for i, idx := range idxs {
		clients[i] = p.clients[idx]
		labels[i] = p.addrOf[idx]
	}
	minWrites := p.cfg.MinWrites
	if minWrites > len(clients) {
		minWrites = len(clients)
	}
	repl, err := NewReplicated(clients, p.levels, ReplicatedConfig{
		Tolerance:     p.cfg.Tolerance,
		MinWrites:     minWrites,
		Metrics:       p.cfg.Metrics,
		ReplicaLabels: labels,
	})
	if err != nil {
		return nil, fmt.Errorf("store: shard %s: %w", obj, err)
	}
	p.shards[obj] = &shardEntry{gen: p.gen, repl: repl}
	return repl, nil
}

// ReplicasForObject returns the addresses currently hosting obj, nearest
// successor first — the assignment Shard fans out over.
func (p *Placed) ReplicasForObject(obj core.ObjectID) ([]string, error) {
	repl, err := p.Shard(obj)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), repl.cfg.ReplicaLabels...), nil
}

// Put routes one block to its object's shard.
func (p *Placed) Put(ctx context.Context, b *core.CodedBlock) error {
	if b == nil {
		return fmt.Errorf("%w: nil block", ErrBadRequest)
	}
	repl, err := p.Shard(b.Object)
	if err != nil {
		return err
	}
	p.met.puts.Inc()
	return repl.Put(ctx, b)
}

// PutAll stores blocks in order, returning how many succeeded and the
// first error.
func (p *Placed) PutAll(ctx context.Context, blocks []*core.CodedBlock) (int, error) {
	for i, b := range blocks {
		if err := p.Put(ctx, b); err != nil {
			return i, err
		}
	}
	return len(blocks), nil
}

// Collect fetches one object's blocks with Level <= maxLevel (maxLevel
// < 0 for all) from its shard, deduplicated.
func (p *Placed) Collect(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	repl, err := p.Shard(obj)
	if err != nil {
		return nil, err
	}
	p.met.collects.Inc()
	return repl.CollectObject(ctx, obj, maxLevel)
}

// ClientFor returns the client dialed to one known node, dead or alive
// — the per-node access a mover needs to inventory old owners and
// reclaim them, which shard fan-out (alive successors only) cannot
// reach.
func (p *Placed) ClientFor(addr string) (*Client, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	idx, ok := p.byAddr[addr]
	if !ok {
		return nil, fmt.Errorf("store: unknown placement node %q", addr)
	}
	return p.clients[idx], nil
}

// Replication returns R, the successor-list size objects spread over.
func (p *Placed) Replication() int { return p.cfg.Replication }

// Tolerance returns f, the loss count the least-critical level survives.
func (p *Placed) Tolerance() int { return p.cfg.Tolerance }

// RingMember is one node's placement view for tooling (prlcd ring).
type RingMember struct {
	Addr  string
	ID    uint64
	Alive bool
}

// Members lists every known node ascending by ring ID — the order
// ownership ranges read in: node i owns (ID[i-1], ID[i]], wrapping.
func (p *Placed) Members() []RingMember {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]RingMember, len(p.clients))
	for i := range p.clients {
		out[i] = RingMember{Addr: p.addrOf[i], ID: p.ring.ID(i), Alive: p.ring.Alive(i)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
