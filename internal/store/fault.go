package store

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig parameterizes a FaultDialer. All probabilities are in
// [0, 1] and drawn from one seeded generator, so a test that performs
// its operations in a fixed order sees a fixed fault schedule.
type FaultConfig struct {
	// Seed seeds the fault schedule (0 means 1).
	Seed int64
	// DialFailProb makes a dial attempt fail ("connection refused").
	DialFailProb float64
	// CorruptProb flips one byte per written frame, past the length
	// prefix so the receiver's CRC (not a stalled read) catches it.
	CorruptProb float64
	// DelayProb delays a write by a uniform duration in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected write delays. Default 20ms.
	MaxDelay time.Duration
}

// FaultDialer wraps a Dialer with seedable fault injection: failed
// dials, per-frame byte corruption, write delays, and addr-level
// partitions. It is the robustness tests' network.
type FaultDialer struct {
	base Dialer
	cfg  FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	parts map[string]struct{}

	// Counters for assertions and reporting.
	dialsFailed  int
	framesMauled int
}

// NewFaultDialer wraps base (nil for a plain net.Dialer).
func NewFaultDialer(base Dialer, cfg FaultConfig) *FaultDialer {
	if base == nil {
		base = &net.Dialer{}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &FaultDialer{
		base:  base,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		parts: make(map[string]struct{}),
	}
}

// Partition makes every dial to addr fail until Heal.
func (f *FaultDialer) Partition(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts[addr] = struct{}{}
}

// Heal removes a partition.
func (f *FaultDialer) Heal(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.parts, addr)
}

// SetCorruptProb changes the per-frame corruption probability live. The
// chaos controller uses these setters to turn the seeded fault patterns
// into wall-clock fault windows: a corruption window is SetCorruptProb(p)
// at open and SetCorruptProb(0) at close, against the same dialer the
// load generator's clients dial through.
func (f *FaultDialer) SetCorruptProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.CorruptProb = p
}

// SetDialFailProb changes the dial-failure probability live.
func (f *FaultDialer) SetDialFailProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.DialFailProb = p
}

// SetDelayProb changes the write-delay probability live.
func (f *FaultDialer) SetDelayProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.DelayProb = p
}

// Partitioned reports whether addr is currently partitioned.
func (f *FaultDialer) Partitioned(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, cut := f.parts[addr]
	return cut
}

// Injected returns how many dials were failed and frames corrupted.
func (f *FaultDialer) Injected() (dialsFailed, framesCorrupted int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dialsFailed, f.framesMauled
}

// DialContext applies partition and dial-failure faults, then wraps the
// connection so writes can be delayed or corrupted.
func (f *FaultDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	f.mu.Lock()
	_, cut := f.parts[addr]
	fail := !cut && f.cfg.DialFailProb > 0 && f.rng.Float64() < f.cfg.DialFailProb
	if cut || fail {
		f.dialsFailed++
	}
	f.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("fault: %s is partitioned", addr)
	}
	if fail {
		return nil, fmt.Errorf("fault: injected dial failure to %s", addr)
	}
	conn, err := f.base.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, f: f, addr: addr}, nil
}

type faultConn struct {
	net.Conn
	f    *FaultDialer
	addr string
}

func (c *faultConn) Write(p []byte) (int, error) {
	f := c.f
	f.mu.Lock()
	// A partition severs live flows too, not just future dials —
	// otherwise a pooled connection would tunnel through the outage.
	if _, cut := f.parts[c.addr]; cut {
		f.mu.Unlock()
		return 0, fmt.Errorf("fault: %s is partitioned", c.addr)
	}
	var delay time.Duration
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = time.Duration(1 + f.rng.Int63n(int64(f.cfg.MaxDelay)))
	}
	corruptAt := -1
	// A frame write is one Write call (see writeFrame); flipping a byte
	// at offset >= 4 corrupts type, CRC or body — always CRC-detectable,
	// never the length prefix (which would stall the reader instead).
	if f.cfg.CorruptProb > 0 && len(p) > frameHeader && f.rng.Float64() < f.cfg.CorruptProb {
		corruptAt = 4 + f.rng.Intn(len(p)-4)
		f.framesMauled++
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if corruptAt >= 0 {
		mauled := append([]byte(nil), p...)
		mauled[corruptAt] ^= 0xA5
		n, err := c.Conn.Write(mauled)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return c.Conn.Write(p)
}
