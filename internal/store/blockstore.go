package store

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// BlockStore is the storage engine behind a Server: it holds marshaled
// CodedBlocks (the core wire encoding, exactly as received) keyed by
// object and priority level, deduplicates identical blocks so client
// put-retries stay idempotent, and answers level-prefix reads. The
// Server owns the TCP surface; the engine owns placement — in memory
// (MemStore) or on disk (diskstore.Store).
//
// Implementations must be safe for concurrent use: the server calls
// into the engine from one goroutine per connection.
type BlockStore interface {
	// Put stores one block. wire is the block's core wire encoding; obj
	// and level are its object and priority level (already parsed from
	// wire by the caller — the zero object for legacy key-less frames).
	// It returns stored=false with a nil error when an identical block
	// was already present, and ErrStoreFull (possibly wrapped) when the
	// engine is at capacity. Implementations must not retain wire.
	Put(obj core.ObjectID, level int, wire []byte) (stored bool, err error)

	// Get returns the wire bytes of every stored block of obj with
	// level <= maxLevel; maxLevel < 0 returns every level, and
	// obj == core.AllObjects selects every object. The returned slices
	// are read-only and must not be modified by the caller.
	Get(obj core.ObjectID, maxLevel int) ([][]byte, error)

	// Stats returns an inventory snapshot: aggregate PerLevel sorted
	// ascending by level, plus PerObject sorted ascending by object ID.
	Stats() Stats

	// Len returns the number of stored blocks.
	Len() int

	// Bytes returns the total stored wire bytes.
	Bytes() int64

	// Close releases the engine's resources, flushing anything not yet
	// durable. The engine rejects operations after Close.
	Close() error
}

// objLevel keys the per-object per-level inventory.
type objLevel struct {
	obj   core.ObjectID
	level int
}

// MemStore is the RAM-only engine: the seed behavior of the store
// daemon, factored behind BlockStore. A restart loses everything; use
// diskstore.Store when blocks must outlive the process.
type MemStore struct {
	maxBlocks int

	mu      sync.Mutex
	blocks  []storedBlock
	seen    map[string]struct{}
	tallies map[objLevel]levelTally
	bytes   int64
	closed  bool
}

// NewMemStore returns an in-memory engine capping stored blocks at
// maxBlocks (0 = unlimited).
func NewMemStore(maxBlocks int) *MemStore {
	return &MemStore{
		maxBlocks: maxBlocks,
		seen:      make(map[string]struct{}),
		tallies:   make(map[objLevel]levelTally),
	}
}

// Put stores one block, deduplicating identical bytes.
func (m *MemStore) Put(obj core.ObjectID, level int, wire []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, fmt.Errorf("%w: engine closed", ErrStoreUnavailable)
	}
	if _, dup := m.seen[string(wire)]; dup {
		return false, nil
	}
	if m.maxBlocks > 0 && len(m.blocks) >= m.maxBlocks {
		return false, fmt.Errorf("%w: %d blocks stored, cap %d", ErrStoreFull, len(m.blocks), m.maxBlocks)
	}
	key := string(wire) // one copy serves both the dedup key and the data
	m.seen[key] = struct{}{}
	m.blocks = append(m.blocks, storedBlock{obj: obj, level: level, data: []byte(key)})
	k := objLevel{obj, level}
	tally := m.tallies[k]
	tally.count++
	tally.bytes += int64(len(wire))
	m.tallies[k] = tally
	m.bytes += int64(len(wire))
	return true, nil
}

// Get returns stored blocks of obj (core.AllObjects = every object)
// with level <= maxLevel (maxLevel < 0 = all).
func (m *MemStore) Get(obj core.ObjectID, maxLevel int) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, 0, len(m.blocks))
	for _, sb := range m.blocks {
		if obj != core.AllObjects && sb.obj != obj {
			continue
		}
		if maxLevel < 0 || sb.level <= maxLevel {
			out = append(out, sb.data)
		}
	}
	return out, nil
}

// Stats returns an inventory snapshot.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return statsFromTallies(len(m.blocks), m.tallies)
}

// Len returns the number of stored blocks.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// Bytes returns the total stored wire bytes.
func (m *MemStore) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Close marks the engine closed; stored blocks are dropped.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blocks, m.seen, m.tallies, m.bytes = nil, nil, nil, 0
	return nil
}

// statsFromTallies assembles a Stats snapshot from per-object per-level
// tallies: the aggregate PerLevel sums over objects, and PerObject holds
// each object's own breakdown, both sorted ascending (the wire
// encoding's order).
func statsFromTallies(blocks int, tallies map[objLevel]levelTally) Stats {
	st := Stats{Blocks: blocks}
	agg := make(map[int]levelTally)
	perObj := make(map[core.ObjectID]map[int]levelTally)
	for k, tally := range tallies {
		st.Bytes += tally.bytes
		a := agg[k.level]
		a.count += tally.count
		a.bytes += tally.bytes
		agg[k.level] = a
		po := perObj[k.obj]
		if po == nil {
			po = make(map[int]levelTally)
			perObj[k.obj] = po
		}
		po[k.level] = tally
	}
	st.PerLevel = levelCounts(agg)
	for obj, po := range perObj {
		os := ObjectStats{Object: obj, PerLevel: levelCounts(po)}
		for _, lc := range os.PerLevel {
			os.Blocks += lc.Count
			os.Bytes += lc.Bytes
		}
		st.PerObject = append(st.PerObject, os)
	}
	for i := 1; i < len(st.PerObject); i++ {
		for j := i; j > 0 && st.PerObject[j].Object < st.PerObject[j-1].Object; j-- {
			st.PerObject[j], st.PerObject[j-1] = st.PerObject[j-1], st.PerObject[j]
		}
	}
	return st
}

// levelCounts flattens a per-level tally map, sorted ascending by level.
func levelCounts(perLevel map[int]levelTally) []LevelCount {
	out := make([]LevelCount, 0, len(perLevel))
	for lvl, tally := range perLevel {
		out = append(out, LevelCount{Level: lvl, Count: tally.count, Bytes: tally.bytes})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Level < out[j-1].Level; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
