package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// BlockStore is the storage engine behind a Server: it holds marshaled
// CodedBlocks (the core wire encoding, exactly as received) keyed by
// object and priority level, deduplicates identical blocks so client
// put-retries stay idempotent, and answers level-prefix reads. The
// Server owns the TCP surface; the engine owns placement — in memory
// (MemStore) or on disk (diskstore.Store).
//
// Implementations must be safe for concurrent use: the server calls
// into the engine from one goroutine per connection.
type BlockStore interface {
	// Put stores one block. wire is the block's core wire encoding; obj
	// and level are its object and priority level (already parsed from
	// wire by the caller — the zero object for legacy key-less frames).
	// It returns stored=false with a nil error when an identical block
	// was already present, and ErrStoreFull (possibly wrapped) when the
	// engine is at capacity. Implementations must not retain wire.
	Put(obj core.ObjectID, level int, wire []byte) (stored bool, err error)

	// Get returns the wire bytes of every stored block of obj with
	// level <= maxLevel; maxLevel < 0 returns every level, and
	// obj == core.AllObjects selects every object. The returned slices
	// are read-only and must not be modified by the caller.
	Get(obj core.ObjectID, maxLevel int) ([][]byte, error)

	// Delete removes every stored block of obj, returning how many were
	// dropped (0 with a nil error when the object is absent — deletes are
	// idempotent). The all-objects wildcard is rejected with ErrBadRequest:
	// reclamation is per object, wiping a node is Close-and-remove. The
	// migration mover issues Delete against old owners once a re-homed
	// object's new replica set verifies.
	Delete(obj core.ObjectID) (removed int, err error)

	// Stats returns an inventory snapshot: aggregate PerLevel sorted
	// ascending by level, plus PerObject sorted ascending by object ID.
	Stats() Stats

	// Len returns the number of stored blocks.
	Len() int

	// Bytes returns the total stored wire bytes.
	Bytes() int64

	// Close releases the engine's resources, flushing anything not yet
	// durable. The engine rejects operations after Close.
	Close() error
}

// objLevel keys the per-object per-level inventory.
type objLevel struct {
	obj   core.ObjectID
	level int
}

// MemStore is the RAM-only engine: the seed behavior of the store
// daemon, factored behind BlockStore. A restart loses everything; use
// diskstore.Store when blocks must outlive the process.
type MemStore struct {
	maxBlocks int

	mu      sync.Mutex
	blocks  []storedBlock
	seen    map[string]struct{}
	tallies map[objLevel]levelTally
	bytes   int64
	closed  bool
}

// NewMemStore returns an in-memory engine capping stored blocks at
// maxBlocks (0 = unlimited).
func NewMemStore(maxBlocks int) *MemStore {
	return &MemStore{
		maxBlocks: maxBlocks,
		seen:      make(map[string]struct{}),
		tallies:   make(map[objLevel]levelTally),
	}
}

// Put stores one block, deduplicating identical bytes.
func (m *MemStore) Put(obj core.ObjectID, level int, wire []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, fmt.Errorf("%w: engine closed", ErrStoreUnavailable)
	}
	if _, dup := m.seen[string(wire)]; dup {
		return false, nil
	}
	if m.maxBlocks > 0 && len(m.blocks) >= m.maxBlocks {
		return false, fmt.Errorf("%w: %d blocks stored, cap %d", ErrStoreFull, len(m.blocks), m.maxBlocks)
	}
	key := string(wire) // one copy serves both the dedup key and the data
	m.seen[key] = struct{}{}
	m.blocks = append(m.blocks, storedBlock{obj: obj, level: level, data: []byte(key)})
	k := objLevel{obj, level}
	tally := m.tallies[k]
	tally.count++
	tally.bytes += int64(len(wire))
	m.tallies[k] = tally
	m.bytes += int64(len(wire))
	return true, nil
}

// Get returns stored blocks of obj (core.AllObjects = every object)
// with level <= maxLevel (maxLevel < 0 = all).
func (m *MemStore) Get(obj core.ObjectID, maxLevel int) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Size the result from the object's own tallies, not the whole store:
	// a node holding thousands of objects must not allocate a store-wide
	// header slice for every single-object read.
	want := 0
	for k, tally := range m.tallies {
		if obj != core.AllObjects && k.obj != obj {
			continue
		}
		if maxLevel < 0 || k.level <= maxLevel {
			want += tally.count
		}
	}
	out := make([][]byte, 0, want)
	for _, sb := range m.blocks {
		if obj != core.AllObjects && sb.obj != obj {
			continue
		}
		if maxLevel < 0 || sb.level <= maxLevel {
			out = append(out, sb.data)
		}
	}
	return out, nil
}

// Delete removes every stored block of obj along with its dedup keys
// and tallies. Idempotent: deleting an absent object removes nothing.
func (m *MemStore) Delete(obj core.ObjectID) (int, error) {
	if obj == core.AllObjects {
		return 0, fmt.Errorf("%w: delete needs a concrete object", ErrBadRequest)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("%w: engine closed", ErrStoreUnavailable)
	}
	kept := m.blocks[:0]
	removed := 0
	for _, sb := range m.blocks {
		if sb.obj != obj {
			kept = append(kept, sb)
			continue
		}
		removed++
		m.bytes -= int64(len(sb.data))
		delete(m.seen, string(sb.data))
	}
	for i := len(kept); i < len(m.blocks); i++ {
		m.blocks[i] = storedBlock{} // release the dropped tails
	}
	m.blocks = kept
	for k := range m.tallies {
		if k.obj == obj {
			delete(m.tallies, k)
		}
	}
	return removed, nil
}

// Stats returns an inventory snapshot.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return statsFromTallies(len(m.blocks), m.tallies)
}

// Len returns the number of stored blocks.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// Bytes returns the total stored wire bytes.
func (m *MemStore) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Close marks the engine closed; stored blocks are dropped.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blocks, m.seen, m.tallies, m.bytes = nil, nil, nil, 0
	return nil
}

// statsFromTallies assembles a Stats snapshot from per-object per-level
// tallies: the aggregate PerLevel sums over objects, and PerObject holds
// each object's own breakdown, both sorted ascending (the wire
// encoding's order).
func statsFromTallies(blocks int, tallies map[objLevel]levelTally) Stats {
	st := Stats{Blocks: blocks}
	agg := make(map[int]levelTally)
	perObj := make(map[core.ObjectID]map[int]levelTally)
	for k, tally := range tallies {
		st.Bytes += tally.bytes
		a := agg[k.level]
		a.count += tally.count
		a.bytes += tally.bytes
		agg[k.level] = a
		po := perObj[k.obj]
		if po == nil {
			po = make(map[int]levelTally)
			perObj[k.obj] = po
		}
		po[k.level] = tally
	}
	st.PerLevel = levelCounts(agg)
	for obj, po := range perObj {
		os := ObjectStats{Object: obj, PerLevel: levelCounts(po)}
		for _, lc := range os.PerLevel {
			os.Blocks += lc.Count
			os.Bytes += lc.Bytes
		}
		st.PerObject = append(st.PerObject, os)
	}
	sort.Slice(st.PerObject, func(i, j int) bool {
		return st.PerObject[i].Object < st.PerObject[j].Object
	})
	return st
}

// levelCounts flattens a per-level tally map, sorted ascending by level.
func levelCounts(perLevel map[int]levelTally) []LevelCount {
	out := make([]LevelCount, 0, len(perLevel))
	for lvl, tally := range perLevel {
		out = append(out, LevelCount{Level: lvl, Count: tally.count, Bytes: tally.bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level < out[j].Level })
	return out
}
