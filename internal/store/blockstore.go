package store

import (
	"fmt"
	"sync"
)

// BlockStore is the storage engine behind a Server: it holds marshaled
// CodedBlocks (the core wire encoding, exactly as received) keyed by
// nothing but their own bytes, deduplicates identical blocks so client
// put-retries stay idempotent, and answers level-prefix reads. The
// Server owns the TCP surface; the engine owns placement — in memory
// (MemStore) or on disk (diskstore.Store).
//
// Implementations must be safe for concurrent use: the server calls
// into the engine from one goroutine per connection.
type BlockStore interface {
	// Put stores one block. wire is the block's core wire encoding and
	// level its priority level (already parsed from wire by the caller).
	// It returns stored=false with a nil error when an identical block
	// was already present, and ErrStoreFull (possibly wrapped) when the
	// engine is at capacity. Implementations must not retain wire.
	Put(level int, wire []byte) (stored bool, err error)

	// Get returns the wire bytes of every stored block with
	// level <= maxLevel; maxLevel < 0 returns everything. The returned
	// slices are read-only and must not be modified by the caller.
	Get(maxLevel int) ([][]byte, error)

	// Stats returns an inventory snapshot with PerLevel sorted
	// ascending by level.
	Stats() Stats

	// Len returns the number of stored blocks.
	Len() int

	// Bytes returns the total stored wire bytes.
	Bytes() int64

	// Close releases the engine's resources, flushing anything not yet
	// durable. The engine rejects operations after Close.
	Close() error
}

// MemStore is the RAM-only engine: the seed behavior of the store
// daemon, factored behind BlockStore. A restart loses everything; use
// diskstore.Store when blocks must outlive the process.
type MemStore struct {
	maxBlocks int

	mu       sync.Mutex
	blocks   []storedBlock
	seen     map[string]struct{}
	perLevel map[int]levelTally
	bytes    int64
	closed   bool
}

// NewMemStore returns an in-memory engine capping stored blocks at
// maxBlocks (0 = unlimited).
func NewMemStore(maxBlocks int) *MemStore {
	return &MemStore{
		maxBlocks: maxBlocks,
		seen:      make(map[string]struct{}),
		perLevel:  make(map[int]levelTally),
	}
}

// Put stores one block, deduplicating identical bytes.
func (m *MemStore) Put(level int, wire []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, fmt.Errorf("%w: engine closed", ErrStoreUnavailable)
	}
	if _, dup := m.seen[string(wire)]; dup {
		return false, nil
	}
	if m.maxBlocks > 0 && len(m.blocks) >= m.maxBlocks {
		return false, fmt.Errorf("%w: %d blocks stored, cap %d", ErrStoreFull, len(m.blocks), m.maxBlocks)
	}
	key := string(wire) // one copy serves both the dedup key and the data
	m.seen[key] = struct{}{}
	m.blocks = append(m.blocks, storedBlock{level: level, data: []byte(key)})
	tally := m.perLevel[level]
	tally.count++
	tally.bytes += int64(len(wire))
	m.perLevel[level] = tally
	m.bytes += int64(len(wire))
	return true, nil
}

// Get returns stored blocks with level <= maxLevel (maxLevel < 0 = all).
func (m *MemStore) Get(maxLevel int) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, 0, len(m.blocks))
	for _, sb := range m.blocks {
		if maxLevel < 0 || sb.level <= maxLevel {
			out = append(out, sb.data)
		}
	}
	return out, nil
}

// Stats returns an inventory snapshot.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return statsFromTallies(len(m.blocks), m.perLevel)
}

// Len returns the number of stored blocks.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// Bytes returns the total stored wire bytes.
func (m *MemStore) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Close marks the engine closed; stored blocks are dropped.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blocks, m.seen, m.perLevel, m.bytes = nil, nil, nil, 0
	return nil
}

// statsFromTallies assembles a Stats snapshot from per-level tallies,
// sorted ascending by level (the wire encoding's order).
func statsFromTallies(blocks int, perLevel map[int]levelTally) Stats {
	st := Stats{Blocks: blocks}
	for lvl, tally := range perLevel {
		st.Bytes += tally.bytes
		st.PerLevel = append(st.PerLevel, LevelCount{Level: lvl, Count: tally.count, Bytes: tally.bytes})
	}
	for i := 1; i < len(st.PerLevel); i++ {
		for j := i; j > 0 && st.PerLevel[j].Level < st.PerLevel[j-1].Level; j-- {
			st.PerLevel[j], st.PerLevel[j-1] = st.PerLevel[j-1], st.PerLevel[j]
		}
	}
	return st
}
