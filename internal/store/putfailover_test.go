package store

import (
	"context"
	"errors"
	"testing"
)

// A last-level put whose entire rotating window is partitioned must
// fail over to the remaining replicas instead of surfacing an error —
// the fleet still has reachable nodes and MinWrites is 1.
func TestPutFailsOverPastDeadWindow(t *testing.T) {
	levels, _, blocks := testCode(t, 24)
	dialer := NewFaultDialer(nil, FaultConfig{Seed: 1})
	srvs := make([]*Server, 3)
	clients := make([]*Client, 3)
	for i := range srvs {
		srvs[i] = newTestServer(t, ServerConfig{})
		clients[i] = newTestClient(t, srvs[i].Addr(), dialer)
	}
	repl, err := NewReplicated(clients, levels.Count(), ReplicatedConfig{Tolerance: 1, MinWrites: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Two of three nodes down: every 2-replica window has at most one
	// live member, and 1/3 of rotations contain none. All puts must
	// still land (on node 2 when the window misses it).
	dialer.Partition(srvs[0].Addr())
	dialer.Partition(srvs[1].Addr())
	stored := 0
	for _, b := range blocks {
		if b.Level != levels.Count()-1 {
			continue
		}
		if err := repl.Put(ctx, b); err != nil {
			t.Fatalf("put with one live replica failed: %v", err)
		}
		stored++
	}
	if stored == 0 {
		t.Fatal("test code produced no last-level blocks")
	}
	if got := srvs[2].Len(); got != stored {
		t.Errorf("live replica holds %d blocks, want %d", got, stored)
	}

	// With every node down, the put genuinely fails.
	dialer.Partition(srvs[2].Addr())
	if err := repl.Put(ctx, blocks[0]); !errors.Is(err, ErrStoreUnavailable) {
		t.Errorf("put with no live replicas = %v, want ErrStoreUnavailable", err)
	}

	// Healed, the provisioned window is used again: a full put writes
	// ReplicasFor copies, not just MinWrites.
	for _, s := range srvs {
		dialer.Heal(s.Addr())
	}
	level0 := -1
	for i, b := range blocks {
		if b.Level == 0 {
			level0 = i
			break
		}
	}
	if level0 < 0 {
		t.Fatal("test code produced no level-0 blocks")
	}
	before := srvs[0].Len() + srvs[1].Len() + srvs[2].Len()
	if err := repl.Put(ctx, blocks[level0]); err != nil {
		t.Fatal(err)
	}
	if got := srvs[0].Len() + srvs[1].Len() + srvs[2].Len(); got != before+3 {
		t.Errorf("healed level-0 put added %d copies, want 3", got-before)
	}
}
