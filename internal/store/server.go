package store

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// ServerConfig parameterizes a storage daemon.
type ServerConfig struct {
	// Addr is the TCP listen address; empty means loopback on an
	// ephemeral port (the default for tests and in-process demos).
	Addr string
	// MaxConns bounds concurrently served connections; excess accepts
	// are rejected with an unavailable error frame. Default 64.
	MaxConns int
	// MaxFrame bounds a single request frame. Default DefaultMaxFrame.
	MaxFrame int
	// MaxBlocks caps stored blocks (0 = unlimited); once full, puts are
	// rejected with ErrStoreFull so clients fail over to another replica.
	// Only consulted when Blocks is nil (it caps the default MemStore).
	MaxBlocks int
	// Blocks is the storage engine. Nil means a fresh in-memory store
	// capped at MaxBlocks. The server does NOT close an injected engine
	// on Shutdown — whoever opened it (e.g. prlcd wiring a disk store)
	// closes it after the drain, so a restart can reopen the same data.
	Blocks BlockStore
	// IdleTimeout is how long a connection may sit between requests
	// before the server closes it. Default 30s.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. Default 10s.
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives the server's counters, gauges and
	// latency histograms (see DESIGN.md §10). Nil disables instrumentation
	// at zero cost.
	Metrics *metrics.Registry
}

func (c *ServerConfig) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
}

type storedBlock struct {
	obj   core.ObjectID
	level int
	data  []byte // core wire format, exactly as received
}

// levelTally is the per-level slice of a server's inventory.
type levelTally struct {
	count int
	bytes int64 // wire bytes, coefficient vectors included
}

// Server is a TCP block-store daemon: it accepts frames (see frame.go),
// hands coded blocks to its BlockStore engine (in-memory by default,
// disk-backed via diskstore), and drains gracefully on Shutdown.
// Identical blocks are deduplicated by the engine, which makes client
// put-retries idempotent: a retry after a lost ack cannot double-store.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	met    serverMetrics
	blocks BlockStore

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	draining  chan struct{}
	done      chan struct{}
	drainOnce sync.Once
	doneOnce  sync.Once
}

// NewServer starts a daemon: it binds the configured address and begins
// serving immediately. Callers must eventually Shutdown it.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	blocks := cfg.Blocks
	if blocks == nil {
		blocks = NewMemStore(cfg.MaxBlocks)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("store: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		met:      newServerMetrics(cfg.Metrics),
		blocks:   blocks,
		conns:    make(map[net.Conn]struct{}),
		draining: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done is closed once the server has fully shut down — either via
// Shutdown or via a shutdown frame from a client.
func (s *Server) Done() <-chan struct{} { return s.done }

// Len returns the number of stored blocks.
func (s *Server) Len() int { return s.blocks.Len() }

// Stats returns an inventory snapshot.
func (s *Server) Stats() Stats { return s.blocks.Stats() }

// Shutdown drains the server: the listener closes, idle connections are
// kicked, in-flight requests finish, and once the context expires any
// stragglers are force-closed. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			// Interrupt blocking reads; handlers mid-response finish
			// their write and then observe the drain.
			c.SetReadDeadline(time.Unix(1, 0))
		}
		s.mu.Unlock()
	})
	waited := make(chan struct{})
	go func() { s.wg.Wait(); close(waited) }()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-waited
		err = ctx.Err()
	}
	s.doneOnce.Do(func() { close(s.done) })
	return err
}

func (s *Server) drainingNow() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: draining
		}
		s.mu.Lock()
		if len(s.conns) >= s.cfg.MaxConns || s.drainingNow() {
			s.mu.Unlock()
			s.met.connsRejected.Inc()
			writeErrFrame(conn, errCodeUnavailable, "server busy or draining")
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.met.connsAccepted.Inc()
		s.met.activeConns.Inc()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		raw.Close()
		s.met.activeConns.Dec()
	}()
	// Deadlines set on the metered wrapper pass through to raw, so the
	// shutdown path (which pokes raw directly) still interrupts reads.
	conn := meterConn(raw, s.met.bytesIn, s.met.bytesOut)
	// One frame buffer per connection, reused across requests: handlers
	// either consume the body before the next read or copy what they
	// keep (the put path stores its own copy).
	var scratch []byte
	for {
		if s.drainingNow() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		var typ byte
		var body []byte
		var err error
		typ, body, scratch, err = readFrameBuf(conn, s.cfg.MaxFrame, scratch)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				// The stream is out of sync: report and hang up. The
				// client's retry lands on a fresh connection.
				s.met.crcFailures.Inc()
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				writeErrFrame(conn, errCodeCorrupt, err.Error())
			}
			return
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		t0 := time.Now()
		shutdown := false
		switch typ {
		case framePut:
			s.met.puts.Inc()
			err = s.handlePut(conn, body)
		case frameGet:
			s.met.gets.Inc()
			err = s.handleGet(conn, body)
		case frameStat:
			s.met.stats.Inc()
			err = s.handleStat(conn)
		case frameSegments:
			s.met.segments.Inc()
			err = s.handleSegments(conn)
		case frameDelete:
			s.met.deletes.Inc()
			err = s.handleDelete(conn, body)
		case framePing:
			s.met.pings.Inc()
			err = writeFrame(conn, frameOK, nil)
		case frameShutdown:
			s.met.shutdowns.Inc()
			err = writeFrame(conn, frameOK, nil)
			shutdown = true
		default:
			s.met.unknown.Inc()
			writeErrFrame(conn, errCodeBad, fmt.Sprintf("unknown frame type %q", typ))
			return
		}
		s.met.requestNs.ObserveSince(t0)
		if shutdown {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
			return
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) handlePut(conn net.Conn, body []byte) error {
	var b core.CodedBlock
	if err := b.UnmarshalBinary(body); err != nil {
		s.met.putsBad.Inc()
		writeErrFrame(conn, errCodeBad, fmt.Sprintf("bad block: %v", err))
		return nil
	}
	stored, err := s.blocks.Put(b.Object, b.Level, body)
	switch {
	case errors.Is(err, ErrStoreFull):
		s.met.putsRejected.Inc()
		s.met.putsFull.Inc()
		writeErrFrame(conn, errCodeFull, err.Error())
		return nil
	case err != nil:
		// Engine failure (a disk write that did not land): the block is
		// not durable, so the client must not treat it as stored.
		s.met.putsRejected.Inc()
		writeErrFrame(conn, errCodeUnavailable, err.Error())
		return nil
	case stored:
		s.met.putsStored.Inc()
		s.met.blocks.Set(int64(s.blocks.Len()))
		s.met.blockBytes.Set(s.blocks.Bytes())
	default:
		s.met.putsDeduped.Inc()
	}
	return writeFrame(conn, frameOK, nil)
}

func (s *Server) handleGet(conn net.Conn, body []byte) error {
	obj, maxLevel, err := decodeGetBody(body)
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	out, err := s.blocks.Get(obj, maxLevel)
	if err != nil {
		writeErrFrame(conn, errCodeUnavailable, err.Error())
		return nil
	}
	resp, err := encodeBlockList(out)
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	return writeFrame(conn, frameBlocks, resp)
}

// handleDelete reclaims one object's blocks from the engine — the
// migration mover's release op against an old owner. Idempotent: a
// retried delete of an already-gone object answers 0 removed.
func (s *Server) handleDelete(conn net.Conn, body []byte) error {
	obj, err := decodeDeleteBody(body)
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	removed, err := s.blocks.Delete(obj)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	case err != nil:
		writeErrFrame(conn, errCodeUnavailable, err.Error())
		return nil
	}
	if removed > 0 {
		s.met.deletesRemoved.Add(uint64(removed))
		s.met.blocks.Set(int64(s.blocks.Len()))
		s.met.blockBytes.Set(s.blocks.Bytes())
	}
	return writeFrame(conn, frameDeleted, encodeDeleted(removed))
}

// handleSegments answers the segment inspection op. An engine without
// segments (the in-memory store) is a semantic rejection, not an empty
// list: the operator asked a question this daemon cannot answer.
func (s *Server) handleSegments(conn net.Conn) error {
	lister, ok := s.blocks.(SegmentLister)
	if !ok {
		writeErrFrame(conn, errCodeBad, "storage engine has no segments (in-memory store; run with -data-dir)")
		return nil
	}
	body, err := encodeSegmentList(lister.SegmentInfos())
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	return writeFrame(conn, frameSegList, body)
}

func (s *Server) handleStat(conn net.Conn) error {
	body, err := encodeStats(s.Stats())
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	return writeFrame(conn, frameStats, body)
}
