package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// ServerConfig parameterizes a storage daemon.
type ServerConfig struct {
	// Addr is the TCP listen address; empty means loopback on an
	// ephemeral port (the default for tests and in-process demos).
	Addr string
	// MaxConns bounds concurrently served connections; excess accepts
	// are rejected with an unavailable error frame. Default 64.
	MaxConns int
	// MaxFrame bounds a single request frame. Default DefaultMaxFrame.
	MaxFrame int
	// MaxBlocks caps stored blocks (0 = unlimited); once full, puts are
	// rejected as unavailable so clients fail over to another replica.
	MaxBlocks int
	// IdleTimeout is how long a connection may sit between requests
	// before the server closes it. Default 30s.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. Default 10s.
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives the server's counters, gauges and
	// latency histograms (see DESIGN.md §10). Nil disables instrumentation
	// at zero cost.
	Metrics *metrics.Registry
}

func (c *ServerConfig) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
}

type storedBlock struct {
	level int
	data  []byte // core wire format, exactly as received
}

// levelTally is the per-level slice of a server's inventory.
type levelTally struct {
	count int
	bytes int64 // wire bytes, coefficient vectors included
}

// Server is a TCP block-store daemon: it accepts frames (see frame.go),
// keeps coded blocks in memory, and drains gracefully on Shutdown.
// Identical blocks are deduplicated, which makes client put-retries
// idempotent: a retry after a lost ack cannot double-store.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	met serverMetrics

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	blocks   []storedBlock
	seen     map[string]struct{}
	perLevel map[int]levelTally

	wg        sync.WaitGroup
	draining  chan struct{}
	done      chan struct{}
	drainOnce sync.Once
	doneOnce  sync.Once
}

// NewServer starts a daemon: it binds the configured address and begins
// serving immediately. Callers must eventually Shutdown it.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("store: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		met:      newServerMetrics(cfg.Metrics),
		conns:    make(map[net.Conn]struct{}),
		seen:     make(map[string]struct{}),
		perLevel: make(map[int]levelTally),
		draining: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done is closed once the server has fully shut down — either via
// Shutdown or via a shutdown frame from a client.
func (s *Server) Done() <-chan struct{} { return s.done }

// Len returns the number of stored blocks.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Stats returns an inventory snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	st := Stats{Blocks: len(s.blocks)}
	for lvl, tally := range s.perLevel {
		st.Bytes += tally.bytes
		st.PerLevel = append(st.PerLevel, LevelCount{Level: lvl, Count: tally.count, Bytes: tally.bytes})
	}
	// Deterministic order for wire encoding and printing.
	for i := 1; i < len(st.PerLevel); i++ {
		for j := i; j > 0 && st.PerLevel[j].Level < st.PerLevel[j-1].Level; j-- {
			st.PerLevel[j], st.PerLevel[j-1] = st.PerLevel[j-1], st.PerLevel[j]
		}
	}
	return st
}

// Shutdown drains the server: the listener closes, idle connections are
// kicked, in-flight requests finish, and once the context expires any
// stragglers are force-closed. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			// Interrupt blocking reads; handlers mid-response finish
			// their write and then observe the drain.
			c.SetReadDeadline(time.Unix(1, 0))
		}
		s.mu.Unlock()
	})
	waited := make(chan struct{})
	go func() { s.wg.Wait(); close(waited) }()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-waited
		err = ctx.Err()
	}
	s.doneOnce.Do(func() { close(s.done) })
	return err
}

func (s *Server) drainingNow() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: draining
		}
		s.mu.Lock()
		if len(s.conns) >= s.cfg.MaxConns || s.drainingNow() {
			s.mu.Unlock()
			s.met.connsRejected.Inc()
			writeErrFrame(conn, errCodeUnavailable, "server busy or draining")
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.met.connsAccepted.Inc()
		s.met.activeConns.Inc()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		raw.Close()
		s.met.activeConns.Dec()
	}()
	// Deadlines set on the metered wrapper pass through to raw, so the
	// shutdown path (which pokes raw directly) still interrupts reads.
	conn := meterConn(raw, s.met.bytesIn, s.met.bytesOut)
	for {
		if s.drainingNow() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		typ, body, err := readFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				// The stream is out of sync: report and hang up. The
				// client's retry lands on a fresh connection.
				s.met.crcFailures.Inc()
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				writeErrFrame(conn, errCodeCorrupt, err.Error())
			}
			return
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		t0 := time.Now()
		shutdown := false
		switch typ {
		case framePut:
			s.met.puts.Inc()
			err = s.handlePut(conn, body)
		case frameGet:
			s.met.gets.Inc()
			err = s.handleGet(conn, body)
		case frameStat:
			s.met.stats.Inc()
			err = s.handleStat(conn)
		case framePing:
			s.met.pings.Inc()
			err = writeFrame(conn, frameOK, nil)
		case frameShutdown:
			s.met.shutdowns.Inc()
			err = writeFrame(conn, frameOK, nil)
			shutdown = true
		default:
			s.met.unknown.Inc()
			writeErrFrame(conn, errCodeBad, fmt.Sprintf("unknown frame type %q", typ))
			return
		}
		s.met.requestNs.ObserveSince(t0)
		if shutdown {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
			return
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) handlePut(conn net.Conn, body []byte) error {
	var b core.CodedBlock
	if err := b.UnmarshalBinary(body); err != nil {
		s.met.putsBad.Inc()
		writeErrFrame(conn, errCodeBad, fmt.Sprintf("bad block: %v", err))
		return nil
	}
	s.mu.Lock()
	key := string(body)
	if _, dup := s.seen[key]; !dup {
		if s.cfg.MaxBlocks > 0 && len(s.blocks) >= s.cfg.MaxBlocks {
			s.mu.Unlock()
			s.met.putsRejected.Inc()
			writeErrFrame(conn, errCodeUnavailable, "store full")
			return nil
		}
		s.seen[key] = struct{}{}
		s.blocks = append(s.blocks, storedBlock{level: b.Level, data: append([]byte(nil), body...)})
		tally := s.perLevel[b.Level]
		tally.count++
		tally.bytes += int64(len(body))
		s.perLevel[b.Level] = tally
		s.mu.Unlock()
		s.met.putsStored.Inc()
		s.met.blocks.Inc()
		s.met.blockBytes.Add(int64(len(body)))
	} else {
		s.mu.Unlock()
		s.met.putsDeduped.Inc()
	}
	return writeFrame(conn, frameOK, nil)
}

func (s *Server) handleGet(conn net.Conn, body []byte) error {
	if len(body) != 2 {
		writeErrFrame(conn, errCodeBad, fmt.Sprintf("get body %d bytes, want 2", len(body)))
		return nil
	}
	maxLevel := int(binary.BigEndian.Uint16(body))
	s.mu.Lock()
	out := make([][]byte, 0, len(s.blocks))
	for _, sb := range s.blocks {
		if maxLevel == 0xFFFF || sb.level <= maxLevel {
			out = append(out, sb.data)
		}
	}
	s.mu.Unlock()
	resp, err := encodeBlockList(out)
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	return writeFrame(conn, frameBlocks, resp)
}

func (s *Server) handleStat(conn net.Conn) error {
	body, err := encodeStats(s.Stats())
	if err != nil {
		writeErrFrame(conn, errCodeBad, err.Error())
		return nil
	}
	return writeFrame(conn, frameStats, body)
}
