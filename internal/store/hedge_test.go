package store

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// blackHole returns a listener that accepts connections and never
// responds; accepted conns are closed when the listener closes.
func blackHole(t *testing.T) net.Listener {
	t.Helper()
	hole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hole.Close() })
	var conns []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := hole.Accept()
			if err != nil {
				mu.Lock()
				for _, c := range conns {
					c.Close()
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return hole
}

// slowThenStallDialer sends the first dial to the real server behind a
// write delay (a slow-but-healthy primary) and every later dial to a
// black hole (a hedge that can never win).
type slowThenStallDialer struct {
	stallAddr string
	delay     time.Duration
	dials     atomic.Int32
	base      net.Dialer
}

func (d *slowThenStallDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	if d.dials.Add(1) == 1 {
		c, err := d.base.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return &slowWriteConn{Conn: c, delay: d.delay}, nil
	}
	return d.base.DialContext(ctx, network, d.stallAddr)
}

type slowWriteConn struct {
	net.Conn
	delay time.Duration
	once  sync.Once
}

func (c *slowWriteConn) Write(p []byte) (int, error) {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Conn.Write(p)
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestHedgedGetLoserCountedOnce is the regression test for the hedge
// accounting fix: a hedge fires, the slow primary still wins, and the
// losing hedge must be cancelled promptly and land in
// store_client_hedges_cancelled_total — not in the op counters. Before
// the fix the op series counted every racer (two ops for one Get) and
// the cancelled loser surfaced as a phantom store_client_op_errors_total
// increment, which would fail any zero-client-visible-errors SLO.
func TestHedgedGetLoserCountedOnce(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	_, _, blocks := testCode(t, 6)
	seed := newTestClient(t, srv.Addr(), nil)
	if _, err := seed.PutAll(context.Background(), blocks); err != nil {
		t.Fatal(err)
	}

	hole := blackHole(t)
	reg := metrics.NewRegistry()
	cfg := fastClientCfg(srv.Addr(), &slowThenStallDialer{
		stallAddr: hole.Addr().String(),
		delay:     120 * time.Millisecond,
	})
	cfg.HedgeDelay = 15 * time.Millisecond
	cfg.Metrics = reg
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	got, err := cl.Get(context.Background(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("get took %v; the loser should not delay the winner", elapsed)
	}

	counter := func(name string) uint64 { return reg.Counter(name).Value() }
	if got := counter("store_client_ops_ok_total"); got != 1 {
		t.Errorf("ops_ok_total = %d, want exactly 1 for one user-visible Get", got)
	}
	if got := counter("store_client_op_errors_total"); got != 0 {
		t.Errorf("op_errors_total = %d, want 0 (cancelled loser must not count as an error)", got)
	}
	if got := counter("store_client_hedges_fired_total"); got != 1 {
		t.Errorf("hedges_fired_total = %d, want 1", got)
	}
	if got := counter("store_client_hedges_won_total"); got != 0 {
		t.Errorf("hedges_won_total = %d, want 0 (primary won)", got)
	}
	// The loser is reaped off the caller's path; give the reaper a beat.
	eventually(t, 2*time.Second, func() bool {
		return counter("store_client_hedges_cancelled_total") == 1
	}, "hedges_cancelled_total never reached 1: losing hedge was not reaped")
	if got := reg.Histogram("store_client_op_ns").Snapshot().Count; got != 1 {
		t.Errorf("op_ns count = %d, want 1 latency sample per user-visible Get", got)
	}
}

// TestHedgedGetWinnerReapsStalledPrimary is the mirror case: the primary
// stalls, the hedge wins, and the stalled primary is cancelled promptly
// (well before its OpTimeout) and counted as a cancellation, with the op
// series still seeing exactly one successful Get.
func TestHedgedGetWinnerReapsStalledPrimary(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	_, _, blocks := testCode(t, 6)
	seed := newTestClient(t, srv.Addr(), nil)
	if _, err := seed.PutAll(context.Background(), blocks); err != nil {
		t.Fatal(err)
	}

	hole := blackHole(t)
	reg := metrics.NewRegistry()
	cfg := fastClientCfg(srv.Addr(), &stallThenRealDialer{stallAddr: hole.Addr().String()})
	cfg.HedgeDelay = 15 * time.Millisecond
	cfg.OpTimeout = 30 * time.Second // the reap must come from cancellation, not this
	cfg.Metrics = reg
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got, err := cl.Get(context.Background(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}

	counter := func(name string) uint64 { return reg.Counter(name).Value() }
	if got := counter("store_client_hedges_won_total"); got != 1 {
		t.Errorf("hedges_won_total = %d, want 1", got)
	}
	if got := counter("store_client_ops_ok_total"); got != 1 {
		t.Errorf("ops_ok_total = %d, want exactly 1", got)
	}
	if got := counter("store_client_op_errors_total"); got != 0 {
		t.Errorf("op_errors_total = %d, want 0", got)
	}
	// The stalled primary must be reaped by cancellation long before its
	// 30s op timeout could fire.
	eventually(t, 2*time.Second, func() bool {
		return counter("store_client_hedges_cancelled_total") == 1
	}, "stalled primary was not cancelled promptly after the hedge won")
}
