package store

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
)

// faultCluster is one 3-replica deployment behind a shared fault dialer.
type faultCluster struct {
	servers []*Server
	clients []*Client
	dialer  *FaultDialer
	repl    *Replicated
}

func newFaultCluster(t *testing.T, fcfg FaultConfig, levels int) *faultCluster {
	t.Helper()
	fc := &faultCluster{dialer: NewFaultDialer(nil, fcfg)}
	for i := 0; i < 3; i++ {
		srv := newTestServer(t, ServerConfig{})
		cfg := fastClientCfg(srv.Addr(), fc.dialer)
		cfg.Seed = int64(i + 1)
		cl, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		fc.servers = append(fc.servers, srv)
		fc.clients = append(fc.clients, cl)
	}
	repl, err := NewReplicated(fc.clients, levels, ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc.repl = repl
	return fc
}

func (fc *faultCluster) kill(t *testing.T, i int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := fc.servers[i].Shutdown(ctx); err != nil {
		t.Fatalf("kill replica %d: %v", i, err)
	}
}

// blockSetKey canonicalizes a block set for cross-run comparison.
func blockSetKey(t *testing.T, blocks []*core.CodedBlock) []string {
	t.Helper()
	keys := make([]string, 0, len(blocks))
	for _, b := range blocks {
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, string(data))
	}
	sort.Strings(keys)
	return keys
}

// TestKillReplicaMidPut loses 1 of 3 replicas halfway through the put
// stream; every put still succeeds and the critical level still decodes.
func TestKillReplicaMidPut(t *testing.T) {
	fc := newFaultCluster(t, FaultConfig{Seed: 11}, 2)
	levels, sources, blocks := testCode(t, 48)
	ctx := context.Background()

	half := len(blocks) / 2
	if n, err := fc.repl.PutAll(ctx, blocks[:half]); err != nil || n != half {
		t.Fatalf("puts before the kill: %d, %v", n, err)
	}
	fc.kill(t, 0)
	if n, err := fc.repl.PutAll(ctx, blocks[half:]); err != nil || n != len(blocks)-half {
		t.Fatalf("puts after the kill must be absorbed by surviving replicas: %d, %v", n, err)
	}

	got, err := fc.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)
}

// TestPartitionThenHeal cuts a replica off during the puts, heals it,
// and requires the priority prefix to decode from the healed cluster.
func TestPartitionThenHeal(t *testing.T) {
	fc := newFaultCluster(t, FaultConfig{Seed: 13}, 2)
	levels, sources, blocks := testCode(t, 48)
	ctx := context.Background()

	fc.dialer.Partition(fc.servers[2].Addr())
	if n, err := fc.repl.PutAll(ctx, blocks); err != nil || n != len(blocks) {
		t.Fatalf("puts during the partition: %d, %v", n, err)
	}
	dials, _ := fc.dialer.Injected()
	if dials == 0 {
		t.Fatal("partition injected no dial failures; the test is vacuous")
	}
	fc.dialer.Heal(fc.servers[2].Addr())

	got, err := fc.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)
}

// runChurnScenario is the acceptance scenario: 5% frame corruption on
// every client write, replica 0 killed a third of the way through the
// puts. It returns the per-server block counts, the collected set and
// the number of corrupted frames, failing the test on any client-visible
// error.
func runChurnScenario(t *testing.T, seed int64) (counts []int, collected []string, mauled int) {
	t.Helper()
	fc := newFaultCluster(t, FaultConfig{Seed: seed, CorruptProb: 0.05}, 2)
	levels, sources, blocks := testCode(t, 48)
	ctx := context.Background()

	third := len(blocks) / 3
	if n, err := fc.repl.PutAll(ctx, blocks[:third]); err != nil || n != third {
		t.Fatalf("puts before the kill: %d, %v", n, err)
	}
	fc.kill(t, 0)
	if n, err := fc.repl.PutAll(ctx, blocks[third:]); err != nil || n != len(blocks)-third {
		t.Fatalf("puts under churn must see zero client-visible errors: %d, %v", n, err)
	}

	got, err := fc.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatalf("collect under churn must see zero client-visible errors: %v", err)
	}
	checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)

	for _, s := range fc.servers {
		counts = append(counts, s.Len())
	}
	_, mauled = fc.dialer.Injected()
	return counts, blockSetKey(t, got), mauled
}

// TestCriticalPrefixSurvivesFaults is the tentpole acceptance criterion:
// with 1 of 3 replicas killed and 5% frame corruption injected, level-1
// (the critical level) decodes with zero client-visible errors — retries
// and backoff absorb every fault — and the outcome is deterministic
// under a fixed seed.
func TestCriticalPrefixSurvivesFaults(t *testing.T) {
	counts1, set1, mauled1 := runChurnScenario(t, 7)
	if mauled1 == 0 {
		t.Fatal("no frames were corrupted; the scenario is vacuous")
	}
	counts2, set2, _ := runChurnScenario(t, 7)

	if len(counts1) != len(counts2) {
		t.Fatalf("replica counts differ in shape: %v vs %v", counts1, counts2)
	}
	for i := range counts1 {
		if counts1[i] != counts2[i] {
			t.Fatalf("replica %d stored %d vs %d blocks across identical seeded runs",
				i, counts1[i], counts2[i])
		}
	}
	if len(set1) != len(set2) {
		t.Fatalf("collected sets differ in size: %d vs %d", len(set1), len(set2))
	}
	for i := range set1 {
		if set1[i] != set2[i] {
			t.Fatalf("collected block %d differs across identical seeded runs", i)
		}
	}
}

// TestCorruptionExhaustsRetries pins the failure mode down: with every
// frame corrupted, the client gives up with ErrStoreUnavailable instead
// of hanging or succeeding silently.
func TestCorruptionExhaustsRetries(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	dialer := NewFaultDialer(nil, FaultConfig{Seed: 3, CorruptProb: 1})
	cfg := fastClientCfg(srv.Addr(), dialer)
	cfg.Retry.MaxAttempts = 3
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, blocks := testCode(t, 1)
	if err := cl.Put(context.Background(), blocks[0]); err == nil {
		t.Fatal("total corruption should exhaust retries")
	} else if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("err = %v, want ErrStoreUnavailable", err)
	}
	if srv.Len() != 0 {
		t.Fatalf("server stored %d corrupt blocks", srv.Len())
	}
}
