package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Dialer abstracts connection establishment so tests and experiments can
// interpose a fault-injecting transport (see FaultDialer).
type Dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// RetryPolicy tunes the client's exponential backoff with jitter.
// Attempt i (from 1) sleeps base*2^(i-1) capped at MaxDelay, then scaled
// by a random factor in [1-Jitter, 1] so synchronized clients desynchronize.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation. Default 4.
	MaxAttempts int
	// BaseDelay is the first backoff. Default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 500ms.
	MaxDelay time.Duration
	// Jitter in [0,1] is the randomized fraction of each delay.
	// Default 0.5; negative disables jitter.
	Jitter float64
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
}

// ClientConfig parameterizes a store client.
type ClientConfig struct {
	// Addr is the server address (required).
	Addr string
	// Dialer defaults to a plain net.Dialer.
	Dialer Dialer
	// DialTimeout bounds each dial attempt. Default 2s.
	DialTimeout time.Duration
	// OpTimeout bounds each request/response attempt. Default 5s.
	OpTimeout time.Duration
	// MaxIdleConns bounds the connection pool. Default 2.
	MaxIdleConns int
	// MaxFrame bounds response frames. Default DefaultMaxFrame.
	MaxFrame int
	// Retry tunes per-operation retries.
	Retry RetryPolicy
	// HedgeDelay, when positive, arms hedged reads: if a Get has not
	// returned after this delay, a second identical request races it on
	// a fresh connection and the first success wins.
	HedgeDelay time.Duration
	// Seed seeds the jitter generator (0 means 1) so experiments stay
	// reproducible end to end.
	Seed int64
	// Metrics, when non-nil, receives the client's counters and latency
	// histograms (see DESIGN.md §10). Clients sharing a registry aggregate
	// into the same series. Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

func (c *ClientConfig) fillDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 2
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Retry.fillDefaults()
}

// Client talks to one store server over pooled TCP connections. All
// operations take a context, retry transient failures with exponential
// backoff + jitter, and map failures onto the package's sentinel errors.
// A Client is safe for concurrent use.
type Client struct {
	cfg    ClientConfig
	dialer Dialer
	met    clientMetrics

	mu     sync.Mutex
	idle   []net.Conn
	rng    *rand.Rand
	closed bool
}

// NewClient validates the config and returns a client. No connection is
// made until the first operation.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("store: client needs an address")
	}
	cfg.fillDefaults()
	d := cfg.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	return &Client{
		cfg:    cfg,
		dialer: d,
		met:    newClientMetrics(cfg.Metrics),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Addr returns the configured server address.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close releases pooled connections. In-flight operations fail over to
// ErrClientClosed on their next attempt.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}

// Put stores one coded block, retrying transient failures. Retries are
// idempotent because the server deduplicates identical blocks.
func (c *Client) Put(ctx context.Context, b *core.CodedBlock) error {
	if b == nil {
		return fmt.Errorf("%w: nil block", ErrBadRequest)
	}
	body, err := b.MarshalBinary()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	_, err = c.do(ctx, "put", framePut, body, frameOK)
	return err
}

// PutAll stores blocks sequentially, returning how many landed and the
// first error encountered.
func (c *Client) PutAll(ctx context.Context, blocks []*core.CodedBlock) (int, error) {
	for i, b := range blocks {
		if err := c.Put(ctx, b); err != nil {
			return i, err
		}
	}
	return len(blocks), nil
}

// Get fetches every stored block with Level <= maxLevel across every
// object; maxLevel < 0 fetches everything. Levels at or above the wire
// sentinel 0xFFFF are rejected with ErrBadRequest rather than silently
// widened to "all" — blocks can never carry such a level (see
// core.CodedBlock.MarshalBinary), so the request is a caller bug, not a
// fetch-everything intent. When HedgeDelay is set, a straggling fetch is
// raced by a duplicate request. Get sends the legacy 2-byte request, so
// it works against pre-namespace daemons unchanged.
func (c *Client) Get(ctx context.Context, maxLevel int) ([]*core.CodedBlock, error) {
	return c.GetObject(ctx, core.AllObjects, maxLevel)
}

// GetObject is Get restricted to one object's blocks. core.AllObjects
// selects every object; any other object sends the keyed 10-byte get
// body, which pre-namespace daemons reject with ErrBadRequest.
func (c *Client) GetObject(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	if maxLevel >= 0xFFFF {
		return nil, fmt.Errorf("%w: max level %d exceeds the wire limit %d", ErrBadRequest, maxLevel, 0xFFFE)
	}
	if c.cfg.HedgeDelay <= 0 {
		return c.get(ctx, obj, maxLevel)
	}
	return c.hedgedGet(ctx, obj, maxLevel)
}

func (c *Client) get(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	resp, err := c.do(ctx, "get", frameGet, encodeGetBody(obj, maxLevel), frameBlocks)
	if err != nil {
		return nil, err
	}
	return decodeBlockList(resp)
}

// getRaw is one get attempt chain WITHOUT op-outcome accounting. The
// hedged path races two of these and records a single op outcome for the
// user-visible Get; routing racers through c.get would double-count ops
// and surface every cancelled loser as a phantom client error.
func (c *Client) getRaw(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	resp, err := c.doAttempts(ctx, "get", frameGet, encodeGetBody(obj, maxLevel), frameBlocks)
	if err != nil {
		return nil, err
	}
	return decodeBlockList(resp)
}

// hedgedGet races a primary get against a delayed duplicate. It records
// exactly one op outcome (ok/err + latency) no matter how many racers
// ran: callers see one Get, the metrics see one Get. Per-attempt series
// (attempts, retries, dials) still count each racer's real work.
func (c *Client) hedgedGet(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	t0 := time.Now()
	blocks, err := c.raceHedged(ctx, obj, maxLevel)
	c.met.opNs.ObserveSince(t0)
	pick(err, c.met.opOK, c.met.opErrors).Inc()
	return blocks, err
}

func (c *Client) raceHedged(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	type result struct {
		blocks []*core.CodedBlock
		err    error
		hedge  bool
	}
	hctx, cancel := context.WithCancel(ctx)
	ch := make(chan result, 2)
	launch := func(isHedge bool) {
		if isHedge {
			c.met.hedgesFired.Inc()
		}
		go func() {
			blocks, err := c.getRaw(hctx, obj, maxLevel)
			ch <- result{blocks, err, isHedge}
		}()
	}
	launch(false)
	inflight, hedged := 1, false
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	// finish cancels any still-racing attempt promptly — the loser must
	// not ride out its full OpTimeout holding a connection — and, when
	// count is set, reaps its result off the caller's path so the loss
	// shows up as store_client_hedges_cancelled_total, never as a client
	// op error. The reaper drains the buffered channel, so no goroutine
	// or channel is leaked even when the loser finishes much later.
	finish := func(count bool) {
		cancel()
		if inflight == 0 {
			return
		}
		n := inflight
		go func() {
			for i := 0; i < n; i++ {
				<-ch
				if count {
					c.met.hedgesCancelled.Inc()
				}
			}
		}()
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					c.met.hedgesWon.Inc()
				}
				finish(true)
				return r.blocks, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedged {
				// The primary failed outright; the hedge becomes a
				// last-chance duplicate rather than waiting for the timer.
				hedged = true
				launch(true)
				inflight++
				continue
			}
			if inflight == 0 {
				finish(false)
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				launch(true)
				inflight++
			}
		case <-ctx.Done():
			finish(false)
			return nil, ctx.Err()
		}
	}
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, "ping", framePing, nil, frameOK)
	return err
}

// Stat fetches the server's inventory snapshot.
func (c *Client) Stat(ctx context.Context) (Stats, error) {
	resp, err := c.do(ctx, "stat", frameStat, nil, frameStats)
	if err != nil {
		return Stats{}, err
	}
	return decodeStats(resp)
}

// Delete removes every stored block of one concrete object from the
// server, returning how many blocks the engine dropped. Idempotent
// (a retry after a lost ack answers 0 removed), so it retries like any
// other op. The migration mover calls it to reclaim old owners once a
// re-homed object's new replica set has verified.
func (c *Client) Delete(ctx context.Context, obj core.ObjectID) (int, error) {
	if obj == core.AllObjects {
		return 0, fmt.Errorf("%w: delete needs a concrete object", ErrBadRequest)
	}
	resp, err := c.do(ctx, "delete", frameDelete, encodeDeleteBody(obj), frameDeleted)
	if err != nil {
		return 0, err
	}
	return decodeDeleted(resp)
}

// Segments fetches the server's on-disk segment listing. Daemons running
// the in-memory engine reject the request with ErrBadRequest.
func (c *Client) Segments(ctx context.Context) ([]SegmentInfo, error) {
	resp, err := c.do(ctx, "segments", frameSegments, nil, frameSegList)
	if err != nil {
		return nil, err
	}
	return decodeSegmentList(resp)
}

// Shutdown asks the server to drain and exit. The single attempt is not
// retried: a dead server is already shut down.
func (c *Client) Shutdown(ctx context.Context) error {
	_, err := c.attempt(ctx, frameShutdown, nil, frameOK)
	return err
}

// do runs one request with retries. Retryable failures: dial errors,
// I/O errors, corrupt frames, and unavailable responses. Semantic
// rejections (ErrBadRequest) and context cancellation end immediately.
func (c *Client) do(ctx context.Context, op string, reqType byte, body []byte, wantResp byte) ([]byte, error) {
	t0 := time.Now()
	resp, err := c.doAttempts(ctx, op, reqType, body, wantResp)
	c.met.opNs.ObserveSince(t0)
	pick(err, c.met.opOK, c.met.opErrors).Inc()
	return resp, err
}

func (c *Client) doAttempts(ctx context.Context, op string, reqType byte, body []byte, wantResp byte) ([]byte, error) {
	var lastErr error
	for i := 0; i < c.cfg.Retry.MaxAttempts; i++ {
		if i > 0 {
			c.met.retries.Inc()
			d := c.backoff(i)
			c.met.backoffSleeps.Inc()
			c.met.backoffNs.Observe(int64(d))
			if err := c.sleep(ctx, d); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.attempt(ctx, reqType, body, wantResp)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrBadRequest) || errors.Is(err, ErrStoreFull) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrClientClosed) {
			// A full store cannot un-fill within a backoff window, so the
			// rejection surfaces immediately; the replicated layer fails the
			// block over to the next replica instead of burning retries here.
			return nil, fmt.Errorf("store: %s %s: %w", op, c.cfg.Addr, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("store: %s %s failed after %d attempts: %w: %w",
		op, c.cfg.Addr, c.cfg.Retry.MaxAttempts, ErrStoreUnavailable, lastErr)
}

// attempt performs one request/response exchange on one connection.
func (c *Client) attempt(ctx context.Context, reqType byte, body []byte, wantResp byte) ([]byte, error) {
	conn, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	c.met.attempts.Inc()
	// Order matters: set the op deadline FIRST, then arm the poison. The
	// poison (a past deadline) interrupts a blocked read the moment the
	// context dies; arming it before SetDeadline would let a cancellation
	// firing in that window be overwritten by the fresh op deadline, and
	// the attempt would ride out the full OpTimeout anyway.
	conn.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := writeFrame(conn, reqType, body); err != nil {
		conn.Close()
		return nil, c.ctxOr(ctx, err)
	}
	typ, resp, err := readFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		conn.Close()
		return nil, c.ctxOr(ctx, err)
	}
	switch typ {
	case wantResp:
		c.release(conn, stop)
		return resp, nil
	case frameErr:
		err := decodeErrFrame(resp)
		if errors.Is(err, ErrBadRequest) || errors.Is(err, ErrStoreFull) {
			// The connection is still in sync after a semantic or
			// store-full rejection (the server keeps serving gets);
			// corruption and drain responses are terminal.
			c.release(conn, stop)
		} else {
			conn.Close()
		}
		return nil, err
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected %q response frame", ErrCorruptFrame, typ)
	}
}

// ctxOr prefers the context's error over a deadline-induced I/O error,
// so cancellation surfaces as context.Canceled rather than a timeout.
func (c *Client) ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

func (c *Client) getConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		c.met.poolHits.Inc()
		return conn, nil
	}
	c.mu.Unlock()
	c.met.poolMisses.Inc()
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	c.met.dials.Inc()
	conn, err := c.dialer.DialContext(dctx, "tcp", c.cfg.Addr)
	if err != nil {
		c.met.dialErrors.Inc()
		return nil, fmt.Errorf("dial %s: %w", c.cfg.Addr, err)
	}
	return meterConn(conn, c.met.bytesIn, c.met.bytesOut), nil
}

// release returns a connection to the idle pool. stop disarms the
// cancellation poison; when it reports the poison already fired, the
// connection carries a deadline in the past (and the stream may hold a
// half-delivered response), so it must be closed, never pooled.
func (c *Client) release(conn net.Conn, stop func() bool) {
	if !stop() {
		c.met.poisoned.Inc()
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.cfg.MaxIdleConns {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.Retry.BaseDelay << (attempt - 1)
	if d > c.cfg.Retry.MaxDelay || d <= 0 {
		d = c.cfg.Retry.MaxDelay
	}
	if j := c.cfg.Retry.Jitter; j > 0 {
		c.mu.Lock()
		f := 1 - j*c.rng.Float64()
		c.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
