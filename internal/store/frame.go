package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Wire framing. Every message on a store connection is one frame:
//
//	length  uint32 BE   bytes after this field: 1 (type) + 4 (crc) + body
//	type    byte        frame type (see the frame* constants)
//	crc32   uint32 BE   IEEE CRC over the type byte and the body
//	body    length-5 bytes
//
// The CRC covers the type byte so a flipped opcode is caught like any
// other corruption. Block bodies reuse the core CodedBlock wire format
// (version byte preserved), so the store never invents a second
// serialization of the same data.
const (
	frameOverhead = 1 + 4     // type + crc, covered by the length field
	frameHeader   = 4 + 1 + 4 // length + type + crc

	// DefaultMaxFrame bounds a single frame (16 MiB): large enough for a
	// full block dump in the experiments, small enough that a corrupted
	// length field cannot make a peer allocate without bound.
	DefaultMaxFrame = 16 << 20
)

// Frame types. Requests are uppercase-ish mnemonics, responses follow
// shell conventions ('+' ok, '!' error).
const (
	framePut      = 'P' // body: one CodedBlock (core wire format)
	frameGet      = 'G' // body: uint16 max level (0xFFFF = all), optionally + uint64 object ID
	frameStat     = 'S' // body: empty
	framePing     = 'i' // body: empty
	frameShutdown = 'Q' // body: empty; server acks, drains, and exits
	frameSegments = 'E' // body: empty; lists the disk engine's segments
	frameDelete   = 'D' // body: uint64 object ID; removes every block of the object

	frameOK      = '+' // body: empty
	frameErr     = '!' // body: code byte + UTF-8 message
	frameBlocks  = 'B' // body: uint32 n, then n x (uint32 len, block bytes)
	frameStats   = 's' // body: uint32 total, uint16 n, n x (uint16 level, uint32 count)
	frameSegList = 'e' // body: uint16 n, n x segListEntry bytes (see encodeSegmentList)
	frameDeleted = 'd' // body: uint32 removed block count
)

// Error codes carried in frameErr bodies. The code tells the client
// whether retrying the same request can help.
const (
	errCodeCorrupt     = 1 // transport corruption: retry on a fresh connection
	errCodeBad         = 2 // semantic rejection: do not retry
	errCodeUnavailable = 3 // server draining or I/O trouble: try another replica
	errCodeFull        = 4 // storage engine at capacity: fail over, do not retry here
)

// frameBufPool recycles frame build buffers across writeFrame calls —
// a put-heavy client otherwise allocates one block-sized buffer per
// request. Buffers above maxPooledBuf (a full get response can be
// 16 MiB) are dropped instead of pinned in the pool.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

const maxPooledBuf = 1 << 20

// writeFrame serializes one frame with a single Write call, so a
// fault-injecting transport that corrupts per-write corrupts per-frame.
// The build buffer comes from frameBufPool; it is returned before the
// call exits, which is safe because Write does not retain its argument.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	bp := frameBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameOverhead+len(body)))
	buf = append(buf, typ)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	buf = binary.BigEndian.AppendUint32(buf, crc.Sum32())
	buf = append(buf, body...)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf
		frameBufPool.Put(bp)
	}
	return err
}

// readFrame reads and validates one frame, allocating a fresh body.
// Length-field violations and CRC mismatches wrap ErrCorruptFrame;
// after either, the stream is out of sync and the connection must be
// closed.
func readFrame(r io.Reader, maxFrame int) (byte, []byte, error) {
	typ, body, _, err := readFrameBuf(r, maxFrame, nil)
	return typ, body, err
}

// readFrameBuf is readFrame with caller-owned buffer reuse: the frame
// is read into scratch (grown as needed) and body aliases it, so a
// connection loop passing the returned buffer back in reads every
// request with zero steady-state allocations. The body is only valid
// until the next call with the same buffer; callers that retain block
// bytes (the put path) must copy, which they already do to own them.
func readFrameBuf(r io.Reader, maxFrame int, scratch []byte) (byte, []byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n < frameOverhead {
		return 0, nil, scratch, fmt.Errorf("%w: frame length %d below header", ErrCorruptFrame, n)
	}
	if n > maxFrame+frameOverhead {
		return 0, nil, scratch, fmt.Errorf("%w: frame length %d exceeds limit %d", ErrCorruptFrame, n, maxFrame)
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	rest := scratch[:n]
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, scratch, err
	}
	typ := rest[0]
	want := binary.BigEndian.Uint32(rest[1:5])
	crc := crc32.NewIEEE()
	crc.Write(rest[:1])
	crc.Write(rest[5:])
	if crc.Sum32() != want {
		return 0, nil, scratch, fmt.Errorf("%w: crc mismatch on %q frame", ErrCorruptFrame, typ)
	}
	return typ, rest[5:], scratch, nil
}

// writeErrFrame best-effort sends an error response; failures are
// ignored because the connection is usually about to close anyway.
func writeErrFrame(w io.Writer, code byte, msg string) {
	body := make([]byte, 0, 1+len(msg))
	body = append(body, code)
	body = append(body, msg...)
	_ = writeFrame(w, frameErr, body)
}

// decodeErrFrame maps a frameErr body to a typed error.
func decodeErrFrame(body []byte) error {
	if len(body) == 0 {
		return fmt.Errorf("%w: empty error frame", ErrBadRequest)
	}
	code, msg := body[0], string(body[1:])
	switch code {
	case errCodeCorrupt:
		return fmt.Errorf("%w: server: %s", ErrCorruptFrame, msg)
	case errCodeUnavailable:
		return fmt.Errorf("%w: server: %s", ErrStoreUnavailable, msg)
	case errCodeFull:
		return fmt.Errorf("%w: server: %s", ErrStoreFull, msg)
	default:
		return fmt.Errorf("%w: server: %s", ErrBadRequest, msg)
	}
}

// encodeBlockList packs marshaled blocks into a frameBlocks body. Counts
// and per-block lengths ride uint32 fields; inputs that would not fit
// (practically impossible, but a silent truncation here would desync the
// stream) are rejected instead of wrapped around.
func encodeBlockList(blocks [][]byte) ([]byte, error) {
	if uint64(len(blocks)) > 0xFFFFFFFF {
		return nil, fmt.Errorf("%w: %d blocks exceed the wire count field", ErrBadRequest, len(blocks))
	}
	size := 4
	for i, b := range blocks {
		if uint64(len(b)) > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: block %d length %d exceeds the wire length field", ErrBadRequest, i, len(b))
		}
		size += 4 + len(b)
	}
	body := make([]byte, 0, size)
	body = binary.BigEndian.AppendUint32(body, uint32(len(blocks)))
	for _, b := range blocks {
		body = binary.BigEndian.AppendUint32(body, uint32(len(b)))
		body = append(body, b...)
	}
	return body, nil
}

// minBlockEntry is the smallest possible block-list entry: a 4-byte
// length prefix plus a non-empty block body. Used to bound the claimed
// entry count of an incoming list before any allocation.
const minBlockEntry = 8

// decodeBlockList unpacks a frameBlocks body into CodedBlocks. The body
// already passed the frame CRC, so a parse failure here means a peer bug
// rather than line noise; it is still reported as corruption so clients
// retry elsewhere.
func decodeBlockList(body []byte) ([]*core.CodedBlock, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: block list truncated", ErrCorruptFrame)
	}
	// The claimed count comes straight off the wire (up to 2^32-1); bound
	// it by what the body could possibly hold BEFORE sizing the result
	// slice, so a corrupt or malicious peer cannot force a multi-GB
	// allocation out of a tiny frame.
	n := int(binary.BigEndian.Uint32(body))
	if n > len(body)/minBlockEntry {
		return nil, fmt.Errorf("%w: block list claims %d entries, body holds at most %d",
			ErrCorruptFrame, n, len(body)/minBlockEntry)
	}
	off := 4
	out := make([]*core.CodedBlock, 0, n)
	for i := 0; i < n; i++ {
		if len(body)-off < 4 {
			return nil, fmt.Errorf("%w: block list truncated at entry %d", ErrCorruptFrame, i)
		}
		l := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < l {
			return nil, fmt.Errorf("%w: block %d length %d overruns body", ErrCorruptFrame, i, l)
		}
		var b core.CodedBlock
		if err := b.UnmarshalBinary(body[off : off+l]); err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrCorruptFrame, i, err)
		}
		off += l
		out = append(out, &b)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after block list", ErrCorruptFrame, len(body)-off)
	}
	return out, nil
}

// The get body has two generations. The legacy 2-byte form carries only
// a uint16 max level (0xFFFF = all levels) and selects every object —
// exactly what pre-namespace clients sent and servers answered. The keyed
// 10-byte form appends a uint64 object ID; core.AllObjects there keeps
// the every-object behavior explicit. Old servers reject the 10-byte
// body, old clients never send it, so mixed fleets degrade loudly rather
// than silently mis-filtering.
const (
	getBodyLegacy = 2
	getBodyKeyed  = 2 + 8
)

// encodeGetBody builds a get request body: legacy when obj is the
// wildcard (maximum interop), keyed otherwise.
func encodeGetBody(obj core.ObjectID, maxLevel int) []byte {
	wire := uint16(0xFFFF) // wire sentinel: all levels
	if maxLevel >= 0 {
		wire = uint16(maxLevel)
	}
	body := binary.BigEndian.AppendUint16(nil, wire)
	if obj != core.AllObjects {
		body = binary.BigEndian.AppendUint64(body, uint64(obj))
	}
	return body
}

// decodeGetBody parses either get-body generation, returning maxLevel
// (-1 = all levels) and the object selector (core.AllObjects = every
// object).
func decodeGetBody(body []byte) (core.ObjectID, int, error) {
	if len(body) != getBodyLegacy && len(body) != getBodyKeyed {
		return 0, 0, fmt.Errorf("%w: get body %d bytes, want %d or %d",
			ErrBadRequest, len(body), getBodyLegacy, getBodyKeyed)
	}
	maxLevel := int(binary.BigEndian.Uint16(body))
	if maxLevel == 0xFFFF {
		maxLevel = -1
	}
	obj := core.AllObjects
	if len(body) == getBodyKeyed {
		obj = core.ObjectID(binary.BigEndian.Uint64(body[2:]))
	}
	return obj, maxLevel, nil
}

// deleteBodyLen is the frameDelete request body: one uint64 object ID.
// There is no legacy form — deletes postdate the object namespace, and
// the wildcard is rejected so a single frame can never wipe a node.
const deleteBodyLen = 8

// encodeDeleteBody builds a delete request body for one concrete object.
func encodeDeleteBody(obj core.ObjectID) []byte {
	return binary.BigEndian.AppendUint64(make([]byte, 0, deleteBodyLen), uint64(obj))
}

// decodeDeleteBody parses a delete request, rejecting the all-objects
// wildcard: reclamation is per object by design.
func decodeDeleteBody(body []byte) (core.ObjectID, error) {
	if len(body) != deleteBodyLen {
		return 0, fmt.Errorf("%w: delete body %d bytes, want %d", ErrBadRequest, len(body), deleteBodyLen)
	}
	obj := core.ObjectID(binary.BigEndian.Uint64(body))
	if obj == core.AllObjects {
		return 0, fmt.Errorf("%w: delete needs a concrete object", ErrBadRequest)
	}
	return obj, nil
}

// encodeDeleted builds a frameDeleted response body.
func encodeDeleted(removed int) []byte {
	if removed < 0 || uint64(removed) > 0xFFFFFFFF {
		removed = 0xFFFFFFFF
	}
	return binary.BigEndian.AppendUint32(make([]byte, 0, 4), uint32(removed))
}

// decodeDeleted parses a frameDeleted response body.
func decodeDeleted(body []byte) (int, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: deleted body %d bytes, want 4", ErrCorruptFrame, len(body))
	}
	return int(binary.BigEndian.Uint32(body)), nil
}

// SegmentInfo describes one on-disk segment of a disk-backed engine —
// the unit of group commit, replay, and retention. The active segment is
// the one still receiving writes; all others are sealed.
type SegmentInfo struct {
	// ID is the segment's monotonically increasing sequence number
	// (the NNNNNNNN in seg-NNNNNNNN.plcseg).
	ID uint64
	// Records is how many block records the segment holds.
	Records int
	// Bytes is the segment file size, record headers included.
	Bytes int64
	// Created is when the segment was opened for writing; age follows as
	// now - Created.
	Created time.Time
	// Active marks the segment currently receiving writes.
	Active bool
}

// SegmentLister is the optional BlockStore facet behind the segments
// inspection op. The in-memory engine has no segments and deliberately
// does not implement it, so the server can answer "no disk engine"
// instead of inventing an empty listing.
type SegmentLister interface {
	SegmentInfos() []SegmentInfo
}

// segListEntry is the wire size of one segment entry:
// uint64 id + uint32 records + uint64 bytes + int64 created unix-nanos +
// 1 active flag.
const segListEntry = 8 + 4 + 8 + 8 + 1

// encodeSegmentList packs segment metadata into a frameSegList body:
// uint16 n, then n fixed-size entries.
func encodeSegmentList(segs []SegmentInfo) ([]byte, error) {
	if len(segs) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d segments do not fit the wire count field", ErrBadRequest, len(segs))
	}
	body := make([]byte, 0, 2+segListEntry*len(segs))
	body = binary.BigEndian.AppendUint16(body, uint16(len(segs)))
	for _, sg := range segs {
		if sg.Records < 0 || uint64(sg.Records) > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: segment %d record count %d does not fit the wire field",
				ErrBadRequest, sg.ID, sg.Records)
		}
		body = binary.BigEndian.AppendUint64(body, sg.ID)
		body = binary.BigEndian.AppendUint32(body, uint32(sg.Records))
		body = binary.BigEndian.AppendUint64(body, uint64(sg.Bytes))
		body = binary.BigEndian.AppendUint64(body, uint64(sg.Created.UnixNano()))
		flag := byte(0)
		if sg.Active {
			flag = 1
		}
		body = append(body, flag)
	}
	return body, nil
}

// decodeSegmentList unpacks a frameSegList body. Entries are fixed-size,
// so the claimed count is checked against the exact body length before
// any allocation.
func decodeSegmentList(body []byte) ([]SegmentInfo, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: segment list truncated", ErrCorruptFrame)
	}
	n := int(binary.BigEndian.Uint16(body))
	if len(body) != 2+segListEntry*n {
		return nil, fmt.Errorf("%w: segment list claims %d entries in %d bytes, want %d",
			ErrCorruptFrame, n, len(body), 2+segListEntry*n)
	}
	out := make([]SegmentInfo, 0, n)
	off := 2
	for i := 0; i < n; i++ {
		out = append(out, SegmentInfo{
			ID:      binary.BigEndian.Uint64(body[off:]),
			Records: int(binary.BigEndian.Uint32(body[off+8:])),
			Bytes:   int64(binary.BigEndian.Uint64(body[off+12:])),
			Created: time.Unix(0, int64(binary.BigEndian.Uint64(body[off+20:]))),
			Active:  body[off+28] != 0,
		})
		off += segListEntry
	}
	return out, nil
}

// Stats is a server inventory snapshot.
type Stats struct {
	// Blocks is the total number of stored coded blocks.
	Blocks int
	// Bytes is the total wire bytes of stored blocks (coefficients and
	// payloads included) — the repair daemon's bandwidth accounting unit.
	Bytes int64
	// PerLevel counts blocks and bytes per priority level, ascending by
	// level, aggregated over every object.
	PerLevel []LevelCount
	// PerObject breaks the inventory down by object, ascending by object
	// ID. Empty when the daemon predates the object namespace (stats v1/v2
	// bodies) — callers must treat absence as "unknown", not "no objects".
	PerObject []ObjectStats
}

// LevelCount is one per-level entry of a Stats snapshot.
type LevelCount struct {
	Level int
	Count int
	Bytes int64
}

// ObjectStats is one object's slice of a Stats snapshot.
type ObjectStats struct {
	Object core.ObjectID
	// Blocks and Bytes total the object's PerLevel entries.
	Blocks int
	Bytes  int64
	// PerLevel counts the object's blocks per priority level, ascending.
	PerLevel []LevelCount
}

// The stat body has three generations. v1 (PR 3) carried counts only:
//
//	uint32 blocks | uint16 n | n x (uint16 level, uint32 count)
//
// v2 adds byte tallies. It reuses v1's n position as a version marker —
// 0xFFFF there (an absurd v1 level count) plus an explicit version byte
// announces the new layout, so a v2 decoder still accepts v1 bodies from
// older daemons byte-for-byte:
//
//	uint32 blocks | uint16 0xFFFF | byte 2 | uint64 bytes | uint16 n |
//	n x (uint16 level, uint32 count, uint64 bytes)
//
// v3 (the object namespace) appends a per-object section after the v2
// layout, under version byte 3:
//
//	... v2 layout with version byte 3 ... | uint16 nObj |
//	nObj x (uint64 object | uint16 m | m x (uint16 level, uint32 count, uint64 bytes))
//
// A v3 decoder accepts all three generations; per-object data is simply
// absent from older bodies. Encoders emit v2 when the snapshot has no
// per-object section (a pre-namespace engine), v3 otherwise.
const (
	statsV2Marker  = 0xFFFF
	statsV2Version = 2
	statsV3Version = 3
	statsV2Header  = 4 + 2 + 1 + 8 + 2
	statsV2Entry   = 2 + 4 + 8
	statsV3ObjHead = 8 + 2
)

// appendLevelCounts bounds-checks and appends one (level, count, bytes)
// entry list; shared by the aggregate and per-object stat sections.
func appendLevelCounts(body []byte, perLevel []LevelCount) ([]byte, error) {
	for _, lc := range perLevel {
		if lc.Level < 0 || lc.Level > 0xFFFF {
			return nil, fmt.Errorf("%w: level %d does not fit the stat frame", ErrBadRequest, lc.Level)
		}
		if lc.Count < 0 || uint64(lc.Count) > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: level %d count %d does not fit the stat frame", ErrBadRequest, lc.Level, lc.Count)
		}
		body = binary.BigEndian.AppendUint16(body, uint16(lc.Level))
		body = binary.BigEndian.AppendUint32(body, uint32(lc.Count))
		body = binary.BigEndian.AppendUint64(body, uint64(lc.Bytes))
	}
	return body, nil
}

func encodeStats(st Stats) ([]byte, error) {
	// Every field that narrows on the wire is bounds-checked: a silent
	// uint16/uint32 truncation would hand clients a plausible-looking but
	// wrong inventory, which the repair daemon would then act on.
	if st.Blocks < 0 || uint64(st.Blocks) > 0xFFFFFFFF {
		return nil, fmt.Errorf("%w: block count %d does not fit the stat frame", ErrBadRequest, st.Blocks)
	}
	if len(st.PerLevel) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d levels do not fit the stat frame", ErrBadRequest, len(st.PerLevel))
	}
	if len(st.PerObject) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d objects do not fit the stat frame", ErrBadRequest, len(st.PerObject))
	}
	version := byte(statsV2Version)
	if len(st.PerObject) > 0 {
		version = statsV3Version
	}
	body := make([]byte, 0, statsV2Header+statsV2Entry*len(st.PerLevel))
	body = binary.BigEndian.AppendUint32(body, uint32(st.Blocks))
	body = binary.BigEndian.AppendUint16(body, statsV2Marker)
	body = append(body, version)
	body = binary.BigEndian.AppendUint64(body, uint64(st.Bytes))
	body = binary.BigEndian.AppendUint16(body, uint16(len(st.PerLevel)))
	body, err := appendLevelCounts(body, st.PerLevel)
	if err != nil {
		return nil, err
	}
	if version == statsV3Version {
		body = binary.BigEndian.AppendUint16(body, uint16(len(st.PerObject)))
		for _, os := range st.PerObject {
			if len(os.PerLevel) > 0xFFFF {
				return nil, fmt.Errorf("%w: object %s: %d levels do not fit the stat frame",
					ErrBadRequest, os.Object, len(os.PerLevel))
			}
			body = binary.BigEndian.AppendUint64(body, uint64(os.Object))
			body = binary.BigEndian.AppendUint16(body, uint16(len(os.PerLevel)))
			if body, err = appendLevelCounts(body, os.PerLevel); err != nil {
				return nil, err
			}
		}
	}
	return body, nil
}

func decodeStats(body []byte) (Stats, error) {
	if len(body) < 6 {
		return Stats{}, fmt.Errorf("%w: stats frame truncated", ErrCorruptFrame)
	}
	st := Stats{Blocks: int(binary.BigEndian.Uint32(body))}
	if len(body) >= statsV2Header && binary.BigEndian.Uint16(body[4:]) == statsV2Marker &&
		(body[6] == statsV2Version || body[6] == statsV3Version) {
		version := body[6]
		st.Bytes = int64(binary.BigEndian.Uint64(body[7:]))
		n := int(binary.BigEndian.Uint16(body[15:]))
		if len(body) < statsV2Header+statsV2Entry*n {
			return Stats{}, fmt.Errorf("%w: stats v%d frame length %d, want >= %d",
				ErrCorruptFrame, version, len(body), statsV2Header+statsV2Entry*n)
		}
		off := statsV2Header
		for i := 0; i < n; i++ {
			st.PerLevel = append(st.PerLevel, LevelCount{
				Level: int(binary.BigEndian.Uint16(body[off:])),
				Count: int(binary.BigEndian.Uint32(body[off+2:])),
				Bytes: int64(binary.BigEndian.Uint64(body[off+6:])),
			})
			off += statsV2Entry
		}
		switch {
		case version == statsV2Version:
			if off != len(body) {
				return Stats{}, fmt.Errorf("%w: %d trailing bytes after stats v2 body", ErrCorruptFrame, len(body)-off)
			}
		default: // v3: per-object section
			if len(body)-off < 2 {
				return Stats{}, fmt.Errorf("%w: stats v3 object section truncated", ErrCorruptFrame)
			}
			nObj := int(binary.BigEndian.Uint16(body[off:]))
			off += 2
			// Bound the claimed object count by the bytes present before
			// sizing anything, decodeBlockList-style.
			if nObj > (len(body)-off)/statsV3ObjHead {
				return Stats{}, fmt.Errorf("%w: stats v3 claims %d objects in %d bytes",
					ErrCorruptFrame, nObj, len(body)-off)
			}
			for i := 0; i < nObj; i++ {
				if len(body)-off < statsV3ObjHead {
					return Stats{}, fmt.Errorf("%w: stats v3 object %d truncated", ErrCorruptFrame, i)
				}
				os := ObjectStats{Object: core.ObjectID(binary.BigEndian.Uint64(body[off:]))}
				m := int(binary.BigEndian.Uint16(body[off+8:]))
				off += statsV3ObjHead
				if m > (len(body)-off)/statsV2Entry {
					return Stats{}, fmt.Errorf("%w: stats v3 object %s claims %d levels in %d bytes",
						ErrCorruptFrame, os.Object, m, len(body)-off)
				}
				for j := 0; j < m; j++ {
					lc := LevelCount{
						Level: int(binary.BigEndian.Uint16(body[off:])),
						Count: int(binary.BigEndian.Uint32(body[off+2:])),
						Bytes: int64(binary.BigEndian.Uint64(body[off+6:])),
					}
					os.PerLevel = append(os.PerLevel, lc)
					os.Blocks += lc.Count
					os.Bytes += lc.Bytes
					off += statsV2Entry
				}
				st.PerObject = append(st.PerObject, os)
			}
			if off != len(body) {
				return Stats{}, fmt.Errorf("%w: %d trailing bytes after stats v3 body", ErrCorruptFrame, len(body)-off)
			}
			sort.Slice(st.PerObject, func(i, j int) bool { return st.PerObject[i].Object < st.PerObject[j].Object })
			for k := range st.PerObject {
				lvls := st.PerObject[k].PerLevel
				sort.Slice(lvls, func(i, j int) bool { return lvls[i].Level < lvls[j].Level })
			}
		}
	} else {
		// v1 body from an older daemon: counts only, bytes stay zero.
		n := int(binary.BigEndian.Uint16(body[4:]))
		if len(body) != 6+6*n {
			return Stats{}, fmt.Errorf("%w: stats frame length %d, want %d", ErrCorruptFrame, len(body), 6+6*n)
		}
		off := 6
		for i := 0; i < n; i++ {
			st.PerLevel = append(st.PerLevel, LevelCount{
				Level: int(binary.BigEndian.Uint16(body[off:])),
				Count: int(binary.BigEndian.Uint32(body[off+2:])),
			})
			off += 6
		}
	}
	sort.Slice(st.PerLevel, func(i, j int) bool { return st.PerLevel[i].Level < st.PerLevel[j].Level })
	return st, nil
}
