package store

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestClientConcurrentUse hammers one Client (one pool) from many
// goroutines mixing puts, gets and stats. Run under -race (make check)
// to verify pool and jitter-rng synchronization.
func TestClientConcurrentUse(t *testing.T) {
	srv := newTestServer(t, ServerConfig{MaxConns: 32})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx := context.Background()

	const goroutines, perG = 8, 24
	levels, _, _ := testCode(t, 1)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Distinct payload per (goroutine, i): dedup keeps none.
				b := &core.CodedBlock{
					Level:   g % levels.Count(),
					Coeff:   make([]byte, levels.Total()),
					Payload: []byte(fmt.Sprintf("g%02d-i%02d", g, i)),
				}
				b.Coeff[0] = byte(1 + g)
				b.Coeff[levels.Total()-1] = byte(1 + i)
				if err := cl.Put(ctx, b); err != nil {
					errCh <- fmt.Errorf("put g%d i%d: %w", g, i, err)
					return
				}
				switch i % 3 {
				case 0:
					if _, err := cl.Get(ctx, -1); err != nil {
						errCh <- fmt.Errorf("get g%d i%d: %w", g, i, err)
						return
					}
				case 1:
					if _, err := cl.Stat(ctx); err != nil {
						errCh <- fmt.Errorf("stat g%d i%d: %w", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got, want := srv.Len(), goroutines*perG; got != want {
		t.Fatalf("server holds %d blocks, want %d", got, want)
	}
}

// TestReplicatedConcurrentUse drives a replicated store from concurrent
// writers and readers over shared per-replica pools.
func TestReplicatedConcurrentUse(t *testing.T) {
	servers := make([]*Server, 3)
	clients := make([]*Client, 3)
	for i := range servers {
		servers[i] = newTestServer(t, ServerConfig{MaxConns: 32})
		clients[i] = newTestClient(t, servers[i].Addr(), nil)
	}
	repl, err := NewReplicated(clients, 2, ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, blocks := testCode(t, 64)
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(blocks); i += 4 {
				if err := repl.Put(ctx, blocks[i]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := repl.Collect(ctx, -1); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	got, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("collected %d distinct blocks, want %d", len(got), len(blocks))
	}
}
