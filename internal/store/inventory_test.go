package store

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestStatsPerLevelBytes pins the inventory tallies: per-level counts
// and wire bytes, carried through the stat frame end to end.
func TestStatsPerLevelBytes(t *testing.T) {
	srv := newTestServer(t, ServerConfig{})
	cl := newTestClient(t, srv.Addr(), nil)
	ctx := context.Background()
	_, _, blocks := testCode(t, 12)
	wantCount := map[int]int{}
	wantBytes := map[int]int64{}
	var total int64
	for _, b := range blocks {
		if err := cl.Put(ctx, b); err != nil {
			t.Fatal(err)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wantCount[b.Level]++
		wantBytes[b.Level] += int64(len(data))
		total += int64(len(data))
	}
	st, err := cl.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != len(blocks) || st.Bytes != total {
		t.Fatalf("stats = %d blocks / %d bytes, want %d / %d", st.Blocks, st.Bytes, len(blocks), total)
	}
	if len(st.PerLevel) != len(wantCount) {
		t.Fatalf("%d per-level entries, want %d", len(st.PerLevel), len(wantCount))
	}
	for _, lc := range st.PerLevel {
		if lc.Count != wantCount[lc.Level] || lc.Bytes != wantBytes[lc.Level] {
			t.Fatalf("level %d: %d blocks / %d bytes, want %d / %d",
				lc.Level, lc.Count, lc.Bytes, wantCount[lc.Level], wantBytes[lc.Level])
		}
	}
}

// TestStatsWireBackwardCompatible pins the two stat-body generations:
// v2 round-trips exactly, and a v1 body from an older daemon still
// decodes (with zero byte tallies).
func TestStatsWireBackwardCompatible(t *testing.T) {
	v2 := Stats{
		Blocks: 7,
		Bytes:  900,
		PerLevel: []LevelCount{
			{Level: 0, Count: 4, Bytes: 600},
			{Level: 2, Count: 3, Bytes: 300},
		},
	}
	v2body, err := encodeStats(v2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeStats(v2body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v2) {
		t.Fatalf("v2 round trip drifted: %+v", back)
	}

	// A v1 body, byte-for-byte as PR 3's encodeStats produced it.
	v1 := binary.BigEndian.AppendUint32(nil, 7)
	v1 = binary.BigEndian.AppendUint16(v1, 2)
	v1 = binary.BigEndian.AppendUint16(v1, 0)
	v1 = binary.BigEndian.AppendUint32(v1, 4)
	v1 = binary.BigEndian.AppendUint16(v1, 2)
	v1 = binary.BigEndian.AppendUint32(v1, 3)
	back, err = decodeStats(v1)
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Blocks: 7, PerLevel: []LevelCount{{Level: 0, Count: 4}, {Level: 2, Count: 3}}}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("v1 decode = %+v, want %+v", back, want)
	}

	// Truncation in either generation is corruption, not a panic.
	if _, err := decodeStats(v2body[:10]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated v2 err = %v, want ErrCorruptFrame", err)
	}
	if _, err := decodeStats(v1[:8]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated v1 err = %v, want ErrCorruptFrame", err)
	}
}

// TestStatsV3PerObjectRoundTrip pins the keyed generation: per-object
// sections survive the wire, and a v2 body (no objects) still decodes.
func TestStatsV3PerObjectRoundTrip(t *testing.T) {
	v3 := Stats{
		Blocks: 9,
		Bytes:  1200,
		PerLevel: []LevelCount{
			{Level: 0, Count: 5, Bytes: 700},
			{Level: 1, Count: 4, Bytes: 500},
		},
		PerObject: []ObjectStats{
			{Object: core.ZeroObject, Blocks: 3, Bytes: 400,
				PerLevel: []LevelCount{{Level: 0, Count: 3, Bytes: 400}}},
			{Object: core.NamedObject("alpha"), Blocks: 6, Bytes: 800,
				PerLevel: []LevelCount{
					{Level: 0, Count: 2, Bytes: 300},
					{Level: 1, Count: 4, Bytes: 500},
				}},
		},
	}
	body, err := encodeStats(v3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v3) {
		t.Fatalf("v3 round trip drifted:\n got %+v\nwant %+v", back, v3)
	}

	// No per-object data → the encoder stays on v2, old decoders keep
	// working, and the round trip is unchanged.
	v2 := Stats{Blocks: 1, Bytes: 10, PerLevel: []LevelCount{{Level: 0, Count: 1, Bytes: 10}}}
	v2body, err := encodeStats(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2body) >= len(body) {
		t.Fatal("object-free stats did not use the shorter v2 encoding")
	}
	back, err = decodeStats(v2body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v2) {
		t.Fatalf("v2 round trip drifted: %+v", back)
	}

	// Truncating inside the per-object section is corruption.
	for _, cut := range []int{len(body) - 1, len(body) - 5, len(v2body) + 1} {
		if _, err := decodeStats(body[:cut]); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("truncated v3 at %d: err = %v, want ErrCorruptFrame", cut, err)
		}
	}
}

// TestCollectKeepsRecombinedBlocks pins the dedup boundary the repair
// daemon relies on: Collect dedups byte-identical replica copies, so a
// *fresh-coefficient* recombination is a new block (kept), while
// re-putting the identical regenerated block stays idempotent.
func TestCollectKeepsRecombinedBlocks(t *testing.T) {
	ctx := context.Background()
	levels, _, blocks := testCode(t, 10)
	servers := make([]*Server, 2)
	clients := make([]*Client, 2)
	for i := range servers {
		servers[i] = newTestServer(t, ServerConfig{})
		clients[i] = newTestClient(t, servers[i].Addr(), nil)
	}
	repl, err := NewReplicated(clients, levels.Count(), ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := repl.Put(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	base, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(blocks) {
		t.Fatalf("collected %d distinct blocks, want %d (replica copies must dedup)", len(base), len(blocks))
	}

	regen, err := core.Recombine(rand.New(rand.NewSource(77)), core.PLC, levels, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.Put(ctx, regen); err != nil {
		t.Fatal(err)
	}
	got, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks)+1 {
		t.Fatalf("collected %d blocks after recombination, want %d (fresh coefficients must not dedup)",
			len(got), len(blocks)+1)
	}

	// The same regenerated block again: a retry, not new data.
	if err := repl.Put(ctx, regen.Clone()); err != nil {
		t.Fatal(err)
	}
	again, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got) {
		t.Fatalf("re-putting an identical regenerated block grew the set to %d (want %d)", len(again), len(got))
	}
}

// TestPutPreferringSteersPlacement pins that preferred replicas receive
// the copies when the replication factor does not cover the whole fleet.
func TestPutPreferringSteersPlacement(t *testing.T) {
	ctx := context.Background()
	levels, _, blocks := testCode(t, 6)
	servers := make([]*Server, 3)
	clients := make([]*Client, 3)
	for i := range servers {
		servers[i] = newTestServer(t, ServerConfig{})
		clients[i] = newTestClient(t, servers[i].Addr(), nil)
	}
	repl, err := NewReplicated(clients, levels.Count(), ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := repl.Levels(); got != levels.Count() {
		t.Fatalf("Levels() = %d, want %d", got, levels.Count())
	}
	var bulk *core.CodedBlock
	for _, b := range blocks {
		if b.Level == 1 {
			bulk = b
			break
		}
	}
	if bulk == nil {
		t.Fatal("test setup: no bulk-level block")
	}
	if rf := repl.ReplicasFor(1); rf != 2 {
		t.Fatalf("ReplicasFor(1) = %d, want 2", rf)
	}
	// Duplicate and out-of-range preferences must be tolerated.
	if err := repl.PutPreferring(ctx, bulk, []int{2, 2, -1, 9, 1}); err != nil {
		t.Fatal(err)
	}
	if n := servers[0].Len(); n != 0 {
		t.Fatalf("non-preferred replica 0 holds %d blocks, want 0", n)
	}
	for i := 1; i <= 2; i++ {
		if n := servers[i].Len(); n != 1 {
			t.Fatalf("preferred replica %d holds %d blocks, want 1", i, n)
		}
	}
}

// TestStatAllSurvivesDeadReplica pins the audit primitive: per-replica
// snapshots with per-replica errors, no all-or-nothing failure.
func TestStatAllSurvivesDeadReplica(t *testing.T) {
	ctx := context.Background()
	srv := newTestServer(t, ServerConfig{})
	alive := newTestClient(t, srv.Addr(), nil)
	deadCfg := fastClientCfg("127.0.0.1:1", nil)
	deadCfg.Retry.MaxAttempts = 1
	dead, err := NewClient(deadCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dead.Close() })
	repl, err := NewReplicated([]*Client{alive, dead}, 2, ReplicatedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, blocks := testCode(t, 3)
	for _, b := range blocks {
		if err := alive.Put(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	stats, errs := repl.StatAll(ctx)
	if errs[0] != nil {
		t.Fatalf("reachable replica errored: %v", errs[0])
	}
	if stats[0].Blocks != len(blocks) {
		t.Fatalf("replica 0 reports %d blocks, want %d", stats[0].Blocks, len(blocks))
	}
	if errs[1] == nil {
		t.Fatal("unreachable replica reported no error")
	}
}
