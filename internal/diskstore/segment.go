package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Segment file layout. A segment is an append-only log:
//
//	header  16 bytes   magic "PLCSEG1\n" + uint64 BE creation unix-nanos
//	records repeated   uint32 BE wire length | uint32 BE IEEE CRC(wire) |
//	                   wire bytes (one core.CodedBlock wire frame, any
//	                   version v1–v4, exactly as received on the socket)
//
// The CRC guards each record independently, so recovery can replay a
// segment record by record and stop at the first torn one — a crash
// mid-write leaves at most one partial record, always at the tail.
// Record bodies reuse the block wire encoding, so a segment is
// replayable with core.CodedBlock.UnmarshalBinary and nothing else.
const (
	segMagic     = "PLCSEG1\n"
	segHeaderLen = 8 + 8
	recHeaderLen = 4 + 4

	segSuffix = ".plcseg"
)

// segName formats a segment file name; ids are zero-padded so
// lexicographic order is replay order.
func segName(id uint64) string {
	return fmt.Sprintf("seg-%08d%s", id, segSuffix)
}

// rec is one committed block record in the in-memory index.
type rec struct {
	off   int64         // record start (the length field), not the wire bytes
	n     int32         // wire length
	obj   core.ObjectID // object namespace, parsed from the wire frame
	level uint16        // priority level, parsed from the wire frame
	hash  uint64        // dedup hash of the wire bytes
	dead  bool          // object deleted after this record landed; skip on read
}

// segment is one on-disk log file plus its index slice. recs is
// guarded by the Store's mu; the read handle by fmu, so retention can
// delete a segment out from under a concurrent Get without racing it.
type segment struct {
	id        uint64
	path      string
	createdAt time.Time
	size      int64
	recs      []rec // every physical block record, dead ones included —
	// positions are load-bearing (blockRef.idx), so deletes mark
	// rather than remove
	live  int             // recs not marked dead
	tombs []core.ObjectID // objects tombstoned in this segment, log order

	fmu     sync.RWMutex
	rf      *os.File // lazily-opened read handle
	deleted bool
}

// readRecord fetches one record's wire bytes from the file.
func (g *segment) readRecord(r rec) ([]byte, error) {
	g.fmu.RLock()
	if g.deleted {
		g.fmu.RUnlock()
		return nil, fmt.Errorf("diskstore: segment %d expired", g.id)
	}
	rf := g.rf
	g.fmu.RUnlock()
	if rf == nil {
		g.fmu.Lock()
		if g.deleted {
			g.fmu.Unlock()
			return nil, fmt.Errorf("diskstore: segment %d expired", g.id)
		}
		if g.rf == nil {
			f, err := os.Open(g.path)
			if err != nil {
				g.fmu.Unlock()
				return nil, err
			}
			g.rf = f
		}
		rf = g.rf
		g.fmu.Unlock()
	}
	data := make([]byte, r.n)
	// ReadAt is safe against the deleter: unlinking does not invalidate
	// an open handle, and close waits on fmu below.
	g.fmu.RLock()
	defer g.fmu.RUnlock()
	if g.deleted {
		return nil, fmt.Errorf("diskstore: segment %d expired", g.id)
	}
	if _, err := rf.ReadAt(data, r.off+recHeaderLen); err != nil {
		return nil, err
	}
	return data, nil
}

// close releases the read handle.
func (g *segment) close() error {
	g.fmu.Lock()
	defer g.fmu.Unlock()
	var err error
	if g.rf != nil {
		err = g.rf.Close()
		g.rf = nil
	}
	return err
}

// remove unlinks the segment file and closes its handle; concurrent
// reads either finish against the still-open handle or observe deleted.
func (g *segment) remove() error {
	g.fmu.Lock()
	defer g.fmu.Unlock()
	g.deleted = true
	err := os.Remove(g.path)
	if g.rf != nil {
		g.rf.Close()
		g.rf = nil
	}
	return err
}

// appendRecord serializes one record into buf and returns it.
func appendRecord(buf, wire []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(wire)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(wire))
	return append(buf, wire...)
}

// Tombstones ride the same record framing as blocks (length + CRC +
// payload) but carry a payload that can never be a block frame: the
// magic differs from "PB" in its second byte. A tombstone logs "object
// X was deleted here" — replay kills every earlier record of X, while
// records after the tombstone (a re-put) survive. Deletion is thereby
// as durable and crash-consistent as the puts it revokes.
const (
	tombMagic = "PLCDEL1\x00"
	tombLen   = 8 + 8 // magic + uint64 object ID
)

// tombstoneWire serializes a tombstone payload.
func tombstoneWire(obj core.ObjectID) []byte {
	buf := make([]byte, 0, tombLen)
	buf = append(buf, tombMagic...)
	return binary.BigEndian.AppendUint64(buf, uint64(obj))
}

// tombstoneObj parses a tombstone payload, reporting ok=false for
// anything else (including block frames).
func tombstoneObj(wire []byte) (core.ObjectID, bool) {
	if len(wire) != tombLen || string(wire[:8]) != tombMagic {
		return 0, false
	}
	return core.ObjectID(binary.BigEndian.Uint64(wire[8:])), true
}

// Block wire frame geometry mirrored from the core marshal layer: the
// header is magic "PB" + version; key-less versions (1 dense, 3 sparse)
// put the BE level right after, keyed versions (2 dense, 4 sparse)
// insert the 8-byte BE object ID between version and level.
const (
	wireMinLegacy = 13 // "PB" + ver + level + 2×uint32 counts
	wireMinKeyed  = wireMinLegacy + 8
)

// wireMeta extracts the object and priority level from a block wire
// frame without a full unmarshal. The store validated the frame before
// Put, and recovery re-checks exactly this much before trusting a
// record.
func wireMeta(wire []byte) (core.ObjectID, int, bool) {
	if len(wire) < wireMinLegacy || wire[0] != 'P' || wire[1] != 'B' {
		return 0, 0, false
	}
	switch wire[2] {
	case 1, 3:
		return core.ZeroObject, int(binary.BigEndian.Uint16(wire[3:5])), true
	case 2, 4:
		if len(wire) < wireMinKeyed {
			return 0, 0, false
		}
		obj := core.ObjectID(binary.BigEndian.Uint64(wire[3:11]))
		if obj == core.ZeroObject || obj == core.AllObjects {
			return 0, 0, false // non-canonical keyed frame
		}
		return obj, int(binary.BigEndian.Uint16(wire[11:13])), true
	default:
		return 0, 0, false
	}
}

// scanResult is what loading one segment yields.
type scanResult struct {
	seg       *segment
	tornBytes int64 // bytes truncated off the tail (0 = clean)
}

// loadSegment replays one segment file, validating every record CRC,
// and truncates the file at the first record that does not parse — the
// torn tail a crash mid-write leaves behind. A file too short or
// corrupt to even carry a header is truncated to empty and re-headed.
func loadSegment(path string, id uint64, maxRecord int) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return scanResult{}, err
	}
	fileSize := info.Size()

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:8]) != segMagic {
		// No intact header: nothing in this file is recoverable. Rewrite
		// it as an empty segment rather than guessing at its contents.
		created := time.Now()
		if werr := writeSegmentHeader(path, created); werr != nil {
			return scanResult{}, werr
		}
		seg := &segment{id: id, path: path, createdAt: created, size: segHeaderLen}
		return scanResult{seg: seg, tornBytes: fileSize}, nil
	}
	seg := &segment{
		id:        id,
		path:      path,
		createdAt: time.Unix(0, int64(binary.BigEndian.Uint64(hdr[8:]))),
	}

	br := bufio.NewReaderSize(f, 1<<20)
	off := int64(segHeaderLen)
	var rh [recHeaderLen]byte
	for {
		if fileSize-off < recHeaderLen {
			break // clean EOF or a tail too short to be a record
		}
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			break
		}
		n := int64(binary.BigEndian.Uint32(rh[:4]))
		wantCRC := binary.BigEndian.Uint32(rh[4:])
		if n == 0 || n > int64(maxRecord) || n > fileSize-off-recHeaderLen {
			break // length field torn or truncated body
		}
		wire := make([]byte, n)
		if _, err := io.ReadFull(br, wire); err != nil {
			break
		}
		if crc32.ChecksumIEEE(wire) != wantCRC {
			break // payload corrupted
		}
		obj, level, ok := wireMeta(wire)
		if !ok {
			if tobj, isTomb := tombstoneObj(wire); isTomb {
				// A delete committed here: every record of the object
				// earlier in the log dies; later records (a re-put)
				// survive. Same-segment predecessors are killed in-stream;
				// recover() applies the tombstone to earlier segments.
				for i := range seg.recs {
					if seg.recs[i].obj == tobj {
						seg.recs[i].dead = true
					}
				}
				seg.tombs = append(seg.tombs, tobj)
				off += recHeaderLen + n
				continue
			}
			break // CRC matched garbage that is neither block nor tombstone
		}
		seg.recs = append(seg.recs, rec{
			off:   off,
			n:     int32(n),
			obj:   obj,
			level: uint16(level),
			hash:  hashWire(wire),
		})
		off += recHeaderLen + n
	}
	seg.size = off
	torn := fileSize - off
	if torn > 0 {
		if err := os.Truncate(path, off); err != nil {
			return scanResult{}, fmt.Errorf("diskstore: truncate torn tail of %s: %w", path, err)
		}
	}
	return scanResult{seg: seg, tornBytes: torn}, nil
}

// writeSegmentHeader (re)creates path as an empty segment.
func writeSegmentHeader(path string, created time.Time) error {
	buf := make([]byte, 0, segHeaderLen)
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(created.UnixNano()))
	return os.WriteFile(path, buf, 0o644)
}

// listSegments returns the segment files under dir, ordered by id.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		names = append(names, filepath.Join(dir, name))
		ids = append(ids, id)
	}
	sort.Sort(&segSort{names, ids})
	return names, ids, nil
}

type segSort struct {
	names []string
	ids   []uint64
}

func (s *segSort) Len() int           { return len(s.ids) }
func (s *segSort) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *segSort) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// syncDir fsyncs the directory so segment creates and deletes survive a
// power loss; errors are returned for the caller to judge (a missing
// dir fsync weakens durability but loses no already-synced data).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
