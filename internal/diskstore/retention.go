package diskstore

import (
	"time"
)

// Retention: sealed segments older than Options.Retention are deleted
// whole — segment granularity is what makes a rolling window cheap
// (one unlink reclaims a file of blocks, no per-record compaction).
// The active segment is never deleted; when it grows older than the
// window while still unfilled, the loop asks the writer to rotate it
// so its blocks become deletable on a later tick.

// retentionLoop enforces the rolling window every RetentionCheck.
func (s *Store) retentionLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.RetentionCheck)
	defer t.Stop()
	for {
		select {
		case <-s.stopRet:
			return
		case <-t.C:
			s.enforceRetention(time.Now())
		}
	}
}

// enforceRetention deletes expired sealed segments and requests a
// rotation when the active segment itself has outlived the window.
func (s *Store) enforceRetention(now time.Time) {
	cutoff := now.Add(-s.opts.Retention)

	s.mu.Lock()
	var expired []*segment
	keep := s.segs[:0]
	for i, seg := range s.segs {
		sealed := i < len(s.segs)-1
		if sealed && seg.createdAt.Before(cutoff) {
			expired = append(expired, seg)
			continue
		}
		keep = append(keep, seg)
	}
	s.segs = keep
	rotateActive := false
	if n := len(s.segs); n > 0 {
		active := s.segs[n-1]
		rotateActive = active.size > segHeaderLen && active.createdAt.Before(cutoff)
	}
	for _, seg := range expired {
		for _, r := range seg.recs {
			if r.dead {
				continue // a delete already dropped it from the index
			}
			s.dropRefLocked(seg, r)
		}
	}
	if len(expired) > 0 {
		s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	}
	s.mu.Unlock()

	for _, seg := range expired {
		purged, size := s.cache.purgeSeg(seg.id)
		s.met.cacheEvictions.Add(uint64(purged))
		s.met.cacheBytes.Set(size)
		blocks, bytes := len(seg.recs), seg.size-segHeaderLen
		if err := seg.remove(); err != nil {
			s.opts.Logf("diskstore: delete expired segment %d: %v", seg.id, err)
		}
		s.met.segmentsDeleted.Inc()
		s.met.blocksExpired.Add(uint64(blocks))
		s.met.bytesExpired.Add(uint64(bytes))
		s.opts.Logf("diskstore: expired segment %d (%d blocks, %d bytes) beyond the %v window",
			seg.id, blocks, bytes, s.opts.Retention)
	}
	if len(expired) > 0 {
		if err := syncDir(s.dir); err != nil {
			s.opts.Logf("diskstore: fsync data dir: %v", err)
		}
	}

	if rotateActive {
		s.requestRotate()
	}
}

// dropRefLocked removes one expired record from the inventory index.
func (s *Store) dropRefLocked(seg *segment, r rec) {
	refs := s.byHash[r.hash]
	for i := 0; i < len(refs); {
		if refs[i].seg == seg {
			refs = append(refs[:i], refs[i+1:]...)
			continue
		}
		i++
	}
	if len(refs) == 0 {
		delete(s.byHash, r.hash)
	} else {
		s.byHash[r.hash] = refs
	}
	k := objLevel{r.obj, int(r.level)}
	tally := s.tallies[k]
	tally.count--
	tally.bytes -= int64(r.n)
	if tally.count <= 0 {
		delete(s.tallies, k)
	} else {
		s.tallies[k] = tally
	}
	s.blocks--
	s.bytes -= int64(r.n)
}

// requestRotate asks the writer to seal the active segment; a no-op on
// a closed (or closing) store.
func (s *Store) requestRotate() {
	req := &writeReq{kind: reqRotate, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.putters.Add(1)
	s.mu.Unlock()
	select {
	case s.reqCh <- req:
		s.putters.Done()
		<-req.done
		if req.err != nil {
			s.opts.Logf("diskstore: rotate aged active segment: %v", req.err)
		}
	case <-s.stopRet:
		s.putters.Done()
	}
}
