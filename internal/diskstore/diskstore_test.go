package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
)

// quiet silences retention/recovery notices in tests that expect them.
func quiet(format string, args ...any) {}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = quiet
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// testBlocks builds n marshaled coded blocks over a 2-level PLC code
// (4 critical + 12 bulk sources of 32 bytes) from a fixed seed.
func testBlocks(t *testing.T, n int) (*core.Levels, [][]byte, [][]byte, []int) {
	t.Helper()
	levels, err := core.NewLevels(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, n)
	if err != nil {
		t.Fatal(err)
	}
	wires := make([][]byte, len(blocks))
	lvls := make([]int, len(blocks))
	for i, b := range blocks {
		w, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
		lvls[i] = b.Level
	}
	return levels, sources, wires, lvls
}

func putAll(t *testing.T, s *Store, wires [][]byte, lvls []int) {
	t.Helper()
	for i, w := range wires {
		stored, err := s.Put(core.ZeroObject, lvls[i], w)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if !stored {
			t.Fatalf("put %d: reported dedup for a fresh block", i)
		}
	}
}

// sortedSet canonicalizes a block list for set comparison.
func sortedSet(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func sameSet(t *testing.T, got, want [][]byte) {
	t.Helper()
	g, w := sortedSet(got), sortedSet(want)
	if len(g) != len(w) {
		t.Fatalf("got %d blocks, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("block set mismatch at %d", i)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	_, _, wires, lvls := testBlocks(t, 24)
	putAll(t, s, wires, lvls)

	if s.Len() != len(wires) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(wires))
	}
	all, err := s.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, all, wires)

	// Level filter: only level-0 blocks come back for maxLevel 0.
	l0, err := s.Get(core.AllObjects, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i, w := range wires {
		if lvls[i] == 0 {
			want = append(want, w)
		}
	}
	sameSet(t, l0, want)

	// Stats: per-level tallies ascending, bytes accounted.
	st := s.Stats()
	if st.Blocks != len(wires) {
		t.Fatalf("Stats.Blocks = %d, want %d", st.Blocks, len(wires))
	}
	var totalBytes int64
	for _, w := range wires {
		totalBytes += int64(len(w))
	}
	if st.Bytes != totalBytes || s.Bytes() != totalBytes {
		t.Fatalf("Stats.Bytes = %d, Bytes() = %d, want %d", st.Bytes, s.Bytes(), totalBytes)
	}
	for i := 1; i < len(st.PerLevel); i++ {
		if st.PerLevel[i].Level <= st.PerLevel[i-1].Level {
			t.Fatalf("PerLevel not ascending: %+v", st.PerLevel)
		}
	}
}

func TestPutDeduplicates(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	_, _, wires, lvls := testBlocks(t, 8)
	putAll(t, s, wires, lvls)
	for i, w := range wires {
		stored, err := s.Put(core.ZeroObject, lvls[i], w)
		if err != nil {
			t.Fatal(err)
		}
		if stored {
			t.Fatalf("re-put %d stored a duplicate", i)
		}
	}
	if s.Len() != len(wires) {
		t.Fatalf("Len = %d after re-puts, want %d", s.Len(), len(wires))
	}
}

func TestConcurrentIdenticalPutsCoalesce(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	_, _, wires, lvls := testBlocks(t, 1)
	const G = 16
	stored := make([]bool, G)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ok, err := s.Put(core.ZeroObject, lvls[0], wires[0])
			if err != nil {
				t.Error(err)
			}
			stored[g] = ok
		}(g)
	}
	wg.Wait()
	n := 0
	for _, ok := range stored {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d of %d identical puts reported stored, want exactly 1", n, G)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestRestartRecoversBitExact(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	_, _, wires, lvls := testBlocks(t, 32)
	putAll(t, s, wires, lvls)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	s2 := openTest(t, dir, Options{Metrics: reg})
	all, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, all, wires)
	if got := reg.Snapshot(); countVal(t, got, "diskstore_recovered_blocks_total") != uint64(len(wires)) {
		t.Fatalf("recovered_blocks = %d, want %d", countVal(t, got, "diskstore_recovered_blocks_total"), len(wires))
	}
	// Dedup index must survive the restart: re-puts still coalesce.
	for i, w := range wires {
		if stored, err := s2.Put(core.ZeroObject, lvls[i], w); err != nil || stored {
			t.Fatalf("re-put %d after restart: stored=%v err=%v", i, stored, err)
		}
	}
}

func countVal(t *testing.T, snap metrics.Snapshot, name string) uint64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func TestRotationSpillsToNewSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 4 << 10})
	_, _, wires, lvls := testBlocks(t, 64)
	putAll(t, s, wires, lvls)
	if s.Segments() < 2 {
		t.Fatalf("Segments = %d after 64 puts with 4 KiB segments, want >= 2", s.Segments())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{SegmentBytes: 4 << 10})
	all, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, all, wires)
}

func TestRetentionExpiresSealedSegments(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s := openTest(t, dir, Options{
		SegmentBytes: 1 << 10,
		Retention:    50 * time.Millisecond,
		// A long check interval: the test drives enforcement directly so
		// it stays deterministic.
		RetentionCheck: time.Hour,
		Metrics:        reg,
	})
	_, _, wires, lvls := testBlocks(t, 96)
	putAll(t, s, wires, lvls)
	segsBefore, blocksBefore := s.Segments(), s.Len()
	if segsBefore < 3 {
		t.Fatalf("want >= 3 segments to exercise retention, got %d", segsBefore)
	}

	// Everything sealed is now "old": sealed segments are deleted, and
	// the aged-but-nonempty active is rotated behind a fresh one (its
	// blocks survive until a later pass).
	s.enforceRetention(time.Now().Add(time.Hour))
	if got := s.Segments(); got != 2 {
		t.Fatalf("Segments = %d after retention, want 2 (rotated-out active + fresh)", got)
	}
	if s.Len() >= blocksBefore {
		t.Fatalf("Len = %d after retention, want < %d", s.Len(), blocksBefore)
	}
	snap := reg.Snapshot()
	if countVal(t, snap, "diskstore_segments_deleted_total") != uint64(segsBefore-1) {
		t.Fatalf("segments_deleted = %d, want %d", countVal(t, snap, "diskstore_segments_deleted_total"), segsBefore-1)
	}
	if exp := countVal(t, snap, "diskstore_blocks_expired_total"); exp != uint64(blocksBefore-s.Len()) {
		t.Fatalf("blocks_expired = %d, want %d", exp, blocksBefore-s.Len())
	}

	// Gets serve the survivors; expired blocks can be re-put (their
	// dedup entries are gone) and the files are really deleted.
	got, err := s.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != s.Len() {
		t.Fatalf("Get returned %d blocks, Len is %d", len(got), s.Len())
	}
	names, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != s.Segments() {
		t.Fatalf("%d segment files on disk after retention, want %d", len(names), s.Segments())
	}
	surviving := make(map[string]bool)
	for _, b := range got {
		surviving[string(b)] = true
	}
	for i, w := range wires {
		if surviving[string(w)] {
			continue
		}
		stored, err := s.Put(core.ZeroObject, lvls[i], w)
		if err != nil || !stored {
			t.Fatalf("re-put of expired block %d: stored=%v err=%v", i, stored, err)
		}
		break
	}
}

func TestRetentionRotatesAgedActiveSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		Retention:      50 * time.Millisecond,
		RetentionCheck: time.Hour,
	})
	_, _, wires, lvls := testBlocks(t, 4)
	putAll(t, s, wires, lvls)
	if s.Segments() != 1 {
		t.Fatalf("Segments = %d, want 1", s.Segments())
	}
	// First pass: the active segment outlived the window, so it is
	// sealed (rotated) but its blocks still exist.
	s.enforceRetention(time.Now().Add(time.Hour))
	if s.Len() != len(wires) {
		t.Fatalf("Len = %d after rotation pass, want %d", s.Len(), len(wires))
	}
	// Second pass: now sealed and old, it expires.
	s.enforceRetention(time.Now().Add(2 * time.Hour))
	if s.Len() != 0 {
		t.Fatalf("Len = %d after expiry pass, want 0", s.Len())
	}
}

func TestMaxBlocksRejectsWithErrStoreFull(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{MaxBlocks: 4})
	_, _, wires, lvls := testBlocks(t, 5)
	putAll(t, s, wires[:4], lvls[:4])
	_, err := s.Put(core.ZeroObject, lvls[4], wires[4])
	if !errors.Is(err, store.ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
	if !errors.Is(err, store.ErrStoreUnavailable) {
		t.Fatalf("ErrStoreFull must also match ErrStoreUnavailable for fail-over, got %v", err)
	}
	// Duplicates of stored blocks are still accepted (idempotent retry).
	if stored, err := s.Put(core.ZeroObject, lvls[0], wires[0]); err != nil || stored {
		t.Fatalf("dup put on full store: stored=%v err=%v", stored, err)
	}
}

func TestMaxBytesRejectsWithErrStoreFull(t *testing.T) {
	_, _, wires, lvls := testBlocks(t, 3)
	s := openTest(t, t.TempDir(), Options{MaxBytes: int64(len(wires[0]) + len(wires[1]))})
	putAll(t, s, wires[:2], lvls[:2])
	if _, err := s.Put(core.ZeroObject, lvls[2], wires[2]); !errors.Is(err, store.ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncBatch, FsyncAlways, FsyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{Fsync: mode})
			_, _, wires, lvls := testBlocks(t, 12)
			putAll(t, s, wires, lvls)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openTest(t, dir, Options{})
			all, err := s2.Get(core.AllObjects, -1)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, all, wires)
		})
	}
}

func TestCacheServesRepeatGets(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTest(t, t.TempDir(), Options{Metrics: reg})
	_, _, wires, lvls := testBlocks(t, 8)
	putAll(t, s, wires, lvls)
	if _, err := s.Get(core.AllObjects, -1); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := countVal(t, reg.Snapshot(), "diskstore_cache_misses_total")
	if _, err := s.Get(core.AllObjects, -1); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if hits := countVal(t, snap, "diskstore_cache_hits_total"); hits < uint64(len(wires)) {
		t.Fatalf("cache_hits = %d after second get, want >= %d", hits, len(wires))
	}
	if misses := countVal(t, snap, "diskstore_cache_misses_total"); misses != missesAfterFirst {
		t.Fatalf("second get missed the cache: %d -> %d misses", missesAfterFirst, misses)
	}
}

func TestSyncFlushesQueuedPuts(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fsync: FsyncNone})
	_, _, wires, lvls := testBlocks(t, 8)
	putAll(t, s, wires, lvls)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// The data must be on disk now: read the segment file directly.
	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("listSegments: %v (%d files)", err, len(names))
	}
	info, err := os.Stat(names[0])
	if err != nil {
		t.Fatal(err)
	}
	var want int64 = segHeaderLen
	for _, w := range wires {
		want += recHeaderLen + int64(len(w))
	}
	if info.Size() != want {
		t.Fatalf("segment file %d bytes after Sync, want %d", info.Size(), want)
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	_, _, wires, lvls := testBlocks(t, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(core.ZeroObject, lvls[0], wires[0]); !errors.Is(err, store.ErrStoreUnavailable) {
		t.Fatalf("put after close: %v, want ErrStoreUnavailable", err)
	}
}

func TestOpenRejectsUnreadableDir(t *testing.T) {
	// A file where the dir should be: MkdirAll fails cleanly.
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{Logf: quiet}); err == nil {
		t.Fatal("Open on a file path succeeded, want error")
	}
}

// TestSegmentFilesReplayableWithCoreUnmarshal pins the design promise
// that segment records are ordinary CodedBlock wire frames: a reader
// with nothing but the record framing and core.UnmarshalBinary can
// replay a segment.
func TestSegmentFilesReplayableWithCoreUnmarshal(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	_, _, wires, lvls := testBlocks(t, 6)
	putAll(t, s, wires, lvls)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, ids, err := listSegments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("listSegments: %v (%d files)", err, len(names))
	}
	res, err := loadSegment(names[0], ids[0], store.DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if res.tornBytes != 0 {
		t.Fatalf("clean segment reported %d torn bytes", res.tornBytes)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.seg.recs {
		wire := raw[r.off+recHeaderLen : r.off+recHeaderLen+int64(r.n)]
		var b core.CodedBlock
		if err := b.UnmarshalBinary(wire); err != nil {
			t.Fatalf("record %d does not unmarshal as a CodedBlock: %v", i, err)
		}
		if b.Level != int(r.level) {
			t.Fatalf("record %d: indexed level %d, wire level %d", i, r.level, b.Level)
		}
	}
}

// TestGetDuringRetention pins that a Get racing segment expiry never
// fails — expired blocks simply drop out of the result.
func TestGetDuringRetention(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{
		SegmentBytes:   2 << 10,
		Retention:      time.Millisecond,
		RetentionCheck: time.Hour,
		CacheBytes:     -1, // force disk reads so the race is real
	})
	_, _, wires, lvls := testBlocks(t, 48)
	putAll(t, s, wires, lvls)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.enforceRetention(time.Now().Add(time.Hour))
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := s.Get(core.AllObjects, -1); err != nil {
			t.Errorf("get during retention: %v", err)
		}
	}
	wg.Wait()
}

// TestTornTailTruncation corrupts the tail 5% of the last segment and
// verifies recovery truncates it, counts it, logs it, and keeps every
// record before the tear.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	_, _, wires, lvls := testBlocks(t, 40)
	putAll(t, s, wires, lvls)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("listSegments: %v", err)
	}
	last := names[len(names)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	tear := len(raw) - len(raw)/20 // last 5%
	rng := rand.New(rand.NewSource(7))
	corrupted := append([]byte(nil), raw...)
	for i := tear; i < len(corrupted); i++ {
		corrupted[i] ^= byte(1 + rng.Intn(255))
	}
	if err := os.WriteFile(last, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	var logged []string
	s2 := openTest(t, dir, Options{
		Metrics: reg,
		Logf:    func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	snap := reg.Snapshot()
	if countVal(t, snap, "diskstore_torn_tails_truncated_total") != 1 {
		t.Fatalf("torn_tails_truncated = %d, want 1", countVal(t, snap, "diskstore_torn_tails_truncated_total"))
	}
	if countVal(t, snap, "diskstore_torn_bytes_truncated_total") == 0 {
		t.Fatal("torn_bytes_truncated = 0, want > 0")
	}
	if len(logged) == 0 {
		t.Fatal("torn-tail truncation was not logged")
	}

	// Every surviving block is bit-identical to what was put, and the
	// survivors are exactly the records before the tear.
	got, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	putByBytes := make(map[string]bool, len(wires))
	for _, w := range wires {
		putByBytes[string(w)] = true
	}
	for _, b := range got {
		if !putByBytes[string(b)] {
			t.Fatal("recovered a block that was never put")
		}
	}
	if len(got) >= len(wires) || len(got) == 0 {
		t.Fatalf("recovered %d of %d blocks, want a non-empty strict subset", len(got), len(wires))
	}

	// The file really was truncated: a fresh scan is clean.
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= int64(len(raw)) {
		t.Fatalf("segment still %d bytes, want < %d", info.Size(), len(raw))
	}
	// Lost blocks can be re-put and the store keeps working.
	for i, w := range wires {
		if _, err := s2.Put(core.ZeroObject, lvls[i], w); err != nil {
			t.Fatalf("re-put %d after recovery: %v", i, err)
		}
	}
	all, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, all, wires)
	for _, b := range all {
		if !bytes.HasPrefix(b, []byte("PB")) {
			t.Fatal("recovered block lost its wire magic")
		}
	}
}

// keyedBlocks marshals n coded blocks stamped with obj (keyed wire
// versions v2/v4).
func keyedBlocks(t *testing.T, obj core.ObjectID, n int, seed int64) ([][]byte, []int) {
	t.Helper()
	levels, err := core.NewLevels(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, n)
	if err != nil {
		t.Fatal(err)
	}
	wires := make([][]byte, len(blocks))
	lvls := make([]int, len(blocks))
	for i, b := range blocks {
		b.Object = obj
		w, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
		lvls[i] = b.Level
	}
	return wires, lvls
}

// TestKeyedRestartReplay pins the persistence half of the object
// namespace: two objects' keyed records survive a close/reopen with
// their namespaces intact — per-object reads, level filters and stats
// all rebuilt purely from the segment scan.
func TestKeyedRestartReplay(t *testing.T) {
	dir := t.TempDir()
	alpha := core.NamedObject("alpha")
	beta := core.NamedObject("beta")
	aw, al := keyedBlocks(t, alpha, 10, 1)
	bw, bl := keyedBlocks(t, beta, 14, 2)

	s := openTest(t, dir, Options{})
	for i, w := range aw {
		if _, err := s.Put(alpha, al[i], w); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range bw {
		if _, err := s.Put(beta, bl[i], w); err != nil {
			t.Fatal(err)
		}
	}
	// A legacy key-less block shares the store under the zero object.
	_, _, zw, zl := testBlocks(t, 3)
	for i, w := range zw {
		if _, err := s.Put(core.ZeroObject, zl[i], w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	got, err := s2.Get(alpha, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, aw)
	got, err = s2.Get(beta, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, bw)
	got, err = s2.Get(core.ZeroObject, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, zw)
	all, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(aw)+len(bw)+len(zw) {
		t.Fatalf("wildcard read returned %d blocks, want %d", len(all), len(aw)+len(bw)+len(zw))
	}

	// Keyed level filter: alpha's critical prefix only.
	l0, err := s2.Get(alpha, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wantL0 [][]byte
	for i, w := range aw {
		if al[i] == 0 {
			wantL0 = append(wantL0, w)
		}
	}
	sameSet(t, l0, wantL0)

	st := s2.Stats()
	if len(st.PerObject) != 3 {
		t.Fatalf("replay rebuilt %d object namespaces, want 3: %+v", len(st.PerObject), st.PerObject)
	}
	byObj := map[core.ObjectID]store.ObjectStats{}
	var sum int
	for _, os := range st.PerObject {
		byObj[os.Object] = os
		sum += os.Blocks
	}
	if sum != st.Blocks {
		t.Fatalf("per-object blocks %d do not add up to total %d", sum, st.Blocks)
	}
	if byObj[alpha].Blocks != len(aw) || byObj[beta].Blocks != len(bw) || byObj[core.ZeroObject].Blocks != len(zw) {
		t.Fatalf("per-object counts drifted after replay: %+v", st.PerObject)
	}

	// Dedup survives the restart per namespace: re-putting alpha's first
	// block is a retry, not new data.
	if stored, err := s2.Put(alpha, al[0], aw[0]); err != nil || stored {
		t.Fatalf("re-put after replay: stored=%v err=%v", stored, err)
	}

	// The wildcard is a read-side concept only.
	if _, err := s2.Put(core.AllObjects, 0, aw[0]); !errors.Is(err, store.ErrBadRequest) {
		t.Fatalf("wildcard put err = %v, want ErrBadRequest", err)
	}
}

func TestSegmentInfos(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1 << 10}) // force rotations
	_, _, wires, lvls := testBlocks(t, 24)
	putAll(t, s, wires, lvls)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	var lister store.SegmentLister = s // compile-time facet check
	infos := lister.SegmentInfos()
	if len(infos) < 2 {
		t.Fatalf("got %d segments, want >= 2 after rotation (SegmentBytes=1KiB, 24 blocks)", len(infos))
	}
	if len(infos) != s.Segments() {
		t.Fatalf("SegmentInfos has %d entries, Segments() says %d", len(infos), s.Segments())
	}
	records := 0
	for i, in := range infos {
		records += in.Records
		if i > 0 && infos[i-1].ID >= in.ID {
			t.Fatalf("segment ids not ascending: %d then %d", infos[i-1].ID, in.ID)
		}
		if wantActive := i == len(infos)-1; in.Active != wantActive {
			t.Errorf("segment %d active = %v, want %v", in.ID, in.Active, wantActive)
		}
		if in.Bytes <= 0 || in.Created.IsZero() {
			t.Errorf("segment %d: bytes %d, created %v — metadata missing", in.ID, in.Bytes, in.Created)
		}
	}
	if records != s.Len() {
		t.Fatalf("segment records sum to %d, store holds %d blocks", records, s.Len())
	}
}
