package diskstore

import (
	"container/list"
	"sync"
)

// blockCache is a byte-bounded LRU over record wire bytes, keyed by
// (segment id, record offset). It keeps the hot prefix of Gets — and
// the dedup read-backs of retried puts — off the disk. Values are
// shared read-only with callers, which matches the BlockStore contract
// (Get results must not be modified).
type blockCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	m     map[cacheKey]*list.Element
}

type cacheKey struct {
	seg uint64
	off int64
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// newBlockCache builds a cache bounded at max bytes; max <= 0 disables
// caching entirely (every get misses, every put is dropped).
func newBlockCache(max int64) *blockCache {
	return &blockCache{
		max: max,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element),
	}
}

// get returns the cached bytes for a record, refreshing its recency.
func (c *blockCache) get(seg uint64, off int64) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[cacheKey{seg, off}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts one record, evicting from the cold end until the budget
// holds. Oversized records are not cached. Returns how many entries
// were evicted and the resulting cache size.
func (c *blockCache) put(seg uint64, off int64, data []byte) (evicted int, size int64) {
	if c.max <= 0 || int64(len(data)) > c.max {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{seg, off}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return 0, c.bytes
	}
	for c.bytes+int64(len(data)) > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.dropLocked(back)
		evicted++
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.bytes += int64(len(data))
	return evicted, c.bytes
}

// purgeSeg drops every entry of one segment (called when it expires).
func (c *blockCache) purgeSeg(seg uint64) (purged int, size int64) {
	if c.max <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).key.seg == seg {
			c.dropLocked(el)
			purged++
		}
		el = next
	}
	return purged, c.bytes
}

func (c *blockCache) dropLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= int64(len(e.data))
}
