package diskstore

import (
	"encoding/binary"
	"math/rand"
	"repro/internal/core"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Disk-engine benchmarks, captured as BENCH_disk.json by `make
// bench-disk`. The headline pair is group commit vs fsync-per-put:
// DiskPutGroupCommit and its Ref run the identical concurrent put load,
// differing only in FsyncMode, so the benchjson speedup is exactly the
// batching win. DiskPutBeyondRAM proves sustained ingest far past an
// in-memory cap with bounded heap.

const benchWireBytes = 1024

// benchPutParallel drives concurrent distinct-block puts through one
// store; the reported bytes are block payload through the engine. Each
// goroutine reuses one random payload and stamps a unique counter into
// it, so the timed loop measures the commit path, not block generation.
func benchPutParallel(b *testing.B, mode FsyncMode) {
	b.Helper()
	s, err := Open(b.TempDir(), Options{Fsync: mode, Logf: quiet})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var worker atomic.Int64
	b.SetBytes(benchWireBytes)
	// The unit of concurrency is client connections, not cores: a daemon
	// serves one goroutine per connection, so batching opportunity exists
	// even on a single-CPU host. 32 in-flight puts models a busy fleet.
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		wire := fakeWire(rand.New(rand.NewSource(id)), 0, benchWireBytes)
		binary.BigEndian.PutUint64(wire[16:], uint64(id))
		var n uint64
		for pb.Next() {
			n++
			binary.BigEndian.PutUint64(wire[24:], n)
			if _, err := s.Put(core.ZeroObject, 0, wire); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiskPutGroupCommit is the group-commit writer: one fsync per
// coalesced batch.
func BenchmarkDiskPutGroupCommit(b *testing.B) {
	benchPutParallel(b, FsyncBatch)
}

// BenchmarkDiskPutGroupCommitRef is the per-put durability baseline the
// ISSUE's >=5x target measures against: same load, fsync every block.
func BenchmarkDiskPutGroupCommitRef(b *testing.B) {
	benchPutParallel(b, FsyncAlways)
}

// BenchmarkDiskPutBeyondRAM ingests 10x an in-memory block cap per
// iteration (the cap a MemStore-backed daemon would refuse puts at) and
// reports the heap growth, showing capacity decoupled from RAM.
func BenchmarkDiskPutBeyondRAM(b *testing.B) {
	const (
		ramCapBlocks = 1024 // a MemStore cap the load overruns 10x
		wireBytes    = 1024
		putters      = 8
	)
	total := 10 * ramCapBlocks
	s, err := Open(b.TempDir(), Options{SegmentBytes: 4 << 20, Logf: quiet})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.SetBytes(int64(total) * wireBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < putters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i*putters + g + 1)))
				for j := 0; j < total/putters; j++ {
					if _, err := s.Put(core.ZeroObject, j%3, fakeWire(rng, j%3, wireBytes)); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.StopTimer()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	heapMB := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / (1 << 20)
	if heapMB < 0 {
		heapMB = 0
	}
	storedMB := float64(s.Bytes()) / (1 << 20)
	b.ReportMetric(float64(s.Len())/ramCapBlocks, "capacity-x")
	b.ReportMetric(heapMB, "heap-MB")
	b.ReportMetric(storedMB, "stored-MB")
}
