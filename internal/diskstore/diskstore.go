// Package diskstore is the disk-backed storage engine behind the store
// daemon: an append-only log of coded blocks in their core wire
// encoding, split into rotating segment files, with an in-memory index
// rebuilt by a CRC-checked scan on startup. It exists because the
// paper's premise is *persistence* — prioritized coded blocks must
// outlive node failures — and a RAM-only store makes every restart a
// data death while capping sustained traffic at memory size.
//
// The performance core is a group-commit writer: concurrent puts are
// coalesced by a single writer goroutine into one buffered write and
// one fsync per batch, so durability costs one disk flush per tens of
// blocks instead of one per block (the same batching economics as the
// word-parallel kernels, applied to I/O). Reads go through a small
// byte-bounded block cache; old segments age out under a TTL rolling
// window so measurement epochs reclaim their space.
//
// A Store implements store.BlockStore, so `prlcd serve -data-dir`
// swaps it in behind the unchanged TCP surface: blocks on disk are
// byte-identical to blocks on the socket, and a segment is replayable
// with the ordinary core.CodedBlock unmarshal path.
package diskstore

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
)

// FsyncMode selects the durability/throughput tradeoff of the writer.
type FsyncMode int

const (
	// FsyncBatch is group commit: one fsync per write batch (default).
	// A crash loses at most the unacknowledged tail of the current
	// batch — and clients treat unacked puts as failed, so nothing a
	// client saw succeed is lost.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs after every block: the per-put durability
	// baseline the group-commit speedup is measured against.
	FsyncAlways
	// FsyncNone never fsyncs explicitly; OS writeback decides. Fastest,
	// survives process crashes but not power loss.
	FsyncNone
)

// ParseFsyncMode maps the -fsync flag values to a mode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "batch", "":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("diskstore: unknown fsync mode %q (want batch, always or none)", s)
	}
}

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "batch"
	}
}

// Options parameterizes a disk store.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the segment is sealed and a new one starts. Default
	// 64 MiB.
	SegmentBytes int64
	// Fsync selects the durability mode. Default FsyncBatch.
	Fsync FsyncMode
	// Retention is the rolling window: sealed segments whose creation
	// time is older than this are deleted, blocks included. 0 keeps
	// everything forever.
	Retention time.Duration
	// RetentionCheck is how often the retention window is enforced.
	// Default 1 minute (only consulted when Retention > 0).
	RetentionCheck time.Duration
	// MaxBlocks / MaxBytes cap the stored inventory (0 = unbounded);
	// puts beyond either cap are rejected with store.ErrStoreFull.
	MaxBlocks int
	MaxBytes  int64
	// MaxBatchBlocks / MaxBatchBytes bound one group-commit batch.
	// Defaults 256 blocks / 1 MiB.
	MaxBatchBlocks int
	MaxBatchBytes  int
	// QueueDepth is the put queue feeding the writer; while a flush is
	// on the disk, up to this many puts pile up and form the next
	// batch. Default 1024.
	QueueDepth int
	// CacheBytes bounds the read-through block cache. Default 16 MiB;
	// negative disables caching.
	CacheBytes int64
	// MaxRecordBytes bounds a single block record, mirroring the wire
	// frame limit. Default store.DefaultMaxFrame.
	MaxRecordBytes int
	// Logf receives recovery and retention notices (torn tails
	// truncated, segments expired). Default log.Printf.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the diskstore_* series (see
	// DESIGN.md §12). Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

func (o *Options) fillDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.RetentionCheck <= 0 {
		o.RetentionCheck = time.Minute
	}
	if o.MaxBatchBlocks <= 0 {
		o.MaxBatchBlocks = 256
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 16 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = store.DefaultMaxFrame
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// Store is the disk-backed block store. It is safe for concurrent use;
// all mutation of the index happens under mu, all file appends happen
// on the single writer goroutine.
type Store struct {
	dir  string
	opts Options
	met  diskMetrics

	mu         sync.Mutex
	segs       []*segment // ordered by id; segs[len-1] is the active one
	byHash     map[uint64][]blockRef
	pending    map[uint64][]*writeReq
	tallies    map[objLevel]levelTally
	blocks     int
	bytes      int64
	pendBytes  int64
	pendBlocks int
	closed     bool
	putters    sync.WaitGroup // in-flight senders on reqCh

	cache *blockCache

	// Writer-goroutine state: the active segment's append handle and the
	// reusable batch serialization buffer. Only writerLoop (and recover,
	// which happens-before it) touch these.
	wf      *os.File
	scratch []byte

	reqCh   chan *writeReq
	stopRet chan struct{}
	wg      sync.WaitGroup
}

// levelTally mirrors the store package's per-level inventory slice.
type levelTally struct {
	count int
	bytes int64
}

// objLevel keys the per-object per-level inventory.
type objLevel struct {
	obj   core.ObjectID
	level int
}

// blockRef locates one committed block record.
type blockRef struct {
	seg *segment
	idx int // index into seg.recs
}

var _ store.BlockStore = (*Store)(nil)

// Open opens (or creates) a disk store rooted at dir, replaying every
// segment to rebuild the index. Torn tails — records whose length or
// CRC does not validate, the signature of a crash mid-write — are
// truncated away and counted; everything before them is recovered.
func Open(dir string, opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		met:     newDiskMetrics(opts.Metrics),
		byHash:  make(map[uint64][]blockRef),
		pending: make(map[uint64][]*writeReq),
		tallies: make(map[objLevel]levelTally),
		cache:   newBlockCache(opts.CacheBytes),
		scratch: make([]byte, 0, opts.MaxBatchBytes),
		reqCh:   make(chan *writeReq, opts.QueueDepth),
		stopRet: make(chan struct{}),
	}
	t0 := time.Now()
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.met.recoveryNs.Set(time.Since(t0).Nanoseconds())
	s.met.recoveredBlocks.Add(uint64(s.blocks))
	s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	s.wg.Add(1)
	go s.writerLoop()
	if opts.Retention > 0 {
		s.wg.Add(1)
		go s.retentionLoop()
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// hashWire is the dedup hash: FNV-64a over the full wire encoding.
// Collisions are resolved by byte comparison (see dupLocked), so the
// hash only has to be cheap and well-spread, never trusted.
func hashWire(wire []byte) uint64 {
	h := fnv.New64a()
	h.Write(wire)
	return h.Sum64()
}

// Put stores one block: it reserves the block in the dedup index, hands
// it to the group-commit writer, and waits for the batch holding it to
// reach the disk. Identical concurrent puts coalesce onto one record —
// followers wait for the leader's flush, so a dedup answer is never
// less durable than a stored one.
func (s *Store) Put(obj core.ObjectID, level int, wire []byte) (bool, error) {
	if len(wire) == 0 {
		return false, fmt.Errorf("%w: empty block", store.ErrBadRequest)
	}
	if obj == core.AllObjects {
		return false, fmt.Errorf("%w: cannot store under the all-objects wildcard", store.ErrBadRequest)
	}
	if len(wire) > s.opts.MaxRecordBytes {
		return false, fmt.Errorf("%w: block %d bytes exceeds record limit %d",
			store.ErrBadRequest, len(wire), s.opts.MaxRecordBytes)
	}
	hash := hashWire(wire)
	t0 := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: engine closed", store.ErrStoreUnavailable)
	}
	// Dup of an unflushed put: join its flush instead of re-writing.
	for _, p := range s.pending[hash] {
		if string(p.wire) == string(wire) {
			s.mu.Unlock()
			<-p.done
			return false, p.err
		}
	}
	if dup, err := s.dupLocked(hash, wire); err != nil {
		s.mu.Unlock()
		return false, err
	} else if dup {
		s.mu.Unlock()
		s.met.putsDeduped.Inc()
		return false, nil
	}
	if s.opts.MaxBlocks > 0 && s.blocks+s.pendBlocks >= s.opts.MaxBlocks {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %d blocks stored, cap %d", store.ErrStoreFull, s.blocks, s.opts.MaxBlocks)
	}
	if s.opts.MaxBytes > 0 && s.bytes+s.pendBytes+int64(len(wire)) > s.opts.MaxBytes {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %d bytes stored, cap %d", store.ErrStoreFull, s.bytes, s.opts.MaxBytes)
	}
	req := &writeReq{
		kind:  reqPut,
		obj:   obj,
		level: level,
		hash:  hash,
		wire:  append([]byte(nil), wire...), // the engine must not retain the caller's buffer
		done:  make(chan struct{}),
	}
	s.pending[hash] = append(s.pending[hash], req)
	s.pendBytes += int64(len(wire))
	s.pendBlocks++
	s.putters.Add(1)
	s.mu.Unlock()

	s.reqCh <- req
	s.putters.Done()
	<-req.done
	s.met.putWaitNs.ObserveSince(t0)
	if req.err != nil {
		return false, req.err
	}
	return true, nil
}

// dupLocked reports whether an identical committed block exists. Hash
// candidates are verified byte-for-byte (reading them back through the
// cache), so a hash collision can never drop a distinct block.
func (s *Store) dupLocked(hash uint64, wire []byte) (bool, error) {
	for _, ref := range s.byHash[hash] {
		rec := ref.seg.recs[ref.idx]
		if int(rec.n) != len(wire) {
			continue
		}
		data, err := s.readBlock(ref.seg, rec)
		if err != nil {
			// The candidate aged out mid-check; it no longer blocks the put.
			continue
		}
		if string(data) == string(wire) {
			return true, nil
		}
	}
	return false, nil
}

// Get returns the wire bytes of every block of obj (core.AllObjects =
// every object) with level <= maxLevel (maxLevel < 0 = all), reading
// through the block cache.
func (s *Store) Get(obj core.ObjectID, maxLevel int) ([][]byte, error) {
	s.mu.Lock()
	type lookup struct {
		seg *segment
		rec rec
	}
	want := make([]lookup, 0, s.blocks)
	for _, seg := range s.segs {
		for _, r := range seg.recs {
			if r.dead || (obj != core.AllObjects && r.obj != obj) {
				continue
			}
			if maxLevel < 0 || int(r.level) <= maxLevel {
				want = append(want, lookup{seg, r})
			}
		}
	}
	s.mu.Unlock()
	out := make([][]byte, 0, len(want))
	for _, l := range want {
		data, err := s.readBlock(l.seg, l.rec)
		if err != nil {
			// The segment expired between the index snapshot and the read:
			// its blocks are no longer part of the inventory.
			continue
		}
		out = append(out, data)
	}
	return out, nil
}

// readBlock fetches one record's wire bytes, cache first.
func (s *Store) readBlock(seg *segment, r rec) ([]byte, error) {
	if data, ok := s.cache.get(seg.id, r.off); ok {
		s.met.cacheHits.Inc()
		return data, nil
	}
	s.met.cacheMisses.Inc()
	data, err := seg.readRecord(r)
	if err != nil {
		return nil, err
	}
	evicted, size := s.cache.put(seg.id, r.off, data)
	s.met.cacheEvictions.Add(uint64(evicted))
	s.met.cacheBytes.Set(size)
	return data, nil
}

// Delete removes every stored block of obj by appending a durable
// tombstone record through the writer queue — serialized against puts,
// so a put flushed before the tombstone dies and one after it survives.
// The object's records are dropped from the index immediately; their
// file bytes are reclaimed when their segments compact (every record
// dead) or expire under retention. Idempotent: deleting an absent
// object appends nothing and answers 0.
func (s *Store) Delete(obj core.ObjectID) (int, error) {
	if obj == core.AllObjects {
		return 0, fmt.Errorf("%w: delete needs a concrete object", store.ErrBadRequest)
	}
	req := &writeReq{kind: reqDelete, obj: obj, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: engine closed", store.ErrStoreUnavailable)
	}
	s.putters.Add(1)
	s.mu.Unlock()
	s.reqCh <- req
	s.putters.Done()
	<-req.done
	return req.removed, req.err
}

// Stats returns an inventory snapshot: aggregate PerLevel ascending by
// level plus PerObject ascending by object ID, matching the MemStore
// contract so the stat wire path is engine-agnostic.
func (s *Store) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := store.Stats{Blocks: s.blocks}
	agg := make(map[int]levelTally)
	perObj := make(map[core.ObjectID]map[int]levelTally)
	for k, tally := range s.tallies {
		st.Bytes += tally.bytes
		a := agg[k.level]
		a.count += tally.count
		a.bytes += tally.bytes
		agg[k.level] = a
		po := perObj[k.obj]
		if po == nil {
			po = make(map[int]levelTally)
			perObj[k.obj] = po
		}
		po[k.level] = tally
	}
	st.PerLevel = levelCounts(agg)
	for obj, po := range perObj {
		os := store.ObjectStats{Object: obj, PerLevel: levelCounts(po)}
		for _, lc := range os.PerLevel {
			os.Blocks += lc.Count
			os.Bytes += lc.Bytes
		}
		st.PerObject = append(st.PerObject, os)
	}
	sort.Slice(st.PerObject, func(i, j int) bool { return st.PerObject[i].Object < st.PerObject[j].Object })
	return st
}

// levelCounts flattens a per-level tally map, sorted ascending by level.
func levelCounts(perLevel map[int]levelTally) []store.LevelCount {
	out := make([]store.LevelCount, 0, len(perLevel))
	for lvl, tally := range perLevel {
		out = append(out, store.LevelCount{Level: lvl, Count: tally.count, Bytes: tally.bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level < out[j].Level })
	return out
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks
}

// Bytes returns the total stored wire bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Segments returns how many segment files currently exist.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// SegmentInfos snapshots per-segment metadata, ascending by id. The last
// segment is the active one (still receiving writes); all earlier
// segments are sealed. It implements store.SegmentLister, behind the
// `prlcd store segments` inspection subcommand.
func (s *Store) SegmentInfos() []store.SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]store.SegmentInfo, 0, len(s.segs))
	for i, seg := range s.segs {
		out = append(out, store.SegmentInfo{
			ID:      seg.id,
			Records: seg.live,
			Bytes:   seg.size,
			Created: seg.createdAt,
			Active:  i == len(s.segs)-1,
		})
	}
	return out
}

// Sync flushes every queued put to disk and fsyncs the active segment,
// regardless of fsync mode. Close calls it; tests and checkpoints can
// call it directly.
func (s *Store) Sync() error {
	req := &writeReq{kind: reqSync, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: engine closed", store.ErrStoreUnavailable)
	}
	s.putters.Add(1)
	s.mu.Unlock()
	s.reqCh <- req
	s.putters.Done()
	<-req.done
	return req.err
}

// Close drains the put queue, flushes and fsyncs the tail, and releases
// every file handle. Puts racing Close either complete durably or
// report the store closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopRet)
	s.putters.Wait() // no new senders can start: closed is set
	close(s.reqCh)   // writer drains the queue, then flushes and exits
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, seg := range s.segs {
		if err := seg.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
