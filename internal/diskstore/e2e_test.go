package diskstore

import (
	"context"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
)

// TestServerRestartSurvivesTornTail is the disk layer's acceptance
// path, end to end through the daemon: a client streams prioritized
// blocks into a disk-backed store.Server, the daemon dies with a torn
// write in its last segment, and after a restart the critical level
// still decodes bit-exact while the torn tail is truncated, logged,
// and counted.
func TestServerRestartSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	levels, sources, blocks := serverTestCode(t, 80)

	eng, err := Open(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := store.NewServer(store.ServerConfig{Blocks: eng})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cli, err := store.NewClient(store.ClientConfig{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cli.PutAll(ctx, blocks); err != nil || n != len(blocks) {
		t.Fatalf("PutAll stored %d/%d: %v", n, len(blocks), err)
	}
	cli.Close()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The daemon owns the engine's lifecycle: close after the drain.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The "kill": corrupt the last 5% of the last segment, as a crash
	// mid-write would.
	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("listSegments: %v", err)
	}
	last := names[len(names)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) - len(raw)/20; i < len(raw); i++ {
		raw[i] ^= 0xA5
	}
	if err := os.WriteFile(last, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the same directory, serve again.
	reg := metrics.NewRegistry()
	eng2, err := Open(dir, Options{Logf: quiet, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if countVal(t, reg.Snapshot(), "diskstore_torn_tails_truncated_total") != 1 {
		t.Fatal("restart did not count the torn tail")
	}
	srv2, err := store.NewServer(store.ServerConfig{Blocks: eng2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(ctx)
	cli2, err := store.NewClient(store.ClientConfig{Addr: srv2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	got, err := cli2.Get(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(blocks) {
		t.Fatalf("recovered %d of %d blocks, want a non-empty strict subset", len(got), len(blocks))
	}

	// Level 0 — the critical prefix — must decode bit-exact from what
	// survived.
	res, dec, err := collect.Run(rand.New(rand.NewSource(3)), core.PLC, levels, got,
		collect.Options{PayloadLen: len(sources[0])})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Fatalf("level 0 did not decode from %d surviving blocks", len(got))
	}
	lo, hi := levels.Span(0)
	for i := lo; i < hi; i++ {
		payload, err := dec.Source(i)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		if string(payload) != string(sources[i]) {
			t.Fatalf("source %d decoded with wrong bytes after restart", i)
		}
	}
}

// serverTestCode mirrors the store package's testCode helper: a 2-level
// PLC code (4+12 source blocks of 32 bytes) and n coded blocks.
func serverTestCode(t *testing.T, n int) (*core.Levels, [][]byte, []*core.CodedBlock) {
	t.Helper()
	levels, err := core.NewLevels(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.4, 0.6}, n)
	if err != nil {
		t.Fatal(err)
	}
	return levels, sources, blocks
}
