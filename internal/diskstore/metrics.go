package diskstore

import "repro/internal/metrics"

// diskMetrics is the disk engine's metrics seam, following the store
// package's pattern: names resolve once at construction, every field
// is nil (and every recording call a no-op) when the registry is nil.
// The name catalog lives in DESIGN.md §12.
type diskMetrics struct {
	putsDeduped *metrics.Counter
	putWaitNs   *metrics.Histogram

	flushes     *metrics.Counter
	batchBlocks *metrics.Histogram
	batchBytes  *metrics.Histogram
	fsyncs      *metrics.Counter
	fsyncNs     *metrics.Histogram
	writeBytes  *metrics.Counter
	writeErrors *metrics.Counter

	blocks     *metrics.Gauge
	blockBytes *metrics.Gauge
	segments   *metrics.Gauge

	segmentsCreated   *metrics.Counter
	segmentsDeleted   *metrics.Counter
	segmentsCompacted *metrics.Counter
	blocksExpired     *metrics.Counter
	bytesExpired      *metrics.Counter
	deletes           *metrics.Counter
	blocksDeleted     *metrics.Counter

	tornTails       *metrics.Counter
	tornBytes       *metrics.Counter
	recoveredBlocks *metrics.Counter
	recoveryNs      *metrics.Gauge

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	cacheBytes     *metrics.Gauge
}

func newDiskMetrics(r *metrics.Registry) diskMetrics {
	return diskMetrics{
		putsDeduped:     r.Counter("diskstore_puts_deduped_total"),
		putWaitNs:       r.Histogram("diskstore_put_wait_ns"),
		flushes:         r.Counter("diskstore_flushes_total"),
		batchBlocks:     r.Histogram("diskstore_batch_blocks"),
		batchBytes:      r.Histogram("diskstore_batch_bytes"),
		fsyncs:          r.Counter("diskstore_fsyncs_total"),
		fsyncNs:         r.Histogram("diskstore_fsync_ns"),
		writeBytes:      r.Counter("diskstore_write_bytes_total"),
		writeErrors:     r.Counter("diskstore_write_errors_total"),
		blocks:          r.Gauge("diskstore_blocks"),
		blockBytes:      r.Gauge("diskstore_block_bytes"),
		segments:        r.Gauge("diskstore_segments"),
		segmentsCreated:   r.Counter("diskstore_segments_created_total"),
		segmentsDeleted:   r.Counter("diskstore_segments_deleted_total"),
		segmentsCompacted: r.Counter("diskstore_segments_compacted_total"),
		blocksExpired:     r.Counter("diskstore_blocks_expired_total"),
		bytesExpired:      r.Counter("diskstore_bytes_expired_total"),
		deletes:           r.Counter("diskstore_deletes_total"),
		blocksDeleted:     r.Counter("diskstore_blocks_deleted_total"),
		tornTails:       r.Counter("diskstore_torn_tails_truncated_total"),
		tornBytes:       r.Counter("diskstore_torn_bytes_truncated_total"),
		recoveredBlocks: r.Counter("diskstore_recovered_blocks_total"),
		recoveryNs:      r.Gauge("diskstore_recovery_ns"),
		cacheHits:       r.Counter("diskstore_cache_hits_total"),
		cacheMisses:     r.Counter("diskstore_cache_misses_total"),
		cacheEvictions:  r.Counter("diskstore_cache_evictions_total"),
		cacheBytes:      r.Gauge("diskstore_cache_bytes"),
	}
}

// setInventory refreshes the three inventory gauges.
func (m *diskMetrics) setInventory(blocks int, bytes int64, segments int) {
	m.blocks.Set(int64(blocks))
	m.blockBytes.Set(bytes)
	m.segments.Set(int64(segments))
}
