package diskstore

import (
	"encoding/binary"
	"math/rand"
	"repro/internal/core"
	"sync"
	"testing"
	"time"
)

// fakeWire builds a distinct synthetic block wire frame: the engine
// only needs the "PB" magic and the BE level at bytes [3:5] (what the
// recovery scan re-checks), so tests that exercise concurrency rather
// than coding can skip the encoder.
func fakeWire(rng *rand.Rand, level, size int) []byte {
	w := make([]byte, size)
	rng.Read(w)
	w[0], w[1], w[2] = 'P', 'B', 1
	binary.BigEndian.PutUint16(w[3:5], uint16(level))
	return w
}

// TestConcurrentPutGetRotateRetention drives puts, gets, syncs and
// retention sweeps concurrently against tiny segments, then restarts to
// prove the surviving log is coherent. Run under -race (make check), it
// is the disk engine's concurrency gate: group-commit batching, segment
// rotation and window expiry all interleave here.
func TestConcurrentPutGetRotateRetention(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		SegmentBytes:   8 << 10,
		Retention:      30 * time.Millisecond,
		RetentionCheck: 10 * time.Millisecond,
		CacheBytes:     4 << 10, // small enough to force evictions
	})

	const (
		putters  = 8
		perPut   = 60
		readers  = 3
		syncOps  = 20
		sweeps   = 25
		wireSize = 192
	)
	var wg sync.WaitGroup
	for g := 0; g < putters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perPut; i++ {
				w := fakeWire(rng, g%3, wireSize)
				if _, err := s.Put(core.ZeroObject, g%3, w); err != nil {
					t.Errorf("putter %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := s.Get(core.AllObjects, g-1); err != nil { // levels -1, 0, 1
					t.Errorf("reader %d: %v", g, err)
					return
				}
				s.Stats()
				s.Len()
				s.Segments()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < syncOps; i++ {
			if err := s.Sync(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < sweeps; i++ {
			s.enforceRetention(time.Now())
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Whatever survived the churn must replay cleanly: a fresh open sees
	// no torn tails and a Get sees exactly Len blocks.
	s2 := openTest(t, dir, Options{})
	got, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != s2.Len() {
		t.Fatalf("Get returned %d blocks, Len is %d", len(got), s2.Len())
	}
	for _, w := range got {
		if len(w) != 192 || w[0] != 'P' || w[1] != 'B' {
			t.Fatal("replayed block lost its frame shape")
		}
	}
}

// TestConcurrentPutsDistinctAllStored pins that group commit never
// merges distinct blocks: every concurrent put of a unique block lands.
func TestConcurrentPutsDistinctAllStored(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	const G, N = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < N; i++ {
				stored, err := s.Put(core.ZeroObject, 0, fakeWire(rng, 0, 64))
				if err != nil {
					t.Errorf("putter %d: %v", g, err)
					return
				}
				if !stored {
					t.Errorf("putter %d: distinct block reported dedup", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != G*N {
		t.Fatalf("Len = %d, want %d", s.Len(), G*N)
	}
}

// TestCloseRacingPuts pins the shutdown contract: puts racing Close
// either complete durably or fail with the engine-closed error — no
// hangs, no lost acks.
func TestCloseRacingPuts(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	var wg sync.WaitGroup
	acked := make([][]byte, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			w := fakeWire(rng, 0, 64)
			if stored, err := s.Put(core.ZeroObject, 0, w); err == nil && stored {
				acked[g] = w
			}
		}(g)
	}
	time.Sleep(time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	s2 := openTest(t, dir, Options{})
	got := make(map[string]bool)
	all, err := s2.Get(core.AllObjects, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range all {
		got[string(b)] = true
	}
	for g, w := range acked {
		if w != nil && !got[string(w)] {
			t.Fatalf("put %d was acked before Close but missing after restart", g)
		}
	}
}
