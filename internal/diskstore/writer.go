package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// reqKind discriminates what rides the writer queue.
type reqKind int

const (
	reqPut    reqKind = iota // append one block record
	reqSync                  // flush + fsync the active segment
	reqRotate                // seal the active segment, open the next
	reqDelete                // append a tombstone, drop the object's records
)

// writeReq is one unit of work for the writer goroutine. done is closed
// once the request's outcome (err) is decided — for puts, that means
// the batch holding the record reached the disk under the configured
// fsync mode.
type writeReq struct {
	kind    reqKind
	obj     core.ObjectID
	level   int
	hash    uint64
	wire    []byte
	removed int // reqDelete: how many records the tombstone killed
	err     error
	done    chan struct{}
}

// writerLoop is the group-commit core: the single goroutine that owns
// the active segment's append handle. It blocks for the first queued
// request, then drains whatever else has piled up — which, while a
// previous fsync was on the disk, is every concurrent put that arrived
// in the meantime — and commits the whole batch with one buffered
// write and one fsync. Batch size is latency-bounded by construction
// (nothing waits longer than one flush) and size-bounded by
// MaxBatchBlocks/MaxBatchBytes.
func (s *Store) writerLoop() {
	defer s.wg.Done()
	defer s.sealActive()
	batch := make([]*writeReq, 0, s.opts.MaxBatchBlocks)
	for first := range s.reqCh {
		batch = batch[:0]
		bytes := 0
		var ctrl *writeReq
		if first.kind == reqPut {
			batch = append(batch, first)
			bytes = len(first.wire)
		} else {
			ctrl = first
		}
	drain:
		for ctrl == nil && len(batch) < s.opts.MaxBatchBlocks && bytes < s.opts.MaxBatchBytes {
			select {
			case r, ok := <-s.reqCh:
				if !ok {
					break drain
				}
				if r.kind != reqPut {
					ctrl = r // flush what we have, then honor the control request
					break drain
				}
				batch = append(batch, r)
				bytes += len(r.wire)
			default:
				break drain
			}
		}
		if len(batch) > 0 {
			s.flush(batch, bytes)
		}
		if ctrl != nil {
			s.handleCtrl(ctrl)
		}
	}
}

// flush commits one batch: records are serialized into one buffer and
// written with one Write call, then fsynced per the configured mode
// (FsyncAlways degrades to write+fsync per record — the baseline the
// group-commit speedup in BENCH_disk.json is measured against).
func (s *Store) flush(batch []*writeReq, bytes int) {
	seg, err := s.activeForAppend(int64(bytes) + int64(len(batch)*recHeaderLen))
	if err != nil {
		s.failBatch(batch, err)
		return
	}
	base := seg.size
	var werr error
	if s.opts.Fsync == FsyncAlways {
		for _, r := range batch {
			if werr != nil {
				break
			}
			if _, werr = s.wf.Write(appendRecord(s.scratch[:0], r.wire)); werr == nil {
				t0 := time.Now()
				werr = s.wf.Sync()
				s.met.fsyncs.Inc()
				s.met.fsyncNs.ObserveSince(t0)
			}
		}
	} else {
		buf := s.scratch[:0]
		for _, r := range batch {
			buf = appendRecord(buf, r.wire)
		}
		if cap(buf) <= s.opts.MaxBatchBytes*2 {
			s.scratch = buf // keep the grown buffer for the next batch
		}
		_, werr = s.wf.Write(buf)
		if werr == nil && s.opts.Fsync == FsyncBatch {
			t0 := time.Now()
			werr = s.wf.Sync()
			s.met.fsyncs.Inc()
			s.met.fsyncNs.ObserveSince(t0)
		}
	}
	if werr != nil {
		// The tail of the segment is now suspect. Drop the batch back to
		// the callers (their blocks are NOT durable) and cut the file
		// back to the last committed record so the log stays replayable.
		s.met.writeErrors.Inc()
		os.Truncate(seg.path, base)
		s.failBatch(batch, fmt.Errorf("%w: disk write: %v", store.ErrStoreUnavailable, werr))
		return
	}

	s.mu.Lock()
	off := base
	for _, r := range batch {
		seg.recs = append(seg.recs, rec{
			off:   off,
			n:     int32(len(r.wire)),
			obj:   r.obj,
			level: uint16(r.level),
			hash:  r.hash,
		})
		seg.live++
		s.byHash[r.hash] = append(s.byHash[r.hash], blockRef{seg: seg, idx: len(seg.recs) - 1})
		s.removePendingLocked(r)
		k := objLevel{r.obj, r.level}
		tally := s.tallies[k]
		tally.count++
		tally.bytes += int64(len(r.wire))
		s.tallies[k] = tally
		s.blocks++
		s.bytes += int64(len(r.wire))
		off += recHeaderLen + int64(len(r.wire))
	}
	seg.size = off
	s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	s.mu.Unlock()

	s.met.flushes.Inc()
	s.met.batchBlocks.Observe(int64(len(batch)))
	s.met.batchBytes.Observe(int64(bytes))
	s.met.writeBytes.Add(uint64(off - base))
	for _, r := range batch {
		close(r.done)
	}
	if seg.size >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			s.opts.Logf("diskstore: rotate after full segment: %v", err)
		}
	}
}

// failBatch reports err to every request and unreserves the blocks.
func (s *Store) failBatch(batch []*writeReq, err error) {
	s.mu.Lock()
	for _, r := range batch {
		r.err = err
		s.removePendingLocked(r)
	}
	s.mu.Unlock()
	for _, r := range batch {
		close(r.done)
	}
}

// removePendingLocked drops a request from the dedup reservation map.
func (s *Store) removePendingLocked(r *writeReq) {
	list := s.pending[r.hash]
	for i, p := range list {
		if p == r {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(s.pending, r.hash)
	} else {
		s.pending[r.hash] = list
	}
	s.pendBytes -= int64(len(r.wire))
	s.pendBlocks--
}

// handleCtrl serves sync, rotate and delete requests on the writer
// goroutine. Deletes riding the same single-writer queue as puts gives
// them a total order against every put: a put flushed before the
// tombstone dies with the object, a put after it survives.
func (s *Store) handleCtrl(r *writeReq) {
	switch r.kind {
	case reqSync:
		if s.wf != nil {
			t0 := time.Now()
			r.err = s.wf.Sync()
			s.met.fsyncs.Inc()
			s.met.fsyncNs.ObserveSince(t0)
		}
	case reqRotate:
		if s.activeHasData() {
			r.err = s.rotate()
		}
	case reqDelete:
		r.removed, r.err = s.applyDelete(r.obj)
	}
	close(r.done)
}

// applyDelete commits one object deletion: a tombstone record is
// appended and made as durable as a put (fsync per mode), then every
// live record of the object — in any segment — is marked dead and
// dropped from the index. Runs on the writer goroutine only.
func (s *Store) applyDelete(obj core.ObjectID) (int, error) {
	s.mu.Lock()
	live := 0
	for _, seg := range s.segs {
		for _, r := range seg.recs {
			if !r.dead && r.obj == obj {
				live++
			}
		}
	}
	s.mu.Unlock()
	if live == 0 {
		return 0, nil // nothing to revoke: no tombstone, stays idempotent
	}

	wire := tombstoneWire(obj)
	seg, err := s.activeForAppend(int64(recHeaderLen + len(wire)))
	if err != nil {
		return 0, err
	}
	base := seg.size
	if _, werr := s.wf.Write(appendRecord(s.scratch[:0], wire)); werr != nil {
		s.met.writeErrors.Inc()
		os.Truncate(seg.path, base)
		return 0, fmt.Errorf("%w: disk write: %v", store.ErrStoreUnavailable, werr)
	}
	if s.opts.Fsync != FsyncNone {
		t0 := time.Now()
		if werr := s.wf.Sync(); werr != nil {
			s.met.writeErrors.Inc()
			os.Truncate(seg.path, base)
			return 0, fmt.Errorf("%w: disk sync: %v", store.ErrStoreUnavailable, werr)
		}
		s.met.fsyncs.Inc()
		s.met.fsyncNs.ObserveSince(t0)
	}
	s.met.writeBytes.Add(uint64(recHeaderLen + len(wire)))

	s.mu.Lock()
	seg.size = base + recHeaderLen + int64(len(wire))
	seg.tombs = append(seg.tombs, obj)
	removed := 0
	for _, g := range s.segs {
		for i := range g.recs {
			r := &g.recs[i]
			if r.dead || r.obj != obj {
				continue
			}
			r.dead = true
			g.live--
			s.dropRefLocked(g, *r)
			removed++
		}
	}
	s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	s.mu.Unlock()
	s.met.deletes.Inc()
	s.met.blocksDeleted.Add(uint64(removed))
	s.compactDeadSegments()
	return removed, nil
}

// compactDeadSegments removes sealed segments with no live records —
// the tombstone honored at compaction time. A segment carrying
// tombstones is only droppable once no earlier segment still holds
// physical records (dead ones included) of a tombstoned object: those
// bytes are still on disk, and without the tombstone a replay would
// resurrect them. Segments free up oldest-first as a consequence.
func (s *Store) compactDeadSegments() {
	s.mu.Lock()
	var drop []*segment
	keep := s.segs[:0]
	for i, seg := range s.segs {
		sealed := i < len(s.segs)-1
		droppable := sealed && seg.live == 0 && (len(seg.recs) > 0 || len(seg.tombs) > 0)
		if droppable {
			for _, obj := range seg.tombs {
				for _, prev := range keep { // earlier segments still present
					for _, r := range prev.recs {
						if r.obj == obj {
							droppable = false
						}
					}
				}
			}
		}
		if droppable {
			drop = append(drop, seg)
			continue
		}
		keep = append(keep, seg)
	}
	s.segs = keep
	if len(drop) > 0 {
		s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	}
	s.mu.Unlock()

	for _, seg := range drop {
		purged, size := s.cache.purgeSeg(seg.id)
		s.met.cacheEvictions.Add(uint64(purged))
		s.met.cacheBytes.Set(size)
		if err := seg.remove(); err != nil {
			s.opts.Logf("diskstore: compact dead segment %d: %v", seg.id, err)
		}
		s.met.segmentsDeleted.Inc()
		s.met.segmentsCompacted.Inc()
		s.opts.Logf("diskstore: compacted segment %d (all %d records dead)", seg.id, len(seg.recs))
	}
	if len(drop) > 0 {
		if err := syncDir(s.dir); err != nil {
			s.opts.Logf("diskstore: fsync data dir: %v", err)
		}
	}
}

// activeForAppend returns the active segment, rotating first when the
// incoming batch would not fit and the segment already has data.
func (s *Store) activeForAppend(incoming int64) (*segment, error) {
	if s.wf == nil {
		if err := s.rotate(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	seg := s.segs[len(s.segs)-1]
	full := seg.size > segHeaderLen && seg.size+incoming > s.opts.SegmentBytes
	s.mu.Unlock()
	if full {
		if err := s.rotate(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		seg = s.segs[len(s.segs)-1]
		s.mu.Unlock()
	}
	return seg, nil
}

// activeHasData reports whether the active segment holds any records.
func (s *Store) activeHasData() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs) > 0 && s.segs[len(s.segs)-1].size > segHeaderLen
}

// rotate seals the active segment (final fsync, handle closed) and
// opens the next one. Called from the writer goroutine only.
func (s *Store) rotate() error {
	if err := s.sealActive(); err != nil {
		return err
	}
	s.mu.Lock()
	var id uint64 = 1
	if n := len(s.segs); n > 0 {
		id = s.segs[n-1].id + 1
	}
	s.mu.Unlock()
	path := filepath.Join(s.dir, segName(id))
	created := time.Now()
	if err := writeSegmentHeader(path, created); err != nil {
		return fmt.Errorf("diskstore: create segment %d: %w", id, err)
	}
	wf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: open segment %d for append: %w", id, err)
	}
	if err := syncDir(s.dir); err != nil {
		s.opts.Logf("diskstore: fsync data dir: %v", err)
	}
	seg := &segment{id: id, path: path, createdAt: created, size: segHeaderLen}
	s.wf = wf
	s.mu.Lock()
	s.segs = append(s.segs, seg)
	s.met.setInventory(s.blocks, s.bytes, len(s.segs))
	s.mu.Unlock()
	s.met.segmentsCreated.Inc()
	return nil
}

// sealActive fsyncs and closes the append handle (idempotent).
func (s *Store) sealActive() error {
	if s.wf == nil {
		return nil
	}
	serr := s.wf.Sync()
	cerr := s.wf.Close()
	s.wf = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// recover replays every segment under the data dir, rebuilding the
// index and truncating torn tails, then reopens the last segment for
// append (or defers creation of a fresh one to the first put).
func (s *Store) recover() error {
	names, ids, err := listSegments(s.dir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	for i, name := range names {
		res, err := loadSegment(name, ids[i], s.opts.MaxRecordBytes)
		if err != nil {
			return err
		}
		if res.tornBytes > 0 {
			s.met.tornTails.Inc()
			s.met.tornBytes.Add(uint64(res.tornBytes))
			s.opts.Logf("diskstore: %s: truncated %d-byte torn tail, %d records recovered",
				filepath.Base(name), res.tornBytes, len(res.seg.recs))
		}
		s.segs = append(s.segs, res.seg)
	}
	// Apply each segment's tombstones to every EARLIER segment: all of a
	// prior segment's records precede the tombstone in log order, so they
	// die; records after it (same segment, handled in-stream by
	// loadSegment, or any later segment — a re-put) survive.
	for i, seg := range s.segs {
		for _, obj := range seg.tombs {
			for j := 0; j < i; j++ {
				prev := s.segs[j]
				for k := range prev.recs {
					if prev.recs[k].obj == obj {
						prev.recs[k].dead = true
					}
				}
			}
		}
	}
	// Index the survivors.
	for _, seg := range s.segs {
		for idx, r := range seg.recs {
			if r.dead {
				continue
			}
			seg.live++
			s.byHash[r.hash] = append(s.byHash[r.hash], blockRef{seg: seg, idx: idx})
			k := objLevel{r.obj, int(r.level)}
			tally := s.tallies[k]
			tally.count++
			tally.bytes += int64(r.n)
			s.tallies[k] = tally
			s.blocks++
			s.bytes += int64(r.n)
		}
	}
	// Reopen the last segment for append if it still has room; a full
	// (or absent) one is left sealed and the first flush rotates.
	if n := len(s.segs); n > 0 && s.segs[n-1].size < s.opts.SegmentBytes {
		wf, err := os.OpenFile(s.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("diskstore: reopen active segment: %w", err)
		}
		s.wf = wf
	}
	return nil
}
