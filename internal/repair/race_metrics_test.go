package repair

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
)

// TestMetricsSharedAcrossLayersRace is the whole-stack data-race canary
// for the observability seam: one registry is updated concurrently by
// instrumented server goroutines, retrying+hedging clients, and a
// running repair daemon, while a reader keeps snapshotting and rendering
// it. Run under -race via the Makefile check target.
func TestMetricsSharedAcrossLayersRace(t *testing.T) {
	reg := metrics.NewRegistry()
	const replicas = 3

	// Every client write is delayed 1–6ms so loopback Gets reliably
	// outlast the 1ms hedge delay and the hedge path actually runs.
	slow := store.NewFaultDialer(nil, store.FaultConfig{
		Seed:      11,
		DelayProb: 1,
		MaxDelay:  6 * time.Millisecond,
	})
	servers := make([]*store.Server, replicas)
	clients := make([]*store.Client, replicas)
	for i := range servers {
		srv, err := store.NewServer(store.ServerConfig{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		cl, err := store.NewClient(store.ClientConfig{
			Addr:       srv.Addr(),
			Dialer:     slow,
			OpTimeout:  5 * time.Second,
			HedgeDelay: time.Millisecond, // hedges fire constantly
			Retry:      store.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
			Metrics:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	repl, err := store.NewReplicated(clients, 3, store.ReplicatedConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	levels, _, blocks, targets := testCode(t, 7, 24)
	ctx := context.Background()
	if _, err := repl.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}

	d, err := New(repl, Config{
		Scheme:   core.PLC,
		Levels:   levels,
		Targets:  targets,
		Interval: time.Millisecond,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Stop(sctx); err != nil {
			t.Errorf("daemon stop: %v", err)
		}
	}()

	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *store.Client) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := cl.Get(ctx, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Add(1)
	go func() { // concurrent reader: snapshots and both renderings
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			if !reg.Snapshot().Empty() {
				if err := metrics.ValidatePromText(strings.NewReader(sb.String())); err != nil {
					t.Errorf("prometheus output invalid mid-run: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if reg.Counter("repair_rounds_total").Value() == 0 {
		t.Error("repair daemon recorded no rounds")
	}
	if reg.Counter("store_client_hedges_fired_total").Value() == 0 {
		t.Error("no hedges fired despite 1ms hedge delay")
	}
	if got := reg.Counter(`store_server_requests_total{op="put"}`).Value(); got == 0 {
		t.Error("server recorded no puts")
	}
}
