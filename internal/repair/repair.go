// Package repair keeps a replicated priority block store decodable
// across rounds of churn — without ever decoding.
//
// The paper stores coded blocks so data outlives the nodes that hold
// it, but one-shot provisioning only *delays* death: every failed
// replica removes copies, and once too few survive, low-priority levels
// stop decoding first and the critical prefix follows. The classic fix
// — decode the sources, re-encode, re-distribute — defeats partial
// recovery (it needs full rank somewhere) and moves every byte twice.
// The distributed-storage line of related work (Dimakis et al.,
// "Network Coding for Distributed Storage Systems") supplies the right
// primitive instead: a fresh random combination of surviving *coded*
// blocks is itself a valid coded block, so redundancy is regenerated
// from whatever survives, touching no source block.
//
// The package has three layers:
//
//   - recombination: core.Recombine / core.RecombineRanked (the
//     algebra lives next to the encoder, in internal/core);
//   - audit: AuditFleet compares each replica's per-level inventory
//     against targets derived from the priority distribution and the
//     store's replication policy, yielding a deficit report ordered
//     most-critical-level-first;
//   - loop: Daemon periodically audits, recombines survivors of each
//     deficient level, and places the regenerated blocks on the
//     replicas the audit found under-provisioned.
package repair

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/store"
)

// AuditConfig describes what a healthy fleet looks like.
type AuditConfig struct {
	// Object scopes the audit to one namespace: per-level counts are
	// read from that object's section of each replica's inventory.
	// core.AllObjects audits the aggregate inventory across namespaces;
	// the zero value audits the legacy key-less namespace (which, on a
	// replica predating per-object stats, falls back to the aggregate —
	// such a replica can hold nothing else).
	Object core.ObjectID
	// Dist is the priority distribution the deployment was provisioned
	// with: level k's target share of distinct coded blocks.
	Dist core.PriorityDistribution
	// TotalBlocks is M, the number of distinct coded blocks at full
	// provisioning; per-level distinct targets are apportioned from
	// Dist by largest remainder.
	TotalBlocks int
	// Targets, when non-nil, overrides the apportionment with exact
	// per-level distinct-block targets (len = store levels). Useful when
	// the put-time level draw is known precisely.
	Targets []int
}

// perLevelFor selects the per-level slice the audit counts against:
// the aggregate, or one object's section.
func (cfg *AuditConfig) perLevelFor(st store.Stats) []store.LevelCount {
	if cfg.Object == core.AllObjects {
		return st.PerLevel
	}
	for _, os := range st.PerObject {
		if os.Object == cfg.Object {
			return os.PerLevel
		}
	}
	if cfg.Object == core.ZeroObject && len(st.PerObject) == 0 {
		// A replica without per-object stats predates the namespace; all
		// its blocks are key-less, i.e. exactly the zero object.
		return st.PerLevel
	}
	return nil
}

// LevelReport is one level's audit line.
type LevelReport struct {
	// Level is the priority level (0 = most critical).
	Level int
	// Replicas is the level's replication factor, ReplicasFor(Level).
	Replicas int
	// Distinct is the target number of distinct blocks of this level.
	Distinct int
	// WantCopies = Distinct * Replicas, the fleet-wide copy target.
	WantCopies int
	// HaveCopies is the copies found across reachable replicas.
	HaveCopies int
	// Deficit = max(0, WantCopies - HaveCopies).
	Deficit int
	// PerReplica is each replica's copy count of this level; -1 marks a
	// replica the audit could not reach.
	PerReplica []int
}

// Audit is one fleet inventory scan. Levels is ordered ascending by
// level — most critical first, the order repair spends its budget in.
type Audit struct {
	// Reachable and Unreachable partition the fleet at scan time.
	Reachable   int
	Unreachable int
	// Levels holds one report per priority level, ascending.
	Levels []LevelReport
}

// Deficient returns the levels with a positive copy deficit, still
// ordered most-critical-first.
func (a *Audit) Deficient() []LevelReport {
	var out []LevelReport
	for _, lr := range a.Levels {
		if lr.Deficit > 0 {
			out = append(out, lr)
		}
	}
	return out
}

// Healthy reports whether every replica answered and no level is below
// its copy target.
func (a *Audit) Healthy() bool {
	return a.Unreachable == 0 && len(a.Deficient()) == 0
}

// TotalDeficit sums the per-level copy deficits.
func (a *Audit) TotalDeficit() int {
	n := 0
	for _, lr := range a.Levels {
		n += lr.Deficit
	}
	return n
}

// apportion splits total into len(shares) integer parts proportional to
// shares, summing exactly to total (largest-remainder rounding; ties go
// to the more critical level).
func apportion(shares []float64, total int) ([]int, error) {
	sum := 0.0
	for i, s := range shares {
		if s < 0 {
			return nil, fmt.Errorf("repair: negative share %g at level %d", s, i)
		}
		sum += s
	}
	if sum <= 0 {
		return nil, fmt.Errorf("repair: priority distribution sums to %g, want > 0", sum)
	}
	out := make([]int, len(shares))
	type rem struct {
		level int
		frac  float64
	}
	rems := make([]rem, len(shares))
	used := 0
	for i, s := range shares {
		exact := s / sum * float64(total)
		out[i] = int(exact)
		used += out[i]
		rems[i] = rem{level: i, frac: exact - float64(out[i])}
	}
	sort.SliceStable(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].level < rems[j].level
	})
	for i := 0; i < total-used; i++ {
		out[rems[i%len(rems)].level]++
	}
	return out, nil
}

// DistinctTargets resolves the per-level distinct-block targets the
// audit measures against — Targets verbatim when set, otherwise Dist
// apportioned over TotalBlocks by largest remainder. Exported so the
// migration mover verifies against exactly the targets repair enforces.
func (cfg *AuditConfig) DistinctTargets(levels int) ([]int, error) {
	return cfg.distinctTargets(levels)
}

// distinctTargets resolves the per-level distinct-block targets.
func (cfg *AuditConfig) distinctTargets(levels int) ([]int, error) {
	if cfg.Targets != nil {
		if len(cfg.Targets) != levels {
			return nil, fmt.Errorf("repair: %d explicit targets, want %d levels", len(cfg.Targets), levels)
		}
		for i, t := range cfg.Targets {
			if t < 0 {
				return nil, fmt.Errorf("repair: negative target %d at level %d", t, i)
			}
		}
		return cfg.Targets, nil
	}
	if len(cfg.Dist) != levels {
		return nil, fmt.Errorf("repair: distribution has %d entries, want %d levels", len(cfg.Dist), levels)
	}
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("repair: TotalBlocks %d, want > 0", cfg.TotalBlocks)
	}
	return apportion(cfg.Dist, cfg.TotalBlocks)
}

// AuditFleet scans every replica's per-level inventory (concurrently,
// tolerating unreachable replicas) and compares it against the targets:
// level k should exist as Distinct(k) distinct blocks with
// ReplicasFor(k) copies each. Copies sitting on unreachable replicas do
// not count — they are exactly what churn takes away.
func AuditFleet(ctx context.Context, r *store.Replicated, cfg AuditConfig) (*Audit, error) {
	if r == nil {
		return nil, fmt.Errorf("repair: nil replicated store")
	}
	n := r.Levels()
	distinct, err := cfg.distinctTargets(n)
	if err != nil {
		return nil, err
	}
	stats, errs := r.StatAll(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	audit := &Audit{Levels: make([]LevelReport, n)}
	reachable := make([]bool, len(stats))
	for i, e := range errs {
		if e == nil {
			reachable[i] = true
			audit.Reachable++
		} else {
			audit.Unreachable++
		}
	}
	for lvl := 0; lvl < n; lvl++ {
		lr := LevelReport{
			Level:      lvl,
			Replicas:   r.ReplicasFor(lvl),
			Distinct:   distinct[lvl],
			PerReplica: make([]int, len(stats)),
		}
		lr.WantCopies = lr.Distinct * lr.Replicas
		for i := range stats {
			if !reachable[i] {
				lr.PerReplica[i] = -1
				continue
			}
			for _, lc := range cfg.perLevelFor(stats[i]) {
				if lc.Level == lvl {
					lr.PerReplica[i] = lc.Count
					lr.HaveCopies += lc.Count
					break
				}
			}
		}
		if lr.Deficit = lr.WantCopies - lr.HaveCopies; lr.Deficit < 0 {
			lr.Deficit = 0
		}
		audit.Levels[lvl] = lr
	}
	return audit, nil
}
