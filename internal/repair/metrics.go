package repair

import "repro/internal/metrics"

// daemonMetrics is the repair daemon's metrics seam; names resolve once
// at construction so rounds pay only atomic updates. A nil registry
// yields all-nil fields and every recording call is a no-op. The name
// catalog lives in DESIGN.md §10.
type daemonMetrics struct {
	rounds            *metrics.Counter
	roundErrors       *metrics.Counter
	roundsTruncated   *metrics.Counter
	roundNs           *metrics.Histogram
	blocksRegenerated *metrics.Counter
	copiesPlaced      *metrics.Counter
	bytesCollected    *metrics.Counter
	bytesPlaced       *metrics.Counter
	levelsSkipped     *metrics.Counter

	consecutiveFailures *metrics.Gauge
	backoffNs           *metrics.Gauge
}

func newDaemonMetrics(r *metrics.Registry) daemonMetrics {
	return daemonMetrics{
		rounds:              r.Counter("repair_rounds_total"),
		roundErrors:         r.Counter("repair_round_errors_total"),
		roundsTruncated:     r.Counter("repair_rounds_truncated_total"),
		roundNs:             r.Histogram("repair_round_ns"),
		blocksRegenerated:   r.Counter("repair_blocks_regenerated_total"),
		copiesPlaced:        r.Counter("repair_copies_placed_total"),
		bytesCollected:      r.Counter("repair_bytes_collected_total"),
		bytesPlaced:         r.Counter("repair_bytes_placed_total"),
		levelsSkipped:       r.Counter("repair_levels_skipped_total"),
		consecutiveFailures: r.Gauge("repair_consecutive_failures"),
		backoffNs:           r.Gauge("repair_backoff_ns"),
	}
}
