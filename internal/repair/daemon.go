package repair

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Config parameterizes a repair Daemon.
type Config struct {
	// Object is the namespace the daemon maintains; audits, collects and
	// regenerated blocks are all scoped to it. The zero value is the
	// legacy key-less namespace, so pre-namespace deployments repair
	// unchanged. A daemon maintains exactly one namespace (recombining
	// across objects would corrupt both); run one daemon per object.
	Object core.ObjectID
	// Scheme and Levels describe the code the store holds.
	Scheme core.Scheme
	Levels *core.Levels
	// Dist and TotalBlocks (or Targets) define the audit's provisioning
	// targets — see AuditConfig.
	Dist        core.PriorityDistribution
	TotalBlocks int
	Targets     []int
	// Interval is the pause between successful rounds. Default 2s.
	Interval time.Duration
	// MaxBackoff caps the exponential backoff applied after failed
	// rounds (the backoff starts at Interval and doubles per consecutive
	// failure). Default 16x Interval.
	MaxBackoff time.Duration
	// Jitter in [0, 1] is the randomized fraction shaved off each wait,
	// so a fleet of daemons desynchronizes. Default 0.2; negative
	// disables jitter.
	Jitter float64
	// RoundTimeout bounds one audit+repair round. Default 30s.
	RoundTimeout time.Duration
	// BlockBudget caps the blocks regenerated per round, so one huge
	// deficit cannot starve the critical levels of later rounds (the
	// budget is spent most-critical-level-first). Default 64.
	BlockBudget int
	// SampleSize is how many surviving blocks feed each recombination.
	// Small samples keep repair bandwidth near the regenerated volume;
	// larger ones raise the entropy of each regenerated block. Default 8.
	SampleSize int
	// Seed seeds the recombination and jitter generator (0 means 1), so
	// a repair history is reproducible given a reproducible fleet.
	Seed int64
	// Metrics, when non-nil, receives round counters, regeneration
	// volumes, and backoff state (see DESIGN.md §10).
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16 * c.Interval
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.BlockBudget <= 0 {
		c.BlockBudget = 64
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Report summarizes one repair round.
type Report struct {
	// Audit is the inventory scan the round acted on.
	Audit *Audit
	// Regenerated counts fresh blocks recombined and placed.
	Regenerated int
	// Copies is the fleet-wide copy target those placements aimed at.
	Copies int
	// BytesCollected is the wire volume of survivors fetched.
	BytesCollected int64
	// BytesPlaced is the wire volume of regenerated blocks written,
	// counted once per target copy.
	BytesPlaced int64
	// SkippedLevels lists deficient levels with no usable sample: no
	// reachable survivor carries the level, or the sample was
	// degenerate. Such levels need lost-data handling, not repair.
	SkippedLevels []int
	// Truncated reports that the block budget ran out before every
	// deficit was addressed; the next round continues.
	Truncated bool
}

// Daemon is the background maintenance loop: every interval it audits
// the fleet and regenerates missing redundancy by recombination,
// most-critical-level-first. Failed rounds back off exponentially with
// jitter. The daemon never decodes: its only data operations are
// collect, recombine, put.
type Daemon struct {
	// shard resolves the replica set each round operates on: constant
	// for a static Replicated store, re-resolved through the placement
	// ring for an object shard — so repair follows membership churn.
	shard func() (*store.Replicated, error)
	cfg   Config
	met   daemonMetrics

	mu   sync.Mutex // serializes rounds and guards rng, last, rounds
	rng  *rand.Rand
	last Report
	runs int

	ctx      context.Context
	cancel   context.CancelFunc
	stop     chan struct{}
	done     chan struct{}
	started  bool
	stopOnce sync.Once
}

// New validates the configuration and returns a stopped daemon over a
// static replica set; call Start to launch the loop, or RunOnce to
// drive rounds manually.
func New(r *store.Replicated, cfg Config) (*Daemon, error) {
	if r == nil {
		return nil, fmt.Errorf("repair: nil replicated store")
	}
	return newDaemon(func() (*store.Replicated, error) { return r, nil }, r.Levels(), cfg)
}

// NewObject returns a daemon maintaining one object on a placement
// ring: each round re-resolves the object's shard, so repair follows
// the ring through membership churn — regenerated blocks land on the
// nodes that own the object now, not the ones that owned it at start.
func NewObject(p *store.Placed, obj core.ObjectID, cfg Config) (*Daemon, error) {
	if p == nil {
		return nil, fmt.Errorf("repair: nil placed store")
	}
	if obj == core.AllObjects {
		return nil, fmt.Errorf("repair: the all-objects wildcard names no shard")
	}
	cfg.Object = obj
	return newDaemon(func() (*store.Replicated, error) { return p.Shard(obj) }, p.Levels(), cfg)
}

func newDaemon(shard func() (*store.Replicated, error), levels int, cfg Config) (*Daemon, error) {
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("repair: invalid scheme %v", cfg.Scheme)
	}
	if cfg.Levels == nil {
		return nil, fmt.Errorf("repair: nil levels")
	}
	if cfg.Levels.Count() != levels {
		return nil, fmt.Errorf("repair: code has %d levels, store replicates %d", cfg.Levels.Count(), levels)
	}
	if _, err := (&AuditConfig{Dist: cfg.Dist, TotalBlocks: cfg.TotalBlocks, Targets: cfg.Targets}).distinctTargets(levels); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Daemon{
		shard:  shard,
		cfg:    cfg,
		met:    newDaemonMetrics(cfg.Metrics),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ctx:    ctx,
		cancel: cancel,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Start launches the background loop. The first round runs immediately.
// Start is idempotent.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return
	}
	d.started = true
	go d.loop()
}

// Stop shuts the daemon down gracefully: the loop exits after the
// in-flight round completes. If ctx expires first, the round is
// cancelled and Stop returns the context error once the loop has
// exited. Safe to call more than once, and before Start.
func (d *Daemon) Stop(ctx context.Context) error {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		d.cancel()
		return nil
	}
	select {
	case <-d.done:
		d.cancel()
		return nil
	case <-ctx.Done():
		d.cancel()
		<-d.done
		return ctx.Err()
	}
}

// Rounds returns how many repair rounds have run.
func (d *Daemon) Rounds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.runs
}

// LastReport returns the most recent round's report.
func (d *Daemon) LastReport() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

func (d *Daemon) loop() {
	defer close(d.done)
	failures := 0
	timer := time.NewTimer(0) // first round immediately
	defer timer.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		rctx, rcancel := context.WithTimeout(d.ctx, d.cfg.RoundTimeout)
		_, err := d.RunOnce(rctx)
		rcancel()
		if d.ctx.Err() != nil {
			return
		}
		wait := d.cfg.Interval
		if err != nil {
			// Jittered exponential backoff: a dark or flapping fleet is
			// probed gently until it answers again.
			failures++
			for i := 1; i < failures && wait < d.cfg.MaxBackoff; i++ {
				wait *= 2
			}
			if wait > d.cfg.MaxBackoff {
				wait = d.cfg.MaxBackoff
			}
		} else {
			failures = 0
		}
		d.met.consecutiveFailures.Set(int64(failures))
		d.met.backoffNs.Set(int64(wait))
		timer.Reset(d.jittered(wait))
	}
}

func (d *Daemon) jittered(wait time.Duration) time.Duration {
	if d.cfg.Jitter <= 0 {
		return wait
	}
	d.mu.Lock()
	f := 1 - d.cfg.Jitter*d.rng.Float64()
	d.mu.Unlock()
	return time.Duration(float64(wait) * f)
}

// RunOnce performs one audit+repair round: scan the fleet, and for each
// deficient level (most critical first, within the block budget) sample
// surviving blocks, recombine fresh ones, and place them preferring the
// under-provisioned replicas. It returns the round's report; the error
// is non-nil when the fleet was unreachable or a regenerated block
// could not be placed, which the loop answers with backoff.
//
// RunOnce never decodes: a level none of whose survivors remain is
// skipped (and reported), not reconstructed.
func (d *Daemon) RunOnce(ctx context.Context) (Report, error) {
	t0 := time.Now()
	rep, err := d.runOnce(ctx)
	d.met.roundNs.ObserveSince(t0)
	d.met.rounds.Inc()
	if err != nil {
		d.met.roundErrors.Inc()
	}
	d.met.blocksRegenerated.Add(uint64(rep.Regenerated))
	d.met.copiesPlaced.Add(uint64(rep.Copies))
	d.met.bytesCollected.Add(uint64(rep.BytesCollected))
	d.met.bytesPlaced.Add(uint64(rep.BytesPlaced))
	d.met.levelsSkipped.Add(uint64(len(rep.SkippedLevels)))
	if rep.Truncated {
		d.met.roundsTruncated.Inc()
	}
	return rep, err
}

func (d *Daemon) runOnce(ctx context.Context) (Report, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.runs++
	shard, err := d.shard()
	if err != nil {
		return Report{}, fmt.Errorf("repair: resolve shard: %w", err)
	}
	audit, err := AuditFleet(ctx, shard, AuditConfig{
		Object: d.cfg.Object, Dist: d.cfg.Dist, TotalBlocks: d.cfg.TotalBlocks, Targets: d.cfg.Targets,
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{Audit: audit}
	defer func() { d.last = rep }()
	deficient := audit.Deficient()
	if len(deficient) == 0 {
		return rep, nil
	}
	if audit.Reachable == 0 {
		return rep, fmt.Errorf("repair: %w: all %d replicas unreachable", store.ErrStoreUnavailable, audit.Unreachable)
	}

	// One collect covers every deficient level: survivors of level k
	// also serve as sample padding for deeper PLC levels.
	maxLevel := deficient[len(deficient)-1].Level
	survivors, err := shard.CollectObject(ctx, d.cfg.Object, maxLevel)
	if err != nil {
		return rep, err
	}
	sortBlocks(survivors) // deterministic sampling under a fixed seed
	byLevel := make(map[int][]*core.CodedBlock)
	for _, b := range survivors {
		byLevel[b.Level] = append(byLevel[b.Level], b)
		rep.BytesCollected += int64(wireLen(b))
	}

	budget := d.cfg.BlockBudget
	for _, lr := range deficient {
		if budget <= 0 {
			rep.Truncated = true
			break
		}
		anchors := byLevel[lr.Level]
		if len(anchors) == 0 {
			// Without a surviving block of this level, its dimensions
			// are gone from the store; recombination cannot conjure
			// them back and decoding is exactly what we refuse to do.
			rep.SkippedLevels = append(rep.SkippedLevels, lr.Level)
			continue
		}
		var padding []*core.CodedBlock
		if d.cfg.Scheme != core.SLC {
			for lvl := 0; lvl < lr.Level; lvl++ {
				padding = append(padding, byLevel[lvl]...)
			}
		}
		prefer := preferOrder(lr.PerReplica)
		need := (lr.Deficit + lr.Replicas - 1) / lr.Replicas
		for ; need > 0 && budget > 0; need-- {
			sample := d.sample(anchors, padding)
			nb, _, err := core.RecombineRanked(d.rng, d.cfg.Scheme, d.cfg.Levels, sample)
			if errors.Is(err, core.ErrDegenerateInputs) {
				rep.SkippedLevels = append(rep.SkippedLevels, lr.Level)
				break
			}
			if err != nil {
				return rep, err
			}
			if err := shard.PutPreferring(ctx, nb, prefer); err != nil {
				return rep, fmt.Errorf("repair: place regenerated level-%d block: %w", lr.Level, err)
			}
			budget--
			rep.Regenerated++
			rep.Copies += lr.Replicas
			rep.BytesPlaced += int64(wireLen(nb)) * int64(lr.Replicas)
		}
		if need > 0 && budget <= 0 {
			rep.Truncated = true
		}
	}
	return rep, nil
}

// sample draws up to SampleSize blocks: at least one anchor of the
// target level (so the output keeps that level), padded with
// lower-level survivors when the scheme allows mixing.
func (d *Daemon) sample(anchors, padding []*core.CodedBlock) []*core.CodedBlock {
	take := d.cfg.SampleSize
	if take > len(anchors) {
		take = len(anchors)
	}
	out := make([]*core.CodedBlock, 0, d.cfg.SampleSize)
	for _, i := range d.rng.Perm(len(anchors))[:take] {
		out = append(out, anchors[i])
	}
	if pad := d.cfg.SampleSize - len(out); pad > 0 && len(padding) > 0 {
		if pad > len(padding) {
			pad = len(padding)
		}
		for _, i := range d.rng.Perm(len(padding))[:pad] {
			out = append(out, padding[i])
		}
	}
	return out
}

// preferOrder ranks replica indices for placement: fewest copies of the
// level first, unreachable replicas last (they may have healed since
// the audit, so they stay eligible as fallback).
func preferOrder(perReplica []int) []int {
	order := make([]int, len(perReplica))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := perReplica[order[a]], perReplica[order[b]]
		if (ca < 0) != (cb < 0) {
			return cb < 0
		}
		return ca < cb
	})
	return order
}

func sortBlocks(blocks []*core.CodedBlock) {
	// Dense comparison keys are precomputed so sparse blocks (nil Coeff)
	// order by their actual coefficient vectors, not their representation —
	// keeping rerun determinism independent of which wire version a block
	// arrived in.
	keys := make([][]byte, len(blocks))
	for i, b := range blocks {
		keys[i] = b.DenseCoeff()
	}
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if blocks[i].Level != blocks[j].Level {
			return blocks[i].Level < blocks[j].Level
		}
		if c := bytes.Compare(keys[i], keys[j]); c != 0 {
			return c < 0
		}
		return bytes.Compare(blocks[i].Payload, blocks[j].Payload) < 0
	})
	sorted := make([]*core.CodedBlock, len(blocks))
	for pos, i := range order {
		sorted[pos] = blocks[i]
	}
	copy(blocks, sorted)
}

func wireLen(b *core.CodedBlock) int {
	return b.WireSize() // exact marshaled size, representation-aware
}
