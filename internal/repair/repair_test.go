package repair

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// --- helpers ---------------------------------------------------------------

// testCode builds a 3-level PLC code (3 critical + 5 + 8 bulk source
// blocks of 32 bytes) and n coded blocks from a fixed seed, returning
// the exact per-level distinct counts the batch drew.
func testCode(t *testing.T, seed int64, n int) (*core.Levels, [][]byte, []*core.CodedBlock, []int) {
	t.Helper()
	levels, err := core.NewLevels(3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, testDist, n)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int, levels.Count())
	for _, b := range blocks {
		targets[b.Level]++
	}
	return levels, sources, blocks, targets
}

var testDist = core.PriorityDistribution{0.3, 0.3, 0.4}

// fleet is a small replicated deployment over an in-process fault
// network, with enough handles to kill, wipe, and resurrect replicas.
type fleet struct {
	t       *testing.T
	servers []*store.Server
	addrs   []string
	dialer  *store.FaultDialer
	repl    *store.Replicated
}

func newFleet(t *testing.T, n, levels int) *fleet {
	t.Helper()
	f := &fleet{
		t:       t,
		servers: make([]*store.Server, n),
		addrs:   make([]string, n),
		dialer:  store.NewFaultDialer(nil, store.FaultConfig{Seed: 1}),
	}
	clients := make([]*store.Client, n)
	for i := 0; i < n; i++ {
		srv, err := store.NewServer(store.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		f.servers[i] = srv
		f.addrs[i] = srv.Addr()
		cl, err := store.NewClient(store.ClientConfig{
			Addr:        srv.Addr(),
			Dialer:      f.dialer,
			DialTimeout: time.Second,
			OpTimeout:   2 * time.Second,
			Retry: store.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	repl, err := store.NewReplicated(clients, levels, store.ReplicatedConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.repl = repl
	t.Cleanup(func() {
		repl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, s := range f.servers {
			if s != nil {
				s.Shutdown(ctx)
			}
		}
	})
	return f
}

// kill partitions replica i and wipes its data by replacing the server
// with a fresh empty one on the same address — a node death plus a
// blank-disk replacement, the churn the repair daemon exists for.
func (f *fleet) kill(i int) {
	f.t.Helper()
	f.dialer.Partition(f.addrs[i])
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := f.servers[i].Shutdown(ctx); err != nil {
		f.t.Fatalf("kill replica %d: %v", i, err)
	}
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		f.servers[i], err = store.NewServer(store.ServerConfig{Addr: f.addrs[i]})
		if err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond) // port may linger briefly after close
	}
	f.t.Fatalf("resurrect replica %d on %s: %v", i, f.addrs[i], err)
}

// heal lifts replica i's partition, making the (empty) replacement node
// reachable again.
func (f *fleet) heal(i int) { f.dialer.Heal(f.addrs[i]) }

// seed puts blocks and returns the daemon config matching the draw.
func (f *fleet) seed(levels *core.Levels, blocks []*core.CodedBlock, targets []int) Config {
	f.t.Helper()
	ctx := context.Background()
	for _, b := range blocks {
		if err := f.repl.Put(ctx, b); err != nil {
			f.t.Fatal(err)
		}
	}
	return Config{
		Scheme:  core.PLC,
		Levels:  levels,
		Targets: targets,
		Seed:    7,
	}
}

func decodeAll(t *testing.T, levels *core.Levels, blocks []*core.CodedBlock) *core.Decoder {
	t.Helper()
	dec, err := core.NewDecoder(core.PLC, levels, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := dec.Add(b); err != nil {
			t.Fatalf("decoder rejected collected block: %v", err)
		}
	}
	return dec
}

func checkCriticalLevel(t *testing.T, dec *core.Decoder, levels *core.Levels, sources [][]byte) {
	t.Helper()
	if !dec.LevelDecoded(0) {
		t.Fatalf("critical level not decoded (%d/%d blocks)", dec.DecodedBlocks(), levels.Total())
	}
	for i := 0; i < levels.Size(0); i++ {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("critical block %d corrupted", i)
		}
	}
}

// --- apportionment ---------------------------------------------------------

func TestApportion(t *testing.T) {
	cases := []struct {
		shares []float64
		total  int
		want   []int
	}{
		{[]float64{0.5, 0.5}, 10, []int{5, 5}},
		{[]float64{0.3, 0.3, 0.4}, 10, []int{3, 3, 4}},
		// Largest remainder: 1/3 of 10 = 3.33 each; the extra unit goes
		// to the most critical level on a remainder tie.
		{[]float64{1, 1, 1}, 10, []int{4, 3, 3}},
		// Unnormalized shares are fine — only ratios matter.
		{[]float64{2, 6}, 4, []int{1, 3}},
		{[]float64{1}, 7, []int{7}},
		{[]float64{0.9, 0.1}, 0, []int{0, 0}},
	}
	for _, c := range cases {
		got, err := apportion(c.shares, c.total)
		if err != nil {
			t.Fatalf("apportion(%v, %d): %v", c.shares, c.total, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("apportion(%v, %d) = %v, want %v", c.shares, c.total, got, c.want)
		}
		sum := 0
		for _, n := range got {
			sum += n
		}
		if sum != c.total {
			t.Fatalf("apportion(%v, %d) sums to %d", c.shares, c.total, sum)
		}
	}
	if _, err := apportion([]float64{0.5, -0.1}, 10); err == nil {
		t.Fatal("negative share accepted")
	}
	if _, err := apportion([]float64{0, 0}, 10); err == nil {
		t.Fatal("zero-sum distribution accepted")
	}
}

func TestDistinctTargets(t *testing.T) {
	cfg := &AuditConfig{Targets: []int{4, 6}}
	got, err := cfg.distinctTargets(2)
	if err != nil || !reflect.DeepEqual(got, []int{4, 6}) {
		t.Fatalf("explicit targets = %v, %v", got, err)
	}
	if _, err := cfg.distinctTargets(3); err == nil {
		t.Fatal("target/level length mismatch accepted")
	}
	if _, err := (&AuditConfig{Targets: []int{4, -1}}).distinctTargets(2); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := (&AuditConfig{Dist: core.PriorityDistribution{1}, TotalBlocks: 5}).distinctTargets(2); err == nil {
		t.Fatal("distribution/level length mismatch accepted")
	}
	if _, err := (&AuditConfig{Dist: core.PriorityDistribution{1, 1}, TotalBlocks: 0}).distinctTargets(2); err == nil {
		t.Fatal("zero TotalBlocks accepted")
	}
	got, err = (&AuditConfig{Dist: core.PriorityDistribution{0.25, 0.75}, TotalBlocks: 8}).distinctTargets(2)
	if err != nil || !reflect.DeepEqual(got, []int{2, 6}) {
		t.Fatalf("apportioned targets = %v, %v", got, err)
	}
}

// --- audit -----------------------------------------------------------------

func TestAuditFleetHealthy(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 11, 24)
	f := newFleet(t, 3, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	audit, err := AuditFleet(context.Background(), f.repl, AuditConfig{Targets: cfg.Targets})
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Healthy() {
		t.Fatalf("freshly provisioned fleet not healthy: %+v", audit)
	}
	if audit.Reachable != 3 || audit.Unreachable != 0 {
		t.Fatalf("reachability %d/%d, want 3/0", audit.Reachable, audit.Unreachable)
	}
	for _, lr := range audit.Levels {
		if lr.Replicas != f.repl.ReplicasFor(lr.Level) {
			t.Fatalf("level %d replicas = %d, want %d", lr.Level, lr.Replicas, f.repl.ReplicasFor(lr.Level))
		}
		if lr.WantCopies != lr.Distinct*lr.Replicas {
			t.Fatalf("level %d WantCopies = %d, want %d", lr.Level, lr.WantCopies, lr.Distinct*lr.Replicas)
		}
		if lr.Deficit != 0 {
			t.Fatalf("level %d deficit %d on a healthy fleet", lr.Level, lr.Deficit)
		}
	}
}

func TestAuditFleetSeesDeadReplica(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 12, 24)
	f := newFleet(t, 3, levels.Count())
	f.seed(levels, blocks, targets)
	f.dialer.Partition(f.addrs[2]) // dark, data intact — still a deficit
	audit, err := AuditFleet(context.Background(), f.repl, AuditConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Reachable != 2 || audit.Unreachable != 1 {
		t.Fatalf("reachability %d/%d, want 2/1", audit.Reachable, audit.Unreachable)
	}
	if audit.Healthy() {
		t.Fatal("fleet with a dark replica reported healthy")
	}
	// Level 0 lives on all three replicas, so one dark replica costs
	// exactly Distinct copies.
	lr := audit.Levels[0]
	if lr.Deficit != lr.Distinct {
		t.Fatalf("level 0 deficit = %d, want %d", lr.Deficit, lr.Distinct)
	}
	if lr.PerReplica[2] != -1 {
		t.Fatalf("dark replica tallied %d, want -1", lr.PerReplica[2])
	}
	if got := audit.Deficient(); len(got) == 0 || got[0].Level != 0 {
		t.Fatalf("deficient levels %v, want most-critical first", got)
	}
}

// --- daemon ----------------------------------------------------------------

func TestNewValidation(t *testing.T) {
	levels, _, _, targets := testCode(t, 13, 8)
	f := newFleet(t, 2, levels.Count())
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(f.repl, Config{Scheme: core.Scheme(99), Levels: levels, Targets: targets}); err == nil {
		t.Fatal("invalid scheme accepted")
	}
	if _, err := New(f.repl, Config{Scheme: core.PLC, Targets: targets}); err == nil {
		t.Fatal("nil levels accepted")
	}
	two, err := core.NewLevels(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f.repl, Config{Scheme: core.PLC, Levels: two, Targets: []int{1, 1}}); err == nil {
		t.Fatal("level-count mismatch accepted")
	}
	if _, err := New(f.repl, Config{Scheme: core.PLC, Levels: levels, Targets: []int{1, 1}}); err == nil {
		t.Fatal("bad targets accepted")
	}
	d, err := New(f.repl, Config{Scheme: core.PLC, Levels: levels, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.Interval <= 0 || d.cfg.BlockBudget <= 0 || d.cfg.SampleSize <= 0 {
		t.Fatalf("defaults not filled: %+v", d.cfg)
	}
}

func TestRunOnceHealthyIsNoop(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 14, 24)
	f := newFleet(t, 3, levels.Count())
	d, err := New(f.repl, f.seed(levels, blocks, targets))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regenerated != 0 || rep.BytesCollected != 0 || rep.Truncated {
		t.Fatalf("healthy round did work: %+v", rep)
	}
	if d.Rounds() != 1 {
		t.Fatalf("Rounds() = %d, want 1", d.Rounds())
	}
	if got := d.LastReport(); !got.Audit.Healthy() {
		t.Fatal("LastReport lost the audit")
	}
}

func TestRunOnceRepairsWipedReplica(t *testing.T) {
	levels, sources, blocks, targets := testCode(t, 15, 24)
	f := newFleet(t, 3, levels.Count())
	d, err := New(f.repl, f.seed(levels, blocks, targets))
	if err != nil {
		t.Fatal(err)
	}
	f.kill(2)
	f.heal(2) // blank replacement node, reachable

	ctx := context.Background()
	before, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalDeficit() == 0 {
		t.Fatal("wiping a replica produced no deficit")
	}
	for deficit, rounds := before.TotalDeficit(), 0; deficit > 0; rounds++ {
		if rounds > 8 {
			t.Fatalf("deficit stuck at %d after %d rounds", deficit, rounds)
		}
		rep, err := d.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Regenerated == 0 && deficit > 0 && !rep.Truncated {
			t.Fatalf("round regenerated nothing against deficit %d: %+v", deficit, rep)
		}
		after, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
		if err != nil {
			t.Fatal(err)
		}
		deficit = after.TotalDeficit()
	}

	// The repaired fleet must decode fully even if the two old replicas
	// die: only the regenerated blocks on the replacement node plus one
	// survivor's worth of redundancy remain.
	got, err := f.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	dec := decodeAll(t, levels, got)
	checkCriticalLevel(t, dec, levels, sources)
	if !dec.Complete() {
		t.Fatalf("repaired fleet decodes %d/%d levels", dec.DecodedLevels(), levels.Count())
	}
}

func TestRunOnceBudgetSpentMostCriticalFirst(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 16, 24)
	f := newFleet(t, 3, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	// Wiping replica 0 costs level 0 exactly targets[0] copies (it is
	// replicated everywhere); each regenerated block restores Replicas
	// copies, so this budget repairs the critical level and nothing else.
	cfg.BlockBudget = (targets[0] + f.repl.ReplicasFor(0) - 1) / f.repl.ReplicasFor(0)
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.kill(0)
	f.heal(0)
	ctx := context.Background()
	rep, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("budget %d did not truncate the round: %+v", cfg.BlockBudget, rep)
	}
	audit, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Levels[0].Deficit != 0 {
		t.Fatalf("critical level still deficient (%d) while budget went elsewhere", audit.Levels[0].Deficit)
	}
	if audit.Levels[2].Deficit == 0 {
		t.Fatal("bulk level repaired before the budget ran out — priority order violated")
	}
}

func TestRunOnceAllDarkErrors(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 17, 12)
	f := newFleet(t, 2, levels.Count())
	d, err := New(f.repl, f.seed(levels, blocks, targets))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.addrs {
		f.dialer.Partition(f.addrs[i])
	}
	if _, err := d.RunOnce(context.Background()); err == nil {
		t.Fatal("fully dark fleet repaired successfully")
	}
	for i := range f.addrs {
		f.dialer.Heal(f.addrs[i])
	}
	if _, err := d.RunOnce(context.Background()); err != nil {
		t.Fatalf("healed fleet still errors: %v", err)
	}
}

func TestDaemonStartStop(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 18, 12)
	f := newFleet(t, 2, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	cfg.Interval = 5 * time.Millisecond
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for d.Rounds() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("daemon ran %d rounds in 5s", d.Rounds())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Stop(ctx); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if err := d.Stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	rounds := d.Rounds()
	time.Sleep(20 * time.Millisecond)
	if d.Rounds() != rounds {
		t.Fatal("daemon kept running after Stop")
	}
}

func TestDaemonStopBeforeStart(t *testing.T) {
	levels, _, _, targets := testCode(t, 19, 8)
	f := newFleet(t, 2, levels.Count())
	d, err := New(f.repl, Config{Scheme: core.PLC, Levels: levels, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(context.Background()); err != nil {
		t.Fatalf("stop before start: %v", err)
	}
}

func TestDaemonBacksOffWhileDark(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 20, 12)
	f := newFleet(t, 2, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	cfg.Interval = time.Millisecond
	cfg.MaxBackoff = 250 * time.Millisecond
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.addrs {
		f.dialer.Partition(f.addrs[i])
	}
	d.Start()
	time.Sleep(150 * time.Millisecond)
	darkRounds := d.Rounds()
	// With 1ms intervals, 150ms fits ~100 flat-rate rounds; exponential
	// backoff must have held the failing daemon to far fewer.
	if darkRounds < 1 || darkRounds > 20 {
		t.Fatalf("dark daemon ran %d rounds in 150ms — backoff not engaged", darkRounds)
	}
	for i := range f.addrs {
		f.dialer.Heal(f.addrs[i])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}
