package repair

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gfmat"
	"repro/internal/predist"
)

// The repair benchmarks quantify the tentpole claim: regenerating a
// block by recombination moves a sample's worth of data and a little
// GF(2^8) arithmetic, while the classic path decodes the whole code and
// re-encodes. BenchmarkRegenerate pairs against BenchmarkRegenerateRef
// (the decode-then-re-encode baseline) in BENCH_repair.json.

const benchPayload = 4096

func benchSetup(b *testing.B, nBlocks int) (*core.Levels, []*core.CodedBlock) {
	b.Helper()
	levels, err := core.NewLevels(8, 24, 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, benchPayload)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.PriorityDistribution{0.2, 0.3, 0.5}, nBlocks)
	if err != nil {
		b.Fatal(err)
	}
	return levels, blocks
}

// BenchmarkRegenerate recombines one fresh block from an 8-survivor
// sample — the daemon's per-block work, decode-free.
func BenchmarkRegenerate(b *testing.B) {
	levels, blocks := benchSetup(b, 96)
	rng := rand.New(rand.NewSource(9))
	sample := blocks[:8]
	moved := 0
	for _, s := range sample {
		moved += len(s.Coeff) + len(s.Payload)
	}
	b.SetBytes(int64(moved))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Recombine(rng, core.PLC, levels, sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegenerateRef is the baseline the daemon replaces: gather
// enough blocks for full rank, decode every source, re-encode one block.
func BenchmarkRegenerateRef(b *testing.B) {
	levels, blocks := benchSetup(b, 96)
	rng := rand.New(rand.NewSource(9))
	moved := 0
	for _, s := range blocks {
		moved += len(s.Coeff) + len(s.Payload)
	}
	b.SetBytes(int64(moved))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := core.NewDecoder(core.PLC, levels, benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatal("baseline cannot even decode — not enough blocks")
		}
		enc, err := core.NewEncoder(core.PLC, levels, dec.Sources())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := enc.Encode(rng, levels.Count()-1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditRank measures the rank check RecombineRanked adds over
// plain Recombine, at daemon sample size.
func BenchmarkAuditRank(b *testing.B) {
	_, blocks := benchSetup(b, 96)
	sample := blocks[:8]
	rows := make([][]byte, len(sample))
	for i, s := range sample {
		rows[i] = s.Coeff
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gfmat.FromRows(rows)
		if err != nil {
			b.Fatal(err)
		}
		if m.Rank() == 0 {
			b.Fatal("sample degenerate")
		}
	}
}

// (*predist.Deployment).Repair is the whole-deployment variant of the
// RegenerateRef baseline: it too needs the decoded sources in hand.
var _ = (*predist.Deployment).Repair
