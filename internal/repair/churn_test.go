package repair

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
	"time"
)

// This file is the tentpole acceptance test: a replicated deployment
// survives repeated kill/heal churn because — and only because — the
// repair daemon keeps regenerating redundancy, most critical level
// first, without ever decoding.

const churnRounds = 6 // ">= 5 rounds" per the acceptance criteria

// churnTrace fingerprints one full churn scenario so two runs with the
// same seed can be compared byte for byte.
type churnTrace struct {
	lines []string
}

func (tr *churnTrace) addf(format string, a ...any) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, a...))
}

func (tr *churnTrace) digest() string {
	h := sha256.New()
	for _, l := range tr.lines {
		fmt.Fprintln(h, l)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runChurnScenario drives churnRounds kill/heal rounds against a
// 3-replica fleet with the daemon's RunOnce driven synchronously (the
// daemon loop is timer-jittered by design; driving rounds directly is
// what makes the scenario bit-reproducible). After every single repair
// round the critical level must decode from a plain client collect with
// zero client-visible errors; after convergence the whole code must.
func runChurnScenario(t *testing.T, seed int64) string {
	t.Helper()
	levels, sources, blocks, targets := testCode(t, seed, 24)
	f := newFleet(t, 3, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	cfg.Seed = seed
	// A small budget forces convergence to take several rounds, so the
	// priority order of partial repair is observable, not vacuous.
	cfg.BlockBudget = 3
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	trace := &churnTrace{}

	// The random level draw may not give every level full rank; repair
	// preserves what the provisioning could decode, it cannot add rank.
	baseline := decodeAll(t, levels, blocks).DecodedLevels()
	if baseline < 1 {
		t.Fatalf("seed %d provisioning does not decode the critical level", seed)
	}

	for round := 0; round < churnRounds; round++ {
		victim := round % len(f.servers)
		f.kill(victim)
		f.heal(victim)

		// firstHealed[lvl] is the repair round in which the level's
		// deficit first reached zero; priority demands it is
		// non-decreasing in lvl.
		firstHealed := make([]int, levels.Count())
		for i := range firstHealed {
			firstHealed[i] = -1
		}
		for rr := 0; ; rr++ {
			if rr > 32 {
				t.Fatalf("churn round %d: repair did not converge in 32 rounds", round)
			}
			rep, err := d.RunOnce(ctx)
			if err != nil {
				t.Fatalf("churn round %d repair round %d: %v", round, rr, err)
			}
			if len(rep.SkippedLevels) > 0 {
				t.Fatalf("churn round %d: daemon skipped levels %v — survivors lost", round, rep.SkippedLevels)
			}
			audit, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
			if err != nil {
				t.Fatal(err)
			}
			for lvl, lr := range audit.Levels {
				if lr.Deficit == 0 && firstHealed[lvl] < 0 {
					firstHealed[lvl] = rr
				}
			}
			trace.addf("round=%d rr=%d regen=%d placed=%d deficit=%d truncated=%v",
				round, rr, rep.Regenerated, rep.BytesPlaced, audit.TotalDeficit(), rep.Truncated)

			// Acceptance: the critical prefix decodes after EVERY repair
			// round, mid-churn included, with zero client-visible errors.
			got, err := f.repl.Collect(ctx, -1)
			if err != nil {
				t.Fatalf("churn round %d: client-visible collect error: %v", round, err)
			}
			checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)

			if audit.TotalDeficit() == 0 {
				break
			}
		}

		// Priority order: a less critical level never returns to target
		// strictly before a more critical one.
		for lvl := 1; lvl < levels.Count(); lvl++ {
			if firstHealed[lvl] < firstHealed[lvl-1] {
				t.Fatalf("churn round %d: level %d healed in repair round %d, before level %d (round %d)",
					round, lvl, firstHealed[lvl], lvl-1, firstHealed[lvl-1])
			}
		}

		// After convergence the fleet decodes at least as deep as the
		// original provisioning did, and every recovered source block
		// survives churn intact.
		got, err := f.repl.Collect(ctx, -1)
		if err != nil {
			t.Fatalf("churn round %d: collect after convergence: %v", round, err)
		}
		dec := decodeAll(t, levels, got)
		if dec.DecodedLevels() < baseline {
			t.Fatalf("churn round %d: converged fleet decodes %d levels, provisioning decoded %d",
				round, dec.DecodedLevels(), baseline)
		}
		for i := 0; i < levels.CumSize(dec.DecodedLevels()-1); i++ {
			src, err := dec.Source(i)
			if err != nil {
				t.Fatal(err)
			}
			if string(src) != string(sources[i]) {
				t.Fatalf("churn round %d: source %d corrupted after repair", round, i)
			}
		}
		trace.addf("round=%d firstHealed=%v", round, firstHealed)
	}

	// Fingerprint the final fleet state: per-replica per-level inventory
	// plus the sorted marshaled collected set.
	stats, errs := f.repl.StatAll(ctx)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("final stat of replica %d: %v", i, e)
		}
		trace.addf("replica=%d stats=%+v", i, stats[i])
	}
	got, err := f.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	var marshaled []string
	for _, b := range got {
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		marshaled = append(marshaled, string(data))
	}
	sort.Strings(marshaled)
	for _, m := range marshaled {
		trace.addf("block=%x", sha256.Sum256([]byte(m)))
	}
	return trace.digest()
}

// TestChurnAcceptance is the headline scenario, and pins that the whole
// history — every regeneration, every placement, the final inventory —
// is reproducible under a fixed seed.
func TestChurnAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scenario needs real TCP round trips")
	}
	first := runChurnScenario(t, 23)
	second := runChurnScenario(t, 23)
	if first != second {
		t.Fatalf("same seed, different churn history:\n  %s\n  %s", first, second)
	}
}

// TestChurnWithDaemonLoop replays the kill/heal cycle against the
// free-running daemon loop: no manual rounds, just Start, churn, and
// wait for the audit to report health again after every kill.
func TestChurnWithDaemonLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scenario needs real TCP round trips")
	}
	levels, sources, blocks, targets := testCode(t, 29, 24)
	f := newFleet(t, 3, levels.Count())
	cfg := f.seed(levels, blocks, targets)
	baseline := decodeAll(t, levels, blocks).DecodedLevels()
	cfg.Interval = 2 * time.Millisecond
	cfg.MaxBackoff = 20 * time.Millisecond
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Stop(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	ctx := context.Background()
	for round := 0; round < churnRounds; round++ {
		victim := round % len(f.servers)
		f.kill(victim)
		f.heal(victim)

		deadline := time.Now().Add(10 * time.Second)
		for {
			audit, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
			if err == nil && audit.TotalDeficit() == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("churn round %d: daemon did not restore health in 10s (audit err %v)", round, err)
			}
			time.Sleep(2 * time.Millisecond)
		}

		got, err := f.repl.Collect(ctx, -1)
		if err != nil {
			t.Fatalf("churn round %d: client-visible collect error: %v", round, err)
		}
		// The critical level is a hard guarantee (it lives on every
		// replica, so single-replica churn can never erase it). Deeper
		// levels depend on how daemon rounds interleave with the kills;
		// the deterministic scenario above pins their recovery exactly.
		dec := decodeAll(t, levels, got)
		checkCriticalLevel(t, dec, levels, sources)
		if dec.DecodedLevels() < 1 || dec.DecodedLevels() > baseline {
			t.Fatalf("churn round %d: fleet decodes %d levels, provisioning decoded %d",
				round, dec.DecodedLevels(), baseline)
		}
	}
	if d.Rounds() == 0 {
		t.Fatal("daemon loop never ran a round")
	}
}

// TestChurnLosesNothingToDedup pins the interaction the daemon depends
// on: regenerated blocks carry fresh coefficients, so replica-level
// dedup (which keeps put-retries idempotent) never swallows them. After
// one full churn round the collected set is strictly larger than the
// original provisioning.
func TestChurnLosesNothingToDedup(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 31, 24)
	f := newFleet(t, 3, levels.Count())
	d, err := New(f.repl, f.seed(levels, blocks, targets))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.kill(1)
	f.heal(1)
	for i := 0; i < 8; i++ {
		if _, err := d.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		audit, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
		if err != nil {
			t.Fatal(err)
		}
		if audit.TotalDeficit() == 0 {
			break
		}
	}
	got, err := f.repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) <= len(blocks)-1 {
		t.Fatalf("collected %d distinct blocks after repair, want > %d — regenerated blocks deduped away?",
			len(got), len(blocks)-1)
	}
}
