package repair

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// TestRepairNeverDecodes pins the package's defining property in the
// source itself: the repair path is decode-free. It must not import the
// decode-then-re-encode machinery (internal/predist, whose Repair is the
// baseline this package replaces, or the Gaussian-elimination layer in
// internal/gfmat), and it must never construct a core.Decoder. A human
// adding a "just decode it here" shortcut trips this test, not a code
// reviewer three months later.
func TestRepairNeverDecodes(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	forbiddenImports := []string{"internal/predist", "internal/gfmat"}
	forbiddenSelectors := map[string]string{
		"NewDecoder": "constructs a decoder",
		"Decoder":    "references the decoder type",
	}
	checked := 0
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue // tests decode on purpose, to judge the daemon's work
			}
			checked++
			for _, imp := range file.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				for _, bad := range forbiddenImports {
					if strings.Contains(path, bad) {
						t.Errorf("%s imports %s — the repair path must stay decode-free", name, path)
					}
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if why, bad := forbiddenSelectors[sel.Sel.Name]; bad {
					t.Errorf("%s: %s at %s — the repair path must stay decode-free",
						name, why, fset.Position(sel.Pos()))
				}
				return true
			})
		}
	}
	if checked < 2 {
		t.Fatalf("scanned only %d non-test files; the package layout moved?", checked)
	}
}
