package repair

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/store"
)

// TestPlacementChurnEndToEnd is the full placement-layer loop against
// real TCP daemons: keyed puts route through the ring, a node dies, the
// failure detector suspects and then removes it, repair heals the
// object's shard on the surviving owners, and the critical level reads
// back bit-exact — with zero client-visible errors along the way.
func TestPlacementChurnEndToEnd(t *testing.T) {
	ctx := context.Background()
	const n = 3

	servers := make([]*store.Server, n)
	clients := make([]*store.Client, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := store.NewServer(store.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
		cl, err := store.NewClient(store.ClientConfig{
			Addr:        srv.Addr(),
			DialTimeout: time.Second,
			OpTimeout:   2 * time.Second,
			Retry: store.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	placed, err := store.NewPlaced(clients, 3, store.PlacedConfig{Replication: 3, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		placed.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Shutdown(sctx)
		}
	})

	// The failure detector probes through the placement layer's own
	// clients and drives ring membership: suspects stay placed (they may
	// be a network blip), dead nodes are removed, recoveries return.
	mon, err := gossip.NewMonitor(addrs, placed, gossip.MonitorConfig{
		Seed:         5,
		SuspectAfter: 1,
		DeadAfter:    3,
		ProbeTimeout: time.Second,
		OnEvent: func(e gossip.Event) {
			switch e.Next {
			case gossip.Dead:
				placed.SetAlive(e.Addr, false)
			case gossip.Alive:
				placed.SetAlive(e.Addr, true)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	obj := core.NamedObject("placement-e2e")
	levels, sources, blocks, targets := testCode(t, 17, 24)
	for _, b := range blocks {
		b.Object = obj
	}
	if _, err := placed.PutAll(ctx, blocks); err != nil {
		t.Fatalf("client-visible put error during steady state: %v", err)
	}

	before, err := placed.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 3 {
		t.Fatalf("object spread over %d nodes, want 3: %v", len(before), before)
	}

	// Kill the object's primary — a real daemon death, not a simulated
	// partition. The monitor needs DeadAfter consecutive misses.
	victim := before[0]
	for i, a := range addrs {
		if a == victim {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			servers[i].Shutdown(sctx)
			cancel()
		}
	}
	for i := 0; i < 5 && mon.State(victim) != gossip.Dead; i++ {
		mon.Tick(ctx)
	}
	if got := mon.State(victim); got != gossip.Dead {
		t.Fatalf("victim state after probes: %v, want Dead", got)
	}

	after, err := placed.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("post-churn shard has %d nodes, want the 2 survivors: %v", len(after), after)
	}
	for _, a := range after {
		if a == victim {
			t.Fatalf("dead node %s still owns the object: %v", victim, after)
		}
	}

	// Repair follows the ring: the daemon re-resolves the shard each
	// round, so regeneration lands on the surviving owners.
	d, err := NewObject(placed, obj, Config{
		Scheme:  core.PLC,
		Levels:  levels,
		Targets: targets,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	for round := 0; round < 8; round++ {
		rep, err = d.RunOnce(ctx)
		if err != nil {
			t.Fatalf("repair round %d: %v", round, err)
		}
		if rep.Audit.Healthy() {
			break
		}
	}
	if !rep.Audit.Healthy() {
		t.Fatalf("fleet not healthy after repair: %d unreachable, deficits %+v",
			rep.Audit.Unreachable, rep.Audit.Deficient())
	}

	// The keyed read decodes the critical level bit-exactly from the
	// survivors — the paper's differentiated-persistence guarantee,
	// carried through churn by placement + repair.
	got, err := placed.Collect(ctx, obj, -1)
	if err != nil {
		t.Fatalf("client-visible collect error after churn: %v", err)
	}
	for _, b := range got {
		if b.Object != obj {
			t.Fatalf("collect leaked foreign object %s", b.Object)
		}
	}
	checkCriticalLevel(t, decodeAll(t, levels, got), levels, sources)

	// Determinism: a mirror front end over the same addresses, driven
	// through the same membership sequence, assigns identically.
	mirrorClients := make([]*store.Client, n)
	for i, a := range addrs {
		cl, err := store.NewClient(store.ClientConfig{Addr: a})
		if err != nil {
			t.Fatal(err)
		}
		mirrorClients[i] = cl
	}
	mirror, err := store.NewPlaced(mirrorClients, 3, store.PlacedConfig{Replication: 3, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mirror.Close() })
	if err := mirror.SetAlive(victim, false); err != nil {
		t.Fatal(err)
	}
	mirrored, err := mirror.ReplicasForObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mirrored, after) {
		t.Fatalf("placement not deterministic: %v vs %v", mirrored, after)
	}
}
