package repair

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestDaemonConcurrentWithPuts runs the daemon loop against concurrent
// client writes and churn. It asserts nothing beyond "no error, no
// deadlock" — its job is to give the race detector (go test -race) a
// dense interleaving of daemon rounds, puts, collects, and a kill/heal.
func TestDaemonConcurrentWithPuts(t *testing.T) {
	levels, _, blocks, targets := testCode(t, 41, 36)
	f := newFleet(t, 3, levels.Count())
	cfg := f.seed(levels, blocks[:12], targets)
	cfg.Interval = time.Millisecond
	cfg.MaxBackoff = 10 * time.Millisecond
	d, err := New(f.repl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(blocks); i += 3 {
				if err := f.repl.Put(ctx, blocks[i]); err != nil {
					t.Errorf("concurrent put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := f.repl.Collect(ctx, 0); err != nil {
				t.Errorf("concurrent collect: %v", err)
				return
			}
			d.LastReport()
			d.Rounds()
		}
	}()
	wg.Wait()

	f.kill(1)
	f.heal(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		audit, err := AuditFleet(ctx, f.repl, AuditConfig{Targets: targets})
		if err == nil && audit.Levels[0].Deficit == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not repair the critical level under concurrency")
		}
		time.Sleep(time.Millisecond)
	}

	stopCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Stop(stopCtx); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
