// Package cluster runs the pre-distribution protocol as an actual
// message-passing system: every sensor is a goroutine owning its cache
// state and a mailbox, packets hop between mailboxes one GPSR Step at a
// time with their routing state carried in the packet header, and the
// node in charge of a cache location folds arriving source blocks into
// its coded block with a locally drawn coefficient (c ← c + βx) — the
// decentralized encoding of Sec. 4, executed concurrently rather than
// simulated synchronously.
//
// The package exists to demonstrate that nothing in the protocol needs
// global state: routing decisions use only the current node's local
// topology (gpsr.Step), coding coefficients are drawn node-locally, and
// the common random seed is the only shared knowledge. The synchronous
// predist implementation remains the harness used by the experiments;
// cluster_test cross-checks the two.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gf256"
	"repro/internal/gpsr"
)

// Config parameterizes a cluster deployment.
type Config struct {
	Graph  *geom.Graph
	Scheme core.Scheme
	Levels *core.Levels
	// Dist sizes the location parts.
	Dist core.PriorityDistribution
	// M is the number of seeded cache locations.
	M int
	// Seed is the common random seed (locations and part assignment).
	Seed int64
	// Fanout, when positive, limits each source block to that many random
	// destination slots.
	Fanout int
	// PayloadLen is the source-block payload size (> 0).
	PayloadLen int
	// MailboxDepth bounds each node's queue (0 = 256).
	MailboxDepth int
}

func (c Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("cluster: nil graph")
	}
	if c.Levels == nil {
		return fmt.Errorf("cluster: nil levels")
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("cluster: invalid scheme %v", c.Scheme)
	}
	if err := c.Dist.Validate(c.Levels); err != nil {
		return err
	}
	if c.M <= 0 {
		return fmt.Errorf("cluster: M = %d, want > 0", c.M)
	}
	if c.Fanout < 0 {
		return fmt.Errorf("cluster: negative fanout %d", c.Fanout)
	}
	if c.PayloadLen <= 0 {
		return fmt.Errorf("cluster: payload length %d, want > 0", c.PayloadLen)
	}
	return nil
}

// delivery reports one packet's fate back to the sender.
type delivery struct {
	node int
	hops int
	err  error
}

// packet is a routed dissemination message.
type packet struct {
	slot    int
	block   int
	payload []byte
	dst     geom.Point
	st      gpsr.PacketState
	hops    int
	done    chan<- delivery
}

// query asks a node for its accumulated coded blocks.
type query struct {
	reply chan<- []*core.CodedBlock
}

// cacheSlot is one location's coded-block accumulator, owned by exactly
// one node goroutine.
type cacheSlot struct {
	part    int
	coeff   []byte
	payload []byte
}

// node is one cluster participant.
type node struct {
	id      int
	mail    chan any
	rng     *rand.Rand // node-local coefficient source
	slots   map[int]*cacheSlot
	cluster *Cluster
}

// Cluster is a running deployment.
type Cluster struct {
	cfg       Config
	router    *gpsr.Router
	locations []geom.Point
	partOf    []int
	nodes     []*node

	stop     chan struct{}
	wg       sync.WaitGroup
	messages atomic.Int64
	hops     atomic.Int64
	misroute atomic.Int64
	closed   atomic.Bool
}

// New resolves the seeded locations, spawns one goroutine per node and
// returns the running cluster. Callers must Shutdown it.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MailboxDepth == 0 {
		cfg.MailboxDepth = 256
	}
	router, err := gpsr.New(cfg.Graph)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		router: router,
		stop:   make(chan struct{}),
	}
	c.locations = geom.SeededLocations(cfg.Seed, cfg.M)
	c.partOf = apportionParts(cfg.M, cfg.Dist)

	n := cfg.Graph.Len()
	c.nodes = make([]*node, n)
	for i := 0; i < n; i++ {
		c.nodes[i] = &node{
			id:      i,
			mail:    make(chan any, cfg.MailboxDepth),
			rng:     rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x5851F42D4C957F2D)),
			slots:   make(map[int]*cacheSlot),
			cluster: c,
		}
	}
	for i := range c.nodes {
		c.wg.Add(1)
		go c.nodes[i].run()
	}
	return c, nil
}

// apportionParts assigns each location slot a level part by largest
// remainder over the distribution.
func apportionParts(m int, p []float64) []int {
	sizes := make([]int, len(p))
	rem := make([]float64, len(p))
	total := 0
	for i, pi := range p {
		exact := pi * float64(m)
		sizes[i] = int(exact)
		rem[i] = exact - float64(sizes[i])
		total += sizes[i]
	}
	for total < m {
		best := 0
		for i := 1; i < len(p); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		sizes[best]++
		rem[best] = -1
		total++
	}
	parts := make([]int, m)
	part, used := 0, 0
	for i := 0; i < m; i++ {
		for part < len(sizes)-1 && used >= sizes[part] {
			part++
			used = 0
		}
		parts[i] = part
		used++
	}
	return parts
}

// run is the node goroutine: it processes packets (one routing Step each)
// and cache queries until the cluster stops.
func (nd *node) run() {
	defer nd.cluster.wg.Done()
	for {
		select {
		case <-nd.cluster.stop:
			return
		case m := <-nd.mail:
			switch msg := m.(type) {
			case packet:
				nd.handlePacket(msg)
			case query:
				nd.handleQuery(msg)
			}
		}
	}
}

func (nd *node) handlePacket(pkt packet) {
	c := nd.cluster
	res, err := c.router.Step(nd.id, pkt.dst, pkt.st)
	if err != nil {
		pkt.done <- delivery{err: err}
		return
	}
	if !res.Arrived {
		pkt.st = res.State
		pkt.hops++
		select {
		case c.nodes[res.Next].mail <- pkt:
		case <-c.stop:
		}
		return
	}
	// Arrived: fold the source block into the slot's accumulator with a
	// locally drawn coefficient.
	slot, ok := nd.slots[pkt.slot]
	if !ok {
		slot = &cacheSlot{
			part:    c.partOf[pkt.slot],
			coeff:   make([]byte, c.cfg.Levels.Total()),
			payload: make([]byte, c.cfg.PayloadLen),
		}
		nd.slots[pkt.slot] = slot
	}
	beta := byte(1 + nd.rng.Intn(255))
	slot.coeff[pkt.block] ^= beta
	gf256.AddMulSlice(slot.payload, pkt.payload, beta)
	pkt.done <- delivery{node: nd.id, hops: pkt.hops}
}

func (nd *node) handleQuery(q query) {
	out := make([]*core.CodedBlock, 0, len(nd.slots))
	for _, s := range nd.slots {
		if gf256.IsZero(s.coeff) {
			continue
		}
		out = append(out, &core.CodedBlock{
			Level:   s.part,
			Coeff:   append([]byte(nil), s.coeff...),
			Payload: append([]byte(nil), s.payload...),
		})
	}
	q.reply <- out
}

// destinationSlots lists the slots a block of the given level must reach.
func (c *Cluster) destinationSlots(level int) []int {
	var out []int
	for slot, part := range c.partOf {
		switch c.cfg.Scheme {
		case core.SLC:
			if part == level {
				out = append(out, slot)
			}
		case core.PLC:
			if part >= level {
				out = append(out, slot)
			}
		default:
			out = append(out, slot)
		}
	}
	return out
}

// Disseminate injects source block blockIdx at the origin node and blocks
// until every destination slot acknowledges the fold. The rng drives only
// the sender-side fanout sampling; coding coefficients are drawn by the
// receiving nodes.
func (c *Cluster) Disseminate(rng *rand.Rand, origin, blockIdx int, payload []byte) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: already shut down")
	}
	if origin < 0 || origin >= len(c.nodes) {
		return fmt.Errorf("cluster: origin %d out of range", origin)
	}
	if len(payload) != c.cfg.PayloadLen {
		return fmt.Errorf("cluster: payload length %d, want %d", len(payload), c.cfg.PayloadLen)
	}
	level, err := c.cfg.Levels.LevelOf(blockIdx)
	if err != nil {
		return err
	}
	targets := c.destinationSlots(level)
	if c.cfg.Fanout > 0 && c.cfg.Fanout < len(targets) {
		picked := make([]int, 0, c.cfg.Fanout)
		for _, idx := range rng.Perm(len(targets))[:c.cfg.Fanout] {
			picked = append(picked, targets[idx])
		}
		targets = picked
	}
	done := make(chan delivery, len(targets))
	for _, slot := range targets {
		pkt := packet{
			slot:    slot,
			block:   blockIdx,
			payload: append([]byte(nil), payload...),
			dst:     c.locations[slot],
			done:    done,
		}
		select {
		case c.nodes[origin].mail <- pkt:
		case <-c.stop:
			return fmt.Errorf("cluster: shut down mid-dissemination")
		}
	}
	var firstErr error
	for range targets {
		d := <-done
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		c.messages.Add(1)
		c.hops.Add(int64(d.hops))
	}
	return firstErr
}

// CollectBlocks queries every node passing the alive filter (nil = all)
// for its cached coded blocks.
func (c *Cluster) CollectBlocks(alive func(int) bool) ([]*core.CodedBlock, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: already shut down")
	}
	var out []*core.CodedBlock
	for i, nd := range c.nodes {
		if alive != nil && !alive(i) {
			continue
		}
		reply := make(chan []*core.CodedBlock, 1)
		select {
		case nd.mail <- query{reply: reply}:
		case <-c.stop:
			return nil, fmt.Errorf("cluster: shut down mid-collection")
		}
		select {
		case blocks := <-reply:
			out = append(out, blocks...)
		case <-c.stop:
			return nil, fmt.Errorf("cluster: shut down mid-collection")
		}
	}
	return out, nil
}

// Messages returns the number of completed deliveries.
func (c *Cluster) Messages() int { return int(c.messages.Load()) }

// Hops returns the total hops across deliveries.
func (c *Cluster) Hops() int { return int(c.hops.Load()) }

// Shutdown stops every node goroutine and waits for them to exit. It is
// idempotent.
func (c *Cluster) Shutdown() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	c.wg.Wait()
}
