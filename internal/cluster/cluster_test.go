package cluster

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/geom"
)

func connectedGraph(t testing.TB, seed int64, n int, radius float64) *geom.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for {
		pos := geom.RandomPoints(rng, n)
		g, err := geom.NewUnitDiskGraph(pos, radius)
		if err != nil {
			t.Fatal(err)
		}
		if g.Connected() {
			return g
		}
	}
}

func mustLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidation(t *testing.T) {
	g := connectedGraph(t, 1, 40, 0.3)
	l := mustLevels(t, 2, 4)
	good := Config{
		Graph: g, Scheme: core.PLC, Levels: l,
		Dist: core.NewUniformDistribution(2), M: 20, PayloadLen: 4,
	}
	c, err := New(good)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c.Shutdown()
	mutations := []func(*Config){
		func(c *Config) { c.Graph = nil },
		func(c *Config) { c.Levels = nil },
		func(c *Config) { c.Scheme = core.Scheme(0) },
		func(c *Config) { c.Dist = core.NewUniformDistribution(3) },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.Fanout = -1 },
		func(c *Config) { c.PayloadLen = 0 },
	}
	for i, mutate := range mutations {
		cfg := good
		mutate(&cfg)
		if bad, err := New(cfg); err == nil {
			bad.Shutdown()
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestShutdownIdempotent(t *testing.T) {
	g := connectedGraph(t, 2, 30, 0.35)
	c, err := New(Config{
		Graph: g, Scheme: core.PLC, Levels: mustLevels(t, 1, 1),
		Dist: core.NewUniformDistribution(2), M: 4, PayloadLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	c.Shutdown() // must not panic or hang
	if err := c.Disseminate(rand.New(rand.NewSource(1)), 0, 0, []byte{1, 2}); err == nil {
		t.Error("dissemination after shutdown accepted")
	}
	if _, err := c.CollectBlocks(nil); err == nil {
		t.Error("collection after shutdown accepted")
	}
}

func TestDisseminateValidation(t *testing.T) {
	g := connectedGraph(t, 3, 30, 0.35)
	c, err := New(Config{
		Graph: g, Scheme: core.PLC, Levels: mustLevels(t, 1, 1),
		Dist: core.NewUniformDistribution(2), M: 4, PayloadLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	rng := rand.New(rand.NewSource(4))
	if err := c.Disseminate(rng, -1, 0, []byte{1, 2}); err == nil {
		t.Error("bad origin accepted")
	}
	if err := c.Disseminate(rng, 0, 9, []byte{1, 2}); err == nil {
		t.Error("bad block index accepted")
	}
	if err := c.Disseminate(rng, 0, 0, []byte{1}); err == nil {
		t.Error("short payload accepted")
	}
}

// TestClusterEndToEnd is the headline: the concurrent message-passing
// implementation must reproduce the full protocol — disseminate from many
// origins, lose nodes, collect from survivors, decode in priority order
// with byte-exact payloads.
func TestClusterEndToEnd(t *testing.T) {
	g := connectedGraph(t, 5, 120, 0.18)
	l := mustLevels(t, 4, 8, 12) // N = 24
	c, err := New(Config{
		Graph: g, Scheme: core.PLC, Levels: l,
		Dist: core.PriorityDistribution{0.4, 0.3, 0.3},
		M:    100, Seed: 6, PayloadLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	rng := rand.New(rand.NewSource(7))
	sources := make([][]byte, l.Total())
	for i := range sources {
		sources[i] = make([]byte, 8)
		rng.Read(sources[i])
		if err := c.Disseminate(rng, rng.Intn(120), i, sources[i]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Messages() == 0 || c.Hops() == 0 {
		t.Fatalf("no delivery cost recorded: %d msgs, %d hops", c.Messages(), c.Hops())
	}

	// Full collection decodes everything byte-exactly.
	blocks, err := c.CollectBlocks(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, dec, err := collect.Run(rng, core.PLC, l, blocks, collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("cluster deployment incomplete: %+v from %d caches", res, len(blocks))
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("source %d corrupted through the cluster", i)
		}
	}

	// Under 50% failures the critical level still decodes.
	dead := make(map[int]bool)
	for i := 0; i < 120; i++ {
		if rng.Float64() < 0.5 {
			dead[i] = true
		}
	}
	blocks, err = c.CollectBlocks(func(n int) bool { return !dead[n] })
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = collect.Run(rng, core.PLC, l, blocks, collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Errorf("critical level lost at 50%% failures: %+v", res)
	}
}

// TestClusterMatchesSynchronousSupport: blocks produced by the concurrent
// cluster must satisfy the same scheme-support invariants the synchronous
// predist implementation guarantees.
func TestClusterMatchesSynchronousSupport(t *testing.T) {
	g := connectedGraph(t, 8, 80, 0.22)
	l := mustLevels(t, 3, 3, 3)
	for _, scheme := range []core.Scheme{core.RLC, core.SLC, core.PLC} {
		c, err := New(Config{
			Graph: g, Scheme: scheme, Levels: l,
			Dist: core.NewUniformDistribution(3), M: 30, Seed: 9, PayloadLen: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		payload := make([]byte, 4)
		for i := 0; i < l.Total(); i++ {
			rng.Read(payload)
			if err := c.Disseminate(rng, rng.Intn(80), i, payload); err != nil {
				t.Fatal(err)
			}
		}
		blocks, err := c.CollectBlocks(nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := core.NewDecoder(scheme, l, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if _, err := dec.Add(b); err != nil {
				t.Fatalf("%v: cluster block violates support: %v", scheme, err)
			}
		}
		c.Shutdown()
	}
}

// TestClusterFanout: sparse dissemination still decodes and sends fewer
// messages.
func TestClusterFanout(t *testing.T) {
	g := connectedGraph(t, 11, 100, 0.2)
	l := mustLevels(t, 5, 15) // N = 20
	run := func(fanout int) (int, bool) {
		c, err := New(Config{
			Graph: g, Scheme: core.PLC, Levels: l,
			Dist: core.NewUniformDistribution(2), M: 80, Seed: 12,
			Fanout: fanout, PayloadLen: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		rng := rand.New(rand.NewSource(13))
		payload := make([]byte, 4)
		for i := 0; i < l.Total(); i++ {
			rng.Read(payload)
			if err := c.Disseminate(rng, rng.Intn(100), i, payload); err != nil {
				t.Fatal(err)
			}
		}
		blocks, err := c.CollectBlocks(nil)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := collect.Run(rng, core.PLC, l, blocks, collect.Options{PayloadLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		return c.Messages(), res.Complete
	}
	denseMsgs, denseOK := run(0)
	sparseMsgs, sparseOK := run(4 * core.LogSparsity(l.Total()))
	if !denseOK || !sparseOK {
		t.Fatalf("decode failed: dense %v, sparse %v", denseOK, sparseOK)
	}
	if sparseMsgs >= denseMsgs {
		t.Errorf("fanout did not reduce messages: %d vs %d", sparseMsgs, denseMsgs)
	}
}

// TestClusterConcurrentDisseminations pipelines dissemination from many
// goroutines to exercise mailbox contention and the race detector.
func TestClusterConcurrentDisseminations(t *testing.T) {
	g := connectedGraph(t, 14, 80, 0.22)
	l := mustLevels(t, 4, 12)
	c, err := New(Config{
		Graph: g, Scheme: core.PLC, Levels: l,
		Dist: core.NewUniformDistribution(2), M: 60, Seed: 15, PayloadLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	errs := make(chan error, l.Total())
	for i := 0; i < l.Total(); i++ {
		i := i
		go func() {
			rng := rand.New(rand.NewSource(int64(100 + i)))
			payload := make([]byte, 4)
			rng.Read(payload)
			errs <- c.Disseminate(rng, rng.Intn(80), i, payload)
		}()
	}
	for i := 0; i < l.Total(); i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	blocks, err := c.CollectBlocks(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := collect.Run(rand.New(rand.NewSource(16)), core.PLC, l, blocks,
		collect.Options{PayloadLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("concurrent dissemination incomplete: %+v", res)
	}
}
