package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestNibTables checks the split-nibble factorization against Mul for every
// coefficient and every byte value.
func TestNibTables(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := nibblesFor(byte(c))
		for x := 0; x < 256; x++ {
			want := Mul(byte(c), byte(x))
			if got := tab.mulByte(byte(x)); got != want {
				t.Fatalf("nibTables(%#02x).mulByte(%#02x) = %#02x, want %#02x", c, x, got, want)
			}
		}
	}
}

// TestAddMulSliceMatchesGeneric drives the dispatching AddMulSlice across
// lengths that exercise the AVX2 bulk path, the word loop, the byte tail
// and the short-slice generic path, and cross-checks every byte against the
// scalar reference.
func TestAddMulSliceMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 1000, 1024, 4097}
	coeffs := []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff}
	for _, n := range lengths {
		for _, c := range coeffs {
			src := make([]byte, n)
			rng.Read(src)
			dst := make([]byte, n)
			rng.Read(dst)
			want := append([]byte(nil), dst...)

			AddMulSlice(dst, src, c)
			AddMulSliceRef(want, src, c)
			if !bytes.Equal(dst, want) {
				t.Fatalf("AddMulSlice(n=%d, c=%#02x) diverges from reference", n, c)
			}
		}
	}
}

// TestMulSliceMatchesGeneric is the MulSlice counterpart, including exact
// aliasing (dst == src), which ScaleInPlace relies on.
func TestMulSliceMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lengths := []int{0, 1, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100, 1024}
	coeffs := []byte{0, 1, 2, 0x53, 0xff}
	for _, n := range lengths {
		for _, c := range coeffs {
			src := make([]byte, n)
			rng.Read(src)
			dst := make([]byte, n)
			want := make([]byte, n)

			MulSlice(dst, src, c)
			MulSliceRef(want, src, c)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice(n=%d, c=%#02x) diverges from reference", n, c)
			}

			// Aliased: scale src in place and compare.
			aliased := append([]byte(nil), src...)
			MulSlice(aliased, aliased, c)
			if !bytes.Equal(aliased, want) {
				t.Fatalf("aliased MulSlice(n=%d, c=%#02x) diverges from reference", n, c)
			}
		}
	}
}

// TestAddMulSliceUnaligned slides a window across a larger buffer so the
// kernels see every start alignment within a 32-byte SIMD block.
func TestAddMulSliceUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	buf := make([]byte, 256)
	rng.Read(buf)
	for off := 0; off < 32; off++ {
		for _, n := range []int{33, 64, 95} {
			src := buf[off : off+n]
			dst := make([]byte, n)
			rng.Read(dst)
			want := append([]byte(nil), dst...)
			AddMulSlice(dst, src, 0xa7)
			AddMulSliceRef(want, src, 0xa7)
			if !bytes.Equal(dst, want) {
				t.Fatalf("AddMulSlice(offset=%d, n=%d) diverges from reference", off, n)
			}
		}
	}
}

// TestAddMulSliceDistributes checks the algebra end to end on the fast
// path: (a+b)·x == a·x + b·x accumulated into the same destination.
func TestAddMulSliceDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	src := make([]byte, 1024)
	rng.Read(src)
	for _, pair := range [][2]byte{{3, 5}, {0x80, 0x80}, {0xfe, 1}} {
		a, b := pair[0], pair[1]
		one := make([]byte, len(src))
		AddMulSlice(one, src, a^b) // (a+b)·x
		two := make([]byte, len(src))
		AddMulSlice(two, src, a)
		AddMulSlice(two, src, b)
		if !bytes.Equal(one, two) {
			t.Fatalf("(a+b)·x != a·x + b·x for a=%#02x b=%#02x", a, b)
		}
	}
}

func TestPowNegativeExponents(t *testing.T) {
	cases := []struct {
		a    byte
		e    int
		want func(a byte) byte
	}{
		{a: 1, e: -1, want: func(byte) byte { return 1 }},
		{a: 1, e: -1000, want: func(byte) byte { return 1 }},
	}
	for _, tc := range cases {
		if got := Pow(tc.a, tc.e); got != tc.want(tc.a) {
			t.Errorf("Pow(%#02x, %d) = %#02x, want %#02x", tc.a, tc.e, got, tc.want(tc.a))
		}
	}

	// Pow(a, -1) must equal Inv(a) for every nonzero a — the case the old
	// negative-intermediate fixup got wrong whenever |log(a)·e| >= 255.
	for a := 1; a < 256; a++ {
		inv, err := Inv(byte(a))
		if err != nil {
			t.Fatalf("Inv(%#02x): %v", a, err)
		}
		if got := Pow(byte(a), -1); got != inv {
			t.Errorf("Pow(%#02x, -1) = %#02x, want Inv = %#02x", a, got, inv)
		}
	}

	// Pow(a, -e) must be the inverse of Pow(a, e) for a sweep of exponents,
	// including ones far outside [-255, 255].
	for _, a := range []byte{2, 3, 0x1d, 0x80, 0xff} {
		for _, e := range []int{1, 2, 7, 254, 255, 256, 1000, 100000} {
			p, q := Pow(a, e), Pow(a, -e)
			if got := Mul(p, q); got != 1 {
				t.Errorf("Pow(%#02x, %d) * Pow(%#02x, -%d) = %#02x, want 1", a, e, a, e, got)
			}
		}
	}

	// Table-driven spot checks: Pow(a, e) == repeated multiplication.
	for _, a := range []byte{2, 0x35, 0xc1} {
		acc := byte(1)
		for e := 1; e <= 520; e++ {
			acc = Mul(acc, a)
			if got := Pow(a, e); got != acc {
				t.Fatalf("Pow(%#02x, %d) = %#02x, want %#02x", a, e, got, acc)
			}
			if gotNeg := Pow(a, -e); Mul(gotNeg, acc) != 1 {
				t.Fatalf("Pow(%#02x, -%d) is not the inverse of Pow(%#02x, %d)", a, e, a, e)
			}
		}
	}
}
