package gf256

// Vector kernels. These are the hot paths for encoding and decoding: every
// coded block is produced and reduced through AddMulSlice. The exported
// entry points dispatch between two implementations: the scalar log/exp
// kernels below for short vectors, and the word-parallel split-nibble
// kernels in kernels.go for anything at least wordKernelMin bytes long.

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; dst and src may alias.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	if len(dst) >= wordKernelMin {
		mulSliceWords(dst, src, nibblesFor(c))
		return
	}
	mulSliceGeneric(dst, src, c)
}

// mulSliceGeneric is the scalar log/exp kernel behind MulSlice, retained
// for short slices and as the reference oracle. Callers guarantee equal
// lengths and c ∉ {0, 1}.
func mulSliceGeneric(dst, src []byte, c byte) {
	lc := _tables.log[c]
	exp := _tables.exp[lc : lc+255]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = exp[_tables.log[s]]
	}
}

// AddMulSlice sets dst[i] ^= c * src[i] for all i — the fused
// multiply-accumulate at the heart of both encoding (folding a source block
// into a coded block with a random coefficient) and Gauss–Jordan row
// reduction. dst and src must have the same length.
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	if len(dst) >= wordKernelMin {
		addMulSliceWords(dst, src, nibblesFor(c))
		return
	}
	addMulSliceGeneric(dst, src, c)
}

// addMulSliceGeneric is the scalar log/exp kernel behind AddMulSlice,
// retained for short slices and as the reference oracle. Callers guarantee
// equal lengths and c ∉ {0, 1}.
func addMulSliceGeneric(dst, src []byte, c byte) {
	lc := _tables.log[c]
	exp := _tables.exp[lc : lc+255]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[_tables.log[s]]
		}
	}
}

// MulSliceRef and AddMulSliceRef run the full scalar reference pipeline —
// the zero/one special cases plus the generic log/exp kernel — bypassing
// the word-parallel dispatch. They exist for differential tests and for
// benchmarking the fast kernels against the historical baseline; production
// callers want MulSlice / AddMulSlice.

// MulSliceRef sets dst[i] = c * src[i] using only the scalar kernels.
func MulSliceRef(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSliceRef length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mulSliceGeneric(dst, src, c)
}

// AddMulSliceRef sets dst[i] ^= c * src[i] using only the scalar kernels.
func AddMulSliceRef(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSliceRef length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	addMulSliceGeneric(dst, src, c)
}

// AddSlice sets dst[i] ^= src[i] for all i. dst and src must have the same
// length.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	// Manual 8-way unroll; the compiler eliminates bounds checks on the
	// word-sized chunks.
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Dot returns the inner product sum_i a[i]*b[i] in GF(2^8). a and b must
// have the same length.
func Dot(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf256: Dot length mismatch")
	}
	var acc byte
	for i, x := range a {
		y := b[i]
		if x != 0 && y != 0 {
			acc ^= mulUnchecked(x, y)
		}
	}
	return acc
}

// ScaleInPlace multiplies every element of v by c.
func ScaleInPlace(v []byte, c byte) { MulSlice(v, v, c) }

// IsZero reports whether every element of v is zero.
func IsZero(v []byte) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
