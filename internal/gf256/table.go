package gf256

// MulTable is the classic Reed–Solomon optimization for long payloads: a
// precomputed 256-entry product table for one fixed coefficient turns the
// two-lookups-and-an-add multiply into a single indexed load. Decoders
// that re-use the same pivot coefficient across many long rows amortize
// the 256-byte build cost immediately.
type MulTable struct {
	c byte
	t [256]byte
}

// NewMulTable builds the product table for coefficient c.
func NewMulTable(c byte) *MulTable {
	mt := &MulTable{c: c}
	if c == 0 {
		return mt // all zeros
	}
	lc := _tables.log[c]
	exp := _tables.exp[lc : lc+255]
	for x := 1; x < 256; x++ {
		mt.t[x] = exp[_tables.log[x]]
	}
	return mt
}

// Coeff returns the coefficient the table was built for.
func (mt *MulTable) Coeff() byte { return mt.c }

// Mul returns c*x via one table load.
func (mt *MulTable) Mul(x byte) byte { return mt.t[x] }

// AddMulSlice sets dst[i] ^= c*src[i] using the table. dst and src must
// have the same length.
func (mt *MulTable) AddMulSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulTable.AddMulSlice length mismatch")
	}
	if mt.c == 0 {
		return
	}
	if mt.c == 1 {
		AddSlice(dst, src)
		return
	}
	t := &mt.t
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] ^= t[s[0]]
		d[1] ^= t[s[1]]
		d[2] ^= t[s[2]]
		d[3] ^= t[s[3]]
	}
	for ; i < n; i++ {
		dst[i] ^= t[src[i]]
	}
}

// MulSlice sets dst[i] = c*src[i] using the table. dst and src must have
// the same length; they may alias.
func (mt *MulTable) MulSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulTable.MulSlice length mismatch")
	}
	if mt.c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	t := &mt.t
	for i, s := range src {
		dst[i] = t[s]
	}
}
