package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMulTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		mt := NewMulTable(byte(c))
		if mt.Coeff() != byte(c) {
			t.Fatalf("Coeff = %d, want %d", mt.Coeff(), c)
		}
		for x := 0; x < 256; x++ {
			if got, want := mt.Mul(byte(x)), Mul(byte(c), byte(x)); got != want {
				t.Fatalf("table %#02x*%#02x = %#02x, want %#02x", c, x, got, want)
			}
		}
	}
}

func TestMulTableAddMulSliceMatchesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		src := randBytes(rng, n)
		c := byte(rng.Intn(256))
		a := randBytes(rng, n)
		b := append([]byte(nil), a...)
		AddMulSlice(a, src, c)
		NewMulTable(c).AddMulSlice(b, src)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d (c=%#02x): table kernel differs", trial, c)
		}
	}
}

func TestMulTableMulSliceMatchesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		src := randBytes(rng, n)
		c := byte(rng.Intn(256))
		a := make([]byte, n)
		b := make([]byte, n)
		MulSlice(a, src, c)
		NewMulTable(c).MulSlice(b, src)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d (c=%#02x): table MulSlice differs", trial, c)
		}
	}
	// Aliasing.
	v := randBytes(rng, 64)
	want := make([]byte, 64)
	MulSlice(want, v, 9)
	NewMulTable(9).MulSlice(v, v)
	if !bytes.Equal(v, want) {
		t.Error("in-place table MulSlice differs")
	}
}

func TestMulTablePanicsOnMismatch(t *testing.T) {
	mt := NewMulTable(5)
	for name, f := range map[string]func(){
		"AddMulSlice": func() { mt.AddMulSlice(make([]byte, 2), make([]byte, 3)) },
		"MulSlice":    func() { mt.MulSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkTableAddMulSlice1K(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	rand.New(rand.NewSource(3)).Read(src)
	mt := NewMulTable(0x53)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.AddMulSlice(dst, src)
	}
}
