//go:build amd64 && !purego

#include "textflag.h"

// AVX2 split-nibble kernels. The 16-entry low/high nibble product tables
// built in kernels.go are exactly a VPSHUFB shuffle control: broadcast each
// table into both 128-bit lanes of a YMM register and one VPSHUFB resolves
// 32 nibble lookups at once. Both kernels process 32 bytes per iteration;
// the Go wrappers guarantee n > 0 and n % 32 == 0 and handle the tail.

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $32

// func addMulNibblesAVX2(dst, src *byte, n int, tab *nibTables)
// dst[i] ^= c·src[i] for i in [0, n); n > 0, n % 32 == 0.
TEXT ·addMulNibblesAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI128 (AX), Y0      // low-nibble product table, both lanes
	VBROADCASTI128 16(AX), Y1    // high-nibble product table, both lanes
	VMOVDQU nibbleMask<>(SB), Y2

addmul_loop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4           // high nibbles (plus cross-byte garbage)
	VPAND   Y2, Y3, Y3           // low nibbles
	VPAND   Y2, Y4, Y4           // high nibbles, garbage masked
	VPSHUFB Y3, Y0, Y3           // c·(low nibble)
	VPSHUFB Y4, Y1, Y4           // c·(high nibble << 4)
	VPXOR   Y3, Y4, Y3           // c·src
	VPXOR   (DI), Y3, Y3         // dst ^= c·src
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     addmul_loop

	VZEROUPPER
	RET

// func mulNibblesAVX2(dst, src *byte, n int, tab *nibTables)
// dst[i] = c·src[i] for i in [0, n); n > 0, n % 32 == 0.
TEXT ·mulNibblesAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

mul_loop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mul_loop

	VZEROUPPER
	RET

// func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
