package gf256

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the kernel layer. "Dense" rows are uniform random
// bytes (the common case for coded payloads); "sparse" rows are mostly zero
// (coefficient vectors of sparse codes), which the scalar kernel's zero
// branch loves and the branch-free word kernel must not regress badly on.

func benchPayload(n int, sparse bool) []byte {
	rng := rand.New(rand.NewSource(int64(n)))
	b := make([]byte, n)
	for i := range b {
		if sparse && rng.Intn(8) != 0 {
			continue // leave ~7/8 of the bytes zero
		}
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func benchAddMul(b *testing.B, n int, sparse bool, f func(dst, src []byte, c byte)) {
	src := benchPayload(n, sparse)
	dst := benchPayload(n, false)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src, byte(2+i%253))
	}
}

func BenchmarkAddMulSlice_64B(b *testing.B)        { benchAddMul(b, 64, false, AddMulSlice) }
func BenchmarkAddMulSlice_1KiB(b *testing.B)       { benchAddMul(b, 1024, false, AddMulSlice) }
func BenchmarkAddMulSlice_64KiB(b *testing.B)      { benchAddMul(b, 64*1024, false, AddMulSlice) }
func BenchmarkAddMulSliceSparse_1KiB(b *testing.B) { benchAddMul(b, 1024, true, AddMulSlice) }

func BenchmarkAddMulSliceRef_64B(b *testing.B)   { benchAddMul(b, 64, false, AddMulSliceRef) }
func BenchmarkAddMulSliceRef_1KiB(b *testing.B)  { benchAddMul(b, 1024, false, AddMulSliceRef) }
func BenchmarkAddMulSliceRef_64KiB(b *testing.B) { benchAddMul(b, 64*1024, false, AddMulSliceRef) }
func BenchmarkAddMulSliceRefSparse_1KiB(b *testing.B) {
	benchAddMul(b, 1024, true, AddMulSliceRef)
}

func benchMul(b *testing.B, n int, f func(dst, src []byte, c byte)) {
	src := benchPayload(n, false)
	dst := make([]byte, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src, byte(2+i%253))
	}
}

func BenchmarkMulSlice_1KiB(b *testing.B)    { benchMul(b, 1024, MulSlice) }
func BenchmarkMulSliceRef_1KiB(b *testing.B) { benchMul(b, 1024, MulSliceRef) }
