package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0xFF, 0x0F, 0xF0},
		{0xAA, 0x55, 0xFF},
	}
	for _, tc := range cases {
		if got := Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%#02x, %#02x) = %#02x, want %#02x", tc.a, tc.b, got, tc.want)
		}
		if got := Sub(tc.a, tc.b); got != tc.want {
			t.Errorf("Sub(%#02x, %#02x) = %#02x, want %#02x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulByZeroAndOne(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%#02x, 0) = %#02x, want 0", a, got)
		}
		if got := Mul(0, byte(a)); got != 0 {
			t.Fatalf("Mul(0, %#02x) = %#02x, want 0", a, got)
		}
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%#02x, 1) = %#02x, want %#02x", a, got, a)
		}
	}
}

// TestMulAgainstBitwise cross-checks the table-driven multiplication against
// an independent shift-and-xor ("Russian peasant") implementation over the
// full 256x256 operand space.
func TestMulAgainstBitwise(t *testing.T) {
	slowMul := func(a, b byte) byte {
		var p byte
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			carry := a&0x80 != 0
			a <<= 1
			if carry {
				a ^= Poly
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := slowMul(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#02x, %#02x) = %#02x, want %#02x", a, b, got, want)
			}
		}
	}
}

func TestInvAllNonzero(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv, err := Inv(byte(a))
		if err != nil {
			t.Fatalf("Inv(%#02x): %v", a, err)
		}
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("a*Inv(a) = %#02x for a=%#02x, want 1", got, a)
		}
	}
}

func TestInvZero(t *testing.T) {
	if _, err := Inv(0); err == nil {
		t.Fatal("Inv(0) succeeded, want error")
	}
}

func TestDiv(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q, err := Div(byte(a), byte(b))
			if err != nil {
				t.Fatalf("Div(%#02x, %#02x): %v", a, b, err)
			}
			if got := Mul(q, byte(b)); got != byte(a) {
				t.Fatalf("Div(%#02x,%#02x)*%#02x = %#02x, want %#02x", a, b, b, got, a)
			}
		}
	}
	if _, err := Div(5, 0); err == nil {
		t.Fatal("Div by zero succeeded, want error")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		l, err := Log(byte(a))
		if err != nil {
			t.Fatalf("Log(%#02x): %v", a, err)
		}
		if got := Exp(l); got != byte(a) {
			t.Fatalf("Exp(Log(%#02x)) = %#02x", a, got)
		}
	}
	if _, err := Log(0); err == nil {
		t.Fatal("Log(0) succeeded, want error")
	}
}

func TestExpPeriodicity(t *testing.T) {
	for _, e := range []int{0, 1, 254, 255, 256, -1, -255, 510, 1000} {
		want := Exp(((e % 255) + 255) % 255)
		if got := Exp(e); got != want {
			t.Errorf("Exp(%d) = %#02x, want %#02x", e, got, want)
		}
	}
}

func TestPow(t *testing.T) {
	if got := Pow(0, 0); got != 1 {
		t.Errorf("Pow(0,0) = %#02x, want 1 (convention)", got)
	}
	if got := Pow(0, 3); got != 0 {
		t.Errorf("Pow(0,3) = %#02x, want 0", got)
	}
	for a := 1; a < 256; a++ {
		acc := byte(1)
		for e := 0; e < 10; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#02x, %d) = %#02x, want %#02x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestPowFermat(t *testing.T) {
	// a^255 = 1 for every nonzero a (the multiplicative group has order 255).
	for a := 1; a < 256; a++ {
		if got := Pow(byte(a), 255); got != 1 {
			t.Fatalf("Pow(%#02x, 255) = %#02x, want 1", a, got)
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// The powers of 0x02 must enumerate all 255 nonzero elements.
	seen := make(map[byte]bool, 255)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255: repeat at power %d", i)
		}
		seen[x] = true
		x = Mul(x, 2)
	}
	if len(seen) != 255 {
		t.Fatalf("generator enumerates %d elements, want 255", len(seen))
	}
}

// Property-based tests on the field axioms via testing/quick.

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	if err := quick.Check(func(a, b byte) bool {
		return Mul(a, b) == Mul(b, a)
	}, cfg); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}

	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}

	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Errorf("distributivity violated: %v", err)
	}

	if err := quick.Check(func(a, b byte) bool {
		// Addition forms a group: (a+b)+b == a.
		return Add(Add(a, b), b) == a
	}, cfg); err != nil {
		t.Errorf("addition not involutive: %v", err)
	}
}

func TestQuickDivMulInverse(t *testing.T) {
	err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		q, err := Div(a, b)
		return err == nil && Mul(q, b) == a
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickNoZeroDivisors(t *testing.T) {
	err := quick.Check(func(a, b byte) bool {
		if a != 0 && b != 0 {
			return Mul(a, b) != 0
		}
		return Mul(a, b) == 0
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Error(err)
	}
}
