package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		src := randBytes(rng, n)
		c := byte(rng.Intn(256))
		dst := make([]byte, n)
		MulSlice(dst, src, c)
		for i := range src {
			if want := Mul(src[i], c); dst[i] != want {
				t.Fatalf("trial %d: MulSlice[%d] = %#02x, want %#02x", trial, i, dst[i], want)
			}
		}
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, len(src))

	MulSlice(dst, src, 0)
	if !IsZero(dst) {
		t.Errorf("MulSlice by 0 = %v, want all zeros", dst)
	}

	MulSlice(dst, src, 1)
	if !bytes.Equal(dst, src) {
		t.Errorf("MulSlice by 1 = %v, want %v", dst, src)
	}
}

func TestMulSliceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randBytes(rng, 64)
	want := make([]byte, len(v))
	MulSlice(want, v, 7)
	MulSlice(v, v, 7) // in place
	if !bytes.Equal(v, want) {
		t.Error("in-place MulSlice differs from out-of-place")
	}
}

func TestAddMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		src := randBytes(rng, n)
		dst := randBytes(rng, n)
		c := byte(rng.Intn(256))
		want := make([]byte, n)
		for i := range want {
			want[i] = Add(dst[i], Mul(src[i], c))
		}
		AddMulSlice(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("trial %d: AddMulSlice mismatch", trial)
		}
	}
}

func TestAddMulSliceZeroCoefficientIsNoop(t *testing.T) {
	dst := []byte{1, 2, 3}
	src := []byte{9, 9, 9}
	want := append([]byte(nil), dst...)
	AddMulSlice(dst, src, 0)
	if !bytes.Equal(dst, want) {
		t.Errorf("AddMulSlice with c=0 modified dst: %v", dst)
	}
}

func TestAddSliceSelfCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randBytes(rng, 123)
	AddSlice(v, v)
	if !IsZero(v) {
		t.Error("v ^= v should zero the vector")
	}
}

func TestAddSliceUnrolledTail(t *testing.T) {
	// Exercise lengths around the 8-way unroll boundary.
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17} {
		a := make([]byte, n)
		b := make([]byte, n)
		for i := range a {
			a[i] = byte(i + 1)
			b[i] = byte(2*i + 3)
		}
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] ^ b[i]
		}
		AddSlice(a, b)
		if !bytes.Equal(a, want) {
			t.Errorf("n=%d: AddSlice = %v, want %v", n, a, want)
		}
	}
}

func TestDot(t *testing.T) {
	a := []byte{1, 2, 0, 4}
	b := []byte{5, 0, 7, 1}
	want := Add(Mul(1, 5), Mul(4, 1))
	if got := Dot(a, b); got != want {
		t.Errorf("Dot = %#02x, want %#02x", got, want)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %#02x, want 0", got)
	}
}

func TestQuickDotBilinear(t *testing.T) {
	// Dot(a, b+c) == Dot(a,b) + Dot(a,c) on fixed-size vectors.
	err := quick.Check(func(a, b, c [16]byte) bool {
		sum := make([]byte, 16)
		for i := range sum {
			sum[i] = Add(b[i], c[i])
		}
		return Dot(a[:], sum) == Add(Dot(a[:], b[:]), Dot(a[:], c[:]))
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestKernelPanicsOnLengthMismatch(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s with mismatched lengths did not panic", name)
			}
		}()
		f()
	}
	assertPanics("MulSlice", func() { MulSlice(make([]byte, 2), make([]byte, 3), 1) })
	assertPanics("AddMulSlice", func() { AddMulSlice(make([]byte, 2), make([]byte, 3), 1) })
	assertPanics("AddSlice", func() { AddSlice(make([]byte, 2), make([]byte, 3)) })
	assertPanics("Dot", func() { Dot(make([]byte, 2), make([]byte, 3)) })
}

func BenchmarkAddMulSlice1K(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	rng := rand.New(rand.NewSource(5))
	rng.Read(src)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSlice(dst, src, 0x53)
	}
}

func BenchmarkAddSlice1K(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddSlice(dst, src)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}
