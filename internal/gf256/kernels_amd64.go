//go:build amd64 && !purego

package gf256

// AVX2 dispatch. The split-nibble tables of kernels.go map directly onto
// VPSHUFB: one shuffle resolves 32 nibble lookups, so the assembly kernels
// in kernels_amd64.s process 32 bytes per iteration. Feature detection is
// done once at init via CPUID/XGETBV (AVX needs OS XSAVE support for the
// YMM state, not just the CPU flag).

//go:noescape
func addMulNibblesAVX2(dst, src *byte, n int, tab *nibTables)

//go:noescape
func mulNibblesAVX2(dst, src *byte, n int, tab *nibTables)

func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set by the OS.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// Accelerated reports whether a SIMD kernel path is active on this CPU.
func Accelerated() bool { return useAVX2 }

// accelMin is the length below which the SIMD call overhead is not worth
// it; such slices fall through to the pure-Go word kernel.
const accelMin = 32

// addMulAccel processes a 32-byte-aligned prefix of dst/src with the AVX2
// kernel and returns how many bytes it handled (0 when unavailable).
func addMulAccel(dst, src []byte, t *nibTables) int {
	if !useAVX2 || len(dst) < accelMin {
		return 0
	}
	n := len(dst) &^ 31
	addMulNibblesAVX2(&dst[0], &src[0], n, t)
	return n
}

// mulAccel is the MulSlice counterpart of addMulAccel.
func mulAccel(dst, src []byte, t *nibTables) int {
	if !useAVX2 || len(dst) < accelMin {
		return 0
	}
	n := len(dst) &^ 31
	mulNibblesAVX2(&dst[0], &src[0], n, t)
	return n
}
