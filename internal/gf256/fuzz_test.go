package gf256

import (
	"bytes"
	"testing"
)

// FuzzAddMulSliceEquiv asserts that the dispatching fast kernels (AVX2 bulk
// + word loop + byte tail) are byte-identical to the scalar reference for
// arbitrary payloads, lengths, alignments and coefficients — including the
// c == 0 and c == 1 special cases and slices short enough to skip the
// word-parallel path entirely.
func FuzzAddMulSliceEquiv(f *testing.F) {
	f.Add([]byte{}, byte(0), uint8(0))
	f.Add([]byte{1}, byte(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, byte(2), uint8(3))
	f.Add(bytes.Repeat([]byte{0xff}, 33), byte(0x1d), uint8(1))
	f.Add(bytes.Repeat([]byte{0xa5, 0x00, 0x5a}, 50), byte(0x80), uint8(17))

	f.Fuzz(func(t *testing.T, data []byte, c byte, offset uint8) {
		// Carve an arbitrarily aligned window out of the input so the SIMD
		// kernel sees unaligned starts, then split the remainder into the
		// src/dst halves.
		if int(offset) > len(data) {
			offset = uint8(len(data))
		}
		data = data[offset:]
		n := len(data) / 2
		src := data[:n]
		dstFast := append([]byte(nil), data[n:n+n]...)
		dstRef := append([]byte(nil), dstFast...)

		AddMulSlice(dstFast, src, c)
		AddMulSliceRef(dstRef, src, c)
		if !bytes.Equal(dstFast, dstRef) {
			t.Fatalf("AddMulSlice diverges from reference: n=%d c=%#02x", n, c)
		}

		mulFast := make([]byte, n)
		mulRef := make([]byte, n)
		MulSlice(mulFast, src, c)
		MulSliceRef(mulRef, src, c)
		if !bytes.Equal(mulFast, mulRef) {
			t.Fatalf("MulSlice diverges from reference: n=%d c=%#02x", n, c)
		}
	})
}
