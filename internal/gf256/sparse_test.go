package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAddMulAtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		dense := make([]byte, n)
		var idx []uint32
		var val []byte
		for j := 0; j < n; j++ {
			if rng.Intn(4) == 0 {
				v := byte(1 + rng.Intn(255))
				dense[j] = v
				idx = append(idx, uint32(j))
				val = append(val, v)
			}
		}
		c := byte(rng.Intn(256))
		want := make([]byte, n)
		rng.Read(want)
		got := append([]byte(nil), want...)
		AddMulSlice(want, dense, c)
		AddMulAt(got, idx, val, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (n=%d c=%d): scatter disagrees with dense", trial, n, c)
		}
	}
}

func TestAddMulAtLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	AddMulAt(make([]byte, 4), []uint32{0, 1}, []byte{1}, 2)
}

func TestScatterAt(t *testing.T) {
	dst := make([]byte, 6)
	ScatterAt(dst, []uint32{1, 4}, []byte{7, 9})
	if !bytes.Equal(dst, []byte{0, 7, 0, 0, 9, 0}) {
		t.Fatalf("scatter result %v", dst)
	}
}

func TestNextNonzero(t *testing.T) {
	v := make([]byte, 100)
	v[37] = 1
	v[99] = 2
	cases := []struct{ from, want int }{
		{0, 37}, {37, 37}, {38, 99}, {99, 99}, {100, 100}, {-3, 37},
	}
	for _, c := range cases {
		if got := NextNonzero(v, c.from); got != c.want {
			t.Errorf("NextNonzero(from=%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := NextNonzero(nil, 0); got != 0 {
		t.Errorf("NextNonzero(nil) = %d", got)
	}
	zeros := make([]byte, 33)
	if got := NextNonzero(zeros, 0); got != 33 {
		t.Errorf("NextNonzero(all-zero) = %d, want 33", got)
	}
}

func TestNextNonzeroExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40)
		v := make([]byte, n)
		for j := range v {
			if rng.Intn(3) == 0 {
				v[j] = byte(1 + rng.Intn(255))
			}
		}
		for from := 0; from <= n; from++ {
			want := n
			for j := from; j < n; j++ {
				if v[j] != 0 {
					want = j
					break
				}
			}
			if got := NextNonzero(v, from); got != want {
				t.Fatalf("trial %d: NextNonzero(%v, %d) = %d, want %d", trial, v, from, got, want)
			}
		}
	}
}
