package gf256

import "encoding/binary"

// Sparse kernels. A sparse coefficient vector is carried as parallel
// slices: strictly increasing positions idx and their nonzero values val.
// These entry points let encoders and eliminations work on the nonzero
// runs of such a vector without ever materializing the dense form.

// AddMulAt scatters dst[idx[i]] ^= c * val[i] for all i — the sparse
// counterpart of AddMulSlice. idx and val must have the same length and
// every index must be within dst.
func AddMulAt(dst []byte, idx []uint32, val []byte, c byte) {
	if len(idx) != len(val) {
		panic("gf256: AddMulAt length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, j := range idx {
			dst[j] ^= val[i]
		}
		return
	}
	lc := _tables.log[c]
	exp := _tables.exp[lc : lc+255]
	for i, j := range idx {
		if v := val[i]; v != 0 {
			dst[j] ^= exp[_tables.log[v]]
		}
	}
}

// ScatterAt sets dst[idx[i]] = val[i] for all i — densifying a sparse
// vector into a (pre-zeroed) destination row.
func ScatterAt(dst []byte, idx []uint32, val []byte) {
	if len(idx) != len(val) {
		panic("gf256: ScatterAt length mismatch")
	}
	for i, j := range idx {
		dst[j] = val[i]
	}
}

// NextNonzero returns the smallest position p in [from, len(v)) with
// v[p] != 0, or len(v) when the tail is all zero. Zero runs are skipped a
// word at a time, which is what lets elimination over sparse or banded
// rows jump straight between nonzero columns.
func NextNonzero(v []byte, from int) int {
	i := from
	if i < 0 {
		i = 0
	}
	n := len(v)
	for ; i+8 <= n; i += 8 {
		if binary.LittleEndian.Uint64(v[i:]) != 0 {
			break
		}
	}
	for ; i < n; i++ {
		if v[i] != 0 {
			return i
		}
	}
	return n
}
