// Package gf256 implements arithmetic over the Galois field GF(2^8).
//
// The field is constructed from the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by many
// Reed–Solomon deployments. All operations are table driven: a 256-entry
// logarithm table and a doubled 510-entry exponentiation table make
// multiplication two lookups and one add with no conditional reduction.
//
// Every coding scheme in this repository — RLC, SLC and PLC — performs its
// linear algebra over this field, matching the paper's choice of GF(2^8)
// ("we assume a sufficiently large Galois field such as GF(2^8)").
package gf256

import "fmt"

// Poly is the primitive polynomial generating the field, with the implicit
// x^8 term omitted (0x11D = x^8+x^4+x^3+x^2+1).
const Poly = 0x1D

// Order is the number of elements in the field.
const Order = 256

// tables holds the precomputed log/exp tables. exp is doubled so that
// exp[log(a)+log(b)] never needs a modular reduction.
type tables struct {
	exp [510]byte
	log [256]uint16
}

var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.exp[i+255] = x
		t.log[x] = uint16(i)
		// Multiply x by the generator (0x02) modulo the primitive polynomial.
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	// log(0) is undefined; park it at an out-of-range sentinel so accidental
	// use of log[0] is detectable in tests (exp is never indexed with it by
	// the arithmetic routines, which special-case zero).
	t.log[0] = 511
	return t
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse, so
// Sub is identical to Add.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8), which equals a+b in a characteristic-2 field.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[_tables.log[a]+_tables.log[b]]
}

// Div returns a/b in GF(2^8). Dividing by zero is a programming error and
// is reported through the error return rather than a panic.
func Div(a, b byte) (byte, error) {
	if b == 0 {
		return 0, fmt.Errorf("gf256: division by zero (dividend %#02x)", a)
	}
	if a == 0 {
		return 0, nil
	}
	return _tables.exp[int(_tables.log[a])+255-int(_tables.log[b])], nil
}

// Inv returns the multiplicative inverse of a. Zero has no inverse.
func Inv(a byte) (byte, error) {
	if a == 0 {
		return 0, fmt.Errorf("gf256: zero has no multiplicative inverse")
	}
	return _tables.exp[255-int(_tables.log[a])], nil
}

// mulUnchecked multiplies two nonzero elements without the zero guards.
// Callers must ensure a != 0 and b != 0.
func mulUnchecked(a, b byte) byte {
	return _tables.exp[_tables.log[a]+_tables.log[b]]
}

// Exp returns the generator (0x02) raised to the power e, with e reduced
// modulo 255.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return _tables.exp[e]
}

// Log returns the discrete logarithm of a to the generator base, and an
// error for a == 0.
func Log(a byte) (int, error) {
	if a == 0 {
		return 0, fmt.Errorf("gf256: log of zero is undefined")
	}
	return int(_tables.log[a]), nil
}

// Pow returns a raised to the power e. Pow(0, 0) is defined as 1 by
// convention; Pow(0, e>0) is 0.
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	// Normalize the exponent into [0, 255) before multiplying: la*e can be
	// a large negative intermediate whose remainder a single post-hoc +255
	// would not bring back into range.
	la := int(_tables.log[a])
	em := e % 255
	if em < 0 {
		em += 255
	}
	return _tables.exp[(la*em)%255]
}
