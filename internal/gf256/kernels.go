package gf256

// Word-parallel kernels. The scalar kernels in vector.go walk the payload a
// byte at a time through the log/exp tables, paying a zero-test branch and
// two dependent table loads per byte. The kernels here use the split-nibble
// technique that production erasure-code libraries build their SIMD paths
// on: for a fixed coefficient c, the product c·x factors through the two
// nibbles of x,
//
//	c·x = c·(x & 0x0f)  ^  c·(x & 0xf0),
//
// so two 16-entry tables — one per nibble — cover all 256 products. Both
// tables fit in a single cache line, and the lookups are branch-free: the
// zero byte indexes the tables like any other value and contributes zero.
// The slice kernels load 8 source bytes per iteration as one 64-bit word,
// resolve the sixteen nibble lookups unrolled, reassemble the product word
// and XOR it into the destination word.
//
// The byte-at-a-time implementations survive as mulSliceGeneric /
// addMulSliceGeneric: they remain the dispatch target for short slices
// (where building/fetching tables costs more than it saves) and serve as
// the reference oracle for the equivalence fuzz target.

import (
	"encoding/binary"
	"sync/atomic"
)

// wordKernelMin is the slice length below which the word-parallel path is
// not worth the pointer chase for the cached nibble tables; short vectors
// (e.g. coefficient vectors of small codes) stay on the scalar kernels.
const wordKernelMin = 16

// nibTables holds the split-nibble product tables for one coefficient:
// lo[v] = c·v for the low nibble v, hi[v] = c·(v<<4) for the high nibble.
type nibTables struct {
	lo [16]byte
	hi [16]byte
}

// nibCache lazily caches the nibble tables for all 256 coefficients.
// Entries are built on first use and published with an atomic store, so
// concurrent encoder workers can race to build the same entry safely — the
// tables are deterministic, and the last writer simply re-publishes an
// identical value.
var nibCache [256]atomic.Pointer[nibTables]

// nibblesFor returns the split-nibble tables for coefficient c, building
// and caching them on first use.
func nibblesFor(c byte) *nibTables {
	if t := nibCache[c].Load(); t != nil {
		return t
	}
	t := &nibTables{}
	for v := 0; v < 16; v++ {
		t.lo[v] = Mul(c, byte(v))
		t.hi[v] = Mul(c, byte(v<<4))
	}
	nibCache[c].Store(t)
	return t
}

// mulByte is the scalar fallback for tail bytes: two nibble lookups.
func (t *nibTables) mulByte(x byte) byte {
	return t.lo[x&0x0f] ^ t.hi[x>>4]
}

// mulWord multiplies the 8 field elements packed in a little-endian word by
// the table's coefficient. All sixteen nibble lookups are unrolled; the
// masks keep every index provably in [0,16) so the compiler drops the
// bounds checks.
func (t *nibTables) mulWord(s uint64) uint64 {
	lo, hi := &t.lo, &t.hi
	r := uint64(lo[s&0xf]) ^ uint64(hi[(s>>4)&0xf])
	r |= (uint64(lo[(s>>8)&0xf]) ^ uint64(hi[(s>>12)&0xf])) << 8
	r |= (uint64(lo[(s>>16)&0xf]) ^ uint64(hi[(s>>20)&0xf])) << 16
	r |= (uint64(lo[(s>>24)&0xf]) ^ uint64(hi[(s>>28)&0xf])) << 24
	r |= (uint64(lo[(s>>32)&0xf]) ^ uint64(hi[(s>>36)&0xf])) << 32
	r |= (uint64(lo[(s>>40)&0xf]) ^ uint64(hi[(s>>44)&0xf])) << 40
	r |= (uint64(lo[(s>>48)&0xf]) ^ uint64(hi[(s>>52)&0xf])) << 48
	r |= (uint64(lo[(s>>56)&0xf]) ^ uint64(hi[s>>60])) << 56
	return r
}

// addMulSliceWords is the word-parallel body of AddMulSlice for c ∉ {0, 1}:
// dst[i] ^= c·src[i], 8 bytes per iteration, no per-byte branches. On amd64
// an AVX2 kernel takes the 32-byte-aligned bulk first (32 bytes per
// iteration via VPSHUFB over the same nibble tables).
func addMulSliceWords(dst, src []byte, t *nibTables) {
	if done := addMulAccel(dst, src, t); done > 0 {
		dst, src = dst[done:], src[done:]
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^t.mulWord(s))
	}
	for ; i < n; i++ {
		dst[i] ^= t.mulByte(src[i])
	}
}

// mulSliceWords is the word-parallel body of MulSlice for c ∉ {0, 1}:
// dst[i] = c·src[i]. dst and src may alias exactly.
func mulSliceWords(dst, src []byte, t *nibTables) {
	if done := mulAccel(dst, src, t); done > 0 {
		dst, src = dst[done:], src[done:]
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], t.mulWord(s))
	}
	for ; i < n; i++ {
		dst[i] = t.mulByte(src[i])
	}
}
