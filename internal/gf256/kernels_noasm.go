//go:build !amd64 || purego

package gf256

// Non-amd64 (or purego) builds have no SIMD kernels; the word-parallel
// pure-Go kernels in kernels.go handle everything.

// Accelerated reports whether a SIMD kernel path is active on this CPU.
func Accelerated() bool { return false }

func addMulAccel(dst, src []byte, t *nibTables) int { return 0 }

func mulAccel(dst, src []byte, t *nibTables) int { return 0 }
