// Package feasibility implements the Sec. 3.4 design problem: find a
// priority distribution p on the probability simplex satisfying a set of
// decoding constraints
//
//	E(X_{M_i}) ≥ k_i                    (eq. 9)
//	Pr(X_{αN} = n) > 1 − ε              (eq. 10)
//	p_i ≥ 0, Σ p_i = 1                  (eq. 11)
//
// where E(X_M) comes from the internal/analysis model. The paper solved
// this with MATLAB's feasibility search started from the uniform
// distribution and returned the first feasible point found; this package
// replaces MATLAB with a deterministic multi-start projected pattern
// search with the same contract: uniform start, first feasible point wins.
package feasibility

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dist"
)

// Constraint is one decoding constraint (M_i, k_i): from M randomly
// accumulated coded blocks, the expected number of decoded levels must be
// at least MinLevels.
type Constraint struct {
	M         int
	MinLevels float64
}

// Problem is a full Sec. 3.4 feasibility instance.
type Problem struct {
	Scheme core.Scheme
	Levels *core.Levels
	// Decoding lists the (M_i, k_i) constraints of eq. (9).
	Decoding []Constraint
	// Alpha and Epsilon define the eq. (10) full-recovery constraint
	// Pr(X_{αN} = n) > 1−ε. Alpha ≤ 0 disables it.
	Alpha   float64
	Epsilon float64
}

func (p Problem) validate() error {
	if p.Levels == nil {
		return fmt.Errorf("feasibility: nil levels")
	}
	if !p.Scheme.Valid() {
		return fmt.Errorf("feasibility: invalid scheme %v", p.Scheme)
	}
	if len(p.Decoding) == 0 && p.Alpha <= 0 {
		return fmt.Errorf("feasibility: no constraints given")
	}
	n := float64(p.Levels.Count())
	for i, c := range p.Decoding {
		if c.M < 0 {
			return fmt.Errorf("feasibility: constraint %d has negative M %d", i, c.M)
		}
		if c.MinLevels < 0 || c.MinLevels > n {
			return fmt.Errorf("feasibility: constraint %d wants %g levels, range [0, %g]",
				i, c.MinLevels, n)
		}
	}
	if p.Alpha > 0 && (p.Epsilon <= 0 || p.Epsilon >= 1) {
		return fmt.Errorf("feasibility: epsilon %g outside (0, 1)", p.Epsilon)
	}
	return nil
}

// Options tunes the solver.
type Options struct {
	// MaxEvals bounds the number of analysis evaluations (0 = 4000).
	MaxEvals int
	// Restarts is the number of random restarts after the uniform start
	// (0 = 8).
	Restarts int
	// Seed drives the random restarts; the search is deterministic given
	// a seed.
	Seed int64
	// Tol is the violation level treated as feasible (0 = 1e-5, i.e. a
	// worst-case constraint gap of ~3e-3 expected levels). Active
	// constraints hold with equality at the boundary, so demanding an
	// exact zero would reject points any numerical solver returns.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxEvals == 0 {
		o.MaxEvals = 4000
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	return o
}

// Solution is the solver's result. Feasible reports whether every
// constraint is met; P is the best point found either way.
type Solution struct {
	P         core.PriorityDistribution
	Violation float64
	Feasible  bool
	Evals     int
}

// Violation returns the total constraint violation at p: zero iff p is
// feasible. Exposed so experiments can verify reported distributions
// (e.g. the paper's Table 1) against the analytical model.
func Violation(prob Problem, p core.PriorityDistribution) (float64, error) {
	if err := prob.validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(prob.Levels); err != nil {
		return 0, err
	}
	return violation(prob, p)
}

func violation(prob Problem, p core.PriorityDistribution) (float64, error) {
	v := 0.0
	for _, c := range prob.Decoding {
		r, err := analysis.Eval(prob.Scheme, prob.Levels, p, c.M)
		if err != nil {
			return 0, err
		}
		if gap := c.MinLevels - r.EX; gap > 0 {
			v += gap * gap
		}
	}
	if prob.Alpha > 0 {
		m := int(math.Ceil(prob.Alpha * float64(prob.Levels.Total())))
		r, err := analysis.Eval(prob.Scheme, prob.Levels, p, m)
		if err != nil {
			return 0, err
		}
		if gap := (1 - prob.Epsilon) - r.PrAll(); gap > 0 {
			// Scale the probability gap so it competes with level gaps.
			g := gap * float64(prob.Levels.Count())
			v += g * g
		}
	}
	return v, nil
}

// Solve searches for a feasible priority distribution. Matching the
// paper's methodology, the search starts from the uniform distribution and
// stops at the first feasible point; if the uniform basin yields none,
// deterministic random restarts follow. When no feasible point is found
// within the evaluation budget, the least-violating point is returned with
// Feasible == false (the paper: "this implies the decoding constraints
// cannot be fulfilled").
func Solve(prob Problem, opts Options) (Solution, error) {
	if err := prob.validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := prob.Levels.Count()

	best := Solution{Violation: math.Inf(1)}
	evals := 0
	eval := func(p core.PriorityDistribution) (float64, error) {
		evals++
		return violation(prob, p)
	}

	starts := make([]core.PriorityDistribution, 0, opts.Restarts+1)
	starts = append(starts, core.NewUniformDistribution(n))
	for i := 0; i < opts.Restarts; i++ {
		starts = append(starts, randomSimplexPoint(rng, n))
	}

	for _, start := range starts {
		sol, err := patternSearch(prob, start, eval, &evals, opts.MaxEvals, opts.Tol)
		if err != nil {
			return Solution{}, err
		}
		if sol.Violation < best.Violation {
			best = sol
		}
		if best.Violation <= opts.Tol {
			break
		}
		if evals >= opts.MaxEvals {
			break
		}
	}
	best.Feasible = best.Violation <= opts.Tol
	best.Evals = evals
	return best, nil
}

// patternSearch performs coordinate-exchange pattern search projected onto
// the simplex: moves of size δ along e_i − e_j directions, with δ shrinking
// when no move improves.
func patternSearch(
	prob Problem,
	start core.PriorityDistribution,
	eval func(core.PriorityDistribution) (float64, error),
	evals *int,
	maxEvals int,
	tol float64,
) (Solution, error) {
	n := len(start)
	cur := start.Clone()
	curV, err := eval(cur)
	if err != nil {
		return Solution{}, err
	}
	if curV <= tol {
		return Solution{P: cur, Violation: curV}, nil
	}
	for _, step := range []float64{0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002} {
		improved := true
		for improved && *evals < maxEvals {
			improved = false
			for i := 0; i < n && *evals < maxEvals; i++ {
				for j := 0; j < n && *evals < maxEvals; j++ {
					if i == j {
						continue
					}
					cand := moveMass(cur, i, j, step)
					if cand == nil {
						continue
					}
					v, err := eval(cand)
					if err != nil {
						return Solution{}, err
					}
					if v < curV {
						cur, curV = cand, v
						improved = true
						if curV <= tol {
							return Solution{P: cur, Violation: curV}, nil
						}
					}
				}
			}
		}
	}
	return Solution{P: cur, Violation: curV}, nil
}

// moveMass shifts δ of probability mass from level j to level i, clamped
// at j's available mass; returns nil when j has nothing to give.
func moveMass(p core.PriorityDistribution, i, j int, delta float64) core.PriorityDistribution {
	if p[j] <= 0 {
		return nil
	}
	d := delta
	if d > p[j] {
		d = p[j]
	}
	out := p.Clone()
	out[i] += d
	out[j] -= d
	if out[j] < 0 {
		out[j] = 0
	}
	return core.PriorityDistribution(dist.ProjectToSimplex(out))
}

// randomSimplexPoint draws a uniform (flat Dirichlet) point on the simplex.
func randomSimplexPoint(rng *rand.Rand, n int) core.PriorityDistribution {
	p := make(core.PriorityDistribution, n)
	sum := 0.0
	for i := range p {
		p[i] = rng.ExpFloat64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}
